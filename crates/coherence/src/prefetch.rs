//! PC-indexed stride prefetcher for the L1 (Table III lists one, after
//! Baer's classic design).

use sa_isa::{Addr, Line};

const TABLE_SIZE: usize = 256;
const CONFIDENCE_MAX: u8 = 3;
const CONFIDENCE_THRESHOLD: u8 = 2;

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    tag: u64,
    last_addr: Addr,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// Detects per-PC strided access patterns and proposes prefetch lines.
#[derive(Debug)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    degree: usize,
    enabled: bool,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher proposing `degree` lines ahead when a stride
    /// locks; `enabled = false` makes [`StridePrefetcher::train`] a no-op.
    pub fn new(enabled: bool, degree: usize) -> StridePrefetcher {
        StridePrefetcher {
            table: vec![StrideEntry::default(); TABLE_SIZE],
            degree,
            enabled,
            issued: 0,
        }
    }

    /// Trains on a demand access `(pc, addr)` and returns lines to
    /// prefetch (empty until the stride is confident).
    pub fn train(&mut self, pc: u64, addr: Addr) -> Vec<Line> {
        if !self.enabled {
            return Vec::new();
        }
        let idx = (pc >> 2) as usize % TABLE_SIZE;
        let e = &mut self.table[idx];
        let tag = pc;
        if !e.valid || e.tag != tag {
            *e = StrideEntry {
                tag,
                last_addr: addr,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return Vec::new();
        }
        let new_stride = addr as i64 - e.last_addr as i64;
        if new_stride == e.stride && new_stride != 0 {
            e.confidence = (e.confidence + 1).min(CONFIDENCE_MAX);
        } else {
            e.stride = new_stride;
            e.confidence = 0;
        }
        e.last_addr = addr;
        if e.confidence < CONFIDENCE_THRESHOLD {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.degree);
        let mut a = addr as i64;
        let cur = Line::containing(addr);
        for _ in 0..self.degree {
            a += e.stride;
            if a < 0 {
                break;
            }
            let l = Line::containing(a as u64);
            if l != cur && !out.contains(&l) {
                out.push(l);
            }
        }
        self.issued += out.len() as u64;
        out
    }

    /// Total prefetch lines proposed.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_isa::LINE_BYTES;

    #[test]
    fn locks_onto_unit_line_stride() {
        let mut p = StridePrefetcher::new(true, 1);
        let stride = LINE_BYTES;
        let mut got = Vec::new();
        for i in 0..6u64 {
            got.extend(p.train(0x400, 0x1_0000 + i * stride));
        }
        assert!(!got.is_empty(), "stride should lock after a few accesses");
        // Each proposal is exactly one line ahead.
        assert!(got.contains(&Line::containing(0x1_0000 + 4 * stride)));
    }

    #[test]
    fn no_proposals_for_random_pattern() {
        let mut p = StridePrefetcher::new(true, 2);
        let addrs = [0x10u64, 0x5000, 0x20, 0x9000, 0x30];
        let mut got = Vec::new();
        for a in addrs {
            got.extend(p.train(0x400, a));
        }
        assert!(got.is_empty());
    }

    #[test]
    fn small_strides_within_line_not_prefetched() {
        let mut p = StridePrefetcher::new(true, 1);
        let mut got = Vec::new();
        for i in 0..10u64 {
            got.extend(p.train(0x400, 0x1_0000 + i * 8));
        }
        // stride 8 stays within the current line most of the time; only
        // line-crossing proposals appear and they differ from current.
        for l in got {
            assert_ne!(l, Line::containing(0x1_0000));
        }
    }

    #[test]
    fn disabled_is_noop() {
        let mut p = StridePrefetcher::new(false, 4);
        for i in 0..10u64 {
            assert!(p.train(0x400, i * 64).is_empty());
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn distinct_pcs_use_distinct_entries() {
        let mut p = StridePrefetcher::new(true, 1);
        for i in 0..6u64 {
            p.train(0x400, 0x1_0000 + i * 64);
            // Interleaved other-PC traffic must not disturb the stream
            // (different table index).
            p.train(0x404, 0x9_0000);
        }
        let out = p.train(0x400, 0x1_0000 + 6 * 64);
        assert!(!out.is_empty());
    }
}
