//! Event-stream invariants of the tracing subsystem: whatever the
//! machine does, the recorded stream must tell a causally consistent
//! story — retires in program order per core, gate episodes properly
//! bracketed by key, squashes only hitting younger µops — and the
//! Chrome exporter's output on a fixed run must match its golden file
//! byte for byte.

use std::collections::HashMap;

use sa_isa::{ConsistencyModel, CoreId};
use sa_litmus::suite;
use sa_sim::{Multicore, SimConfig};
use sa_trace::{
    export_chrome_trace, CountersTracer, EventKind, GateOpenReason, TraceEvent, Tracer, VecTracer,
};
use sa_workloads::Suite;

/// Records a full litmus run under `model`.
fn record_litmus(name: &str, model: ConsistencyModel) -> Vec<TraceEvent> {
    let ct = suite::all()
        .into_iter()
        .find(|ct| ct.test.name == name)
        .expect("known test");
    let traces = ct.test.to_traces();
    let cfg = SimConfig::default()
        .with_model(model)
        .with_cores(traces.len());
    let mut sim = Multicore::with_tracer(cfg, traces, VecTracer::new());
    sim.run(5_000_000).unwrap();
    sim.into_tracer().into_events()
}

/// Records a short synthetic-workload run under `model`.
fn record_workload(name: &str, model: ConsistencyModel) -> Vec<TraceEvent> {
    let w = sa_workloads::by_name(name).expect("known workload");
    let n = if w.suite == Suite::Parallel { 4 } else { 1 };
    let cfg = SimConfig::default().with_model(model).with_cores(n);
    let mut sim = Multicore::with_tracer(cfg, w.generate(n, 300, 42), VecTracer::new());
    sim.run(5_000_000).unwrap();
    sim.into_tracer().into_events()
}

/// Every stream the invariant tests sweep: all five models on the two
/// headline litmus tests plus a forwarding-heavy workload slice.
fn all_streams() -> Vec<(String, Vec<TraceEvent>)> {
    let mut streams = Vec::new();
    for model in ConsistencyModel::ALL {
        for name in ["mp", "n6"] {
            streams.push((format!("{name}/{model}"), record_litmus(name, model)));
        }
        streams.push((format!("barnes/{model}"), record_workload("barnes", model)));
    }
    streams
}

/// Retires on each core must walk the trace in program order: the
/// retire stream's trace indices (recovered from each µop's dispatch)
/// are strictly increasing per core, squashes and re-execution
/// notwithstanding.
#[test]
fn retires_are_in_program_order_per_core() {
    for (label, events) in all_streams() {
        let mut idx_of: HashMap<(CoreId, u64), usize> = HashMap::new();
        let mut last_retired: HashMap<CoreId, usize> = HashMap::new();
        for ev in &events {
            match ev.kind {
                EventKind::Dispatch { rob, trace_idx, .. } => {
                    idx_of.insert((ev.core, rob), trace_idx);
                }
                EventKind::Retire { rob, .. } => {
                    let idx = idx_of[&(ev.core, rob)];
                    if let Some(prev) = last_retired.insert(ev.core, idx) {
                        assert!(
                            idx > prev,
                            "{label}: core {} retired trace_idx {idx} after {prev}",
                            ev.core.0
                        );
                    }
                }
                _ => {}
            }
        }
    }
}

/// Gate episodes are properly bracketed: every close is eventually
/// followed by an open on the same core, and every key-match open names
/// a key that an earlier close on that core actually locked.
#[test]
fn gate_closes_pair_with_opens_by_key() {
    for (label, events) in all_streams() {
        let mut pending: HashMap<CoreId, Vec<sa_trace::GateKey>> = HashMap::new();
        for ev in &events {
            match ev.kind {
                EventKind::GateClose { key, .. } => {
                    pending.entry(ev.core).or_default().push(key);
                }
                EventKind::GateOpen { reason } => {
                    let locked = pending.entry(ev.core).or_default();
                    if let GateOpenReason::KeyMatch(k) = reason {
                        assert!(
                            locked.contains(&k),
                            "{label}: core {} gate opened on key {k} it never closed under",
                            ev.core.0
                        );
                    }
                    // Any open means the gate is now fully open: all
                    // locked keys are cleared.
                    locked.clear();
                }
                _ => {}
            }
        }
        for (core, locked) in pending {
            assert!(
                locked.is_empty(),
                "{label}: core {} finished with gate still closed under {locked:?}",
                core.0
            );
        }
    }
}

/// The acceptance scenario from the paper's Figure 6: on `n6` under the
/// keyed configuration, the gate closes under the forwarding store's
/// key and a *later* gate-open carries the same key.
#[test]
fn n6_keyed_gate_close_matches_later_open() {
    let events = record_litmus("n6", ConsistencyModel::Ibm370SlfSosKey);
    let close = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::GateClose { .. }))
        .expect("n6 must close the gate on the forwarded load");
    let key = match events[close].kind {
        EventKind::GateClose { key, .. } => key,
        _ => unreachable!(),
    };
    assert!(
        events[close + 1..].iter().any(|e| {
            e.core == events[close].core
                && matches!(e.kind,
                    EventKind::GateOpen { reason: GateOpenReason::KeyMatch(k) } if k == key)
        }),
        "no later gate-open with key {key}"
    );
}

/// Squashes only remove younger µops: nothing already retired on a core
/// may fall inside a later squash's [from_rob, ...) range.
#[test]
fn squashes_only_target_younger_uops() {
    let mut saw_squash = false;
    for (label, events) in all_streams() {
        let mut newest_retired: HashMap<CoreId, u64> = HashMap::new();
        for ev in &events {
            match ev.kind {
                EventKind::Retire { rob, .. } => {
                    newest_retired.insert(ev.core, rob);
                }
                EventKind::Squash { from_rob, uops, .. } => {
                    saw_squash = true;
                    assert!(uops > 0, "{label}: empty squash event");
                    if let Some(&r) = newest_retired.get(&ev.core) {
                        assert!(
                            r < from_rob,
                            "{label}: core {} squashed from rob {from_rob} but rob {r} \
                             already retired",
                            ev.core.0
                        );
                    }
                }
                _ => {}
            }
        }
    }
    assert!(saw_squash, "sweep never exercised a squash — weak test");
}

/// A disabled sink wired through the *whole machine* records nothing:
/// the emission path is compile-time dead, not merely filtered.
#[test]
fn disabled_sink_records_zero_events_end_to_end() {
    #[derive(Default)]
    struct DisabledCounters(CountersTracer);
    impl Tracer for DisabledCounters {
        const ENABLED: bool = false;
        fn record(&mut self, ev: TraceEvent) {
            self.0.record(ev);
        }
    }

    let ct = suite::n6();
    let traces = ct.test.to_traces();
    let cfg = SimConfig::default()
        .with_model(ConsistencyModel::Ibm370SlfSosKey)
        .with_cores(traces.len());
    let mut sim = Multicore::with_tracer(cfg, traces, DisabledCounters::default());
    sim.run(5_000_000).unwrap();
    assert_eq!(
        sim.tracer().0.total(),
        0,
        "disabled sink must record zero events"
    );
}

/// The Chrome exporter's output on the fixed `mp` run is pinned to a
/// golden file. Regenerate with:
/// `cargo run -p sa-bench --bin trace -- --litmus mp` and copy
/// `results/trace_mp_370-SLFSoS-key.json` over the golden file.
#[test]
fn chrome_export_of_fixed_mp_run_matches_golden() {
    let events = record_litmus("mp", ConsistencyModel::Ibm370SlfSosKey);
    let json = export_chrome_trace(&events);
    let golden = include_str!("golden/trace_mp_370-SLFSoS-key.json");
    assert_eq!(
        json, golden,
        "Chrome export drifted from tests/golden/trace_mp_370-SLFSoS-key.json; \
         if the change is intentional, regenerate the golden file"
    );
}
