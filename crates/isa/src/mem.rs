//! The functional (value) image of memory.
//!
//! In an invalidation-based MESI protocol that acknowledges a write only
//! after all invalidations are collected (the paper's §II-E assumption —
//! write atomicity), every store has a single *commit instant*: the cycle
//! its value is written into the owning L1. Stale shared copies of the
//! line are destroyed strictly before that instant, so at any cycle `t`
//! every cache hit in the system observes exactly the value produced by the
//! last store committed at or before `t`.
//!
//! That equivalence lets the simulator keep one global value image updated
//! at store-commit time instead of threading data bytes through protocol
//! messages: a load that *performs* (receives its data) at cycle `t` reads
//! the image as of `t`. Store-to-load forwarding never consults the image —
//! the value comes straight from the SQ/SB entry, which is precisely the
//! store-atomicity loophole the paper studies.

use crate::hash::FastMap;
use crate::{Addr, Value};

/// The global functional memory image (8-byte granularity with sub-word
/// masking), updated at store-commit instants.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueMemory {
    words: FastMap<Addr, Value>,
}

impl ValueMemory {
    /// An all-zeros memory.
    pub fn new() -> ValueMemory {
        ValueMemory::default()
    }

    fn word_addr(addr: Addr) -> Addr {
        addr & !7
    }

    /// Reads `size` bytes at `addr` (zero-extended). Unwritten memory
    /// reads as zero.
    ///
    /// # Panics
    ///
    /// Panics if the access is misaligned for its size.
    pub fn read(&self, addr: Addr, size: u8) -> Value {
        assert_eq!(addr % u64::from(size), 0, "misaligned read at {addr:#x}");
        let word = self.words.get(&Self::word_addr(addr)).copied().unwrap_or(0);
        if size == 8 {
            return word;
        }
        let shift = (addr & 7) * 8;
        let mask = (1u64 << (u64::from(size) * 8)) - 1;
        (word >> shift) & mask
    }

    /// Writes `size` bytes of `value` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the access is misaligned for its size.
    pub fn write(&mut self, addr: Addr, size: u8, value: Value) {
        assert_eq!(addr % u64::from(size), 0, "misaligned write at {addr:#x}");
        let slot = self.words.entry(Self::word_addr(addr)).or_insert(0);
        if size == 8 {
            *slot = value;
            return;
        }
        let shift = (addr & 7) * 8;
        let mask = ((1u64 << (u64::from(size) * 8)) - 1) << shift;
        *slot = (*slot & !mask) | ((value << shift) & mask);
    }

    /// Number of distinct 8-byte words ever written.
    pub fn words_written(&self) -> usize {
        self.words.len()
    }
}

/// The value-image access interface the core pipeline is generic over.
///
/// The serial engines hand each core `&mut ValueMemory` directly; the
/// parallel engine hands every shard a [`StripedValueMemory`] reference
/// whose word-striped locks make concurrent access sound. Which
/// implementation a load observes is timing-invisible: the coherence
/// protocol separates conflicting same-address accesses by at least one
/// cross-shard message latency, so both images always return the same
/// value at the same simulated cycle.
pub trait ValueImage {
    /// Reads `size` bytes at `addr` (zero-extended).
    fn read(&self, addr: Addr, size: u8) -> Value;
    /// Writes `size` bytes of `value` at `addr`.
    fn write(&mut self, addr: Addr, size: u8, value: Value);
}

impl ValueImage for ValueMemory {
    #[inline]
    fn read(&self, addr: Addr, size: u8) -> Value {
        ValueMemory::read(self, addr, size)
    }

    #[inline]
    fn write(&mut self, addr: Addr, size: u8, value: Value) {
        ValueMemory::write(self, addr, size, value)
    }
}

/// Number of lock stripes in a [`StripedValueMemory`]; power of two so
/// the stripe index is a mask of the word-address hash.
const VALUE_STRIPES: usize = 64;

/// A [`ValueMemory`] split into independently locked word stripes so
/// shards of the parallel engine can read and write concurrently.
///
/// Correctness does not rely on lock ordering: the simulated coherence
/// protocol guarantees that two accesses to the *same word* from
/// different shards are separated by a cross-shard message (and hence an
/// epoch barrier), so each lock only ever arbitrates host-level access
/// to *different* words sharing a stripe — never a simulated race.
#[derive(Debug)]
pub struct StripedValueMemory {
    stripes: Vec<std::sync::Mutex<FastMap<Addr, Value>>>,
}

impl StripedValueMemory {
    fn stripe_of(word: Addr) -> usize {
        // Words are 8-byte aligned; drop the alignment zeros first.
        ((word >> 3) as usize) & (VALUE_STRIPES - 1)
    }

    /// Splits `mem` (e.g. a poked pre-run image) into stripes.
    pub fn from_value_memory(mem: ValueMemory) -> StripedValueMemory {
        let mut stripes: Vec<FastMap<Addr, Value>> =
            (0..VALUE_STRIPES).map(|_| FastMap::default()).collect();
        for (addr, value) in mem.words {
            stripes[Self::stripe_of(addr)].insert(addr, value);
        }
        StripedValueMemory {
            stripes: stripes.into_iter().map(std::sync::Mutex::new).collect(),
        }
    }

    /// Collapses the stripes back into one [`ValueMemory`] (the final
    /// image a litmus checker inspects).
    pub fn into_value_memory(self) -> ValueMemory {
        let mut words = FastMap::default();
        for stripe in self.stripes {
            for (addr, value) in stripe.into_inner().expect("no poisoned stripes") {
                words.insert(addr, value);
            }
        }
        ValueMemory { words }
    }

    /// Reads `size` bytes at `addr` (zero-extended), locking one stripe.
    pub fn read(&self, addr: Addr, size: u8) -> Value {
        assert_eq!(addr % u64::from(size), 0, "misaligned read at {addr:#x}");
        let word_addr = addr & !7;
        let stripe = self.stripes[Self::stripe_of(word_addr)]
            .lock()
            .expect("no poisoned stripes");
        let word = stripe.get(&word_addr).copied().unwrap_or(0);
        if size == 8 {
            return word;
        }
        let shift = (addr & 7) * 8;
        let mask = (1u64 << (u64::from(size) * 8)) - 1;
        (word >> shift) & mask
    }

    /// Writes `size` bytes of `value` at `addr`; the sub-word
    /// read-modify-write happens under the stripe lock.
    pub fn write(&self, addr: Addr, size: u8, value: Value) {
        assert_eq!(addr % u64::from(size), 0, "misaligned write at {addr:#x}");
        let word_addr = addr & !7;
        let mut stripe = self.stripes[Self::stripe_of(word_addr)]
            .lock()
            .expect("no poisoned stripes");
        let slot = stripe.entry(word_addr).or_insert(0);
        if size == 8 {
            *slot = value;
            return;
        }
        let shift = (addr & 7) * 8;
        let mask = ((1u64 << (u64::from(size) * 8)) - 1) << shift;
        *slot = (*slot & !mask) | ((value << shift) & mask);
    }
}

impl ValueImage for &StripedValueMemory {
    #[inline]
    fn read(&self, addr: Addr, size: u8) -> Value {
        StripedValueMemory::read(self, addr, size)
    }

    #[inline]
    fn write(&mut self, addr: Addr, size: u8, value: Value) {
        StripedValueMemory::write(self, addr, size, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = ValueMemory::new();
        assert_eq!(m.read(0x1000, 8), 0);
        assert_eq!(m.words_written(), 0);
    }

    #[test]
    fn full_word_roundtrip() {
        let mut m = ValueMemory::new();
        m.write(0x1000, 8, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read(0x1000, 8), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read(0x1008, 8), 0);
    }

    #[test]
    fn subword_write_preserves_neighbours() {
        let mut m = ValueMemory::new();
        m.write(0x1000, 8, 0x1111_1111_1111_1111);
        m.write(0x1004, 4, 0xabcd_ef01);
        assert_eq!(m.read(0x1000, 4), 0x1111_1111);
        assert_eq!(m.read(0x1004, 4), 0xabcd_ef01);
        assert_eq!(m.read(0x1000, 8), 0xabcd_ef01_1111_1111);
    }

    #[test]
    fn byte_granularity() {
        let mut m = ValueMemory::new();
        m.write(0x1003, 1, 0xff);
        assert_eq!(m.read(0x1000, 8), 0xff00_0000);
        m.write(0x1003, 1, 0x01);
        assert_eq!(m.read(0x1003, 1), 0x01);
    }

    #[test]
    fn subword_value_truncated() {
        let mut m = ValueMemory::new();
        m.write(0x1000, 2, 0x1_2345);
        assert_eq!(m.read(0x1000, 2), 0x2345);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_read_panics() {
        let m = ValueMemory::new();
        let _ = m.read(0x1001, 8);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_write_panics() {
        let mut m = ValueMemory::new();
        m.write(0x1002, 4, 0);
    }
}
