//! The parallel engine's contract: sharding the machine across worker
//! threads is an execution strategy, not a semantic change. For every
//! workload, consistency configuration, topology and shard count, the
//! epoch-barrier engine must produce a [`Report`] bit-identical to the
//! serial reference — same final cycle count, same per-core statistics
//! and CPI stacks, same time-series samples, same memory-system
//! counters — identical architectural outcomes (registers and memory),
//! and, when traced, the *exact* serial event stream (pinned here
//! through the forensics analyzer's blame matrices).

use sa_forensics::{Forensics, Summary};
use sa_isa::{ConsistencyModel, CoreId, Reg, Trace};
use sa_litmus::ast::ClassifiedTest;
use sa_litmus::{suite, LitmusTest};
use sa_sim::{EngineMode, Multicore, Report, SimConfig, Topology};

/// Shard counts every cell sweeps. 1 exercises the serial fallback; 2
/// and 4 exercise real barriers (4 > the 2-core litmus tests' core
/// count, pinning the thread clamp too).
const THREADS: [usize; 3] = [1, 2, 4];

/// Both first-class topologies for `n` cores: the fully-connected
/// default and the widest rectangular mesh.
fn topologies(n: usize) -> Vec<Topology> {
    let width = (1..=n)
        .rev()
        .find(|w| n.is_multiple_of(*w) && w * w <= n * 2);
    vec![
        Topology::FullyConnected,
        Topology::Mesh2D {
            width: width.expect("every core count has a rectangular mesh"),
        },
    ]
}

/// Runs the same machine serially and sharded and asserts the reports
/// are identical; returns both simulators for outcome comparison.
fn run_both(
    cfg: SimConfig,
    traces: Vec<Trace>,
    threads: usize,
    label: &str,
) -> (Multicore, Multicore) {
    let mut ser = Multicore::new(cfg.clone(), traces.clone());
    let mut par = Multicore::new(cfg.with_engine(EngineMode::Parallel { threads }), traces);
    let rs: Report = ser.run(u64::MAX).expect("serial engine completes");
    let rp: Report = par.run(u64::MAX).expect("parallel engine completes");
    assert_eq!(rs.cycles, rp.cycles, "{label}: final cycle counts differ");
    assert_eq!(rs, rp, "{label}: reports differ");
    (ser, par)
}

/// Litmus programs across all five configurations, both topologies and
/// all shard counts: identical reports and identical architectural
/// outcomes (every observer register, every shared variable).
#[test]
fn litmus_outcomes_and_reports_match() {
    let cells: [fn() -> ClassifiedTest; 4] = [suite::n6, suite::mp, suite::sb, suite::iriw];
    for ct in cells.map(|f| f()) {
        let n = ct.test.threads.len();
        for model in ConsistencyModel::ALL {
            for topo in topologies(n) {
                for threads in THREADS {
                    let traces = ct.test.to_traces();
                    let cfg = SimConfig::default()
                        .with_model(model)
                        .with_cores(n)
                        .with_topology(topo);
                    let label = format!("{} under {model} {topo:?} x{threads}", ct.test.name);
                    let (ser, par) = run_both(cfg, traces, threads, &label);
                    for t in 0..n {
                        for slot in 0..ct.test.loads_in(t) {
                            let r = Reg::new(slot as u8);
                            assert_eq!(
                                ser.core(CoreId::from_index(t)).arch_reg(r),
                                par.core(CoreId::from_index(t)).arch_reg(r),
                                "{label}: thread {t} r{slot}"
                            );
                        }
                    }
                    for v in ct.test.vars() {
                        let a = LitmusTest::var_addr(v);
                        assert_eq!(
                            ser.memory().read(a, 8),
                            par.memory().read(a, 8),
                            "{label}: var {v:?}"
                        );
                    }
                }
            }
        }
    }
}

/// Two 8-core workloads with a fine sampling interval, across the full
/// configuration × topology × shard-count matrix: the sharded engine
/// must land every sample the serial engine does, with identical
/// contents, and identical memory-system counters.
#[test]
fn workload_reports_and_samples_match() {
    for name in ["dedup", "barnes"] {
        let w = sa_workloads::by_name(name).expect("pinned workload exists");
        for model in ConsistencyModel::ALL {
            for topo in topologies(8) {
                for threads in THREADS {
                    let traces = w.generate(8, 800, 99);
                    let cfg = SimConfig::default()
                        .with_model(model)
                        .with_cores(8)
                        .with_topology(topo)
                        .with_sample_interval(64);
                    let label = format!("{name} under {model} {topo:?} x{threads}");
                    let (ser, par) = run_both(cfg, traces, threads, &label);
                    assert_eq!(
                        ser.memory(),
                        par.memory(),
                        "{label}: final memory images differ"
                    );
                }
            }
        }
    }
}

/// Traced parallel runs reproduce the serial event stream exactly: the
/// forensics analyzer — which consumes every event in order and links
/// episodes across cores — must build the same summary, down to the
/// cross-core blame matrix, from both engines.
#[test]
fn forensics_blame_matrices_match() {
    let run = |cfg: SimConfig, traces: Vec<Trace>, n: usize| -> Summary {
        let mut sim = Multicore::with_tracer(cfg, traces, Forensics::new(n));
        let report = sim.run(u64::MAX).expect("run completes");
        sim.into_tracer().finish(report.cycles)
    };
    for model in ConsistencyModel::ALL {
        // n6 is the paper's §III blame walkthrough; x264 is contended.
        let ct = suite::n6();
        let n = ct.test.threads.len();
        for threads in [2usize, 4] {
            let cfg = SimConfig::default().with_model(model).with_cores(n);
            let ser = run(cfg.clone(), ct.test.to_traces(), n);
            let par = run(
                cfg.with_engine(EngineMode::Parallel { threads }),
                ct.test.to_traces(),
                n,
            );
            assert_eq!(ser.blame, par.blame, "n6/{model} x{threads}: blame");
            assert_eq!(ser, par, "n6/{model} x{threads}: full summary");
        }
        let w = sa_workloads::by_name("x264").expect("x264 exists");
        let cfg = SimConfig::default().with_model(model).with_cores(8);
        let ser = run(cfg.clone(), w.generate(8, 300, 42), 8);
        let par = run(
            cfg.with_engine(EngineMode::Parallel { threads: 4 }),
            w.generate(8, 300, 42),
            8,
        );
        assert_eq!(ser.blame, par.blame, "x264/{model}: blame matrices");
        assert_eq!(ser, par, "x264/{model}: full summaries");
    }
}

/// A 256-core mesh cell completes and stays bit-exact when sharded —
/// the scale the parallel engine exists for (kept to one model and a
/// small trace so the suite stays quick).
#[test]
fn many_core_mesh_matches() {
    let w = sa_workloads::by_name("radix").expect("radix exists");
    let traces = w.generate(256, 60, 7);
    let cfg = SimConfig::default()
        .with_cores(256)
        .with_topology(Topology::Mesh2D { width: 16 });
    let label = "radix x256 mesh:16";
    run_both(cfg, traces, 4, label);
}
