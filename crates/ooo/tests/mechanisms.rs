//! Targeted tests of individual core mechanisms: gate accounting, the
//! multi-key extension, fences, partial forwarding, memory-system
//! backpressure and drain behavior.

use sa_isa::{ConsistencyModel, CoreId, Op, Reg, StoreOperand, Trace, TraceBuilder, ValueMemory};
use sa_ooo::port::SimpleMem;
use sa_ooo::{Core, CoreConfig};
use sa_trace::NullTracer;

const A: u64 = 0x1000;
const B: u64 = 0x2000;
const C: u64 = 0x3000;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

fn run_core(
    model: ConsistencyModel,
    cfg: CoreConfig,
    trace: Trace,
    mut mem: SimpleMem,
) -> (u64, Core, ValueMemory) {
    let mut core = Core::new(CoreId(0), cfg, model, trace);
    let mut valmem = ValueMemory::new();
    for t in 0..500_000u64 {
        let notices = mem.take_due(t);
        core.tick(t, &mut mem, &mut valmem, &notices, &mut NullTracer);
        if core.finished() {
            return (t, core, valmem);
        }
    }
    panic!("core did not finish");
}

/// The multi-key gate lets a second SLF load retire through a closed
/// gate; with the paper's single register it must wait.
#[test]
fn multi_key_gate_reduces_gate_stalls() {
    let build = || {
        let mut b = TraceBuilder::new();
        // Two forwarding pairs back to back, then a younger load.
        b.store_imm(A, 1);
        b.load(r(1), A); // SLF #1
        b.store_imm(B, 2);
        b.load(r(2), B); // SLF #2
        b.load(r(3), C); // younger plain load
        b.build()
    };
    let single = run_core(
        ConsistencyModel::Ibm370SlfSosKey,
        CoreConfig {
            gate_keys: 1,
            ..CoreConfig::default()
        },
        build(),
        SimpleMem::new(4, 150),
    );
    let multi = run_core(
        ConsistencyModel::Ibm370SlfSosKey,
        CoreConfig {
            gate_keys: 4,
            ..CoreConfig::default()
        },
        build(),
        SimpleMem::new(4, 150),
    );
    assert!(single.1.stats().gate_stall_cycles > 0);
    assert!(
        multi.1.stats().gate_stall_cycles < single.1.stats().gate_stall_cycles,
        "extra key registers must reduce SLF-on-SLF gate stalls \
         (single={}, multi={})",
        single.1.stats().gate_stall_cycles,
        multi.1.stats().gate_stall_cycles
    );
    assert_eq!(
        multi.1.stats().gate_closures,
        2,
        "both SLF loads deposited keys"
    );
    // Architectural results identical.
    for reg in [r(1), r(2), r(3)] {
        assert_eq!(single.1.arch_reg(reg), multi.1.arch_reg(reg));
    }
}

/// Gate-stall events count *instructions*, not cycles (Table IV's
/// "Gate Stalls" column semantics).
#[test]
fn gate_stall_events_count_instructions() {
    let mut b = TraceBuilder::new();
    b.store_imm(A, 1);
    b.load(r(1), A); // SLF closes the gate
    b.load(r(2), B); // stalls once, for many cycles
    let (_, core, _) = run_core(
        ConsistencyModel::Ibm370SlfSosKey,
        CoreConfig::default(),
        b.build(),
        SimpleMem::new(4, 200),
    );
    let s = core.stats();
    assert_eq!(s.gate_stall_events, 1, "one stalled instruction");
    assert!(
        s.gate_stall_cycles > 20,
        "many stall cycles for that one instruction: {}",
        s.gate_stall_cycles
    );
    assert!(s.avg_gate_stall_cycles() > 20.0);
}

/// A fence keeps younger loads from issuing and retires only once the
/// SB drained; order of effects is observable through timing.
#[test]
fn fence_blocks_younger_loads_until_retirement() {
    let with_fence = {
        let mut b = TraceBuilder::new();
        b.store_imm(A, 1);
        b.fence();
        b.load(r(1), B);
        b.build()
    };
    let without = {
        let mut b = TraceBuilder::new();
        b.store_imm(A, 1);
        b.nop();
        b.load(r(1), B);
        b.build()
    };
    let (t_fence, fenced, _) = run_core(
        ConsistencyModel::X86,
        CoreConfig::default(),
        with_fence,
        SimpleMem::new(30, 120),
    );
    let (t_plain, _, _) = run_core(
        ConsistencyModel::X86,
        CoreConfig::default(),
        without,
        SimpleMem::new(30, 120),
    );
    assert_eq!(fenced.stats().retired_fences, 1);
    // Without the fence the load overlaps the drain; with it, the load's
    // full latency is serialized after the drain completes.
    assert!(
        t_fence >= t_plain + 25,
        "the fence must serialize the load behind the drain ({t_fence} vs {t_plain})"
    );
}

/// Partial overlap cannot forward: the load waits for the store's L1
/// write and still reads the correct combined value.
#[test]
fn partial_overlap_blocks_until_commit() {
    let mut b = TraceBuilder::new();
    b.push(Op::Store {
        src: StoreOperand::Imm(0xAABB),
        addr: A,
        size: 2,
        addr_src: None,
    });
    b.load(r(1), A); // 8-byte load over a 2-byte store: no forwarding
    let (_, core, valmem) = run_core(
        ConsistencyModel::X86,
        CoreConfig::default(),
        b.build(),
        SimpleMem::new(4, 80),
    );
    assert_eq!(
        core.stats().forwarded_loads,
        0,
        "partial overlaps never forward"
    );
    assert_eq!(core.arch_reg(r(1)), 0xAABB);
    assert_eq!(valmem.read(A, 2), 0xAABB);
}

/// Sub-word forwarding with full coverage extracts the right bytes.
#[test]
fn subword_forwarding_extracts_bytes() {
    let mut b = TraceBuilder::new();
    b.store_imm(A, 0x1122_3344_5566_7788);
    b.push(Op::Load {
        dst: r(1),
        addr: A + 4,
        size: 4,
        addr_src: None,
    });
    b.push(Op::Load {
        dst: r(2),
        addr: A,
        size: 1,
        addr_src: None,
    });
    let (_, core, _) = run_core(
        ConsistencyModel::X86,
        CoreConfig::default(),
        b.build(),
        SimpleMem::new(4, 40),
    );
    assert_eq!(core.arch_reg(r(1)), 0x1122_3344);
    assert_eq!(core.arch_reg(r(2)), 0x88);
    assert_eq!(core.stats().forwarded_loads, 2);
}

/// Loads retried on MSHR exhaustion still complete (backpressure path).
#[test]
fn mshr_backpressure_retries() {
    // SimpleMem never rejects, so emulate backpressure with a wrapper.
    struct Flaky {
        inner: SimpleMem,
        countdown: u32,
    }
    impl sa_ooo::LoadStorePort for Flaky {
        fn issue_load(
            &mut self,
            line: sa_isa::Line,
            pc: u64,
            addr: u64,
            now: u64,
        ) -> Option<sa_coherence::MemReqId> {
            if self.countdown > 0 {
                self.countdown -= 1;
                return None; // MSHRs full
            }
            self.inner.issue_load(line, pc, addr, now)
        }
        fn issue_ownership(
            &mut self,
            line: sa_isa::Line,
            now: u64,
        ) -> Option<sa_coherence::MemReqId> {
            self.inner.issue_ownership(line, now)
        }
        fn has_ownership(&self, line: sa_isa::Line) -> bool {
            self.inner.has_ownership(line)
        }
        fn mark_dirty(&mut self, line: sa_isa::Line) {
            self.inner.mark_dirty(line)
        }
        fn l1_latency(&self) -> u64 {
            self.inner.l1_latency()
        }
    }
    let mut b = TraceBuilder::new();
    b.load(r(1), A);
    b.load(r(2), B);
    let mut core = Core::new(
        CoreId(0),
        CoreConfig::default(),
        ConsistencyModel::X86,
        b.build(),
    );
    let mut mem = Flaky {
        inner: SimpleMem::new(4, 10),
        countdown: 7,
    };
    let mut valmem = ValueMemory::new();
    valmem.write(A, 8, 5);
    valmem.write(B, 8, 6);
    let mut finished_at = None;
    for t in 0..10_000u64 {
        let notices = mem.inner.take_due(t);
        core.tick(t, &mut mem, &mut valmem, &notices, &mut NullTracer);
        if core.finished() {
            finished_at = Some(t);
            break;
        }
    }
    assert!(
        finished_at.is_some(),
        "loads must retry past MSHR rejection"
    );
    assert_eq!(core.arch_reg(r(1)), 5);
    assert_eq!(core.arch_reg(r(2)), 6);
}

/// Stores to distinct lines prefetch ownership concurrently (RFO MLP):
/// N independent store misses cost far less than N serialized RFO
/// round-trips.
#[test]
fn rfo_prefetch_overlaps_store_misses() {
    let n = 12u64;
    let build = || {
        let mut b = TraceBuilder::new();
        for i in 0..n {
            b.store_imm(A + i * 0x100, i);
        }
        b.build()
    };
    let own_latency = 200u64;
    let (t_deep, ..) = run_core(
        ConsistencyModel::X86,
        CoreConfig {
            rfo_depth: 32,
            ..CoreConfig::default()
        },
        build(),
        SimpleMem::new(4, own_latency),
    );
    let (t_shallow, ..) = run_core(
        ConsistencyModel::X86,
        CoreConfig {
            rfo_depth: 1,
            ..CoreConfig::default()
        },
        build(),
        SimpleMem::new(4, own_latency),
    );
    assert!(
        t_deep * 3 < t_shallow,
        "deep RFO must overlap the misses (deep={t_deep}, shallow={t_shallow})"
    );
    assert!(t_shallow > n * own_latency / 2, "shallow drain serializes");
}

/// NoSpec loads woken by a store commit re-search the SQ/SB: a second,
/// younger matching store must win the re-search.
#[test]
fn nospec_researches_after_wakeup() {
    let build = || {
        let mut b = TraceBuilder::new();
        b.store_imm(A, 1); // older store
        b.store_imm(A, 2); // younger store, same address
        b.load(r(1), A); // must see 2 under every model
        b.build()
    };
    for model in [ConsistencyModel::Ibm370NoSpec, ConsistencyModel::X86] {
        let (_, core, valmem) =
            run_core(model, CoreConfig::default(), build(), SimpleMem::new(4, 60));
        assert_eq!(core.arch_reg(r(1)), 2, "{model}");
        assert_eq!(valmem.read(A, 8), 2, "{model}");
    }
}

/// Under SLFSoS (no key), the gate reopens only when the SB is empty —
/// observable as strictly more gate-closed cycles than SLFSoS-key on a
/// two-store window.
#[test]
fn sos_gate_closed_longer_than_key() {
    let build = || {
        let mut b = TraceBuilder::new();
        b.store_imm(A, 1);
        b.load(r(1), A); // SLF of store A
        b.store_imm(B, 2); // keeps the SB busy after A commits
        b.store_imm(C, 3);
        b.load(r(2), B + 0x40);
        b.build()
    };
    let (_, sos, _) = run_core(
        ConsistencyModel::Ibm370SlfSos,
        CoreConfig::default(),
        build(),
        SimpleMem::new(4, 100),
    );
    let (_, key, _) = run_core(
        ConsistencyModel::Ibm370SlfSosKey,
        CoreConfig::default(),
        build(),
        SimpleMem::new(4, 100),
    );
    assert!(
        sos.stats().gate_closed_cycles > key.stats().gate_closed_cycles,
        "SB-drain reopen holds the gate longer (sos={}, key={})",
        sos.stats().gate_closed_cycles,
        key.stats().gate_closed_cycles
    );
}

/// SQ/SB wrap-around stress: hundreds of forwarding pairs cycle the
/// 56-entry circular buffer through many sorting-bit generations; every
/// forwarded value must be exact and the gate must never wedge.
#[test]
fn sq_wraparound_generations_stay_correct() {
    let n = 300u64;
    let mut b = TraceBuilder::new();
    for i in 0..n {
        let slot = A + (i % 8) * 8;
        b.store_imm(slot, 1000 + i);
        b.load(r((i % 16) as u8), slot);
    }
    let (_, core, _) = run_core(
        ConsistencyModel::Ibm370SlfSosKey,
        CoreConfig::default(),
        b.build(),
        SimpleMem::new(4, 30),
    );
    let s = core.stats();
    assert_eq!(s.retired_stores, n);
    assert_eq!(s.forwarded_loads, n, "every load forwards from its pair");
    // The last 16 loads' registers hold the last 16 stored values.
    for k in 0..16u64 {
        let i = n - 16 + k;
        assert_eq!(core.arch_reg(r((i % 16) as u8)), 1000 + i, "load {i}");
    }
    assert!(
        !core.gate().is_closed(),
        "gate reopened after the final commit"
    );
}

/// Squash penalty configuration is honored: a larger penalty costs
/// proportionally more on a squash-heavy program.
#[test]
fn squash_penalty_scales_cost() {
    let build = || {
        let mut b = TraceBuilder::new();
        for _ in 0..20 {
            b.alu(sa_isa::ExecUnit::IntDiv, Some(r(9)), [None, None]);
            b.store_imm_dep(A, 1, r(9));
            b.load(r(1), A); // violates, squashes, replays
            for _ in 0..5 {
                b.nop();
            }
        }
        b.build()
    };
    let cfg_small = CoreConfig {
        squash_penalty: 2,
        storeset: false,
        ..CoreConfig::default()
    };
    let cfg_large = CoreConfig {
        squash_penalty: 40,
        storeset: false,
        ..CoreConfig::default()
    };
    let (t_small, c_small, _) = run_core(
        ConsistencyModel::X86,
        cfg_small,
        build(),
        SimpleMem::new(4, 10),
    );
    let (t_large, c_large, _) = run_core(
        ConsistencyModel::X86,
        cfg_large,
        build(),
        SimpleMem::new(4, 10),
    );
    assert!(c_small.stats().squashes_for(sa_ooo::SquashCause::MemOrder) > 5);
    assert!(c_large.stats().squashes_for(sa_ooo::SquashCause::MemOrder) > 5);
    assert!(
        t_large > t_small + 100,
        "squash penalty must show up in time ({t_small} vs {t_large})"
    );
}
