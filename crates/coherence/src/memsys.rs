//! The assembled memory system: private controllers, directory banks, the
//! network, and the event queue behind one core-facing facade.

use sa_isa::{Addr, CoreId, Cycle, Line};
use sa_profile::{NullProfiler, Profiler};
use sa_trace::{EventKind, TraceEvent, TraceNode, Tracer};

use crate::config::MemConfig;
use crate::dir::DirBank;
use crate::event::EventQueue;
use crate::msg::{Msg, NodeId};
use crate::network::Network;
use crate::private::PrivateCtrl;
use crate::stats::MemStats;

/// Identifies an outstanding load or ownership request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemReqId(pub u64);

/// What the memory system tells a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoticeKind {
    /// A demand load completed (the load *performs* now).
    LoadDone {
        /// The request this completes.
        id: MemReqId,
    },
    /// An ownership (RFO/upgrade) request completed; the line is writable.
    OwnershipDone {
        /// The request this completes.
        id: MemReqId,
    },
    /// A remote store invalidated `line`; the load queue must snoop this.
    Invalidated {
        /// The invalidated line.
        line: Line,
        /// The core whose ownership request caused the invalidation
        /// (squash-blame provenance for forensics).
        by: CoreId,
    },
    /// `line` left the private hierarchy for capacity reasons. The paper
    /// treats evictions like invalidations for speculative loads because
    /// an eviction would filter out a future invalidation.
    Evicted {
        /// The evicted line.
        line: Line,
    },
    /// A remote read downgraded `line` from exclusive to shared; the core
    /// keeps the data but loses write permission. Loads are unaffected —
    /// the notice exists so a sleeping core learns that a store which
    /// previously held ownership must re-request it.
    Downgraded {
        /// The downgraded line.
        line: Line,
    },
}

/// A timestamped [`NoticeKind`] delivered to a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notice {
    /// Cycle at which the notice takes effect.
    pub at: Cycle,
    /// The payload.
    pub kind: NoticeKind,
}

/// An action emitted by a controller, applied by the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Inject `msg` into the network at cycle `at`.
    Send {
        /// Sending node (network channel source).
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: Msg,
        /// Injection cycle (may be later than "now" to model lookup
        /// latency before the miss is discovered).
        at: Cycle,
    },
    /// Deliver a notice to `core` at cycle `at`.
    Notice {
        /// Destination core.
        core: CoreId,
        /// Delivery cycle.
        at: Cycle,
        /// The payload.
        kind: NoticeKind,
    },
}

#[derive(Debug)]
enum Ev {
    Deliver { from: NodeId, to: NodeId, msg: Msg },
    Notice { core: CoreId, kind: NoticeKind },
}

/// The `sa-trace` mirror of a network node.
fn tnode(n: NodeId) -> TraceNode {
    match n {
        NodeId::Core(c) => TraceNode::Core(c.0),
        NodeId::Bank(b) => TraceNode::Bank(b),
    }
}

/// The core-side endpoint a coherence event is stamped with.
fn core_endpoint(from: NodeId, to: NodeId) -> CoreId {
    match (from, to) {
        (_, NodeId::Core(c)) | (NodeId::Core(c), _) => c,
        _ => CoreId(0),
    }
}

/// Stable protocol-level label of a message, for trace viewers.
fn msg_label(msg: &Msg) -> &'static str {
    match msg {
        Msg::GetS { .. } => "GetS",
        Msg::GetM { .. } => "GetM",
        Msg::PutM { .. } => "PutM",
        Msg::DataS { .. } => "DataS",
        Msg::DataE { .. } => "DataE",
        Msg::GrantM { .. } => "GrantM",
        Msg::PutMAck { .. } => "PutMAck",
        Msg::Inv { .. } => "Inv",
        Msg::FetchS { .. } => "FetchS",
        Msg::FetchInv { .. } => "FetchInv",
        Msg::InvAck { .. } => "InvAck",
        Msg::AckData { .. } => "AckData",
    }
}

/// The full memory system below the cores.
///
/// Drive it with [`MemorySystem::advance`] once per core cycle, then drain
/// each core's notices with [`MemorySystem::drain_notices`].
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    q: EventQueue<Ev>,
    net: Network,
    ctrls: Vec<PrivateCtrl>,
    banks: Vec<DirBank>,
    notices: Vec<Vec<Notice>>,
    next_req: u64,
    /// Per-core version stamps over controller state: bumped whenever a
    /// core's private controller is mutated in a way that could change
    /// the outcome of a subsequent issue attempt (accepted issues,
    /// protocol message delivery, commit writes). A rejected issue does
    /// NOT bump its core's stamp — its only side effects (request id,
    /// reject counter) cannot flip a later attempt's outcome — which is
    /// exactly what lets the core memoize `MshrFull` rejections.
    reject_epochs: Vec<u64>,
}

impl MemorySystem {
    /// Builds the memory system described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MemConfig::validate`].
    pub fn new(cfg: MemConfig) -> MemorySystem {
        cfg.validate();
        let ctrls = (0..cfg.n_cores)
            .map(|i| PrivateCtrl::new(CoreId(i as u8), &cfg))
            .collect();
        let banks = (0..cfg.l3_banks)
            .map(|i| {
                DirBank::new(
                    i as u8,
                    cfg.l3_bytes_per_bank,
                    cfg.l3_assoc,
                    cfg.l3_latency,
                    cfg.mem_latency,
                )
            })
            .collect();
        MemorySystem {
            net: Network::with_topology(
                cfg.hop_latency,
                cfg.data_flits,
                cfg.ctrl_flits,
                cfg.topology,
                cfg.n_cores,
            ),
            q: EventQueue::new(),
            ctrls,
            banks,
            notices: vec![Vec::new(); cfg.n_cores],
            next_req: 0,
            reject_epochs: vec![0; cfg.n_cores],
            cfg,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// L1 hit latency, for the core's store-commit fast path.
    pub fn l1_latency(&self) -> u64 {
        self.cfg.l1_latency
    }

    fn fresh_req(&mut self) -> MemReqId {
        let id = MemReqId(self.next_req);
        self.next_req += 1;
        id
    }

    /// Issues a demand load for `core`. Returns `None` when the
    /// controller's MSHRs are exhausted (retry next cycle).
    pub fn issue_load(
        &mut self,
        core: CoreId,
        line: Line,
        pc: u64,
        addr: Addr,
        now: Cycle,
    ) -> Option<MemReqId> {
        let id = self.fresh_req();
        let actions = self.ctrls[core.index()].load(id, line, pc, addr, now)?;
        self.reject_epochs[core.index()] += 1;
        self.apply(actions);
        Some(id)
    }

    /// This core's [reject-memo](Self::issue_load) version stamp.
    pub fn reject_epoch(&self, core: CoreId) -> u64 {
        self.reject_epochs[core.index()]
    }

    /// Applies the side effects of `n` load or ownership issues known
    /// (via an unchanged [`reject_epoch`](Self::reject_epoch)) to be
    /// MSHR-rejected: the request ids and the controller's reject
    /// counter advance exactly as in `n` real rejected
    /// [`issue_load`](Self::issue_load)s or
    /// [`issue_ownership`](Self::issue_ownership)s — the two reject
    /// paths have identical side effects — without the cache and MSHR
    /// probes.
    pub fn note_rejected_issues(&mut self, core: CoreId, n: u64) {
        self.next_req += n;
        self.ctrls[core.index()].note_mshr_rejects(n);
    }

    /// Issues an ownership request (store RFO/upgrade) for `core`.
    /// Returns `None` when the controller's MSHRs are exhausted.
    pub fn issue_ownership(&mut self, core: CoreId, line: Line, now: Cycle) -> Option<MemReqId> {
        let id = self.fresh_req();
        let actions = self.ctrls[core.index()].ownership(id, line, now)?;
        self.reject_epochs[core.index()] += 1;
        self.apply(actions);
        Some(id)
    }

    /// `true` when `core`'s private hierarchy owns `line` (M/E).
    pub fn has_ownership(&self, core: CoreId, line: Line) -> bool {
        self.ctrls[core.index()].has_ownership(line)
    }

    /// Records the store-commit L1 write into an owned line.
    pub fn mark_dirty(&mut self, core: CoreId, line: Line) {
        self.reject_epochs[core.index()] += 1;
        self.ctrls[core.index()].mark_dirty(line);
    }

    fn apply(&mut self, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { from, to, msg, at } => {
                    let deliver = self.net.send(from, to, at, msg.carries_data());
                    self.q.schedule(deliver, Ev::Deliver { from, to, msg });
                }
                Action::Notice { core, at, kind } => {
                    self.q.schedule(at, Ev::Notice { core, kind });
                }
            }
        }
    }

    /// Processes all protocol events up to and including cycle `to`,
    /// accumulating notices for the cores and emitting one
    /// [`EventKind::CohMsg`] per delivered protocol message (stamped with
    /// the core-side endpoint). This is the single run API: with
    /// [`&mut NullTracer`](sa_trace::NullTracer) every emission site monomorphizes
    /// to dead code, leaving exactly the untraced event pump.
    pub fn advance<T: Tracer>(&mut self, to: Cycle, tracer: &mut T) {
        self.advance_profiled::<T, NullProfiler>(to, tracer);
    }

    /// [`MemorySystem::advance`] with host-side profiling: message
    /// handling is split by destination into `directory` (shared bank +
    /// network send) and `private` (per-core L1 controller) spans so an
    /// enabled [`Profiler`] attributes the protocol pump's wall time.
    /// With the default [`NullProfiler`] every span compiles away and
    /// this *is* `advance`.
    pub fn advance_profiled<T: Tracer, P: Profiler>(&mut self, to: Cycle, tracer: &mut T) {
        while let Some((cycle, ev)) = self.q.pop_until(to) {
            match ev {
                Ev::Deliver {
                    from,
                    to: node,
                    msg,
                } => {
                    tracer.emit(|| TraceEvent {
                        cycle,
                        core: core_endpoint(from, node),
                        kind: EventKind::CohMsg {
                            from: tnode(from),
                            to: tnode(node),
                            line: msg.line().base(),
                            msg: msg_label(&msg),
                        },
                    });
                    let actions = match node {
                        NodeId::Bank(b) => {
                            let _p = P::span("directory");
                            self.banks[b as usize].handle(msg, cycle)
                        }
                        NodeId::Core(c) => {
                            let _p = P::span("private");
                            self.reject_epochs[c.index()] += 1;
                            self.ctrls[c.index()].handle(msg, cycle)
                        }
                    };
                    self.apply(actions);
                }
                Ev::Notice { core, kind } => {
                    self.notices[core.index()].push(Notice { at: cycle, kind });
                }
            }
        }
    }

    /// Takes the notices accumulated for `core` since the last drain.
    pub fn drain_notices(&mut self, core: CoreId) -> Vec<Notice> {
        std::mem::take(&mut self.notices[core.index()])
    }

    /// `true` when notices are pending for `core` — the cheap probe the
    /// engine uses before committing to a buffer swap (or a tick at all).
    pub fn has_notices(&self, core: CoreId) -> bool {
        !self.notices[core.index()].is_empty()
    }

    /// Moves `core`'s pending notices into `buf` (cleared first) without
    /// allocating: the buffers swap, so a caller reusing one scratch
    /// vector keeps both sides' capacities warm across cycles.
    pub fn take_notices_into(&mut self, core: CoreId, buf: &mut Vec<Notice>) {
        buf.clear();
        std::mem::swap(&mut self.notices[core.index()], buf);
    }

    /// `true` when no protocol events are pending anywhere.
    pub fn quiescent(&self) -> bool {
        self.q.is_empty()
    }

    /// Outstanding misses (allocated MSHRs) at one core's private
    /// controller, at this instant.
    pub fn outstanding_misses_at(&self, core: CoreId) -> usize {
        self.ctrls[core.index()].mshrs_in_use()
    }

    /// Outstanding misses (allocated MSHRs) across all private
    /// controllers — the interval sampler's memory-pressure probe.
    pub fn outstanding_misses(&self) -> usize {
        self.ctrls.iter().map(|c| c.mshrs_in_use()).sum()
    }

    /// Cycle of the next pending protocol event, if any.
    pub fn next_event_cycle(&self) -> Option<Cycle> {
        self.q.next_cycle()
    }

    /// Aggregated statistics snapshot.
    pub fn stats(&self) -> MemStats {
        MemStats {
            per_core: self.ctrls.iter().map(|c| c.stats).collect(),
            per_bank: self.banks.iter().map(|b| b.stats).collect(),
            flits_sent: self.net.flits_sent(),
            msgs_sent: self.net.msgs_sent(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_trace::NullTracer;

    fn sys(n: usize) -> MemorySystem {
        MemorySystem::new(MemConfig {
            prefetch: false,
            ..MemConfig::with_cores(n)
        })
    }

    fn line(i: u64) -> Line {
        Line::from_raw(i)
    }

    fn run_until_load_done(
        m: &mut MemorySystem,
        core: CoreId,
        id: MemReqId,
        limit: Cycle,
    ) -> Cycle {
        for t in 0..limit {
            m.advance(t, &mut NullTracer);
            for n in m.drain_notices(core) {
                if n.kind == (NoticeKind::LoadDone { id }) {
                    return n.at;
                }
            }
        }
        panic!("load never completed");
    }

    fn run_until_own_done(m: &mut MemorySystem, core: CoreId, id: MemReqId, limit: Cycle) -> Cycle {
        for t in 0..limit {
            m.advance(t, &mut NullTracer);
            for n in m.drain_notices(core) {
                if n.kind == (NoticeKind::OwnershipDone { id }) {
                    return n.at;
                }
            }
        }
        panic!("ownership never completed");
    }

    #[test]
    fn cold_load_latency_includes_memory() {
        let mut m = sys(2);
        let id = m.issue_load(CoreId(0), line(1), 0, 64, 0).unwrap();
        let done = run_until_load_done(&mut m, CoreId(0), id, 2000);
        // l2 lookup 12 + net 7 + l3 35 + mem 160 + net 11 = 225
        assert_eq!(done, 225);
    }

    #[test]
    fn warm_load_is_l1_hit() {
        let mut m = sys(2);
        let id = m.issue_load(CoreId(0), line(1), 0, 64, 0).unwrap();
        let t0 = run_until_load_done(&mut m, CoreId(0), id, 2000);
        let id2 = m.issue_load(CoreId(0), line(1), 0, 64, t0 + 1).unwrap();
        let t1 = run_until_load_done(&mut m, CoreId(0), id2, t0 + 100);
        assert_eq!(t1, t0 + 1 + 4, "L1 hit at +4");
    }

    #[test]
    fn remote_store_invalidates_sharer() {
        let mut m = sys(2);
        // Core 0 reads the line.
        let id = m.issue_load(CoreId(0), line(1), 0, 64, 0).unwrap();
        let t0 = run_until_load_done(&mut m, CoreId(0), id, 2000);
        // Core 1 wants ownership: core 0 must observe an invalidation
        // strictly before the grant (write atomicity).
        let own = m.issue_ownership(CoreId(1), line(1), t0 + 1).unwrap();
        let granted = run_until_own_done(&mut m, CoreId(1), own, t0 + 2000);
        m.advance(granted + 200, &mut NullTracer);
        let inv_notices: Vec<Notice> = m
            .drain_notices(CoreId(0))
            .into_iter()
            .filter(|n| matches!(n.kind, NoticeKind::Invalidated { .. }))
            .collect();
        // Core0 got E then was FetchInv'd (owner), so it sees exactly one
        // invalidation, before the grant.
        assert_eq!(inv_notices.len(), 1);
        assert!(inv_notices[0].at < granted, "invalidation precedes grant");
        assert!(m.has_ownership(CoreId(1), line(1)));
        assert!(!m.has_ownership(CoreId(0), line(1)));
    }

    #[test]
    fn two_sharers_both_invalidated_before_grant() {
        let mut m = sys(4);
        let a = m.issue_load(CoreId(0), line(9), 0, 9 * 64, 0).unwrap();
        let t0 = run_until_load_done(&mut m, CoreId(0), a, 2000);
        let b = m.issue_load(CoreId(1), line(9), 0, 9 * 64, t0 + 1).unwrap();
        let t1 = run_until_load_done(&mut m, CoreId(1), b, t0 + 2000);
        // Third core stores.
        let own = m.issue_ownership(CoreId(2), line(9), t1 + 1).unwrap();
        let granted = run_until_own_done(&mut m, CoreId(2), own, t1 + 2000);
        m.advance(granted + 100, &mut NullTracer);
        for c in [CoreId(0), CoreId(1)] {
            let invs: Vec<Notice> = m
                .drain_notices(c)
                .into_iter()
                .filter(|n| matches!(n.kind, NoticeKind::Invalidated { .. }))
                .collect();
            assert_eq!(invs.len(), 1, "{c} must be invalidated exactly once");
            assert!(invs[0].at <= granted);
        }
    }

    #[test]
    fn store_commit_fast_path() {
        let mut m = sys(2);
        let own = m.issue_ownership(CoreId(0), line(3), 0).unwrap();
        let granted = run_until_own_done(&mut m, CoreId(0), own, 2000);
        assert!(m.has_ownership(CoreId(0), line(3)));
        m.mark_dirty(CoreId(0), line(3));
        // A second ownership request on the same line is the fast path.
        let own2 = m.issue_ownership(CoreId(0), line(3), granted + 1).unwrap();
        let t = run_until_own_done(&mut m, CoreId(0), own2, granted + 50);
        assert_eq!(t, granted + 2);
    }

    #[test]
    fn read_after_remote_dirty_write_downgrades() {
        let mut m = sys(2);
        let own = m.issue_ownership(CoreId(0), line(3), 0).unwrap();
        let granted = run_until_own_done(&mut m, CoreId(0), own, 2000);
        m.mark_dirty(CoreId(0), line(3));
        let id = m
            .issue_load(CoreId(1), line(3), 0, 3 * 64, granted + 1)
            .unwrap();
        let done = run_until_load_done(&mut m, CoreId(1), id, granted + 2000);
        assert!(done > granted);
        // Owner keeps a shared copy; no invalidation notice for a FetchS.
        let invs = m
            .drain_notices(CoreId(0))
            .into_iter()
            .filter(|n| matches!(n.kind, NoticeKind::Invalidated { .. }))
            .count();
        assert_eq!(invs, 0);
        assert!(!m.has_ownership(CoreId(0), line(3)));
        assert!(m.stats().per_bank.iter().map(|b| b.gets).sum::<u64>() >= 1);
    }

    #[test]
    fn quiescent_after_all_events_drain() {
        let mut m = sys(2);
        let _ = m.issue_load(CoreId(0), line(1), 0, 64, 0).unwrap();
        assert!(!m.quiescent());
        m.advance(10_000, &mut NullTracer);
        assert!(m.quiescent());
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut m = sys(4);
            let mut events = Vec::new();
            for t in 0..400u64 {
                m.advance(t, &mut NullTracer);
                for c in 0..4u8 {
                    for n in m.drain_notices(CoreId(c)) {
                        events.push((c, n.at, format!("{:?}", n.kind)));
                    }
                    if t % 7 == u64::from(c) {
                        let ln = line(u64::from(c) % 3 + 1);
                        let _ = m.issue_load(CoreId(c), ln, t, ln.base(), t);
                    }
                }
            }
            events
        };
        assert_eq!(run(), run());
    }
}
