//! Many-core scaling *forensics*: where does the paper's mechanism go
//! as the machine grows? The `scale` sweep times the engines; this
//! study instruments the simulated machine itself across
//! {8, 64, 128, 256} cores × {fully-connected, 2D mesh} × all five
//! consistency configurations on the radix workload (the trio member
//! whose invalidation storms are the many-core stressor), and writes
//! `results/scalescope_study.json` (schema `sa-bench-scalescope-v1`)
//! with three curves per configuration:
//!
//! * **gate-stall CPI fraction** — Σ per-core retire-gate-closed cycles
//!   over `cycles × cores`: how much of the machine's time the SLF/SoS
//!   gate eats as sharing fans out;
//! * **blame-matrix density and row concentration** — from a
//!   forensics-traced run: what fraction of (victim, cause) pairs ever
//!   fire, and how concentrated the victim rows are (the max row's
//!   share of all blamed cycles) — dense + flat means diffuse pain,
//!   sparse + concentrated means a few victim cores eat the storms;
//! * **invalidation-storm fan-out** — the NoC scope's maximum per-line
//!   interval fan-out, the topology-sensitive signal (a mesh spreads
//!   the same storm over more hops but not fewer invalidations).
//!
//! Each (cores, topology) point also carries one parallel-engine run's
//! sa-scalescope epoch/barrier telemetry (baseline configuration), so
//! the study links *simulated* scaling behaviour to *simulator* scaling
//! behaviour in one artifact.
//!
//! Usage: `scalestudy [--scale N] [--seed N] [--only MODEL]
//! [--threads N] [--quick] [--out PATH]` (default scale 800 — long
//! enough for radix's scatter phase to drive real invalidation storms
//! at 128+ cores; default output `results/scalescope_study.json`).
//! `--quick` runs the single 8-core fully-connected baseline cell (the
//! CI smoke); `--only` filters to one consistency configuration.

use std::process::exit;

use sa_bench::cli::{self, Arity, Flag, Spec};
use sa_forensics::{Forensics, Summary};
use sa_isa::ConsistencyModel;
use sa_metrics::JsonWriter;
use sa_sim::{EngineMode, Multicore, NocStats, ParallelScope, Report, SimConfig, Topology};

/// The pinned workload: radix's scatter phase is the invalidation-storm
/// generator the many-core study exists to watch.
const WORKLOAD: &str = "radix";

/// Core counts swept; 8 anchors against the paper's configuration.
const CORES: [usize; 4] = [8, 64, 128, 256];

/// The widest rectangular mesh for `n` cores (same rule as `scale`).
fn mesh_width(n: usize) -> usize {
    (1..=n)
        .rev()
        .find(|w| n.is_multiple_of(*w) && w * w <= n * 2)
        .expect("every pinned core count has a rectangular mesh")
}

/// One traced cell's distilled measurements.
struct Cell {
    model: ConsistencyModel,
    cores: usize,
    topology: String,
    cycles: u64,
    gate_stall_fraction: f64,
    gate_cycles: u64,
    squashes: u64,
    blame_cycles: u64,
    blame_density: f64,
    blame_row_concentration: f64,
    storm_max_fanout: u64,
    storm_count: usize,
    noc: NocStats,
}

/// Fraction of blame-matrix cells (n victims × n+1 causes) that ever
/// fired, and the largest victim row's share of all blamed cycles.
fn blame_shape(s: &Summary) -> (f64, f64, u64) {
    let n = s.blame.n_cores();
    let mut nonzero = 0usize;
    let mut total = 0u64;
    let mut max_row = 0u64;
    for victim in 0..n {
        for by in (0..n).map(Some).chain([None]) {
            if s.blame.counts(victim, by) > 0 || s.blame.cycles(victim, by) > 0 {
                nonzero += 1;
            }
        }
        let row = s.blame.row_cycles(victim);
        total += row;
        max_row = max_row.max(row);
    }
    (
        nonzero as f64 / (n * (n + 1)) as f64,
        max_row as f64 / total.max(1) as f64,
        total,
    )
}

fn main() {
    const EXTRAS: &[Flag] = &[
        Flag {
            name: "--threads",
            arity: Arity::One,
            help: "shard threads for the parallel telemetry runs (default 4)",
        },
        Flag {
            name: "--quick",
            arity: Arity::Switch,
            help: "single 8-core fc baseline cell (CI smoke)",
        },
    ];
    let args = cli::parse(&Spec {
        default_scale: Some(800),
        default_out: Some("results/scalescope_study.json"),
        extras: EXTRAS,
        ..Spec::new(
            "scalestudy",
            "many-core scaling forensics: gate stalls, blame shape, storms",
        )
    });
    let opts = args.opts.clone();
    let out_path = opts.out.clone().expect("spec supplies a default --out");
    let threads: usize = args.parsed("--threads").unwrap_or(4).max(2);
    let quick = args.switch("--quick");

    let models: Vec<ConsistencyModel> = match opts.only.as_deref() {
        None if quick => vec![ConsistencyModel::Ibm370SlfSosKey],
        None => ConsistencyModel::ALL.to_vec(),
        Some(o) => match ConsistencyModel::ALL.iter().find(|m| m.to_string() == o) {
            Some(m) => vec![*m],
            None => {
                let names: Vec<String> = ConsistencyModel::ALL
                    .iter()
                    .map(|m| m.to_string())
                    .collect();
                eprintln!("scalestudy: --only {o:?} is not one of {names:?}");
                exit(2);
            }
        },
    };
    let core_counts: &[usize] = if quick { &CORES[..1] } else { &CORES };

    let w = sa_workloads::by_name(WORKLOAD).expect("radix is pinned");
    let budget = (opts.scale as u64).saturating_mul(2_000).max(10_000_000);

    let mut cells: Vec<Cell> = Vec::new();
    let mut parallel_runs: Vec<(usize, String, ParallelScope)> = Vec::new();

    for &n_cores in core_counts {
        let traces = w.generate_cached(n_cores, opts.scale, opts.seed);
        let topos: Vec<Topology> = if quick {
            vec![Topology::FullyConnected]
        } else {
            vec![
                Topology::FullyConnected,
                Topology::Mesh2D {
                    width: mesh_width(n_cores),
                },
            ]
        };
        for topo in topos {
            // One parallel-engine run per (cores, topology) point at the
            // baseline configuration: the simulator-side scaling story.
            {
                let cfg = SimConfig::default()
                    .with_model(ConsistencyModel::Ibm370SlfSosKey)
                    .with_cores(n_cores)
                    .with_topology(topo)
                    .with_engine(EngineMode::Parallel { threads });
                let mut sim = Multicore::new(cfg, traces.clone());
                sim.run(budget)
                    .unwrap_or_else(|e| panic!("parallel x{n_cores} {topo}: {e}"));
                let scope = sim
                    .scalescope()
                    .cloned()
                    .expect("parallel runs record a scope");
                parallel_runs.push((n_cores, topo.to_string(), scope));
            }
            for &model in &models {
                let cfg = SimConfig::default()
                    .with_model(model)
                    .with_cores(n_cores)
                    .with_topology(topo);
                // The traced run feeds the forensics analyzer (blame
                // matrix) and leaves the NoC scope on the memory system.
                let mut sim = Multicore::with_tracer(cfg, traces.clone(), Forensics::new(n_cores));
                let report: Report = sim
                    .run(budget)
                    .unwrap_or_else(|e| panic!("{model} x{n_cores} {topo}: {e}"));
                let noc = sim.noc_stats();
                let summary = sim.into_tracer().finish(report.cycles);

                let gate_cycles: u64 = report.per_core.iter().map(|c| c.gate_closed_cycles).sum();
                let gate_stall_fraction =
                    gate_cycles as f64 / (report.cycles * n_cores as u64).max(1) as f64;
                let (blame_density, blame_row_concentration, blame_cycles) = blame_shape(&summary);
                let cell = Cell {
                    model,
                    cores: n_cores,
                    topology: topo.to_string(),
                    cycles: report.cycles,
                    gate_stall_fraction,
                    gate_cycles,
                    squashes: summary.squashes(),
                    blame_cycles,
                    blame_density,
                    blame_row_concentration,
                    storm_max_fanout: noc.max_storm_fanout(),
                    storm_count: noc.storms.len(),
                    noc,
                };
                eprintln!(
                    "{model:>15} x{cores:<3} {topo:<8} {cycles:>6} cyc  gate {gate:>6.2}%  \
                     blame density {den:.3} conc {conc:.2}  storms {st} (max fan-out {fo})",
                    cores = cell.cores,
                    topo = cell.topology,
                    cycles = cell.cycles,
                    gate = cell.gate_stall_fraction * 100.0,
                    den = cell.blame_density,
                    conc = cell.blame_row_concentration,
                    st = cell.storm_count,
                    fo = cell.storm_max_fanout,
                );
                cells.push(cell);
            }
        }
    }

    let mut j = JsonWriter::new();
    cli::schema_header(&mut j, "sa-bench-scalescope-v1", &opts)
        .field_str("workload", WORKLOAD)
        .field_uint("threads", threads as u64)
        .field_bool("quick", quick)
        .key("cells")
        .begin_array();
    for c in &cells {
        j.begin_object()
            .field_str("model", &c.model.to_string())
            .field_uint("cores", c.cores as u64)
            .field_str("topology", &c.topology)
            .field_uint("cycles", c.cycles)
            .field_float("gate_stall_fraction", c.gate_stall_fraction)
            .field_uint("gate_cycles", c.gate_cycles)
            .field_uint("squashes", c.squashes)
            .field_uint("blame_cycles", c.blame_cycles)
            .field_float("blame_density", c.blame_density)
            .field_float("blame_row_concentration", c.blame_row_concentration)
            .field_uint("storm_max_fanout", c.storm_max_fanout)
            .field_uint("storm_count", c.storm_count as u64)
            .key("noc");
        c.noc.write_json(&mut j);
        j.end_object();
    }
    j.end_array();

    // The curves the write-up plots: one series per (model, topology),
    // points ordered by core count.
    j.key("curves").begin_object();
    for (key, f) in [
        (
            "gate_stall_fraction",
            (|c: &Cell| c.gate_stall_fraction) as fn(&Cell) -> f64,
        ),
        ("blame_density", |c: &Cell| c.blame_density),
        ("blame_row_concentration", |c: &Cell| {
            c.blame_row_concentration
        }),
        ("storm_max_fanout", |c: &Cell| c.storm_max_fanout as f64),
    ] {
        j.key(key).begin_array();
        for &model in &models {
            for topo in ["fc", "mesh"] {
                let series: Vec<&Cell> = cells
                    .iter()
                    .filter(|c| c.model == model && c.topology.starts_with(topo))
                    .collect();
                if series.is_empty() {
                    continue;
                }
                j.begin_object()
                    .field_str("model", &model.to_string())
                    .field_str("topology", topo)
                    .key("points")
                    .begin_array();
                for c in &series {
                    j.begin_object()
                        .field_uint("cores", c.cores as u64)
                        .field_float("value", f(c))
                        .end_object();
                }
                j.end_array().end_object();
            }
        }
        j.end_array();
    }
    j.end_object();

    j.key("parallel").begin_array();
    for (cores, topo, scope) in &parallel_runs {
        j.begin_object()
            .field_uint("cores", *cores as u64)
            .field_str("topology", topo)
            .key("scalescope");
        scope.write_json(&mut j);
        j.end_object();
    }
    j.end_array().end_object();

    let body = j.finish();
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {dir:?}: {e}"));
        }
    }
    std::fs::write(&out_path, format!("{body}\n"))
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    // The one stdout line: the baseline gate-stall trend, smallest to
    // largest machine — the study's headline curve.
    let base: Vec<&Cell> = cells
        .iter()
        .filter(|c| c.model == ConsistencyModel::Ibm370SlfSosKey && c.topology == "fc")
        .collect();
    let trend: Vec<String> = base
        .iter()
        .map(|c| format!("x{}:{:.2}%", c.cores, c.gate_stall_fraction * 100.0))
        .collect();
    println!(
        "gate-stall fraction (370-SLFSoS-key, fc): {}",
        trend.join(" -> ")
    );
}
