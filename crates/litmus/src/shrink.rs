//! Greedy test-case minimization for fuzzer counterexamples.
//!
//! Given a failing program and a caller-supplied reproduction predicate
//! (typically "re-run the simulator and the oracle still disagrees"),
//! [`shrink`] repeatedly tries structural simplifications — drop a whole
//! thread, drop a single operation, reduce a stored value to 1 — and
//! keeps any that still reproduce, until a fixpoint. Every accepted step
//! strictly decreases the pair (total ops, sum of stored values), so the
//! loop terminates; the result is locally minimal (no single remaining
//! simplification reproduces), not globally minimal.

use crate::ast::{LOp, LitmusTest};

/// One candidate simplification of `test`, or `None` when `idx` is out of
/// range. Candidates are ordered biggest-step-first: thread removals,
/// then op removals, then value reductions.
fn candidate(test: &LitmusTest, idx: usize) -> Option<LitmusTest> {
    let n_threads = test.threads.len();
    // Thread removals (only while >1 thread remains).
    let thread_cands = if n_threads > 1 { n_threads } else { 0 };
    if idx < thread_cands {
        let mut threads = test.threads.clone();
        threads.remove(idx);
        return Some(LitmusTest::new(test.name, threads));
    }
    let mut idx = idx - thread_cands;
    // Single-op removals (never below one op total); a thread emptied by
    // the removal is dropped.
    if test.total_ops() > 1 {
        for (t, ops) in test.threads.iter().enumerate() {
            if idx < ops.len() {
                let mut threads = test.threads.clone();
                threads[t].remove(idx);
                if threads[t].is_empty() {
                    threads.remove(t);
                }
                return Some(LitmusTest::new(test.name, threads));
            }
            idx -= ops.len();
        }
    }
    // Value reductions: any stored value > 1 becomes 1.
    for (t, ops) in test.threads.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            let reduced = match *op {
                LOp::St(v, val) if val > 1 => Some(LOp::St(v, 1)),
                LOp::Rmw(v, val) if val > 1 => Some(LOp::Rmw(v, 1)),
                _ => None,
            };
            if let Some(new_op) = reduced {
                if idx == 0 {
                    let mut threads = test.threads.clone();
                    threads[t][i] = new_op;
                    return Some(LitmusTest::new(test.name, threads));
                }
                idx -= 1;
            }
        }
    }
    None
}

/// Minimizes `test` under `repro`. The caller guarantees `repro(test)`
/// holds on entry; the returned program still satisfies it and admits no
/// further single-step simplification that does.
pub fn shrink(test: &LitmusTest, mut repro: impl FnMut(&LitmusTest) -> bool) -> LitmusTest {
    let mut current = test.clone();
    loop {
        let mut advanced = false;
        let mut idx = 0;
        while let Some(cand) = candidate(&current, idx) {
            if repro(&cand) {
                current = cand;
                advanced = true;
                // Restart from the biggest simplifications on the new,
                // smaller program.
                idx = 0;
            } else {
                idx += 1;
            }
        }
        if !advanced {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Var, X, Y, Z};

    #[test]
    fn shrinks_to_the_reproducing_core() {
        // Repro: program contains `st x,_` and `ld y` somewhere. All the
        // noise (thread 2, fences, the z store, value 2) must go.
        let t = LitmusTest::new(
            "noisy",
            vec![
                vec![LOp::St(Z, 2), LOp::St(X, 2), LOp::Fence, LOp::Ld(Y)],
                vec![LOp::St(Y, 2), LOp::Ld(Z)],
                vec![LOp::Fence, LOp::Ld(X)],
            ],
        );
        let repro = |c: &LitmusTest| {
            let ops: Vec<&LOp> = c.threads.iter().flatten().collect();
            ops.iter().any(|o| matches!(o, LOp::St(v, _) if *v == X))
                && ops.iter().any(|o| matches!(o, LOp::Ld(v) if *v == Y))
        };
        assert!(repro(&t));
        let s = shrink(&t, repro);
        assert!(repro(&s));
        assert_eq!(s.total_ops(), 2, "exactly the two required ops: {s:?}");
        assert_eq!(s.threads.len(), 1);
        // Value reduction fired too.
        assert!(s
            .threads
            .iter()
            .flatten()
            .all(|o| !matches!(o, LOp::St(_, v) if *v > 1)));
    }

    #[test]
    fn preserves_a_value_the_repro_depends_on() {
        let t = LitmusTest::new(
            "valdep",
            vec![vec![LOp::St(X, 2), LOp::St(Y, 2)], vec![LOp::Ld(X)]],
        );
        let repro = |c: &LitmusTest| {
            c.threads
                .iter()
                .flatten()
                .any(|o| matches!(o, LOp::St(v, 2) if *v == X))
        };
        let s = shrink(&t, repro);
        assert_eq!(s.total_ops(), 1);
        assert_eq!(s.threads[0], vec![LOp::St(X, 2)], "value 2 must survive");
    }

    #[test]
    fn fixpoint_on_already_minimal_input() {
        let t = LitmusTest::new("min", vec![vec![LOp::Ld(Var(0))]]);
        let s = shrink(&t, |_| true);
        assert_eq!(s.threads, t.threads);
    }

    #[test]
    fn never_returns_non_reproducing_program() {
        // Adversarial predicate: only the original reproduces.
        let t = LitmusTest::new(
            "stubborn",
            vec![vec![LOp::St(X, 1), LOp::Ld(Y)], vec![LOp::St(Y, 1)]],
        );
        let orig = t.clone();
        let s = shrink(&t, |c: &LitmusTest| c.threads == orig.threads);
        assert_eq!(s.threads, orig.threads);
    }
}
