//! Process-global memo of generated traces.
//!
//! Sweeps run the *same* workload trace under several consistency
//! models: the (spec, cores, length, seed) tuple fully determines the
//! generated instruction stream, so re-running the generator per model
//! is pure waste — at sweep scale the generator re-decodes tens of
//! millions of macro-op slots that were already decoded for the
//! previous model. [`WorkloadSpec::generate_cached`] decodes each
//! distinct tuple once and hands out clones afterwards.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use sa_isa::Trace;

use crate::spec::WorkloadSpec;

/// Entries kept before the cache is wholesale cleared (a sweep touches
/// well under this many distinct tuples; the bound only guards callers
/// that stream unique specs).
const MAX_ENTRIES: usize = 64;

/// Cache key: (spec fingerprint, cores, instructions per core, seed).
type Key = (u64, usize, usize, u64);

/// One entry: the spec that generated the traces, plus the traces.
type Entry = (WorkloadSpec, Vec<Trace>);

/// Cached per-core traces keyed by the generation tuple. The spec
/// itself is stored alongside and compared on every hit, so a
/// fingerprint collision degrades to a regeneration, never a wrong
/// trace.
static CACHE: Mutex<Option<HashMap<Key, Entry>>> = Mutex::new(None);

/// A stable fingerprint over every generator-visible field of the spec
/// (floats hashed by bit pattern; the `paper` reference block is
/// excluded — it never influences generation).
fn fingerprint(spec: &WorkloadSpec) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    spec.name.hash(&mut h);
    (spec.suite == crate::Suite::Parallel).hash(&mut h);
    for f in [
        spec.loads_pct,
        spec.forwarded_pct,
        spec.stores_pct,
        spec.branches_pct,
        spec.branch_noise,
        spec.locality,
        spec.shared_access_frac,
        spec.shared_write_frac,
        spec.sync_contention,
        spec.store_burst,
        spec.late_store_addr,
        spec.set_conflict,
        spec.fp_frac,
    ] {
        f.to_bits().hash(&mut h);
    }
    spec.private_ws_lines.hash(&mut h);
    spec.shared_ws_lines.hash(&mut h);
    h.finish()
}

/// Generator-visible equality: everything [`fingerprint`] covers.
fn same_generation_inputs(a: &WorkloadSpec, b: &WorkloadSpec) -> bool {
    // `paper` is reference-only metadata; two specs differing only there
    // generate identical traces and may share a cache entry.
    a.name == b.name
        && a.suite == b.suite
        && a.loads_pct == b.loads_pct
        && a.forwarded_pct == b.forwarded_pct
        && a.stores_pct == b.stores_pct
        && a.branches_pct == b.branches_pct
        && a.branch_noise == b.branch_noise
        && a.private_ws_lines == b.private_ws_lines
        && a.locality == b.locality
        && a.shared_ws_lines == b.shared_ws_lines
        && a.shared_access_frac == b.shared_access_frac
        && a.shared_write_frac == b.shared_write_frac
        && a.sync_contention == b.sync_contention
        && a.store_burst == b.store_burst
        && a.late_store_addr == b.late_store_addr
        && a.set_conflict == b.set_conflict
        && a.fp_frac == b.fp_frac
}

/// Returns the traces for `(spec, n_cores, instrs, seed)`, generating
/// them on the first request and cloning the memo afterwards. Exactly
/// equivalent to [`WorkloadSpec::generate`] call for call.
pub(crate) fn generate_cached(
    spec: &WorkloadSpec,
    n_cores: usize,
    instrs_per_core: usize,
    seed: u64,
) -> Vec<Trace> {
    let key = (fingerprint(spec), n_cores, instrs_per_core, seed);
    {
        let guard = CACHE.lock().expect("trace cache poisoned");
        if let Some(map) = guard.as_ref() {
            if let Some((cached_spec, traces)) = map.get(&key) {
                if same_generation_inputs(cached_spec, spec) {
                    return traces.clone();
                }
            }
        }
    }
    // Generate outside the lock: the generator is the expensive part,
    // and concurrent first requests for the same tuple are harmless
    // (both produce the identical deterministic result).
    let traces = spec.generate(n_cores, instrs_per_core, seed);
    let mut guard = CACHE.lock().expect("trace cache poisoned");
    let map = guard.get_or_insert_with(HashMap::new);
    if map.len() >= MAX_ENTRIES {
        map.clear();
    }
    map.insert(key, (spec.clone(), traces.clone()));
    traces
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Suite;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::base("cache-test", Suite::Parallel, 25.0, 4.0)
    }

    #[test]
    fn cached_matches_uncached() {
        let s = spec();
        assert_eq!(s.generate_cached(2, 400, 11), s.generate(2, 400, 11));
        // Second request is a pure cache hit and must be identical too.
        assert_eq!(s.generate_cached(2, 400, 11), s.generate(2, 400, 11));
    }

    #[test]
    fn distinct_tuples_do_not_alias() {
        let s = spec();
        assert_ne!(s.generate_cached(2, 300, 1), s.generate_cached(2, 300, 2));
        assert_ne!(
            s.generate_cached(2, 300, 3),
            s.generate_cached(2, 301, 3),
            "length is part of the key"
        );
    }

    #[test]
    fn spec_fields_are_part_of_the_key() {
        let a = spec();
        let mut b = spec();
        b.locality = 0.5;
        assert_ne!(a.generate_cached(1, 300, 5), b.generate_cached(1, 300, 5));
    }

    #[test]
    fn paper_reference_block_is_not_part_of_the_key() {
        let a = spec();
        let mut b = spec();
        b.paper.gate_stall_pct = 99.0;
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert!(same_generation_inputs(&a, &b));
    }
}
