//! Model comparison — the role of the authors' released
//! `ConsistencyChecker` tool: report the behaviors a program exhibits
//! under x86 that a store-atomic 370 machine can never produce.

use crate::ast::LitmusTest;
use crate::machine::{explore, ForwardPolicy};
use crate::outcome::{Outcome, OutcomeSet};

/// Result of comparing one program under both models.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The program's name.
    pub name: &'static str,
    /// All outcomes under x86-TSO.
    pub x86: OutcomeSet,
    /// All outcomes under the store-atomic 370 model.
    pub ibm370: OutcomeSet,
    /// Outcomes observable on x86 but impossible under 370 — the
    /// *non-store-atomic behaviors*.
    pub non_store_atomic: Vec<Outcome>,
}

impl Comparison {
    /// `true` when the program exhibits non-store-atomic behavior.
    pub fn has_violations(&self) -> bool {
        !self.non_store_atomic.is_empty()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}: {} outcomes under x86, {} under 370\n",
            self.name,
            self.x86.len(),
            self.ibm370.len()
        );
        if self.non_store_atomic.is_empty() {
            s.push_str("  no non-store-atomic behavior\n");
        } else {
            s.push_str("  non-store-atomic outcomes (x86 only):\n");
            for o in &self.non_store_atomic {
                s.push_str(&format!("    {o}\n"));
            }
        }
        s
    }
}

/// Exhaustively compares `test` under both models.
pub fn compare(test: &LitmusTest) -> Comparison {
    let x86 = explore(test, ForwardPolicy::X86);
    let ibm370 = explore(test, ForwardPolicy::StoreAtomic370);
    let non_store_atomic = x86.difference(&ibm370).into_iter().cloned().collect();
    Comparison {
        name: test.name,
        x86,
        ibm370,
        non_store_atomic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn n6_shows_violations() {
        let c = compare(&suite::n6().test);
        assert!(c.has_violations());
        assert!(c.render().contains("non-store-atomic outcomes"));
    }

    #[test]
    fn mp_shows_none() {
        // mp has no store-to-load forwarding: identical outcome sets.
        let c = compare(&suite::mp().test);
        assert!(!c.has_violations());
        assert_eq!(c.x86.len(), c.ibm370.len());
        assert!(c.render().contains("no non-store-atomic behavior"));
    }

    #[test]
    fn fig5_difference_is_exactly_the_disagreement() {
        let c = compare(&suite::fig5().test);
        assert!(c.has_violations());
        for o in &c.non_store_atomic {
            // Every extra outcome has both cross loads reading old values.
            assert_eq!(o.regs[0][1], 0);
            assert_eq!(o.regs[1][1], 0);
        }
    }
}
