//! The trace generator.
//!
//! Emits a per-core instruction stream whose mix matches a
//! [`WorkloadSpec`]. Static instruction sites get stable PCs so the
//! branch predictor and StoreSet predictor see realistic re-use.

use sa_isa::rng::Xoshiro256;
use sa_isa::{Addr, ExecUnit, Pc, Reg, Trace, TraceBuilder, LINE_BYTES};

use crate::spec::{Suite, WorkloadSpec};

/// Per-core address-space layout (all regions line-aligned, disjoint).
const PRIVATE_REGION: Addr = 0x1000_0000;
const PRIVATE_STRIDE: Addr = 0x0400_0000; // 64 MB per core
const STACK_REGION: Addr = 0x7000_0000;
const SHARED_REGION: Addr = 0x8000_0000;
const HOT_SYNC_LINE: Addr = 0x9000_0000;
const HOT_DATA_LINE: Addr = 0x9000_0040;

/// Number of distinct stack slots the forwarding idiom cycles through.
const STACK_SLOTS: u64 = 64;

/// Streaming-store cursor step (fresh line every store).
const BURST_STRIDE: Addr = LINE_BYTES;

/// Distance in instructions between a forwarding store and its load.
/// Real stack frames read their arguments throughout the callee body, so
/// the distance varies widely; the store is still comfortably inside the
/// 56-entry SQ/SB when the load executes, but often already written to
/// the L1 by the time the load *retires* — which is why the retire gate
/// closes only for a minority of SLF loads (§VI-A).
const FWD_DIST_MIN: usize = 4;
/// See [`FWD_DIST_MIN`].
const FWD_DIST_MAX: usize = 48;

/// Generates one core's trace for a workload.
#[derive(Debug)]
pub struct TraceGen<'a> {
    spec: &'a WorkloadSpec,
    core: usize,
    rng: Xoshiro256,
    /// Sequential-walk cursor within the private working set.
    cursor: u64,
    /// Streaming-store cursor.
    burst_cursor: Addr,
    /// Round-robin destination registers.
    next_reg: u8,
    /// Rotating stack slot for forwarding pairs.
    stack_slot: u64,
    /// Cursor over the set-conflicting stride.
    conflict_cursor: u64,
}

impl<'a> TraceGen<'a> {
    /// Creates the generator for `core` with a deterministic seed.
    pub fn new(spec: &'a WorkloadSpec, core: usize, seed: u64) -> TraceGen<'a> {
        TraceGen {
            spec,
            core,
            rng: Xoshiro256::seed_from_u64(
                seed ^ (core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            cursor: 0,
            burst_cursor: PRIVATE_REGION + core as Addr * PRIVATE_STRIDE + 0x0200_0000,
            next_reg: 0,
            stack_slot: 0,
            conflict_cursor: 0,
        }
    }

    fn reg(&mut self) -> Reg {
        // Registers 0..=15 rotate as destinations; higher registers are
        // reserved for long-lived values.
        let r = Reg::new(self.next_reg);
        self.next_reg = (self.next_reg + 1) % 16;
        r
    }

    fn private_base(&self) -> Addr {
        PRIVATE_REGION + self.core as Addr * PRIVATE_STRIDE
    }

    fn stack_base(&self) -> Addr {
        STACK_REGION + self.core as Addr * 0x1_0000
    }

    /// A private data address: sequential walk with probability
    /// `locality`, random jump within the working set otherwise; a
    /// `set_conflict` share walks a stride that maps every access into
    /// the same L2 set, so fresh lines evict each other (505.mcf).
    /// Returns the address and whether it came from the sequential walk
    /// (sequential accesses share one static PC so the stride prefetcher
    /// can train, as a real loop would).
    fn private_addr(&mut self) -> (Addr, bool) {
        let ws = self.spec.private_ws_lines;
        if self.spec.set_conflict > 0.0 && self.rng.gen_f64() < self.spec.set_conflict {
            // 256 L2 sets x 64 B lines = 16 KB conflict stride.
            const CONFLICT_STRIDE: Addr = 256 * LINE_BYTES;
            let span = (ws / 256).max(16);
            self.conflict_cursor = (self.conflict_cursor + 1) % span;
            return (
                self.private_base() + self.conflict_cursor * CONFLICT_STRIDE,
                false,
            );
        }
        if self.rng.gen_f64() < self.spec.locality {
            self.cursor = (self.cursor + 1) % (ws * 8);
            (
                self.private_base() + (self.cursor / 8) * LINE_BYTES + (self.cursor % 8) * 8,
                true,
            )
        } else {
            self.cursor = self.rng.gen_range_u64(0, ws * 8);
            (
                self.private_base() + (self.cursor / 8) * LINE_BYTES + (self.cursor % 8) * 8,
                false,
            )
        }
    }

    /// A shared data address.
    fn shared_addr(&mut self) -> Addr {
        let line = self.rng.gen_range_u64(0, self.spec.shared_ws_lines.max(1));
        let word = self.rng.gen_range_u64(0, 8);
        SHARED_REGION + line * LINE_BYTES + word * 8
    }

    /// Returns `(address, sequential)`.
    fn mem_addr(&mut self) -> (Addr, bool) {
        if self.spec.suite == Suite::Parallel && self.rng.gen_f64() < self.spec.shared_access_frac {
            (self.shared_addr(), false)
        } else {
            self.private_addr()
        }
    }

    /// Emits the whole trace.
    ///
    /// Instruction fractions are exact in expectation. A forwarding pair
    /// occupies two slots — its store now and its load `FWD_DIST_MIN..=
    /// FWD_DIST_MAX` slots later (several pairs overlap, as real stack
    /// frames do) — so per eligible slot a pair starts with probability
    /// `F / (100 - F)` and the remaining categories are drawn with their
    /// native widths over the `100 - 2F` free share.
    pub fn generate(mut self, instrs: usize) -> Trace {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut b = TraceBuilder::new();
        // (due position, stack slot address) of pending forwarded loads.
        let mut pending: BinaryHeap<Reverse<(usize, Addr)>> = BinaryHeap::new();
        let s = self.spec;
        let f = s.forwarded_pct;
        let free_w = 100.0 - 2.0 * f;
        // Per non-due slot, a pair starts with probability q such that
        // the steady-state store share q(1-q/(1+q)) equals F/100:
        // q = F / (100 - F).
        let q_start = if f > 0.0 { f / (100.0 - f) } else { 0.0 };
        let load_w = s.loads_pct - f;
        let store_w = (s.stores_pct - f).max(0.0);
        let branch_w = s.branches_pct;
        while b.len() < instrs {
            if let Some(&Reverse((due, slot))) = pending.peek() {
                if due <= b.len() {
                    pending.pop();
                    self.emit_forwarded_load(&mut b, slot);
                    continue;
                }
            }
            if s.sync_contention > 0.0 && self.rng.gen_f64() < s.sync_contention {
                self.emit_sync_idiom(&mut b);
                continue;
            }
            if q_start > 0.0 && self.rng.gen_f64() < q_start {
                let slot = self.emit_forwarding_store(&mut b);
                let due = b.len() + self.rng.gen_range_usize(FWD_DIST_MIN, FWD_DIST_MAX + 1);
                pending.push(Reverse((due, slot)));
                continue;
            }
            let roll = self.rng.gen_f64() * free_w;
            if roll < load_w {
                self.emit_load(&mut b);
            } else if roll < load_w + store_w {
                self.emit_store(&mut b);
            } else if roll < load_w + store_w + branch_w {
                self.emit_branch(&mut b);
            } else {
                self.emit_alu(&mut b);
            }
        }
        b.build()
    }

    /// The stack write of a write/read idiom behind Table IV's
    /// "Forwarded" column (barnes' recursive `walksub` being the extreme
    /// case). Returns the slot address the paired load must read.
    fn emit_forwarding_store(&mut self, b: &mut TraceBuilder) -> Addr {
        let slot = self.stack_base() + (self.stack_slot % STACK_SLOTS) * 8;
        self.stack_slot += 1;
        let site = self.stack_slot % 4;
        b.pin_pc(Pc(0x100 + site * 8));
        b.store_imm(slot, u64::from(self.rng.next_u32()));
        b.unpin_pc();
        slot
    }

    /// The read half of the idiom; the store is still in the SQ/SB, so
    /// this load forwards.
    fn emit_forwarded_load(&mut self, b: &mut TraceBuilder, slot: Addr) {
        let site = self.stack_slot % 4;
        let dst = self.reg();
        b.pin_pc(Pc(0x200 + site * 8));
        b.load(dst, slot);
        b.unpin_pc();
    }

    fn emit_load(&mut self, b: &mut TraceBuilder) {
        let (addr, sequential) = self.mem_addr();
        let dst = self.reg();
        // The sequential walk is one static load in a loop; random
        // accesses spread over several sites.
        let site = if sequential {
            0
        } else {
            1 + self.rng.gen_range_u64(0, 7)
        };
        b.pin_pc(Pc(0x300 + site * 8));
        b.load(dst, addr);
        b.unpin_pc();
    }

    fn emit_store(&mut self, b: &mut TraceBuilder) {
        let (addr, sequential) = if self.rng.gen_f64() < self.spec.store_burst {
            self.burst_cursor += BURST_STRIDE;
            (self.burst_cursor, true)
        } else {
            self.mem_addr()
        };
        let site = if sequential {
            0
        } else {
            1 + self.rng.gen_range_u64(0, 7)
        };
        if self.rng.gen_f64() < self.spec.late_store_addr {
            // Address depends on a long-latency producer, and a younger
            // load may alias it: the D-speculation idiom the StoreSet
            // predictor exists for (pointer-chased writes).
            let dep = Reg::new(20);
            b.alu(ExecUnit::IntDiv, Some(dep), [None, None]);
            b.pin_pc(Pc(0x400 + site * 8));
            b.store_imm_dep(addr, u64::from(self.rng.next_u32()), dep);
            b.unpin_pc();
            self.emit_alu(b);
            let dst = self.reg();
            b.pin_pc(Pc(0x480 + site * 8));
            b.load(dst, addr); // may-alias load behind the opaque store
            b.unpin_pc();
        } else {
            b.pin_pc(Pc(0x400 + site * 8));
            b.store_imm(addr, u64::from(self.rng.next_u32()));
            b.unpin_pc();
        }
    }

    fn emit_branch(&mut self, b: &mut TraceBuilder) {
        let site = self.rng.gen_range_u64(0, 16);
        let noisy = (site as f64 / 16.0) < self.spec.branch_noise;
        let taken = if noisy {
            self.rng.gen_bool()
        } else {
            // Biased-taken loop branch: ~6% fall-through.
            self.rng.gen_f64() < 0.94
        };
        b.pin_pc(Pc(0x500 + site * 8));
        b.branch(taken, None);
        b.unpin_pc();
    }

    fn emit_alu(&mut self, b: &mut TraceBuilder) {
        let unit = if self.rng.gen_f64() < self.spec.fp_frac {
            if self.rng.gen_f64() < 0.1 {
                ExecUnit::FpDiv
            } else {
                ExecUnit::FpAdd
            }
        } else if self.rng.gen_f64() < 0.05 {
            ExecUnit::IntMul
        } else {
            ExecUnit::Int
        };
        let src = Reg::new(self.rng.gen_range_u64(0, 16) as u8);
        let dst = self.reg();
        b.alu(unit, Some(dst), [Some(src), None]);
    }

    /// The x264 `pthread_cond_wait` idiom (§VI-A): a store-to-load
    /// forwarding on a highly contended synchronization line followed by
    /// a dependent load of shared data. Every core hammers the same two
    /// lines, so invalidations land inside the window of vulnerability.
    fn emit_sync_idiom(&mut self, b: &mut TraceBuilder) {
        let dst1 = self.reg();
        let dst2 = self.reg();
        b.pin_pc(Pc(0x600));
        b.store_imm(HOT_SYNC_LINE, self.core as u64 + 1);
        b.unpin_pc();
        b.pin_pc(Pc(0x608));
        b.load(dst1, HOT_SYNC_LINE); // SLF load on the contended line
        b.unpin_pc();
        b.pin_pc(Pc(0x610));
        b.load(dst2, HOT_DATA_LINE); // SA-speculative under the gate
        b.unpin_pc();
        // The protected data changes occasionally (not every wakeup).
        if self.stack_slot.is_multiple_of(8) {
            b.pin_pc(Pc(0x618));
            b.store_imm(HOT_DATA_LINE, self.core as u64);
            b.unpin_pc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_isa::Op;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::base("test", Suite::Parallel, 25.0, 4.0)
    }

    fn mix_of(trace: &Trace) -> (f64, f64, f64) {
        let n = trace.len() as f64;
        (
            100.0 * trace.count_matching(Op::is_load) as f64 / n,
            100.0 * trace.count_matching(Op::is_store) as f64 / n,
            100.0 * trace.count_matching(Op::is_branch) as f64 / n,
        )
    }

    #[test]
    fn mix_approximates_spec() {
        let s = spec();
        let t = TraceGen::new(&s, 0, 1).generate(20_000);
        let (loads, stores, branches) = mix_of(&t);
        assert!((loads - s.loads_pct).abs() < 2.0, "loads {loads}");
        // Forwarding stores count toward stores_pct.
        assert!((stores - s.stores_pct).abs() < 2.0, "stores {stores}");
        assert!(
            (branches - s.branches_pct).abs() < 2.0,
            "branches {branches}"
        );
    }

    #[test]
    fn forwarding_pairs_share_address() {
        let s = WorkloadSpec::base("fwd", Suite::Spec, 30.0, 15.0);
        let t = TraceGen::new(&s, 0, 1).generate(5_000);
        // Every load from the stack region must be preceded (closely) by
        // a store to the same address.
        let instrs: Vec<_> = t.iter().collect();
        let mut last_store: std::collections::HashMap<Addr, usize> = Default::default();
        let mut pairs = 0;
        for (i, ins) in instrs.iter().enumerate() {
            match ins.op {
                Op::Store { addr, .. } if (STACK_REGION..SHARED_REGION).contains(&addr) => {
                    last_store.insert(addr, i);
                }
                Op::Load { addr, .. } if (STACK_REGION..SHARED_REGION).contains(&addr) => {
                    let st = last_store.get(&addr).copied();
                    assert!(
                        st.is_some_and(|j| i - j <= FWD_DIST_MAX + 4),
                        "stack load at {i} without recent store"
                    );
                    pairs += 1;
                }
                _ => {}
            }
        }
        assert!(pairs > 200, "expected many forwarding pairs, got {pairs}");
    }

    #[test]
    fn private_regions_are_disjoint_across_cores() {
        let s = spec();
        let t0 = TraceGen::new(&s, 0, 1).generate(3_000);
        let t7 = TraceGen::new(&s, 7, 1).generate(3_000);
        let private = |t: &Trace| -> Vec<Addr> {
            t.iter()
                .filter_map(|i| match i.op {
                    Op::Load { addr, .. } | Op::Store { addr, .. }
                        if (PRIVATE_REGION..STACK_REGION).contains(&addr) =>
                    {
                        Some(addr)
                    }
                    _ => None,
                })
                .collect()
        };
        let a0 = private(&t0);
        let a7 = private(&t7);
        assert!(!a0.is_empty() && !a7.is_empty());
        assert!(a0.iter().all(|a| *a < PRIVATE_REGION + PRIVATE_STRIDE));
        assert!(a7.iter().all(|a| *a >= PRIVATE_REGION + 7 * PRIVATE_STRIDE));
    }

    #[test]
    fn sync_idiom_targets_hot_lines() {
        let mut s = spec();
        s.sync_contention = 0.2;
        let t = TraceGen::new(&s, 0, 1).generate(2_000);
        let hot_accesses = t
            .iter()
            .filter(|i| {
                matches!(i.op, Op::Load { addr, .. } | Op::Store { addr, .. }
                    if addr == HOT_SYNC_LINE || addr == HOT_DATA_LINE)
            })
            .count();
        assert!(hot_accesses > 100, "hot line traffic: {hot_accesses}");
    }

    #[test]
    fn spec_suite_never_touches_shared_region() {
        let s = WorkloadSpec::base("seq", Suite::Spec, 25.0, 3.0);
        let t = TraceGen::new(&s, 0, 9).generate(5_000);
        for i in t.iter() {
            if let Op::Load { addr, .. } | Op::Store { addr, .. } = i.op {
                assert!(
                    addr < SHARED_REGION,
                    "sequential workload hit shared {addr:#x}"
                );
            }
        }
    }

    #[test]
    fn burst_stores_stream_to_fresh_lines() {
        let mut s = spec();
        s.store_burst = 1.0;
        s.stores_pct = 30.0;
        let t = TraceGen::new(&s, 0, 1).generate(3_000);
        let mut burst_addrs: Vec<Addr> = t
            .iter()
            .filter_map(|i| match i.op {
                Op::Store { addr, .. }
                    if (PRIVATE_REGION + 0x0200_0000..PRIVATE_REGION + PRIVATE_STRIDE)
                        .contains(&addr) =>
                {
                    Some(addr)
                }
                _ => None,
            })
            .collect();
        let n = burst_addrs.len();
        burst_addrs.dedup();
        assert_eq!(burst_addrs.len(), n, "every burst store hits a fresh line");
        assert!(n > 100);
    }
}
