//! End-to-end service tests for the observability surface added with
//! sa-profile: the live job event stream, the `/profile` wall-time
//! tree, and the latency histograms on `/metrics`.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;

use sa_metrics::JsonValue;
use sa_serve::{ServeConfig, Server};

fn http(port: u16, method: &str, path: &str, body: &str) -> (String, String) {
    let mut s = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("recv");
    let (head, body) = resp.split_once("\r\n\r\n").expect("header split");
    (
        head.lines().next().unwrap_or("").to_string(),
        body.to_string(),
    )
}

/// Extracts the ndjson event lines from a chunked-transfer body.
fn ndjson_lines(chunked: &str) -> Vec<String> {
    chunked
        .lines()
        .filter(|l| l.starts_with('{'))
        .map(|l| l.to_string())
        .collect()
}

/// Submit a checked litmus job, follow `GET /jobs/<id>/events` until the
/// server closes the stream, and confirm the lifecycle arrived in order.
/// Then confirm the same job shows up in the live `/profile` tree and
/// that `/metrics` exports the per-endpoint latency histograms.
#[test]
fn event_stream_follows_job_to_terminal() {
    let server = Server::start(ServeConfig {
        workers: 1,
        acceptors: 1,
        ..ServeConfig::default()
    })
    .expect("start");
    let port = server.port();

    let (status, body) = http(
        port,
        "POST",
        "/jobs",
        r#"{"suite":"sb","models":["x86"],"pads":[[0,0]]}"#,
    );
    assert!(status.contains("202"), "{status}: {body}");
    let id = JsonValue::parse(&body)
        .expect("submit json")
        .get("id")
        .and_then(|i| i.as_u64())
        .expect("id");

    // The stream replays from the first event, so attaching after the
    // submit (or even after completion) still sees the whole lifecycle.
    let mut s = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    write!(s, "GET /jobs/{id}/events HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("stream drains to close");
    let (head, chunked) = resp.split_once("\r\n\r\n").expect("header split");
    assert!(head.contains("200 OK"), "{head}");
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    assert!(head.contains("application/x-ndjson"), "{head}");

    let events = ndjson_lines(chunked);
    assert!(events.len() >= 3, "expected a full lifecycle: {events:?}");
    for (i, ev) in events.iter().enumerate() {
        let v = JsonValue::parse(ev).unwrap_or_else(|e| panic!("bad ndjson {ev}: {e}"));
        assert_eq!(v.get("id").and_then(|x| x.as_u64()), Some(id), "{ev}");
        assert_eq!(
            v.get("seq").and_then(|x| x.as_u64()),
            Some(i as u64),
            "{ev}"
        );
    }
    let all = events.join("\n");
    assert!(all.contains("\"status\":\"queued\""), "{all}");
    assert!(all.contains("\"queue_wait_ns\""), "{all}");
    assert!(all.contains("\"phase\":\"simulate\""), "{all}");
    assert!(
        events.last().unwrap().contains("\"status\":\"done\""),
        "{all}"
    );

    // Streaming an unknown id is a plain 404, not a hung connection.
    let (status, _) = http(port, "GET", "/jobs/999999/events", "");
    assert!(status.contains("404"), "{status}");

    // The finished job's lifecycle spans are visible in the live tree.
    let (status, profile) = http(port, "GET", "/profile", "");
    assert!(status.contains("200"), "{status}");
    let v = JsonValue::parse(&profile).expect("profile json");
    assert!(
        v.get("total_ns").and_then(|t| t.as_u64()).unwrap_or(0) > 0,
        "{profile}"
    );
    assert!(profile.contains("\"name\":\"job/litmus\""), "{profile}");
    assert!(profile.contains("\"name\":\"queue_wait\""), "{profile}");
    assert!(profile.contains("\"name\":\"simulate\""), "{profile}");
    assert!(profile.contains("\"p95_ns\""), "{profile}");

    // Folded flamegraph lines: `path;parts space self_ns`.
    let (_, folded) = http(port, "GET", "/profile/folded", "");
    assert!(!folded.trim().is_empty());
    for line in folded.lines() {
        let (path, ns) = line.rsplit_once(' ').unwrap_or_else(|| panic!("{line}"));
        assert!(!path.is_empty(), "{line}");
        ns.parse::<u64>().unwrap_or_else(|_| panic!("{line}"));
    }
    assert!(folded.contains("job/litmus;"), "{folded}");

    // Chrome export parses and carries the host process metadata.
    let (_, chrome) = http(port, "GET", "/profile/chrome", "");
    let v = JsonValue::parse(&chrome).expect("chrome json");
    assert!(v.get("traceEvents").is_some(), "{chrome}");

    // Latency histograms: Prometheus-correct bucket/sum/count series
    // labelled by endpoint family.
    let (_, metrics) = http(port, "GET", "/metrics", "");
    assert!(
        metrics.contains("sa_serve_http_request_duration_ns_bucket{"),
        "{metrics}"
    );
    assert!(metrics.contains("endpoint=\"submit\""), "{metrics}");
    assert!(metrics.contains("le=\"+Inf\""), "{metrics}");
    assert!(
        metrics.contains("sa_serve_http_request_duration_ns_count{"),
        "{metrics}"
    );
    assert!(metrics.contains("sa_profile_span_total_ns{"), "{metrics}");
    assert!(
        metrics.contains("path=\"job/litmus;simulate\""),
        "{metrics}"
    );

    let (status, _) = http(port, "POST", "/shutdown", "");
    assert!(status.contains("200"), "{status}");
    server.join();
}
