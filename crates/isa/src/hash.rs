//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! The standard library's default hasher is SipHash with a per-process
//! random seed — DoS-resistant, but an order of magnitude slower than
//! needed for trusted integer keys (line addresses, request ids), and its
//! randomness makes map iteration order vary run to run. The simulator
//! never hashes attacker-controlled input and *wants* reproducibility, so
//! the hot paths use this multiply-rotate hasher (the polynomial scheme
//! popularized by Firefox and rustc) instead: one rotate, one xor, and one
//! multiply per word, with a fixed seed.
//!
//! Correctness note: nothing in the simulator may depend on map iteration
//! order (the determinism suite passes under randomly seeded SipHash), so
//! swapping the hasher cannot change simulated timing — only host speed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier with a balanced bit pattern (from rustc's `FxHasher`
/// lineage; ultimately the golden-ratio constant of Fibonacci hashing).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher over 8-byte words. Not DoS-resistant; only for
/// trusted keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// The `BuildHasher` for [`FxHasher`] — zero-sized, fixed seed.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`]; drop-in for hot simulator maps.
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FastSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_builders() {
        let a = FxBuildHasher::default().hash_one(0xdead_beefu64);
        let b = FxBuildHasher::default().hash_one(0xdead_beefu64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let h = FxBuildHasher::default();
        assert_ne!(h.hash_one(0x1000u64), h.hash_one(0x1040u64));
        assert_ne!(h.hash_one((1u8, 2u8)), h.hash_one((2u8, 1u8)));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&(i as u32)));
        }
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let h = FxBuildHasher::default();
        assert_eq!(h.hash_one("abcdefghij"), h.hash_one("abcdefghij"));
        assert_ne!(h.hash_one("abcdefghij"), h.hash_one("abcdefghik"));
    }
}
