//! Property-based tests of the operational models over random programs.

use proptest::prelude::*;
use sa_litmus::ast::{LOp, LitmusTest, Var};
use sa_litmus::{explore, ForwardPolicy};

fn op_strategy() -> impl Strategy<Value = LOp> {
    prop_oneof![
        (0u8..2, 1u64..4).prop_map(|(v, val)| LOp::St(Var(v), val)),
        (0u8..2).prop_map(|v| LOp::Ld(Var(v))),
        Just(LOp::Fence),
    ]
}

fn program() -> impl Strategy<Value = LitmusTest> {
    prop::collection::vec(prop::collection::vec(op_strategy(), 1..4), 1..3)
        .prop_map(|threads| LitmusTest::new("random", threads))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store-atomic 370 model is strictly stronger: its outcome set
    /// is a subset of x86's on every program.
    #[test]
    fn ibm370_subset_of_x86(t in program()) {
        let x86 = explore(&t, ForwardPolicy::X86);
        let ibm = explore(&t, ForwardPolicy::StoreAtomic370);
        prop_assert!(!ibm.is_empty(), "every program terminates");
        prop_assert!(ibm.is_subset(&x86));
    }

    /// Per-variable coherence: the final value of each variable is the
    /// value of some store to it (or its initial 0), in every outcome,
    /// under both models.
    #[test]
    fn final_memory_comes_from_some_store(t in program()) {
        for policy in [ForwardPolicy::X86, ForwardPolicy::StoreAtomic370] {
            for o in explore(&t, policy).iter() {
                for (var, val) in &o.mem {
                    let legal = *val == 0
                        || t.threads.iter().flatten().any(|op| {
                            matches!(op, LOp::St(v, x) if v == var && x == val)
                        });
                    prop_assert!(legal, "{policy:?}: [{var}]={val} from nowhere");
                }
            }
        }
    }

    /// Reads-from: every loaded value was written by some store to that
    /// variable or is the initial 0.
    #[test]
    fn loads_read_written_values(t in program()) {
        // Map each load slot back to its variable.
        let load_vars: Vec<Vec<Var>> = t
            .threads
            .iter()
            .map(|ops| {
                ops.iter()
                    .filter_map(|op| match op {
                        LOp::Ld(v) => Some(*v),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        for policy in [ForwardPolicy::X86, ForwardPolicy::StoreAtomic370] {
            for o in explore(&t, policy).iter() {
                for (th, regs) in o.regs.iter().enumerate() {
                    for (slot, val) in regs.iter().enumerate() {
                        let var = load_vars[th][slot];
                        let legal = *val == 0
                            || t.threads.iter().flatten().any(|op| {
                                matches!(op, LOp::St(v, x) if *v == var && x == val)
                            });
                        prop_assert!(legal, "{policy:?}: {th}:r{slot}={val}");
                    }
                }
            }
        }
    }

    /// Fencing every instruction boundary collapses both models to the
    /// same (SC) outcome set.
    #[test]
    fn fully_fenced_programs_agree(t in program()) {
        let fenced = LitmusTest::new(
            "fenced",
            t.threads
                .iter()
                .map(|ops| {
                    let mut out = Vec::new();
                    for op in ops {
                        out.push(*op);
                        out.push(LOp::Fence);
                    }
                    out
                })
                .collect(),
        );
        let x86 = explore(&fenced, ForwardPolicy::X86);
        let ibm = explore(&fenced, ForwardPolicy::StoreAtomic370);
        prop_assert_eq!(x86, ibm);
    }
}
