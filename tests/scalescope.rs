//! sa-scalescope's reconciliation contract: the epoch/barrier/NoC
//! telemetry must *explain* the parallel run, not merely decorate it.
//!
//! * Sim-side invariants — every shard's virtual clock covers the whole
//!   run, last-arriver attributions sum to the barrier crossings, the
//!   link matrix reconciles with the network's own flit counters — hold
//!   exactly, every run.
//! * Sim-side fields are deterministic across shard counts: the NoC
//!   picture a 4-thread run paints is the same one the serial engine
//!   paints (host-side `*_ns` fields are explicitly excluded — they
//!   measure OS scheduling).
//! * And the telemetry is zero-cost when the parallel engine is off:
//!   serial runs never allocate a scope at all.

use sa_isa::{ConsistencyModel, Reg, Trace, TraceBuilder};
use sa_sim::{EngineMode, Multicore, NocStats, ParallelScope, SimConfig, Topology};
use sa_trace::export_chrome_epoch_lanes;

/// An 8-core radix run big enough that every shard crosses many epoch
/// barriers and the spawn/join overhead is noise.
fn radix_cfg(topo: Topology, engine: EngineMode) -> (SimConfig, Vec<Trace>) {
    let w = sa_workloads::by_name("radix").expect("radix exists");
    let traces = w.generate(8, 300, 42);
    let cfg = SimConfig::default()
        .with_model(ConsistencyModel::Ibm370SlfSosKey)
        .with_cores(8)
        .with_topology(topo)
        .with_engine(engine);
    (cfg, traces)
}

fn run_parallel(topo: Topology, threads: usize) -> (Multicore, u64) {
    let (cfg, traces) = radix_cfg(topo, EngineMode::Parallel { threads });
    let mut sim = Multicore::new(cfg, traces);
    let report = sim.run(u64::MAX).expect("parallel run completes");
    (sim, report.cycles)
}

/// Every shard's `sim_cycles` must equal the final cycle count (each
/// shard walks the same virtual clock 0..end), exactly one shard
/// arrives last at each barrier crossing, the epoch-cycle histogram
/// holds one observation per epoch, and work+wait+exchange covers
/// ≥ 90% of `threads × wall` — the loop has nowhere else to hide time.
#[test]
fn epoch_and_arrival_invariants_reconcile() {
    let threads = 4;
    let (sim, cycles) = run_parallel(Topology::FullyConnected, threads);
    let scope: &ParallelScope = sim.scalescope().expect("parallel run records a scope");

    assert_eq!(scope.threads, threads);
    assert!(scope.lookahead >= 1, "epochs need a positive lookahead");
    assert_eq!(scope.topology, "fc");
    assert_eq!(scope.per_shard.len(), threads);
    assert!(scope.epochs > 4, "a real run crosses many barriers");

    for s in &scope.per_shard {
        assert_eq!(
            s.sim_cycles, cycles,
            "shard {}: virtual clock must cover the whole run",
            s.shard
        );
        assert_eq!(
            s.epochs, scope.epochs,
            "shard {}: barrier A is a full rendezvous",
            s.shard
        );
        assert_eq!(
            s.epoch_cycles.count(),
            s.epochs,
            "shard {}: one epoch-length observation per epoch",
            s.shard
        );
        // The final epoch returns before barrier B.
        assert!(s.epochs_exchanged < s.epochs);
    }

    let a_crossings: u64 = scope.per_shard.iter().map(|s| s.last_arriver_a).sum();
    let b_crossings: u64 = scope.per_shard.iter().map(|s| s.last_arriver_b).sum();
    assert_eq!(
        a_crossings, scope.epochs,
        "exactly one shard arrives last per barrier-A crossing"
    );
    assert_eq!(
        b_crossings, scope.per_shard[0].epochs_exchanged,
        "exactly one shard arrives last per barrier-B crossing"
    );

    // Cross-shard events are counted once at the sender and once at the
    // receiver; the two tallies must agree.
    let sent: u64 = scope.per_shard.iter().map(|s| s.events_out).sum();
    let received: u64 = scope.per_shard.iter().map(|s| s.events_in).sum();
    assert_eq!(sent, received, "every routed event is injected");

    let cov = scope.coverage();
    assert!(
        cov >= 0.9,
        "work+wait+exchange must cover >= 90% of threads*wall, got {cov:.3}"
    );
    assert!(cov <= 1.02, "coverage cannot exceed the wall, got {cov:.3}");

    let (w, wait, x) = scope.fractions();
    assert!((w + wait + x - 1.0).abs() < 1e-9);
}

/// The link matrix and latency histogram are views of the same network
/// the `Report` already counts: totals must reconcile exactly, and the
/// per-bank occupancy counters must match the directory's own deferral
/// statistics.
#[test]
fn noc_totals_reconcile_with_report_counters() {
    let (cfg, traces) = radix_cfg(
        Topology::FullyConnected,
        EngineMode::Parallel { threads: 4 },
    );
    let mut sim = Multicore::new(cfg, traces);
    let report = sim.run(u64::MAX).expect("parallel run completes");
    let noc = sim.noc_stats();
    let mem = report.mem;
    assert_eq!(
        noc.total_flits(),
        mem.flits_sent,
        "link matrix vs flit counter"
    );
    assert_eq!(
        noc.total_msgs(),
        mem.msgs_sent,
        "link matrix vs msg counter"
    );
    assert_eq!(
        noc.latency.count(),
        mem.msgs_sent,
        "one latency sample per msg"
    );

    let scope_rejects: u64 = noc.banks.iter().map(|b| b.rejects).sum();
    let dir_deferred: u64 = mem.per_bank.iter().map(|b| b.deferred).sum();
    assert_eq!(scope_rejects, dir_deferred, "bank rejects vs deferrals");
}

/// Sim-side NoC telemetry is a pure function of the bit-exact
/// simulation: serial (threads=1 falls back), 2-shard and 4-shard runs
/// must produce identical link matrices, latency histograms, bank
/// counters and storm rankings.
#[test]
fn noc_telemetry_is_engine_invariant() {
    for topo in [Topology::FullyConnected, Topology::Mesh2D { width: 4 }] {
        let snapshots: Vec<NocStats> = [1usize, 2, 4]
            .into_iter()
            .map(|threads| run_parallel(topo, threads).0.noc_stats())
            .collect();
        assert!(snapshots[0].total_msgs() > 0, "workload exercises the NoC");
        assert_eq!(snapshots[0], snapshots[1], "{topo:?}: serial vs 2 shards");
        assert_eq!(snapshots[0], snapshots[2], "{topo:?}: serial vs 4 shards");
    }
}

/// Serial engines never pay for the scope — not zeroed, not allocated.
#[test]
fn serial_runs_allocate_no_scope() {
    for engine in [EngineMode::EventDriven, EngineMode::Lockstep] {
        let (cfg, traces) = radix_cfg(Topology::FullyConnected, engine);
        let mut sim = Multicore::new(cfg, traces);
        sim.run(u64::MAX).expect("serial run completes");
        assert!(
            sim.scalescope().is_none(),
            "{engine}: serial runs must not allocate telemetry"
        );
    }
}

/// A deliberate invalidation storm — seven sharers, then a writer — is
/// detected, attributed to the right line, and ranked by fan-out.
#[test]
fn invalidation_storm_is_detected_and_ranked() {
    let hot = 0x4000u64;
    let cold = 0x9000u64;
    let mut traces = Vec::new();
    for core in 0..8usize {
        let mut b = TraceBuilder::new();
        if core == 0 {
            // Give the sharers time to complete their GetS first.
            for _ in 0..600 {
                b.nop();
            }
            b.store_imm(hot, 1); // GetM: invalidates every sharer
            b.store_imm(cold + 64 * core as u64, 2);
        } else {
            b.load(Reg::new(0), hot);
            b.store_imm(cold + 64 * core as u64, 2);
        }
        traces.push(b.build());
    }
    let cfg = SimConfig::default()
        .with_model(ConsistencyModel::Ibm370SlfSosKey)
        .with_cores(8);
    let mut sim = Multicore::new(cfg, traces);
    sim.run(u64::MAX).expect("storm run completes");

    let noc = sim.noc_stats();
    assert!(
        !noc.storms.is_empty(),
        "a 7-sharer invalidation burst must register as a storm"
    );
    let top = &noc.storms[0];
    assert!(
        top.fanout >= 4,
        "top storm fan-out must clear the threshold, got {}",
        top.fanout
    );
    assert_eq!(
        noc.max_storm_fanout(),
        top.fanout,
        "ranking is fan-out desc"
    );
    for pair in noc.storms.windows(2) {
        assert!(pair[0].fanout >= pair[1].fanout, "storms ranked by fan-out");
    }
}

/// The per-epoch lane renders as Perfetto tracks: contiguous slices on
/// one synthetic process, one track per shard.
#[test]
fn epoch_lanes_export_to_perfetto() {
    let (sim, _) = run_parallel(Topology::Mesh2D { width: 4 }, 2);
    let scope = sim.scalescope().expect("scope recorded");
    let spans = scope.epoch_spans();
    assert!(!spans.is_empty(), "a real run leaves lane records");
    let json = export_chrome_epoch_lanes(&spans);
    assert!(json.contains("parallel engine"));
    assert!(json.contains("shard 0"));
    assert!(json.contains("shard 1"));
    assert!(json.contains("\"epoch\""));
}
