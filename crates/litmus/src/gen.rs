//! Seeded random litmus-program generation for the differential fuzzer.
//!
//! Programs are drawn from a small, deliberately adversarial space:
//! 2–8 threads, a handful of operations each, over at most a few shared
//! variables — exactly the regime in which store-buffer forwarding,
//! fences and the retire gate interact. The mix is biased so that loads
//! preferentially target variables the same thread already stored to
//! (making store-to-load forwarding, the paper's whole subject, a
//! frequent event) and so that a forwarded load often has *older*
//! unrelated stores sitting in front of its forwarding store in the SB —
//! the shape that distinguishes the key-matched gate reopen from "any
//! commit reopens" (the `gate-key` mutation).
//!
//! Everything is driven by the caller's [`Xoshiro256`], so a fuzzing run
//! is reproducible from one `u64` seed.

use sa_isa::rng::Xoshiro256;

use crate::ast::{LOp, LitmusTest, Var};

/// Knobs for the program generator. The defaults keep the state space of
/// the exhaustive oracle small (the explorer memoizes full machine
/// states, so total operation count is the budget that matters) while
/// still covering 2–8 threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// Maximum thread count (clamped to 2..=8; the draw is biased toward
    /// 2–3 threads, where interesting interleavings are densest).
    pub max_threads: usize,
    /// Total operation budget across all threads.
    pub total_ops: usize,
    /// Number of shared variables (`x`, `y`, `z`, ...).
    pub vars: u8,
    /// Store/RMW values are drawn from `1..=max_value`.
    pub max_value: u64,
    /// Include RMWs in the mix.
    pub rmw: bool,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_threads: 8,
            total_ops: 10,
            vars: 3,
            max_value: 2,
            rmw: true,
        }
    }
}

/// Draws a thread count in `2..=max`, biased toward small counts.
fn draw_threads(rng: &mut Xoshiro256, max: usize) -> usize {
    let max = max.clamp(2, 8);
    // Roughly: 2 threads 45%, 3 threads 30%, then a thinning tail.
    let weights = [45u64, 30, 12, 6, 4, 2, 1];
    let avail = &weights[..max - 1];
    let total: u64 = avail.iter().sum();
    let mut roll = rng.gen_range_u64(0, total);
    for (i, w) in avail.iter().enumerate() {
        if roll < *w {
            return i + 2;
        }
        roll -= w;
    }
    2
}

/// One random operation for a thread that has already issued
/// `stored_vars` stores (used to bias loads toward forwardable
/// addresses).
fn draw_op(rng: &mut Xoshiro256, cfg: &GenConfig, stored_vars: &[Var]) -> LOp {
    let var = |rng: &mut Xoshiro256| Var(rng.gen_range_u64(0, u64::from(cfg.vars)) as u8);
    let val = |rng: &mut Xoshiro256| rng.gen_range_inclusive_u64(1, cfg.max_value);
    let rmw_w = if cfg.rmw { 10 } else { 0 };
    // St 40 / Ld 42 / Fence 8 / Rmw 10 (out of 100).
    match rng.gen_range_u64(0, 90 + rmw_w) {
        0..=39 => LOp::St(var(rng), val(rng)),
        40..=81 => {
            // 60% of loads re-read a variable this thread stored to,
            // when one exists — the forwarding bias.
            let v = if !stored_vars.is_empty() && rng.gen_range_u64(0, 10) < 6 {
                stored_vars[rng.gen_range_usize(0, stored_vars.len())]
            } else {
                var(rng)
            };
            LOp::Ld(v)
        }
        82..=89 => LOp::Fence,
        _ => LOp::Rmw(var(rng), val(rng)),
    }
}

/// Generates one random litmus program from `rng`.
///
/// The budget in `cfg.total_ops` is split across the drawn thread count
/// (every thread gets at least one operation); per-thread order is
/// preserved as generated.
pub fn generate(rng: &mut Xoshiro256, cfg: &GenConfig) -> LitmusTest {
    let n_threads = draw_threads(rng, cfg.max_threads);
    let budget = cfg.total_ops.max(n_threads);
    // Split the budget: each thread gets 1 plus a random share.
    let mut lens = vec![1usize; n_threads];
    for _ in 0..budget - n_threads {
        let t = rng.gen_range_usize(0, n_threads);
        lens[t] += 1;
    }
    let threads = lens
        .iter()
        .map(|&len| {
            let mut stored: Vec<Var> = Vec::new();
            (0..len)
                .map(|_| {
                    let op = draw_op(rng, cfg, &stored);
                    if let LOp::St(v, _) | LOp::Rmw(v, _) = op {
                        if !stored.contains(&v) {
                            stored.push(v);
                        }
                    }
                    op
                })
                .collect()
        })
        .collect();
    LitmusTest::new("gen", threads)
}

/// An unbounded, seed-deterministic stream of generated programs — the
/// resident generator behind both batch corpora ([`generate_corpus`])
/// and sa-serve's continuous fuzzing farm. Each program gets its own
/// [`Xoshiro256`] stream derived from the master seed, so program `i` is
/// stable regardless of how many programs are ultimately drawn (and
/// regardless of worker scheduling).
#[derive(Debug, Clone)]
pub struct CorpusStream {
    sm: sa_isa::rng::SplitMix64,
    cfg: GenConfig,
    drawn: u64,
}

impl CorpusStream {
    /// A stream reproducible from `seed`.
    pub fn new(seed: u64, cfg: GenConfig) -> CorpusStream {
        CorpusStream {
            sm: sa_isa::rng::SplitMix64::new(seed),
            cfg,
            drawn: 0,
        }
    }

    /// Programs drawn so far.
    pub fn drawn(&self) -> u64 {
        self.drawn
    }
}

impl Iterator for CorpusStream {
    type Item = LitmusTest;

    /// Never returns `None`; the stream is infinite.
    fn next(&mut self) -> Option<LitmusTest> {
        let mut rng = Xoshiro256::seed_from_u64(self.sm.next_u64());
        self.drawn += 1;
        Some(generate(&mut rng, &self.cfg))
    }
}

/// Generates `n` programs from one seed — the corpus of a fuzzing run.
/// Program `i` equals the `i`-th draw of [`CorpusStream`] with the same
/// seed and config.
pub fn generate_corpus(seed: u64, n: usize, cfg: &GenConfig) -> Vec<LitmusTest> {
    CorpusStream::new(seed, cfg.clone()).take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_budget_and_thread_bounds() {
        let cfg = GenConfig::default();
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..200 {
            let t = generate(&mut rng, &cfg);
            assert!((2..=8).contains(&t.threads.len()));
            assert_eq!(t.total_ops(), cfg.total_ops);
            assert!(t.threads.iter().all(|ops| !ops.is_empty()));
            for op in t.threads.iter().flatten() {
                match op {
                    LOp::St(v, val) | LOp::Rmw(v, val) => {
                        assert!(v.0 < cfg.vars);
                        assert!((1..=cfg.max_value).contains(val));
                    }
                    LOp::Ld(v) => assert!(v.0 < cfg.vars),
                    LOp::Fence => {}
                }
            }
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let cfg = GenConfig::default();
        let a = generate_corpus(4, 50, &cfg);
        let b = generate_corpus(4, 50, &cfg);
        assert_eq!(a, b);
        // Program i is stable under a longer run.
        let c = generate_corpus(4, 10, &cfg);
        assert_eq!(&a[..10], &c[..]);
    }

    #[test]
    fn stream_matches_corpus_and_counts_draws() {
        let cfg = GenConfig::default();
        let mut stream = CorpusStream::new(4, cfg.clone());
        let from_stream: Vec<LitmusTest> = stream.by_ref().take(20).collect();
        assert_eq!(from_stream, generate_corpus(4, 20, &cfg));
        assert_eq!(stream.drawn(), 20);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        assert_ne!(generate_corpus(1, 20, &cfg), generate_corpus(2, 20, &cfg));
    }

    #[test]
    fn rmw_can_be_disabled() {
        let cfg = GenConfig {
            rmw: false,
            ..GenConfig::default()
        };
        let progs = generate_corpus(7, 100, &cfg);
        assert!(progs
            .iter()
            .flat_map(|t| t.threads.iter().flatten())
            .all(|op| !matches!(op, LOp::Rmw(..))));
    }

    #[test]
    fn generated_programs_explore_quickly() {
        // The default budget must keep the exhaustive oracle tractable.
        let cfg = GenConfig::default();
        let mut rng = Xoshiro256::seed_from_u64(99);
        for _ in 0..20 {
            let t = generate(&mut rng, &cfg);
            let set = crate::machine::explore(&t, crate::machine::ForwardPolicy::X86);
            assert!(!set.is_empty());
        }
    }
}
