//! Per-core private cache controller: an L1D latency filter inclusive in a
//! private L2 that is the coherence unit, plus MSHRs, a writeback buffer,
//! and the stride prefetcher.
//!
//! The controller surfaces two notices the out-of-order core's load queue
//! snoops — `Invalidated` (a remote `GetM` reached us) and `Evicted` (a
//! line left the private hierarchy for capacity reasons). The paper treats
//! both identically when deciding to squash speculative loads (§IV,
//! "Evictions").

use sa_isa::{Addr, CoreId, Cycle, FastMap, Line};

use crate::cache::CacheArray;
use crate::config::MemConfig;
use crate::memsys::{Action, MemReqId, NoticeKind};
use crate::msg::{Msg, NodeId};
use crate::prefetch::StridePrefetcher;

/// Coherence state of a line in the private hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PState {
    /// Read-only shared copy.
    S,
    /// Exclusive ownership (MESI E or M; `dirty` distinguishes them).
    X,
}

#[derive(Debug, Clone, Copy)]
struct L2Entry {
    state: PState,
    dirty: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    GetS,
    GetM,
}

#[derive(Debug, Default)]
struct Mshr {
    pending: Option<Pending>,
    load_waiters: Vec<MemReqId>,
    own_waiters: Vec<MemReqId>,
    /// Upgrade to M once the outstanding GetS completes.
    want_own: bool,
    /// Allocated by the prefetcher; no waiters initially.
    prefetch: bool,
}

/// Counters exported by each private controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrivStats {
    /// Demand loads observed.
    pub demand_loads: u64,
    /// Demand loads that hit the L1.
    pub l1_hits: u64,
    /// Demand loads that hit the L2.
    pub l2_hits: u64,
    /// Demand loads that missed the private hierarchy.
    pub misses: u64,
    /// Loads that merged into an existing MSHR.
    pub mshr_merges: u64,
    /// Requests rejected because all MSHRs were busy.
    pub mshr_rejects: u64,
    /// Prefetch requests sent.
    pub prefetches: u64,
    /// Invalidations received from the directory.
    pub invs_received: u64,
    /// L2 (coherence-unit) evictions.
    pub evictions: u64,
    /// Dirty writebacks sent.
    pub writebacks: u64,
    /// Ownership (RFO/upgrade) requests issued to the directory.
    pub ownership_reqs: u64,
}

/// The private cache hierarchy of one core.
#[derive(Debug)]
pub struct PrivateCtrl {
    core: CoreId,
    node: NodeId,
    n_banks: usize,
    l1: CacheArray<()>,
    l2: CacheArray<L2Entry>,
    mshrs: FastMap<Line, Mshr>,
    mshr_limit: usize,
    /// Lines evicted dirty, awaiting `PutMAck`. The data logically lives
    /// here so the controller can still answer `FetchS`/`FetchInv`.
    wb: FastMap<Line, ()>,
    prefetcher: StridePrefetcher,
    l1_latency: u64,
    l2_latency: u64,
    /// Public counters.
    pub stats: PrivStats,
}

impl PrivateCtrl {
    /// Creates the controller for `core` using the geometry in `cfg`.
    pub fn new(core: CoreId, cfg: &MemConfig) -> PrivateCtrl {
        PrivateCtrl {
            core,
            node: NodeId::Core(core),
            n_banks: cfg.l3_banks,
            l1: CacheArray::new(cfg.l1_bytes, cfg.l1_assoc),
            l2: CacheArray::new(cfg.l2_bytes, cfg.l2_assoc),
            mshrs: FastMap::default(),
            mshr_limit: cfg.mshrs,
            wb: FastMap::default(),
            prefetcher: StridePrefetcher::new(cfg.prefetch, cfg.prefetch_degree),
            l1_latency: cfg.l1_latency,
            l2_latency: cfg.l2_latency,
            stats: PrivStats::default(),
        }
    }

    fn home(&self, line: Line) -> NodeId {
        NodeId::Bank(line.bank(self.n_banks) as u16)
    }

    fn send(&self, to: NodeId, msg: Msg, at: Cycle, out: &mut Vec<Action>) {
        out.push(Action::Send {
            from: self.node,
            to,
            msg,
            at,
        });
    }

    fn notice(&self, kind: NoticeKind, at: Cycle, out: &mut Vec<Action>) {
        out.push(Action::Notice {
            core: self.core,
            at,
            kind,
        });
    }

    /// `true` when the private hierarchy holds `line` with write
    /// permission.
    pub fn has_ownership(&self, line: Line) -> bool {
        matches!(
            self.l2.peek(line),
            Some(L2Entry {
                state: PState::X,
                ..
            })
        )
    }

    /// Books `n` MSHR rejections without the probes: the memoized
    /// equivalent of the reject branches of [`PrivateCtrl::load`] and
    /// [`PrivateCtrl::ownership`], whose only controller-side effect is
    /// this counter.
    pub(crate) fn note_mshr_rejects(&mut self, n: u64) {
        self.stats.mshr_rejects += n;
    }

    /// Marks an owned line dirty (the store-commit L1 write).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident; debug-asserts ownership.
    pub fn mark_dirty(&mut self, line: Line) {
        let e = self.l2.peek_mut(line).expect("mark_dirty on absent line");
        debug_assert_eq!(e.state, PState::X, "mark_dirty on non-owned line");
        e.dirty = true;
        self.l2.touch(line);
        // The write allocates into L1.
        if !self.l1.touch(line) {
            let _ = self.l1.insert(line, ());
        }
    }

    /// A demand load of `line` (instruction at `pc`, byte address `addr`
    /// for the prefetcher). Returns `None` when no MSHR is available —
    /// the core retries next cycle.
    pub fn load(
        &mut self,
        req: MemReqId,
        line: Line,
        pc: u64,
        addr: Addr,
        now: Cycle,
    ) -> Option<Vec<Action>> {
        let mut out = Vec::new();
        if self.l2.contains(line) {
            self.stats.demand_loads += 1;
            self.l2.touch(line);
            if self.l1.touch(line) {
                self.stats.l1_hits += 1;
                self.notice(
                    NoticeKind::LoadDone { id: req },
                    now + self.l1_latency,
                    &mut out,
                );
            } else {
                self.stats.l2_hits += 1;
                let _ = self.l1.insert(line, ()); // L1 victims stay in L2
                self.notice(
                    NoticeKind::LoadDone { id: req },
                    now + self.l2_latency,
                    &mut out,
                );
            }
        } else if let Some(m) = self.mshrs.get_mut(&line) {
            self.stats.demand_loads += 1;
            self.stats.mshr_merges += 1;
            m.load_waiters.push(req);
            m.prefetch = false;
        } else if self.mshrs.len() >= self.mshr_limit {
            self.stats.mshr_rejects += 1;
            return None;
        } else {
            self.stats.demand_loads += 1;
            self.stats.misses += 1;
            self.mshrs.insert(
                line,
                Mshr {
                    pending: Some(Pending::GetS),
                    load_waiters: vec![req],
                    ..Mshr::default()
                },
            );
            self.send(
                self.home(line),
                Msg::GetS {
                    line,
                    req: self.core,
                },
                now + self.l2_latency,
                &mut out,
            );
        }
        self.train_prefetcher(pc, addr, now, &mut out);
        Some(out)
    }

    fn train_prefetcher(&mut self, pc: u64, addr: Addr, now: Cycle, out: &mut Vec<Action>) {
        let proposals = self.prefetcher.train(pc, addr);
        for line in proposals {
            // Keep two MSHRs in reserve for demand traffic.
            if self.l2.contains(line)
                || self.mshrs.contains_key(&line)
                || self.mshrs.len() + 2 >= self.mshr_limit
            {
                continue;
            }
            self.stats.prefetches += 1;
            self.mshrs.insert(
                line,
                Mshr {
                    pending: Some(Pending::GetS),
                    prefetch: true,
                    ..Mshr::default()
                },
            );
            self.send(
                self.home(line),
                Msg::GetS {
                    line,
                    req: self.core,
                },
                now,
                out,
            );
        }
    }

    /// An ownership request (store RFO / upgrade) for `line`. Returns
    /// `None` when no MSHR is available.
    pub fn ownership(&mut self, req: MemReqId, line: Line, now: Cycle) -> Option<Vec<Action>> {
        let mut out = Vec::new();
        if self.has_ownership(line) {
            self.notice(NoticeKind::OwnershipDone { id: req }, now + 1, &mut out);
            return Some(out);
        }
        if let Some(m) = self.mshrs.get_mut(&line) {
            m.own_waiters.push(req);
            m.prefetch = false;
            if m.pending == Some(Pending::GetS) {
                m.want_own = true;
            }
            return Some(out);
        }
        if self.mshrs.len() >= self.mshr_limit {
            self.stats.mshr_rejects += 1;
            return None;
        }
        self.stats.ownership_reqs += 1;
        self.mshrs.insert(
            line,
            Mshr {
                pending: Some(Pending::GetM),
                own_waiters: vec![req],
                ..Mshr::default()
            },
        );
        self.send(
            self.home(line),
            Msg::GetM {
                line,
                req: self.core,
            },
            now + self.l2_latency,
            &mut out,
        );
        Some(out)
    }

    /// Handles a message from the directory.
    pub fn handle(&mut self, msg: Msg, now: Cycle) -> Vec<Action> {
        let mut out = Vec::new();
        match msg {
            Msg::DataS { line } => self.on_data(line, PState::S, now, &mut out),
            Msg::DataE { line } | Msg::GrantM { line } => {
                self.on_data(line, PState::X, now, &mut out)
            }
            Msg::Inv { line, by } => {
                self.stats.invs_received += 1;
                if self.l2.contains(line) {
                    debug_assert!(!self.has_ownership(line), "directory invalidated an owner");
                    self.l1.remove(line);
                    self.l2.remove(line);
                    self.notice(NoticeKind::Invalidated { line, by }, now, &mut out);
                }
                self.send(
                    self.home(line),
                    Msg::InvAck {
                        line,
                        from: self.core,
                    },
                    now,
                    &mut out,
                );
            }
            Msg::FetchS { line } => {
                if let Some(e) = self.l2.peek_mut(line) {
                    debug_assert_eq!(e.state, PState::X);
                    let dirty = e.dirty;
                    e.state = PState::S;
                    e.dirty = false;
                    self.notice(NoticeKind::Downgraded { line }, now, &mut out);
                    self.send(
                        self.home(line),
                        Msg::AckData {
                            line,
                            from: self.core,
                            dirty,
                            retained: true,
                        },
                        now,
                        &mut out,
                    );
                } else {
                    // Concurrently evicted: answer from the writeback buffer.
                    debug_assert!(self.wb.contains_key(&line), "FetchS for unknown line");
                    self.send(
                        self.home(line),
                        Msg::AckData {
                            line,
                            from: self.core,
                            dirty: true,
                            retained: false,
                        },
                        now,
                        &mut out,
                    );
                }
            }
            Msg::FetchInv { line, by } => {
                if let Some(e) = self.l2.remove(line) {
                    debug_assert_eq!(e.state, PState::X);
                    self.l1.remove(line);
                    self.stats.invs_received += 1;
                    self.notice(NoticeKind::Invalidated { line, by }, now, &mut out);
                    self.send(
                        self.home(line),
                        Msg::AckData {
                            line,
                            from: self.core,
                            dirty: e.dirty,
                            retained: false,
                        },
                        now,
                        &mut out,
                    );
                } else {
                    debug_assert!(self.wb.contains_key(&line), "FetchInv for unknown line");
                    self.send(
                        self.home(line),
                        Msg::AckData {
                            line,
                            from: self.core,
                            dirty: true,
                            retained: false,
                        },
                        now,
                        &mut out,
                    );
                }
            }
            Msg::PutMAck { line, .. } => {
                self.wb.remove(&line);
            }
            other => unreachable!("private controller received {other:?}"),
        }
        out
    }

    fn on_data(&mut self, line: Line, state: PState, now: Cycle, out: &mut Vec<Action>) {
        self.fill(line, state, now, out);
        let Some(mut m) = self.mshrs.remove(&line) else {
            debug_assert!(false, "data response without MSHR");
            return;
        };
        for w in m.load_waiters.drain(..) {
            self.notice(NoticeKind::LoadDone { id: w }, now, out);
        }
        match state {
            PState::X => {
                for w in m.own_waiters.drain(..) {
                    self.notice(NoticeKind::OwnershipDone { id: w }, now, out);
                }
            }
            PState::S if m.want_own => {
                // Shared data arrived but a store wants ownership: upgrade.
                m.pending = Some(Pending::GetM);
                m.want_own = false;
                self.send(
                    self.home(line),
                    Msg::GetM {
                        line,
                        req: self.core,
                    },
                    now,
                    out,
                );
                self.mshrs.insert(line, m);
            }
            PState::S => {
                debug_assert!(m.own_waiters.is_empty(), "own waiters without want_own");
            }
        }
    }

    fn fill(&mut self, line: Line, state: PState, now: Cycle, out: &mut Vec<Action>) {
        // Upgrades of a resident S line keep the entry (no eviction).
        if let Some(e) = self.l2.peek_mut(line) {
            e.state = state;
            self.l2.touch(line);
        } else if let Some((vline, ventry)) = self.l2.insert(
            line,
            L2Entry {
                state,
                dirty: false,
            },
        ) {
            self.evict(vline, ventry, now, out);
        }
        if !self.l1.touch(line) {
            let _ = self.l1.insert(line, ()); // L1 victim remains in L2
        }
    }

    fn evict(&mut self, line: Line, entry: L2Entry, now: Cycle, out: &mut Vec<Action>) {
        self.stats.evictions += 1;
        self.l1.remove(line);
        self.notice(NoticeKind::Evicted { line }, now, out);
        if entry.state == PState::X {
            // Owners never drop silently: write back and hold the data
            // until the directory acknowledges.
            self.stats.writebacks += 1;
            self.wb.insert(line, ());
            self.send(
                self.home(line),
                Msg::PutM {
                    line,
                    from: self.core,
                },
                now,
                out,
            );
        }
        // Shared lines drop silently; the directory may send a spurious
        // invalidation later, which `handle` acknowledges gracefully.
    }

    /// Number of MSHRs currently allocated (tests/stats).
    pub fn mshrs_in_use(&self) -> usize {
        self.mshrs.len()
    }

    /// `true` when `line` is resident in the private hierarchy.
    pub fn contains(&self, line: Line) -> bool {
        self.l2.contains(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemConfig {
        MemConfig {
            prefetch: false,
            ..MemConfig::with_cores(2)
        }
    }

    fn ctrl() -> PrivateCtrl {
        PrivateCtrl::new(CoreId(0), &cfg())
    }

    fn ln(i: u64) -> Line {
        Line::from_raw(i)
    }

    fn req(i: u64) -> MemReqId {
        MemReqId(i)
    }

    fn notice_kinds(actions: &[Action]) -> Vec<(NoticeKind, Cycle)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Notice { kind, at, .. } => Some((*kind, *at)),
                _ => None,
            })
            .collect()
    }

    fn sent_msgs(actions: &[Action]) -> Vec<Msg> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { msg, .. } => Some(*msg),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn cold_load_misses_then_hits_l1() {
        let mut c = ctrl();
        let a = c.load(req(1), ln(5), 0x400, 5 * 64, 100).unwrap();
        assert!(matches!(sent_msgs(&a)[0], Msg::GetS { .. }));
        assert_eq!(c.mshrs_in_use(), 1);
        // Data arrives.
        let a = c.handle(Msg::DataE { line: ln(5) }, 200);
        assert_eq!(
            notice_kinds(&a),
            vec![(NoticeKind::LoadDone { id: req(1) }, 200)]
        );
        assert_eq!(c.mshrs_in_use(), 0);
        // Second load: L1 hit at +4.
        let a = c.load(req(2), ln(5), 0x404, 5 * 64, 300).unwrap();
        assert_eq!(
            notice_kinds(&a),
            vec![(NoticeKind::LoadDone { id: req(2) }, 304)]
        );
        assert_eq!(c.stats.l1_hits, 1);
    }

    #[test]
    fn loads_merge_into_pending_mshr() {
        let mut c = ctrl();
        c.load(req(1), ln(5), 0, 5 * 64, 0).unwrap();
        let a = c.load(req(2), ln(5), 0, 5 * 64, 1).unwrap();
        assert!(sent_msgs(&a).is_empty(), "merged, no new request");
        let a = c.handle(Msg::DataS { line: ln(5) }, 50);
        let done: Vec<_> = notice_kinds(&a);
        assert_eq!(done.len(), 2);
        assert_eq!(c.stats.mshr_merges, 1);
    }

    #[test]
    fn mshr_exhaustion_rejects() {
        let mut c = PrivateCtrl::new(
            CoreId(0),
            &MemConfig {
                mshrs: 1,
                prefetch: false,
                ..cfg()
            },
        );
        assert!(c.load(req(1), ln(1), 0, 64, 0).is_some());
        assert!(c.load(req(2), ln(2), 0, 128, 0).is_none());
        assert_eq!(c.stats.mshr_rejects, 1);
    }

    #[test]
    fn ownership_upgrade_after_shared_data() {
        let mut c = ctrl();
        c.load(req(1), ln(5), 0, 5 * 64, 0).unwrap();
        // A store wants the same line while the GetS is in flight.
        let a = c.ownership(req(2), ln(5), 1).unwrap();
        assert!(sent_msgs(&a).is_empty());
        // Shared data arrives: the load completes and an upgrade GetM goes out.
        let a = c.handle(Msg::DataS { line: ln(5) }, 50);
        assert!(notice_kinds(&a)
            .iter()
            .any(|(k, _)| matches!(k, NoticeKind::LoadDone { .. })));
        assert!(matches!(sent_msgs(&a)[0], Msg::GetM { .. }));
        assert!(!c.has_ownership(ln(5)));
        // Grant arrives: ownership completes.
        let a = c.handle(Msg::GrantM { line: ln(5) }, 90);
        assert!(notice_kinds(&a)
            .iter()
            .any(|(k, _)| matches!(k, NoticeKind::OwnershipDone { .. })));
        assert!(c.has_ownership(ln(5)));
    }

    #[test]
    fn ownership_fast_path_when_owned() {
        let mut c = ctrl();
        c.ownership(req(1), ln(5), 0).unwrap();
        c.handle(Msg::GrantM { line: ln(5) }, 40);
        let a = c.ownership(req(2), ln(5), 100).unwrap();
        assert_eq!(
            notice_kinds(&a),
            vec![(NoticeKind::OwnershipDone { id: req(2) }, 101)]
        );
    }

    #[test]
    fn invalidation_notifies_and_acks() {
        let mut c = ctrl();
        c.load(req(1), ln(5), 0, 5 * 64, 0).unwrap();
        c.handle(Msg::DataS { line: ln(5) }, 50);
        let a = c.handle(
            Msg::Inv {
                line: ln(5),
                by: CoreId(1),
            },
            60,
        );
        assert!(notice_kinds(&a)
            .iter()
            .any(|(k, _)| matches!(k, NoticeKind::Invalidated { .. })));
        assert!(matches!(sent_msgs(&a)[0], Msg::InvAck { .. }));
        assert!(!c.contains(ln(5)));
        // Spurious invalidation for an absent line: ack only, no notice.
        let a = c.handle(
            Msg::Inv {
                line: ln(5),
                by: CoreId(1),
            },
            70,
        );
        assert!(notice_kinds(&a).is_empty());
        assert!(matches!(sent_msgs(&a)[0], Msg::InvAck { .. }));
    }

    #[test]
    fn fetch_inv_surrenders_dirty_line() {
        let mut c = ctrl();
        c.ownership(req(1), ln(5), 0).unwrap();
        c.handle(Msg::GrantM { line: ln(5) }, 40);
        c.mark_dirty(ln(5));
        let a = c.handle(
            Msg::FetchInv {
                line: ln(5),
                by: CoreId(1),
            },
            60,
        );
        let msgs = sent_msgs(&a);
        assert!(
            matches!(
                msgs[0],
                Msg::AckData {
                    dirty: true,
                    retained: false,
                    ..
                }
            ),
            "dirty data returned: {msgs:?}"
        );
        assert!(!c.has_ownership(ln(5)));
        assert!(notice_kinds(&a)
            .iter()
            .any(|(k, _)| matches!(k, NoticeKind::Invalidated { .. })));
    }

    #[test]
    fn fetch_s_downgrades_keeping_copy() {
        let mut c = ctrl();
        c.ownership(req(1), ln(5), 0).unwrap();
        c.handle(Msg::GrantM { line: ln(5) }, 40);
        c.mark_dirty(ln(5));
        let a = c.handle(Msg::FetchS { line: ln(5) }, 60);
        assert!(matches!(
            sent_msgs(&a)[0],
            Msg::AckData {
                dirty: true,
                retained: true,
                ..
            }
        ));
        assert!(c.contains(ln(5)));
        assert!(!c.has_ownership(ln(5)));
    }

    #[test]
    fn capacity_eviction_notifies_and_writes_back() {
        // Tiny L2: 1 set x 2 ways => 2 lines; L1 matching.
        let cfg = MemConfig {
            l1_bytes: 2 * 64,
            l1_assoc: 2,
            l2_bytes: 2 * 64,
            l2_assoc: 2,
            prefetch: false,
            ..MemConfig::with_cores(2)
        };
        let mut c = PrivateCtrl::new(CoreId(0), &cfg);
        c.ownership(req(1), ln(0), 0).unwrap();
        c.handle(Msg::GrantM { line: ln(0) }, 10);
        c.mark_dirty(ln(0));
        c.load(req(2), ln(2), 0, 2 * 64, 20).unwrap();
        c.handle(Msg::DataS { line: ln(2) }, 40);
        // Third line in the same set evicts the dirty LRU line 0.
        c.load(req(3), ln(4), 0, 4 * 64, 50).unwrap();
        let a = c.handle(Msg::DataS { line: ln(4) }, 80);
        assert!(notice_kinds(&a)
            .iter()
            .any(|(k, _)| matches!(k, NoticeKind::Evicted { .. })));
        assert!(sent_msgs(&a).iter().any(|m| matches!(m, Msg::PutM { .. })));
        // The writeback buffer answers a racing FetchInv.
        let a = c.handle(
            Msg::FetchInv {
                line: ln(0),
                by: CoreId(1),
            },
            90,
        );
        assert!(matches!(
            sent_msgs(&a)[0],
            Msg::AckData {
                dirty: true,
                retained: false,
                ..
            }
        ));
        // PutMAck clears the buffer.
        c.handle(
            Msg::PutMAck {
                line: ln(0),
                stale: true,
            },
            100,
        );
        assert_eq!(c.stats.writebacks, 1);
    }
}
