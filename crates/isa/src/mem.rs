//! The functional (value) image of memory.
//!
//! In an invalidation-based MESI protocol that acknowledges a write only
//! after all invalidations are collected (the paper's §II-E assumption —
//! write atomicity), every store has a single *commit instant*: the cycle
//! its value is written into the owning L1. Stale shared copies of the
//! line are destroyed strictly before that instant, so at any cycle `t`
//! every cache hit in the system observes exactly the value produced by the
//! last store committed at or before `t`.
//!
//! That equivalence lets the simulator keep one global value image updated
//! at store-commit time instead of threading data bytes through protocol
//! messages: a load that *performs* (receives its data) at cycle `t` reads
//! the image as of `t`. Store-to-load forwarding never consults the image —
//! the value comes straight from the SQ/SB entry, which is precisely the
//! store-atomicity loophole the paper studies.

use crate::hash::FastMap;
use crate::{Addr, Value};

/// The global functional memory image (8-byte granularity with sub-word
/// masking), updated at store-commit instants.
#[derive(Debug, Clone, Default)]
pub struct ValueMemory {
    words: FastMap<Addr, Value>,
}

impl ValueMemory {
    /// An all-zeros memory.
    pub fn new() -> ValueMemory {
        ValueMemory::default()
    }

    fn word_addr(addr: Addr) -> Addr {
        addr & !7
    }

    /// Reads `size` bytes at `addr` (zero-extended). Unwritten memory
    /// reads as zero.
    ///
    /// # Panics
    ///
    /// Panics if the access is misaligned for its size.
    pub fn read(&self, addr: Addr, size: u8) -> Value {
        assert_eq!(addr % u64::from(size), 0, "misaligned read at {addr:#x}");
        let word = self.words.get(&Self::word_addr(addr)).copied().unwrap_or(0);
        if size == 8 {
            return word;
        }
        let shift = (addr & 7) * 8;
        let mask = (1u64 << (u64::from(size) * 8)) - 1;
        (word >> shift) & mask
    }

    /// Writes `size` bytes of `value` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the access is misaligned for its size.
    pub fn write(&mut self, addr: Addr, size: u8, value: Value) {
        assert_eq!(addr % u64::from(size), 0, "misaligned write at {addr:#x}");
        let slot = self.words.entry(Self::word_addr(addr)).or_insert(0);
        if size == 8 {
            *slot = value;
            return;
        }
        let shift = (addr & 7) * 8;
        let mask = ((1u64 << (u64::from(size) * 8)) - 1) << shift;
        *slot = (*slot & !mask) | ((value << shift) & mask);
    }

    /// Number of distinct 8-byte words ever written.
    pub fn words_written(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = ValueMemory::new();
        assert_eq!(m.read(0x1000, 8), 0);
        assert_eq!(m.words_written(), 0);
    }

    #[test]
    fn full_word_roundtrip() {
        let mut m = ValueMemory::new();
        m.write(0x1000, 8, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read(0x1000, 8), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read(0x1008, 8), 0);
    }

    #[test]
    fn subword_write_preserves_neighbours() {
        let mut m = ValueMemory::new();
        m.write(0x1000, 8, 0x1111_1111_1111_1111);
        m.write(0x1004, 4, 0xabcd_ef01);
        assert_eq!(m.read(0x1000, 4), 0x1111_1111);
        assert_eq!(m.read(0x1004, 4), 0xabcd_ef01);
        assert_eq!(m.read(0x1000, 8), 0xabcd_ef01_1111_1111);
    }

    #[test]
    fn byte_granularity() {
        let mut m = ValueMemory::new();
        m.write(0x1003, 1, 0xff);
        assert_eq!(m.read(0x1000, 8), 0xff00_0000);
        m.write(0x1003, 1, 0x01);
        assert_eq!(m.read(0x1003, 1), 0x01);
    }

    #[test]
    fn subword_value_truncated() {
        let mut m = ValueMemory::new();
        m.write(0x1000, 2, 0x1_2345);
        assert_eq!(m.read(0x1000, 2), 0x2345);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_read_panics() {
        let m = ValueMemory::new();
        let _ = m.read(0x1001, 8);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_write_panics() {
        let mut m = ValueMemory::new();
        m.write(0x1002, 4, 0);
    }
}
