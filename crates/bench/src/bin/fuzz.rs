//! Differential litmus fuzzer: random programs × five configurations ×
//! core skews, every cycle-level outcome checked against the axiomatic
//! oracle ([`sa_litmus::Oracle`]). Violations are minimized before
//! being reported.
//!
//! ```text
//! cargo run --release -p sa-bench --bin fuzz -- --seed 4 --programs 1000
//! cargo run --release -p sa-bench --bin fuzz -- --seed 4 --programs 200 --mutate gate-key
//! ```
//!
//! Exit status: 0 when the run matches expectations — a clean machine
//! with no violations, or a mutated machine whose planted bug WAS
//! caught. 1 otherwise (real containment failure, or a mutation the
//! sweep failed to detect).

use std::process::exit;

use sa_bench::cli::{self, Arity, Flag, Spec};
use sa_bench::fuzz::{run_fuzz, FuzzConfig, FuzzReport};
use sa_metrics::JsonWriter;
use sa_ooo::InjectedBug;

const EXTRAS: &[Flag] = &[
    Flag {
        name: "--programs",
        arity: Arity::One,
        help: "randomly generated programs on top of the fixed corpus (default 200)",
    },
    Flag {
        name: "--mutate",
        arity: Arity::One,
        help: "plant a retire-gate bug (gate-key | gate-no-close); the run must detect it",
    },
    Flag {
        name: "--serve-metrics",
        arity: Arity::One,
        help: "serve run-status /metrics on this localhost port",
    },
];

const SPEC: Spec = Spec {
    bin: "fuzz",
    about: "differential litmus fuzzing against the axiomatic memory-model oracle",
    default_scale: None,
    default_out: None,
    extras: EXTRAS,
};

fn render_json(r: &FuzzReport, cfg: &FuzzConfig, opts: &cli::Opts) -> String {
    let mut j = JsonWriter::new();
    cli::schema_header(&mut j, "sa-bench-fuzz-v1", opts)
        .field_uint("programs", cfg.programs as u64)
        .field_str("mutate", cfg.mutate.map(|b| b.label()).unwrap_or("none"))
        .field_uint("corpus", r.corpus as u64)
        .field_uint("runs", r.runs as u64)
        .key("violations")
        .begin_array();
    for v in &r.violations {
        j.begin_object()
            .field_str("name", v.name)
            .field_str("model", v.model.label())
            .field_str("program", &v.program)
            .field_str("outcome", &v.outcome)
            .field_str("minimized", &v.minimized)
            .field_str("minimized_outcome", &v.minimized_outcome);
        j.key("pads").begin_array();
        for p in &v.pads {
            j.uint(*p as u64);
        }
        j.end_array().end_object();
    }
    j.end_array().end_object();
    j.finish()
}

/// Run-status exposition for `--serve-metrics`: phase plus final counts.
fn fuzz_metrics(cfg: &FuzzConfig, done: Option<&FuzzReport>) -> String {
    let mut reg = sa_metrics::Registry::new();
    reg.gauge(
        "sa_fuzz_running",
        "1 while the sweep is in progress, 0 once finished",
        &[],
        f64::from(u8::from(done.is_none())),
    );
    reg.counter(
        "sa_fuzz_programs_requested",
        "randomly generated programs requested",
        &[],
        cfg.programs as u64,
    );
    if let Some(r) = done {
        reg.counter(
            "sa_fuzz_corpus_programs",
            "programs fuzzed",
            &[],
            r.corpus as u64,
        );
        reg.counter(
            "sa_fuzz_runs_total",
            "simulations executed",
            &[],
            r.runs as u64,
        );
        reg.counter(
            "sa_fuzz_violations_total",
            "containment violations observed",
            &[],
            r.violations.len() as u64,
        );
    }
    reg.prometheus_text()
}

fn main() {
    let args = cli::parse(&SPEC);
    let cfg = FuzzConfig {
        programs: args.parsed::<usize>("--programs").unwrap_or(200),
        seed: args.opts.seed,
        jobs: args.opts.jobs,
        mutate: args.value("--mutate").map(|s| {
            InjectedBug::parse(s).unwrap_or_else(|| {
                eprintln!("fuzz: unknown mutation {s:?} (gate-key | gate-no-close)\n");
                eprint!("{}", cli::usage(&SPEC));
                exit(2);
            })
        }),
    };

    let server = args.value("--serve-metrics").map(|p| {
        let port: u16 = p.parse().unwrap_or_else(|_| {
            eprintln!("fuzz: --serve-metrics takes a port number, got {p:?}");
            exit(2);
        });
        let srv = sa_bench::serve::MetricsServer::start(port).unwrap_or_else(|e| {
            eprintln!("fuzz: binding port {port}: {e}");
            exit(2);
        });
        eprintln!("serving live metrics on http://127.0.0.1:{}/", srv.port());
        srv.set_prometheus(fuzz_metrics(&cfg, None));
        srv
    });

    let r = run_fuzz(&cfg);
    if let Some(srv) = &server {
        srv.set_prometheus(fuzz_metrics(&cfg, Some(&r)));
    }

    if args.opts.json {
        let body = render_json(&r, &cfg, &args.opts);
        match &args.opts.out {
            Some(path) => {
                std::fs::write(path, format!("{body}\n")).expect("write fuzz report");
                eprintln!("wrote {path}");
            }
            None => println!("{body}"),
        }
    } else {
        println!(
            "fuzz: {} programs ({} generated), {} simulations, mutate: {}",
            r.corpus,
            cfg.programs,
            r.runs,
            cfg.mutate.map(|b| b.label()).unwrap_or("none"),
        );
        for v in &r.violations {
            println!("\nVIOLATION under {} (pads {:?}):", v.model.label(), v.pads);
            println!("  program [{}]:", v.name);
            for line in v.program.lines() {
                println!("    {line}");
            }
            println!("  forbidden outcome: {}", v.outcome);
            println!("  minimized:");
            for line in v.minimized.lines() {
                println!("    {line}");
            }
            println!("  minimized outcome: {}", v.minimized_outcome);
        }
    }

    // Status goes to stderr in --json mode so stdout stays one parseable
    // document.
    let ok = |msg: String| {
        if args.opts.json {
            eprintln!("{msg}");
        } else {
            println!("{msg}");
        }
    };
    match (cfg.mutate, r.violations.is_empty()) {
        // Clean machine, clean sweep: the containment claim held.
        (None, true) => {
            ok("ok: every outcome was model-allowed".to_string());
        }
        // Clean machine but a real containment failure: simulator bug.
        (None, false) => {
            eprintln!("FAIL: {} containment violation(s)", r.violations.len());
            exit(1);
        }
        // Planted bug found: the harness has teeth.
        (Some(bug), false) => {
            ok(format!(
                "ok: planted {} bug detected ({} counterexample(s), minimized)",
                bug.label(),
                r.violations.len()
            ));
        }
        // Planted bug missed: the harness is blind — fail loudly.
        (Some(bug), true) => {
            eprintln!("FAIL: planted {} bug was NOT detected", bug.label());
            exit(1);
        }
    }
}
