//! The core-side memory interface and a scripted implementation for unit
//! tests.

use sa_coherence::{MemReqId, Notice, NoticeKind};
use sa_isa::{Addr, CoreId, Cycle, Line};

/// What one core sees of the memory hierarchy.
///
/// `sa-sim` implements this for the real coherence system; tests use
/// [`SimpleMem`].
pub trait LoadStorePort {
    /// Issues a demand load; `None` when the memory system is saturated
    /// (retry next cycle).
    fn issue_load(&mut self, line: Line, pc: u64, addr: Addr, now: Cycle) -> Option<MemReqId>;
    /// Issues an ownership (RFO/upgrade) request; `None` when saturated.
    fn issue_ownership(&mut self, line: Line, now: Cycle) -> Option<MemReqId>;
    /// `true` when this core's private hierarchy owns `line`.
    fn has_ownership(&self, line: Line) -> bool;
    /// Records the store-commit L1 write into an owned line.
    fn mark_dirty(&mut self, line: Line);
    /// L1 hit latency (the store-commit write latency).
    fn l1_latency(&self) -> u64;
    /// An opaque version stamp over this core's memory-side state: every
    /// change that could alter the outcome of an issue attempt bumps it.
    /// While the stamp is unchanged after a rejected [`issue_load`] or
    /// [`issue_ownership`], a retry is guaranteed to be rejected again,
    /// so the core may call [`note_rejected_issue`] instead of re-running
    /// the full issue path. An unchanged stamp likewise pins the result
    /// of [`has_ownership`] probes (ownership can only change through a
    /// stamped mutation). `None` means the port does not track one (the
    /// memos are disabled and every retry must issue for real).
    ///
    /// [`issue_load`]: LoadStorePort::issue_load
    /// [`issue_ownership`]: LoadStorePort::issue_ownership
    /// [`has_ownership`]: LoadStorePort::has_ownership
    /// [`note_rejected_issue`]: LoadStorePort::note_rejected_issue
    fn reject_epoch(&self) -> Option<u64> {
        None
    }
    /// Applies the side effects of `n` load or ownership issues that are
    /// known (via an unchanged [`reject_epoch`]) to be rejected — the
    /// request ids and the reject counter move exactly as `n` real
    /// rejected issues, without the cache/MSHR probes. Load and
    /// ownership rejections have identical side effects, so one memo
    /// serves both; consecutive rejections are order-insensitive among
    /// themselves, so a caller may batch them as long as the batch sits
    /// at the same sequence position the real issues would.
    ///
    /// [`reject_epoch`]: LoadStorePort::reject_epoch
    fn note_rejected_issues(&mut self, n: u64) {
        let _ = n;
        unreachable!("note_rejected_issues without a reject_epoch");
    }
}

/// A deterministic fixed-latency memory for tests: every load completes
/// after `load_latency`, every ownership request after `own_latency`, and
/// the test harness can inject invalidations/evictions.
#[derive(Debug)]
pub struct SimpleMem {
    /// Load completion latency.
    pub load_latency: u64,
    /// Ownership completion latency.
    pub own_latency: u64,
    owned: std::collections::HashSet<Line>,
    pending: Vec<Notice>,
    /// Ownership becomes effective only when its grant notice is taken.
    pending_grants: Vec<(Cycle, Line)>,
    next_id: u64,
}

impl SimpleMem {
    /// Creates a memory with the given latencies.
    pub fn new(load_latency: u64, own_latency: u64) -> SimpleMem {
        SimpleMem {
            load_latency,
            own_latency,
            owned: std::collections::HashSet::new(),
            pending: Vec::new(),
            pending_grants: Vec::new(),
            next_id: 0,
        }
    }

    /// Injects an invalidation notice at `at` (and revokes ownership).
    pub fn inject_invalidation(&mut self, line: Line, at: Cycle) {
        self.pending_grants.retain(|&(_, l)| l != line);
        self.owned.remove(&line);
        self.pending.push(Notice {
            at,
            kind: NoticeKind::Invalidated {
                line,
                // Test port: a single fixed remote writer stands in for
                // whichever core's GetM would have caused this.
                by: CoreId(1),
            },
        });
    }

    /// Injects an eviction notice at `at` (and revokes ownership).
    pub fn inject_eviction(&mut self, line: Line, at: Cycle) {
        self.pending_grants.retain(|&(_, l)| l != line);
        self.owned.remove(&line);
        self.pending.push(Notice {
            at,
            kind: NoticeKind::Evicted { line },
        });
    }

    /// Takes the notices due at or before `now`, in timestamp order, and
    /// makes due ownership grants effective.
    pub fn take_due(&mut self, now: Cycle) -> Vec<Notice> {
        for &(at, line) in &self.pending_grants {
            if at <= now {
                self.owned.insert(line);
            }
        }
        self.pending_grants.retain(|&(at, _)| at > now);
        let mut due: Vec<Notice> = self
            .pending
            .iter()
            .filter(|n| n.at <= now)
            .copied()
            .collect();
        self.pending.retain(|n| n.at > now);
        due.sort_by_key(|n| n.at);
        due
    }
}

impl LoadStorePort for SimpleMem {
    fn issue_load(&mut self, _line: Line, _pc: u64, _addr: Addr, now: Cycle) -> Option<MemReqId> {
        let id = MemReqId(self.next_id);
        self.next_id += 1;
        self.pending.push(Notice {
            at: now + self.load_latency,
            kind: NoticeKind::LoadDone { id },
        });
        Some(id)
    }

    fn issue_ownership(&mut self, line: Line, now: Cycle) -> Option<MemReqId> {
        let id = MemReqId(self.next_id);
        self.next_id += 1;
        let at = now + self.own_latency;
        self.pending_grants.push((at, line));
        self.pending.push(Notice {
            at,
            kind: NoticeKind::OwnershipDone { id },
        });
        Some(id)
    }

    fn has_ownership(&self, line: Line) -> bool {
        self.owned.contains(&line)
    }

    fn mark_dirty(&mut self, _line: Line) {}

    fn l1_latency(&self) -> u64 {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_complete_after_latency() {
        let mut m = SimpleMem::new(10, 20);
        let id = m.issue_load(Line::from_raw(1), 0, 64, 5).unwrap();
        assert!(m.take_due(14).is_empty());
        let due = m.take_due(15);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].kind, NoticeKind::LoadDone { id });
    }

    #[test]
    fn ownership_effective_only_at_grant_time() {
        let mut m = SimpleMem::new(10, 20);
        let l = Line::from_raw(2);
        m.issue_ownership(l, 0).unwrap();
        assert!(!m.has_ownership(l), "RFO in flight, not owned yet");
        let due = m.take_due(20);
        assert!(matches!(due[0].kind, NoticeKind::OwnershipDone { .. }));
        assert!(m.has_ownership(l), "owned once the grant arrives");
    }

    #[test]
    fn invalidation_revokes_ownership() {
        let mut m = SimpleMem::new(10, 20);
        let l = Line::from_raw(2);
        m.issue_ownership(l, 0).unwrap();
        let _ = m.take_due(20);
        assert!(m.has_ownership(l));
        m.inject_invalidation(l, 30);
        assert!(!m.has_ownership(l));
        let due = m.take_due(30);
        assert!(matches!(due[0].kind, NoticeKind::Invalidated { .. }));
    }
}
