//! # sa-metrics — always-on aggregate observability
//!
//! `sa-trace` answers *what happened at cycle N* with a per-event stream;
//! it is the right tool for litmus-scale forensics and far too heavy for
//! full workload sweeps. This crate answers the complementary questions
//! the paper's evaluation actually argues over — *where did every cycle
//! go* (Table IV, Figures 9–10) and *when inside the run did the gate or
//! SB pressure happen* — with near-zero-cost aggregate structures that
//! stay on for every run:
//!
//! * [`cpi::CpiStack`] — a top-down retire-slot account: every
//!   `width × cycles` slot of a core is attributed to exactly one
//!   [`cpi::CpiCategory`] (retiring, gate-stall, SLFSpec-SB-wait,
//!   NoSpec-block, memory-miss, squash refill, branch redirect,
//!   frontend/empty, other-backend), with the hard invariant that the
//!   categories sum to the total slot count. This generalizes Figure 9's
//!   three dispatch-stall bars into a full CPI stack and decomposes the
//!   Figure 10 deltas between the five configurations.
//! * [`sample::Sampler`] — a bounded interval time-series: every N cycles
//!   a [`sample::Sample`] snapshots IPC, window occupancy, SB depth, gate
//!   open/closed fraction, outstanding misses and squash counts, so a
//!   run's *trajectory* (x264's contention bursts, mcf's eviction storms)
//!   is visible instead of one end-of-run average.
//! * [`occupancy::OccupancyHists`] — per-structure occupancy histograms,
//!   recorded always-on by the core (previously only available through
//!   `sa-trace`'s counters sink; that sink now bridges into the same
//!   representation).
//! * [`registry::Registry`] + exporters — a flat metrics registry with
//!   hand-written, fully offline Prometheus text-format and CSV/JSON
//!   exporters (same style as `sa-trace::chrome`).
//!
//! The crate depends only on `sa-isa`; the simulator layers (`sa-ooo`,
//! `sa-sim`) feed it, and `sa-bench --bin perf` turns it into the
//! repository's perf-regression baseline (`BENCH_pr2.json`).

pub mod cpi;
pub mod hist;
pub mod json;
pub mod jsonval;
pub mod occupancy;
pub mod registry;
pub mod sample;

pub use cpi::{CpiCategory, CpiStack, CPI_CATEGORIES};
pub use hist::{log2_bucket, log2_bucket_bound, Log2Hist, LOG2_BUCKETS};
pub use json::JsonWriter;
pub use jsonval::JsonValue;
pub use occupancy::OccupancyHists;
pub use registry::Registry;
pub use sample::{samples_csv, Sample, SampleInput, Sampler};

/// Percentage `100 * num / den`, 0.0 when the denominator is zero.
///
/// The single shared definition of the zero-denominator-safe percentage
/// previously duplicated across `sa_ooo::stats` and `sa_sim::report`.
pub fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Plain ratio `num / den`, 0.0 when the denominator is zero.
pub fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Per-core metrics the simulator accumulates alongside `CoreStats`: the
/// retire-slot CPI stack and the window-occupancy histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreMetrics {
    /// Retire-slot attribution (sums to `width × cycles`).
    pub cpi: CpiStack,
    /// ROB/LQ/SQ-SB occupancy histograms, one bump per structure per
    /// cycle.
    pub occ: OccupancyHists,
}

impl CoreMetrics {
    /// Pre-sizes the occupancy histograms so the per-cycle bump never
    /// reallocates.
    pub fn with_capacities(rob: usize, lq: usize, sq: usize) -> CoreMetrics {
        CoreMetrics {
            cpi: CpiStack::default(),
            occ: OccupancyHists::with_capacities(rob, lq, sq),
        }
    }

    /// Merges another core's metrics into this one.
    pub fn merge(&mut self, o: &CoreMetrics) {
        self.cpi.merge(&o.cpi);
        self.occ.merge(&o.occ);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_and_ratio_handle_zero_denominators() {
        assert_eq!(pct(5, 0), 0.0);
        assert!((pct(24, 100) - 24.0).abs() < 1e-12);
        assert_eq!(ratio(5.0, 0.0), 0.0);
        assert!((ratio(3.0, 2.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn core_metrics_merge_combines_both_halves() {
        let mut a = CoreMetrics::with_capacities(4, 2, 2);
        a.cpi.add(CpiCategory::Retiring, 10);
        a.occ.record(1, 0, 0);
        let mut b = CoreMetrics::default();
        b.cpi.add(CpiCategory::GateStall, 3);
        b.occ.record(1, 1, 1);
        a.merge(&b);
        assert_eq!(a.cpi.total(), 13);
        assert_eq!(a.occ.rob[1], 2);
    }
}
