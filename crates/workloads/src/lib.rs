//! Synthetic workload generation calibrated to the paper's evaluation.
//!
//! The paper drives its simulator with SPLASH-3 + PARSEC 3.0 (parallel)
//! and SPECrate CPU 2017 (sequential). Those binaries and inputs are not
//! reproducible here, so this crate generates *synthetic traces* whose
//! first-order characteristics are calibrated per benchmark to the
//! numbers the paper itself reports in Table IV — the fraction of loads,
//! the fraction of store-to-load-forwarded loads — plus qualitative
//! behaviors the paper calls out by name:
//!
//! * `barnes`: stack-heavy recursion → very high forwarding (18.3%).
//! * `x264`: a contended `pthread_cond_wait` variable → forwarding on a
//!   hot shared line under invalidation fire (10.2% re-execution).
//! * `505.mcf`: a working set far beyond the L2 → cache evictions hitting
//!   SA-speculative loads (11.7% re-execution).
//! * `radix` / `519.lbm`: long streams of stores → SQ/SB pressure.
//!
//! The generator is seeded and fully deterministic.
//!
//! ```
//! use sa_workloads::{parallel_suite, spec_suite};
//! let p = parallel_suite();
//! assert_eq!(p.len(), 25);
//! assert_eq!(spec_suite().len(), 36);
//! let barnes = &p[0];
//! let traces = barnes.generate(8, 2_000, 42);
//! assert_eq!(traces.len(), 8);
//! ```

mod cache;
pub mod generator;
pub mod spec;
pub mod suites;

pub use generator::TraceGen;
/// The in-tree seeded RNG driving trace generation (SplitMix64 seeding,
/// xoshiro256** stream) — re-exported so workload consumers don't need a
/// direct `sa-isa` dependency for it.
pub use sa_isa::rng;
pub use spec::{Suite, WorkloadSpec};
pub use suites::{by_name, parallel_suite, spec_suite};
