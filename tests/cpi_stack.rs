//! The retire-slot CPI stack: accounting invariant and paper shape.
//!
//! The invariant — every core's categories sum to exactly
//! `width × cycles` — is what makes the stack an account instead of a
//! set of overlapping counters. It must hold for every configuration on
//! both communication-heavy litmus traces and generated workloads.

use sa_isa::ConsistencyModel;
use sa_metrics::CpiCategory;
use sa_sim::{Multicore, Report, SimConfig};

fn run_litmus(name: &str, model: ConsistencyModel) -> Report {
    let ct = match name {
        "n6" => sa_litmus::suite::n6(),
        "mp" => sa_litmus::suite::mp(),
        other => panic!("unknown litmus test {other}"),
    };
    let traces = ct.test.to_traces();
    let cfg = SimConfig::default()
        .with_model(model)
        .with_cores(traces.len());
    let mut sim = Multicore::new(cfg, traces);
    sim.run(5_000_000).expect("litmus completes");
    sim.report()
}

fn run_workload(name: &str, model: ConsistencyModel, instrs: usize) -> Report {
    let w = sa_workloads::by_name(name).expect("workload exists");
    let cfg = SimConfig::default().with_model(model).with_cores(8);
    let mut sim = Multicore::new(cfg, w.generate(8, instrs, 7));
    sim.run(u64::MAX).expect("workload completes");
    sim.report()
}

fn assert_balances(r: &Report, what: &str) {
    assert!(
        r.cpi_invariant_holds(),
        "{what} under {}: CPI stack out of balance",
        r.model
    );
    for (i, (m, s)) in r.metrics.iter().zip(&r.per_core).enumerate() {
        m.cpi.assert_invariant(r.width as u64, s.cycles);
        assert!(
            m.cpi.get(CpiCategory::Retiring) >= s.retired_instrs,
            "{what} core {i}: fewer retiring slots than retired instructions"
        );
    }
}

/// Every slot of every core is charged exactly once, in every
/// configuration, on litmus traces and a generated workload.
#[test]
fn cpi_stack_balances_in_all_configs() {
    for model in ConsistencyModel::ALL {
        for name in ["n6", "mp"] {
            let r = run_litmus(name, model);
            assert_balances(&r, name);
        }
        let r = run_workload("dedup", model, 1_500);
        assert_balances(&r, "dedup");
        // A machine-level sanity bound: merged shares sum to ~100%.
        let sum: f64 = r.cpi_total().shares_pct().iter().sum();
        assert!((sum - 100.0).abs() < 1e-6, "{model}: shares sum to {sum}");
    }
}

/// The model-specific categories appear only under the models that have
/// the corresponding mechanism.
#[test]
fn model_specific_categories_are_exclusive() {
    for model in ConsistencyModel::ALL {
        let r = run_workload("dedup", model, 1_500);
        let t = r.cpi_total();
        if !matches!(
            model,
            ConsistencyModel::Ibm370SlfSos | ConsistencyModel::Ibm370SlfSosKey
        ) {
            assert_eq!(t.get(CpiCategory::GateStall), 0, "{model} has no gate");
        }
        if model != ConsistencyModel::Ibm370SlfSpec {
            assert_eq!(
                t.get(CpiCategory::SlfSbWait),
                0,
                "{model} has no SLFSpec SB-drain rule"
            );
        }
    }
}

/// The paper's headline shape (§VI): the key-indexed gate recovers most
/// of what blanket enforcement loses. In CPI-stack terms, on an
/// SLF-heavy workload the `370-SLFSpec` SB-wait share dwarfs the
/// `370-SLFSoS-key` gate-stall share, and `370-NoSpec` charges
/// substantial slots to store-commit blocking while x86 charges none.
#[test]
fn cpi_shape_matches_paper() {
    let instrs = 3_000;
    let slfspec = run_workload("dedup", ConsistencyModel::Ibm370SlfSpec, instrs);
    let key = run_workload("dedup", ConsistencyModel::Ibm370SlfSosKey, instrs);
    let nospec = run_workload("dedup", ConsistencyModel::Ibm370NoSpec, instrs);
    let x86 = run_workload("dedup", ConsistencyModel::X86, instrs);

    let sb_wait = slfspec.cpi_total().share_pct(CpiCategory::SlfSbWait);
    let gate = key.cpi_total().share_pct(CpiCategory::GateStall);
    assert!(
        sb_wait > gate,
        "SLFSpec SB-wait share ({sb_wait:.2}%) should exceed the \
         SLFSoS-key gate-stall share ({gate:.2}%)"
    );

    let blocked = nospec.cpi_total().get(CpiCategory::NoSpecBlock);
    assert!(
        blocked > 0,
        "NoSpec must charge slots to store-commit blocking"
    );
    assert_eq!(x86.cpi_total().get(CpiCategory::NoSpecBlock), 0);
}

/// Print the stacks for eyeballing (`--nocapture`); not an assertion.
#[test]
fn print_dedup_stacks() {
    for model in ConsistencyModel::ALL {
        let r = run_workload("dedup", model, 3_000);
        let t = r.cpi_total();
        let mut line = format!("{:<16} cycles {:>8}", r.model.label(), r.cycles);
        for cat in CpiCategory::ALL {
            line.push_str(&format!(" {}={:.1}%", cat.label(), t.share_pct(cat)));
        }
        println!("{line}");
    }
}
