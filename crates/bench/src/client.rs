//! A minimal blocking HTTP client for sa-serve — enough for the e2e
//! tests, the CI smoke job and shell scripting against a local service.
//! One request per connection (the server replies `Connection: close`),
//! plain `std::net`, no dependencies.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use sa_metrics::JsonValue;

/// A client bound to one local sa-serve instance.
#[derive(Debug, Clone, Copy)]
pub struct ServeClient {
    port: u16,
}

impl ServeClient {
    /// A client for the service on `127.0.0.1:port`.
    pub fn new(port: u16) -> ServeClient {
        ServeClient { port }
    }

    /// Sends one request; returns `(status code, body)`.
    pub fn request(&self, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        let mut s = TcpStream::connect(("127.0.0.1", self.port))?;
        s.set_read_timeout(Some(Duration::from_secs(30)))?;
        s.set_write_timeout(Some(Duration::from_secs(30)))?;
        write!(
            s,
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        let mut resp = String::new();
        s.read_to_string(&mut resp)?;
        let (head, body) = resp.split_once("\r\n\r\n").ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no header terminator")
        })?;
        let status = head
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse::<u16>().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
            })?;
        Ok((status, body.to_string()))
    }

    /// `GET path`.
    pub fn get(&self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    /// `POST path` with a body.
    pub fn post(&self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    /// Submits a job spec. `Ok(Ok(id))` on 202, `Ok(Err((status, body)))`
    /// on any rejection (e.g. 429 backpressure).
    #[allow(clippy::type_complexity)]
    pub fn submit(&self, spec: &str) -> std::io::Result<Result<u64, (u16, String)>> {
        let (status, body) = self.post("/jobs", spec)?;
        if status != 202 {
            return Ok(Err((status, body)));
        }
        let id = JsonValue::parse(&body)
            .ok()
            .and_then(|v| v.get("id").and_then(|i| i.as_u64()))
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "202 reply without an id")
            })?;
        Ok(Ok(id))
    }

    /// Polls `/jobs/<id>` until the job is terminal (`done`/`failed`) or
    /// `timeout` elapses; returns the final parsed status document.
    pub fn poll(&self, id: u64, timeout: Duration) -> std::io::Result<JsonValue> {
        let deadline = Instant::now() + timeout;
        loop {
            let (status, body) = self.get(&format!("/jobs/{id}"))?;
            if status != 200 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("poll {id}: HTTP {status}: {body}"),
                ));
            }
            let v = JsonValue::parse(&body).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("poll {id}: {e}"))
            })?;
            match v.get("status").and_then(|s| s.as_str()) {
                Some("done") | Some("failed") => return Ok(v),
                _ if Instant::now() >= deadline => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!("job {id} not terminal after {timeout:?}"),
                    ))
                }
                _ => std::thread::sleep(Duration::from_millis(15)),
            }
        }
    }

    /// Waits for a job by following its `GET /jobs/<id>/events` stream —
    /// the server holds the connection open and closes it at terminal
    /// status, so no blind polling happens — then fetches the final
    /// status document. If the stream cannot be established or dies
    /// mid-flight (old server, proxy buffering, timeout), falls back to
    /// [`ServeClient::poll`] for the remaining time.
    pub fn wait(&self, id: u64, timeout: Duration) -> std::io::Result<JsonValue> {
        let deadline = Instant::now() + timeout;
        let _ = self.follow_events(id, deadline);
        // Stream done (job terminal) or stream failed: one status GET
        // either returns immediately or degrades to the polling loop.
        let left = deadline
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(50));
        self.poll(id, left)
    }

    /// Streams a job's ndjson lifecycle events until the server closes
    /// the connection (terminal status) or `deadline` passes; returns
    /// the raw event lines in arrival order.
    pub fn follow_events(&self, id: u64, deadline: Instant) -> std::io::Result<Vec<String>> {
        let mut s = TcpStream::connect(("127.0.0.1", self.port))?;
        s.set_read_timeout(Some(Duration::from_millis(500)))?;
        s.set_write_timeout(Some(Duration::from_secs(5)))?;
        write!(
            s,
            "GET /jobs/{id}/events HTTP/1.1\r\nHost: localhost\r\n\r\n"
        )?;
        let mut raw = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            format!("job {id} event stream still open at deadline"),
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let text = String::from_utf8_lossy(&raw);
        let (head, body) = text.split_once("\r\n\r\n").ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no header terminator")
        })?;
        if !head.contains("200") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!(
                    "event stream for {id}: {}",
                    head.lines().next().unwrap_or("")
                ),
            ));
        }
        // Strip the chunked framing: event lines are the ones that look
        // like JSON objects; size lines and blank separators are not.
        Ok(body
            .lines()
            .filter(|l| l.starts_with('{'))
            .map(|l| l.to_string())
            .collect())
    }

    /// Requests a drain-and-exit; returns the server's reply.
    pub fn shutdown(&self) -> std::io::Result<(u16, String)> {
        self.post("/shutdown", "")
    }
}
