//! The five consistency-model configurations evaluated by the paper.

/// A consistency-model implementation for the out-of-order core
/// (Section V of the paper).
///
/// All five run the same TSO out-of-order baseline with in-window
/// load-load speculation; they differ only in how store-to-load forwarding
/// interacts with store atomicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConsistencyModel {
    /// Non-store-atomic x86-TSO: free store-to-load forwarding, no
    /// enforcement of store atomicity.
    X86,
    /// Blanket (non-speculative) store atomicity as in the IBM 370: a load
    /// that matches a store in the SQ/SB may not perform until that store
    /// has written to the L1.
    Ibm370NoSpec,
    /// SC-like in-window speculation adapted to the 370 model: SLF loads
    /// are themselves *speculative* and cannot retire until the store
    /// buffer empties.
    Ibm370SlfSpec,
    /// SLF loads are sources of speculation: they retire, closing the
    /// retire gate; the gate reopens when the store buffer drains empty.
    Ibm370SlfSos,
    /// The paper's proposal (370-SLFSoS-key): the retiring SLF load locks
    /// the gate with the key of its forwarding store; the gate reopens as
    /// soon as that store writes to the L1.
    Ibm370SlfSosKey,
}

impl ConsistencyModel {
    /// All models, in the order the paper's figures present them.
    pub const ALL: [ConsistencyModel; 5] = [
        ConsistencyModel::X86,
        ConsistencyModel::Ibm370NoSpec,
        ConsistencyModel::Ibm370SlfSpec,
        ConsistencyModel::Ibm370SlfSos,
        ConsistencyModel::Ibm370SlfSosKey,
    ];

    /// The store-atomic configurations (everything except x86).
    pub const STORE_ATOMIC: [ConsistencyModel; 4] = [
        ConsistencyModel::Ibm370NoSpec,
        ConsistencyModel::Ibm370SlfSpec,
        ConsistencyModel::Ibm370SlfSos,
        ConsistencyModel::Ibm370SlfSosKey,
    ];

    /// `true` when this implementation guarantees store atomicity
    /// (all cores see every store inserted in global memory order at the
    /// same time — a core never observably sees its own stores early).
    pub fn is_store_atomic(self) -> bool {
        !matches!(self, ConsistencyModel::X86)
    }

    /// `true` when a load may take its value from an in-limbo store in the
    /// SQ/SB (store-to-load forwarding before the store is globally
    /// ordered).
    pub fn allows_forwarding(self) -> bool {
        !matches!(self, ConsistencyModel::Ibm370NoSpec)
    }

    /// `true` when the configuration uses the retire gate.
    pub fn uses_retire_gate(self) -> bool {
        matches!(
            self,
            ConsistencyModel::Ibm370SlfSos | ConsistencyModel::Ibm370SlfSosKey
        )
    }

    /// `true` when the gate is unlocked by the forwarding store's key
    /// (rather than by the store buffer draining empty).
    pub fn uses_key(self) -> bool {
        matches!(self, ConsistencyModel::Ibm370SlfSosKey)
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ConsistencyModel::X86 => "x86",
            ConsistencyModel::Ibm370NoSpec => "370-NoSpec",
            ConsistencyModel::Ibm370SlfSpec => "370-SLFSpec",
            ConsistencyModel::Ibm370SlfSos => "370-SLFSoS",
            ConsistencyModel::Ibm370SlfSosKey => "370-SLFSoS-key",
        }
    }

    /// The inverse of [`ConsistencyModel::label`] — how external inputs
    /// (CLI flags, HTTP job specs) name a configuration.
    pub fn from_label(label: &str) -> Option<ConsistencyModel> {
        ConsistencyModel::ALL
            .into_iter()
            .find(|m| m.label() == label)
    }
}

impl std::fmt::Display for ConsistencyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomicity_classification() {
        assert!(!ConsistencyModel::X86.is_store_atomic());
        for m in ConsistencyModel::STORE_ATOMIC {
            assert!(m.is_store_atomic(), "{m} must be store-atomic");
        }
    }

    #[test]
    fn forwarding_classification() {
        assert!(ConsistencyModel::X86.allows_forwarding());
        assert!(!ConsistencyModel::Ibm370NoSpec.allows_forwarding());
        assert!(ConsistencyModel::Ibm370SlfSpec.allows_forwarding());
        assert!(ConsistencyModel::Ibm370SlfSos.allows_forwarding());
        assert!(ConsistencyModel::Ibm370SlfSosKey.allows_forwarding());
    }

    #[test]
    fn gate_usage() {
        assert!(!ConsistencyModel::X86.uses_retire_gate());
        assert!(!ConsistencyModel::Ibm370SlfSpec.uses_retire_gate());
        assert!(ConsistencyModel::Ibm370SlfSos.uses_retire_gate());
        assert!(ConsistencyModel::Ibm370SlfSosKey.uses_retire_gate());
        assert!(ConsistencyModel::Ibm370SlfSosKey.uses_key());
        assert!(!ConsistencyModel::Ibm370SlfSos.uses_key());
    }

    #[test]
    fn from_label_round_trips() {
        for m in ConsistencyModel::ALL {
            assert_eq!(ConsistencyModel::from_label(m.label()), Some(m));
        }
        assert_eq!(ConsistencyModel::from_label("370"), None);
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = ConsistencyModel::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec![
                "x86",
                "370-NoSpec",
                "370-SLFSpec",
                "370-SLFSoS",
                "370-SLFSoS-key"
            ]
        );
    }
}
