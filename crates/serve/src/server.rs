//! The long-running job service: acceptor threads, a bounded worker
//! pool, the memoized oracle in front of the simulators, the fuzzing
//! farm, and graceful shutdown.
//!
//! ## Routes
//!
//! | method | path          | body / reply |
//! |--------|---------------|--------------|
//! | POST   | `/jobs`       | job spec JSON → 202 `{id}`, 429 when the queue is full |
//! | GET    | `/jobs/<id>`  | job status/result JSON (404 once evicted) |
//! | GET    | `/jobs/<id>/events` | chunked ndjson lifecycle stream, closes at terminal status |
//! | GET    | `/jobs`       | queue/status summary |
//! | POST   | `/farm`       | `{programs, seed}` → starts a generator burst |
//! | GET    | `/coverage`   | cumulative config × shape × outcome matrix |
//! | GET    | `/metrics`    | Prometheus exposition (counters + latency histograms) |
//! | GET    | `/profile`    | aggregated host wall-time tree (`/folded`, `/chrome` variants) |
//! | GET    | `/forensics`  | latest violation-triage summary JSON |
//! | POST   | `/shutdown`   | loopback-only: stop accepting, drain, flush |
//!
//! ## Job lifecycle
//!
//! `POST /jobs` parses the spec, registers a `queued` record and
//! enqueues the id — all under the job-store lock, so a worker can never
//! pop an id whose record does not exist. A full queue rejects with 429
//! *before* a record is created: rejected work leaves no trace and no
//! memory. Workers claim ids, execute outside all locks, and settle the
//! record (`done`/`failed`); terminal records are retained in a bounded
//! ring. On `/shutdown` the queue closes: everything already accepted
//! drains to a terminal status, then workers, farm and acceptors exit
//! and the final coverage checkpoint is flushed.

use std::collections::HashSet;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sa_isa::rng::Xoshiro256;
use sa_isa::ConsistencyModel;
use sa_litmus::ast::LOp;
use sa_litmus::{
    canonicalize, explore, policy_for, render_allowed_doc, shape_label, suite, CorpusStream,
    ForwardPolicy, GenConfig, OutcomeSet,
};
use sa_metrics::{JsonWriter, Log2Hist, Registry};
use sa_ooo::InjectedBug;
use sa_profile::{Profiler, WallProfiler};
use sa_workloads::Suite as WorkloadSuite;

use crate::cache::{CachedSets, OracleCache};
use crate::http::{read_request, respond, Request};
use crate::job::{JobSpec, Jobs, LitmusJob, WorkloadJob};
use crate::queue::{BoundedQueue, PushError};
use crate::sim::{pad_patterns, run_on_sim};
use crate::triage::triage_violation;

/// Canonical forms remembered for farm dedup before the set stops
/// growing (beyond it, duplicates are no longer detected — bounded
/// memory beats perfect dedup on an unbounded run).
const CORPUS_CAP: usize = 100_000;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (0 picks a free one).
    pub port: u16,
    /// Worker pool size.
    pub workers: usize,
    /// Acceptor threads (each handles one connection at a time).
    pub acceptors: usize,
    /// Bounded queue capacity — the backpressure point.
    pub queue_cap: usize,
    /// Terminal job records retained for polling before eviction.
    pub retain: usize,
    /// Directory for triage reports and coverage checkpoints
    /// (`None` disables persistence).
    pub results_dir: Option<PathBuf>,
    /// Master seed for pad sweeps and the boot farm.
    pub seed: u64,
    /// Bug planted in every simulation — lets a farm run prove it can
    /// catch what it is hunting.
    pub mutate: Option<InjectedBug>,
    /// Flush a coverage checkpoint every this many completed jobs.
    pub checkpoint_every: u64,
    /// Start a farm of this many programs at boot.
    pub farm: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            port: 0,
            workers: 4,
            acceptors: 2,
            queue_cap: 64,
            retain: 1024,
            results_dir: None,
            seed: 4,
            mutate: None,
            checkpoint_every: 64,
            farm: None,
        }
    }
}

/// Monotonic service counters (exported at `/metrics`).
#[derive(Debug, Default)]
pub struct Counters {
    /// `POST /jobs` requests that parsed.
    pub submitted: AtomicU64,
    /// Jobs accepted into the queue.
    pub accepted: AtomicU64,
    /// Submissions rejected with 429 (queue full).
    pub rejected: AtomicU64,
    /// Jobs settled `done`.
    pub completed: AtomicU64,
    /// Jobs settled `failed`.
    pub failed: AtomicU64,
    /// Cycle-level simulations executed.
    pub sims: AtomicU64,
    /// Programs drawn by farm generators.
    pub farm_generated: AtomicU64,
    /// Farm draws dropped as canonical duplicates.
    pub farm_deduped: AtomicU64,
    /// Containment violations observed.
    pub violations: AtomicU64,
    /// Violations triaged through the forensics pipeline.
    pub triaged: AtomicU64,
    /// Coverage checkpoints flushed.
    pub checkpoints: AtomicU64,
}

fn inc(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed) + 1
}

fn get(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

/// Everything the acceptor, worker and farm threads share.
struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue<u64>,
    jobs: Mutex<Jobs>,
    /// Paired with `jobs`: notified after every job-store mutation so
    /// `GET /jobs/<id>/events` streams wake promptly instead of polling.
    jobs_cv: Condvar,
    /// Per-endpoint request-handling latency histograms (nanoseconds).
    http_hists: Mutex<Vec<(&'static str, Log2Hist)>>,
    cache: Mutex<OracleCache>,
    coverage: Mutex<crate::coverage::Coverage>,
    corpus: Mutex<HashSet<Vec<Vec<LOp>>>>,
    counters: Counters,
    /// sa-scalescope telemetry of the most recent parallel-engine
    /// workload job, surfaced as `sa_parallel_*` on `/metrics`.
    parallel_scope: Mutex<Option<sa_sim::ParallelScope>>,
    latest_triage: Mutex<String>,
    farm_threads: Mutex<Vec<JoinHandle<()>>>,
    shutdown: AtomicBool,
    accept_done: AtomicBool,
    shutdown_signal: (Mutex<bool>, Condvar),
}

/// What a drained server reports back.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Jobs settled `done`.
    pub completed: u64,
    /// Jobs settled `failed`.
    pub failed: u64,
    /// Submissions rejected with 429.
    pub rejected: u64,
    /// Oracle memo-cache hits / misses / size at exit.
    pub cache: (u64, u64, u64),
    /// Containment violations observed.
    pub violations: u64,
    /// Populated coverage cells.
    pub coverage_cells: u64,
    /// Final checkpoint path, when persistence was on.
    pub checkpoint: Option<PathBuf>,
}

/// A running service instance.
pub struct Server {
    shared: Arc<Shared>,
    port: u16,
    acceptors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns acceptors + workers (+ the boot farm, if
    /// configured) and returns immediately.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let port = listener.local_addr()?.port();
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_cap),
            jobs: Mutex::new(Jobs::new(cfg.retain)),
            jobs_cv: Condvar::new(),
            http_hists: Mutex::new(Vec::new()),
            cache: Mutex::new(OracleCache::new()),
            coverage: Mutex::new(crate::coverage::Coverage::new()),
            corpus: Mutex::new(HashSet::new()),
            counters: Counters::default(),
            parallel_scope: Mutex::new(None),
            latest_triage: Mutex::new(String::new()),
            farm_threads: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            accept_done: AtomicBool::new(false),
            shutdown_signal: (Mutex::new(false), Condvar::new()),
            cfg,
        });
        let mut acceptors = Vec::new();
        for _ in 0..shared.cfg.acceptors.max(1) {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            acceptors.push(std::thread::spawn(move || accept_loop(listener, shared)));
        }
        let mut workers = Vec::new();
        for _ in 0..shared.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        if let Some(programs) = shared.cfg.farm {
            let seed = shared.cfg.seed;
            spawn_farm(&shared, programs, seed);
        }
        Ok(Server {
            shared,
            port,
            acceptors,
            workers,
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Initiates shutdown programmatically (same effect as
    /// `POST /shutdown`).
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Blocks until shutdown is initiated, then drains everything:
    /// farm generators, the worker pool (every accepted job reaches a
    /// terminal status), the final coverage checkpoint, and the
    /// acceptors. Returns the exit report.
    pub fn join(mut self) -> ShutdownReport {
        let (lock, cv) = &self.shared.shutdown_signal;
        let mut down = lock.lock().expect("shutdown signal");
        while !*down {
            down = cv.wait(down).expect("shutdown signal");
        }
        drop(down);
        let farms: Vec<JoinHandle<()>> = self
            .shared
            .farm_threads
            .lock()
            .expect("farm threads")
            .drain(..)
            .collect();
        for f in farms {
            let _ = f.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let checkpoint = write_checkpoint(&self.shared);
        // Wake each acceptor blocked in accept() with a throwaway
        // connection, then collect them.
        self.shared.accept_done.store(true, Ordering::SeqCst);
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect(("127.0.0.1", self.port));
        }
        for a in self.acceptors.drain(..) {
            let _ = a.join();
        }
        let c = &self.shared.counters;
        let cache = self.shared.cache.lock().expect("cache");
        ShutdownReport {
            completed: get(&c.completed),
            failed: get(&c.failed),
            rejected: get(&c.rejected),
            cache: (cache.hits(), cache.misses(), cache.len() as u64),
            violations: get(&c.violations),
            coverage_cells: self.shared.coverage.lock().expect("coverage").cells() as u64,
            checkpoint,
        }
    }
}

fn initiate_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.queue.close();
    let (lock, cv) = &shared.shutdown_signal;
    *lock.lock().expect("shutdown signal") = true;
    cv.notify_all();
}

// ---------------------------------------------------------------- HTTP

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let Ok((stream, peer)) = listener.accept() else {
            continue;
        };
        if shared.accept_done.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
        let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(5)));
        let _ = handle_conn(stream, peer, &shared);
    }
}

/// A top-level JSON string literal (quoted, escaped).
fn json_str(s: &str) -> String {
    let mut j = JsonWriter::new();
    j.string(s);
    j.finish()
}

fn err_json(msg: &str) -> String {
    format!("{{\"error\":{}}}", json_str(msg))
}

fn handle_conn(
    mut stream: TcpStream,
    peer: SocketAddr,
    shared: &Arc<Shared>,
) -> std::io::Result<()> {
    let req = match read_request(&mut stream)? {
        Ok(r) => r,
        Err(bad) => {
            return respond(
                &mut stream,
                bad.status(),
                "application/json",
                &err_json("bad request"),
            )
        }
    };
    let start = Instant::now();
    // `GET /jobs/<id>/events` holds the connection open for the job's
    // lifetime; hand it to a detached thread so this acceptor stays free.
    if req.method == "GET" {
        if let Some(id_str) = req
            .path
            .strip_prefix("/jobs/")
            .and_then(|rest| rest.strip_suffix("/events"))
        {
            let reply = start_event_stream(stream, id_str, shared);
            observe_http(shared, endpoint_family(&req.method, &req.path), start);
            let (mut stream, status, body) = match reply {
                None => return Ok(()),
                Some(r) => r,
            };
            return respond(&mut stream, status, "application/json", &body);
        }
    }
    let (status, ctype, body) = route(&req, peer, shared);
    observe_http(shared, endpoint_family(&req.method, &req.path), start);
    respond(&mut stream, status, ctype, &body)
}

/// The latency-histogram label for a request: one stable name per route
/// family so ids and typos cannot explode the label space.
fn endpoint_family(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("GET", "/") => "index",
        ("POST", "/jobs") => "submit",
        ("GET", "/jobs") => "jobs_summary",
        ("GET", p) if p.starts_with("/jobs/") && p.ends_with("/events") => "job_events",
        ("GET", p) if p.starts_with("/jobs/") => "job_status",
        ("POST", "/farm") => "farm",
        ("GET", "/coverage") => "coverage",
        ("GET", "/metrics") => "metrics",
        ("GET", p) if p == "/profile" || p.starts_with("/profile/") => "profile",
        ("GET", "/forensics") => "forensics",
        ("POST", "/shutdown") => "shutdown",
        _ => "other",
    }
}

/// Books one request's handling time into its endpoint's histogram.
fn observe_http(shared: &Shared, endpoint: &'static str, start: Instant) {
    let ns = start.elapsed().as_nanos() as u64;
    let mut hists = shared.http_hists.lock().expect("http hists");
    match hists.iter_mut().find(|(e, _)| *e == endpoint) {
        Some((_, h)) => h.observe(ns),
        None => {
            let mut h = Log2Hist::new();
            h.observe(ns);
            hists.push((endpoint, h));
        }
    }
}

fn route(
    req: &Request,
    peer: SocketAddr,
    shared: &Arc<Shared>,
) -> (&'static str, &'static str, String) {
    const JSON: &str = "application/json";
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/") => ("200 OK", "text/plain", INDEX.to_string()),
        ("POST", "/jobs") => submit(req, shared),
        ("GET", "/jobs") => ("200 OK", JSON, jobs_summary(shared)),
        ("GET", path) if path.starts_with("/jobs/") => job_status(&path[6..], shared),
        ("POST", "/farm") => start_farm(req, shared),
        ("GET", "/coverage") => (
            "200 OK",
            JSON,
            shared.coverage.lock().expect("coverage").json(),
        ),
        ("GET", "/metrics") => ("200 OK", "text/plain; version=0.0.4", metrics_text(shared)),
        ("GET", "/profile") => ("200 OK", JSON, sa_profile::harvest().to_json()),
        ("GET", "/profile/folded") => ("200 OK", "text/plain", sa_profile::harvest().folded()),
        ("GET", "/profile/chrome") => ("200 OK", JSON, sa_profile::harvest().to_chrome()),
        ("GET", "/forensics") => {
            let t = shared.latest_triage.lock().expect("triage").clone();
            if t.is_empty() {
                ("200 OK", JSON, "{\"status\":\"no triage yet\"}".to_string())
            } else {
                ("200 OK", JSON, t)
            }
        }
        ("POST", "/shutdown") => {
            // Loopback-only: the socket is bound to 127.0.0.1, but check
            // the peer anyway so a port-forwarded deployment cannot be
            // shut down remotely.
            if !peer.ip().is_loopback() {
                return ("403 Forbidden", JSON, err_json("loopback only"));
            }
            let queued = shared.queue.len();
            initiate_shutdown(shared);
            (
                "200 OK",
                JSON,
                format!("{{\"status\":\"shutting down\",\"draining\":{queued}}}"),
            )
        }
        _ => ("404 Not Found", JSON, err_json("no such route")),
    }
}

const INDEX: &str = "sa-serve: simulation as a service\n\
  POST /jobs       submit a litmus or workload job (JSON)\n\
  GET  /jobs       queue summary\n\
  GET  /jobs/<id>  poll a job\n\
  GET  /jobs/<id>/events  live ndjson lifecycle stream (chunked)\n\
  POST /farm       start a fuzzing-farm burst {\"programs\":N,\"seed\":S}\n\
  GET  /coverage   config x shape x outcome matrix\n\
  GET  /metrics    Prometheus exposition\n\
  GET  /profile    host wall-time tree (/profile/folded, /profile/chrome)\n\
  GET  /forensics  latest violation triage\n\
  POST /shutdown   drain and exit (loopback only)\n";

fn submit(req: &Request, shared: &Shared) -> (&'static str, &'static str, String) {
    const JSON: &str = "application/json";
    inc(&shared.counters.submitted);
    let body = String::from_utf8_lossy(&req.body);
    let spec = match JobSpec::parse(&body) {
        Ok(s) => s,
        Err(e) => return ("400 Bad Request", JSON, err_json(&e)),
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        return ("503 Service Unavailable", JSON, err_json("shutting down"));
    }
    // Record + enqueue under one lock: a worker that pops the id always
    // finds the record; a 429 leaves neither.
    let mut jobs = shared.jobs.lock().expect("jobs");
    let id = jobs.create(spec);
    match shared.queue.try_push(id) {
        Ok(()) => {
            inc(&shared.counters.accepted);
            shared.jobs_cv.notify_all();
            (
                "202 Accepted",
                JSON,
                format!("{{\"id\":{id},\"status\":\"queued\",\"poll\":\"/jobs/{id}\"}}"),
            )
        }
        Err(PushError::Full) => {
            jobs.abort(id);
            inc(&shared.counters.rejected);
            (
                "429 Too Many Requests",
                JSON,
                err_json("queue full, retry later"),
            )
        }
        Err(PushError::Closed) => {
            jobs.abort(id);
            ("503 Service Unavailable", JSON, err_json("shutting down"))
        }
    }
}

fn job_status(id_str: &str, shared: &Shared) -> (&'static str, &'static str, String) {
    const JSON: &str = "application/json";
    let Ok(id) = id_str.parse::<u64>() else {
        return ("400 Bad Request", JSON, err_json("job ids are integers"));
    };
    let jobs = shared.jobs.lock().expect("jobs");
    let Some(r) = jobs.get(id) else {
        return ("404 Not Found", JSON, err_json("unknown or evicted job"));
    };
    let result = r.result.clone().unwrap_or_else(|| "null".to_string());
    let error = r
        .error
        .as_deref()
        .map(json_str)
        .unwrap_or_else(|| "null".to_string());
    let body = format!(
        "{{\"id\":{},\"name\":{},\"status\":\"{}\",\"cached\":{},\"result\":{},\"error\":{}}}",
        r.id,
        json_str(&r.name),
        r.status.label(),
        r.cached,
        result,
        error
    );
    ("200 OK", JSON, body)
}

/// Validates a `GET /jobs/<id>/events` request. On success the stream
/// is moved to a detached thread and `None` is returned; on error the
/// stream comes back with a status + body for a normal JSON response.
fn start_event_stream(
    stream: TcpStream,
    id_str: &str,
    shared: &Arc<Shared>,
) -> Option<(TcpStream, &'static str, String)> {
    let Ok(id) = id_str.parse::<u64>() else {
        return Some((stream, "400 Bad Request", err_json("job ids are integers")));
    };
    if shared.jobs.lock().expect("jobs").get(id).is_none() {
        return Some((stream, "404 Not Found", err_json("unknown or evicted job")));
    }
    let shared = Arc::clone(shared);
    std::thread::spawn(move || stream_events(stream, id, &shared));
    None
}

/// Writes one chunked-transfer-encoded ndjson line.
fn write_chunk(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    write!(stream, "{:x}\r\n{line}\n\r\n", line.len() + 1)
}

/// The body of one live event stream: drain the job's event log by
/// cursor, sleep on the jobs condvar between batches, close after the
/// terminal event (or when the record is evicted / the client hangs up).
fn stream_events(mut stream: TcpStream, id: u64, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
                Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut cursor = 0usize;
    loop {
        let (batch, terminal) = {
            let mut jobs = shared.jobs.lock().expect("jobs");
            loop {
                let Some(r) = jobs.get(id) else {
                    // Evicted mid-stream: nothing more will ever arrive.
                    let _ = stream.write_all(b"0\r\n\r\n");
                    return;
                };
                let terminal = r.status.is_terminal();
                if cursor < r.events.len() || terminal {
                    break (r.events[cursor.min(r.events.len())..].to_vec(), terminal);
                }
                // Bounded wait: the condvar wakes us on any job-store
                // mutation; the timeout covers lost wakeups + shutdown.
                jobs = shared
                    .jobs_cv
                    .wait_timeout(jobs, Duration::from_millis(250))
                    .expect("jobs cv")
                    .0;
            }
        };
        cursor += batch.len();
        for line in &batch {
            if write_chunk(&mut stream, line).is_err() {
                return;
            }
        }
        if terminal {
            break;
        }
    }
    let _ = stream.write_all(b"0\r\n\r\n");
}

fn jobs_summary(shared: &Shared) -> String {
    let (queued, running, done, failed) = shared.jobs.lock().expect("jobs").counts();
    let c = &shared.counters;
    format!(
        "{{\"queued\":{queued},\"running\":{running},\"done\":{done},\"failed\":{failed},\
         \"queue_depth\":{},\"accepted\":{},\"rejected\":{}}}",
        shared.queue.len(),
        get(&c.accepted),
        get(&c.rejected)
    )
}

fn start_farm(req: &Request, shared: &Arc<Shared>) -> (&'static str, &'static str, String) {
    const JSON: &str = "application/json";
    if shared.shutdown.load(Ordering::SeqCst) {
        return ("503 Service Unavailable", JSON, err_json("shutting down"));
    }
    let body = String::from_utf8_lossy(&req.body);
    let v = if body.trim().is_empty() {
        sa_metrics::JsonValue::parse("{}").expect("empty object")
    } else {
        match sa_metrics::JsonValue::parse(&body) {
            Ok(v) => v,
            Err(e) => {
                return (
                    "400 Bad Request",
                    JSON,
                    err_json(&format!("invalid JSON: {e}")),
                )
            }
        }
    };
    let programs = v.get("programs").and_then(|p| p.as_u64()).unwrap_or(100);
    let seed = v
        .get("seed")
        .and_then(|s| s.as_u64())
        .unwrap_or(shared.cfg.seed);
    if programs == 0 {
        return (
            "400 Bad Request",
            JSON,
            err_json("\"programs\" must be ≥ 1"),
        );
    }
    spawn_farm(shared, programs, seed);
    (
        "202 Accepted",
        JSON,
        format!("{{\"farm\":\"started\",\"programs\":{programs},\"seed\":{seed}}}"),
    )
}

// --------------------------------------------------------------- workers

/// Appends a mid-run phase marker to a job's event stream and wakes any
/// attached `GET /jobs/<id>/events` connections.
fn progress(shared: &Shared, id: u64, phase: &str) {
    shared.jobs.lock().expect("jobs").progress(id, phase);
    shared.jobs_cv.notify_all();
}

fn worker_loop(shared: &Shared) {
    while let Some(id) = shared.queue.pop() {
        let claimed = shared.jobs.lock().expect("jobs").claim(id);
        shared.jobs_cv.notify_all();
        let Some((spec, wait_ns)) = claimed else {
            continue;
        };
        // Run the job under a thread-local span capture: queue wait plus
        // the lifecycle spans inside run_litmus/run_workload land in one
        // per-job tree, merged into the global profile under the job
        // kind so GET /profile shows where service wall time goes.
        let (outcome, profile) = sa_profile::capture(|| {
            sa_profile::record_ns("queue_wait", wait_ns);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(shared, id, &spec)))
        });
        let kind = match &spec {
            JobSpec::Litmus(_) => "job/litmus",
            JobSpec::Workload(_) => "job/workload",
        };
        sa_profile::merge_into_global(kind, &profile);
        match outcome {
            Ok((result, cached)) => {
                shared.jobs.lock().expect("jobs").finish(id, result, cached);
                shared.jobs_cv.notify_all();
                let done = inc(&shared.counters.completed);
                if shared.cfg.checkpoint_every > 0
                    && done.is_multiple_of(shared.cfg.checkpoint_every)
                {
                    write_checkpoint(shared);
                }
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "job panicked".to_string());
                shared.jobs.lock().expect("jobs").fail(id, msg);
                shared.jobs_cv.notify_all();
                inc(&shared.counters.failed);
            }
        }
    }
}

/// Executes one job; returns `(result JSON, served_from_cache)`.
fn run_job(shared: &Shared, id: u64, spec: &JobSpec) -> (String, bool) {
    match spec {
        JobSpec::Litmus(l) => run_litmus(shared, id, l),
        JobSpec::Workload(w) => (run_workload(shared, id, w), false),
    }
}

fn run_litmus(shared: &Shared, id: u64, l: &LitmusJob) -> (String, bool) {
    // Allowed sets: memo cache first, explore (outside the lock) on miss.
    let canon = {
        let _p = WallProfiler::span("canon");
        canonicalize(&l.test)
    };
    let looked_up = shared.cache.lock().expect("cache").lookup(&canon.key);
    let (entry, cached) = match looked_up {
        Some(e) => (e, true),
        None => {
            progress(shared, id, "explore");
            let _p = WallProfiler::span("explore");
            let canon_test = canon.test();
            let sets = CachedSets {
                x86: explore(&canon_test, ForwardPolicy::X86),
                atomic: explore(&canon_test, ForwardPolicy::StoreAtomic370),
            };
            (
                shared
                    .cache
                    .lock()
                    .expect("cache")
                    .insert(canon.key.clone(), sets),
                false,
            )
        }
    };
    let x86 = canon.restore_set(&entry.x86);
    let atomic = canon.restore_set(&entry.atomic);
    let allowed_doc = render_allowed_doc(&l.name, &l.test, &x86, &atomic);
    let shape = shape_label(&l.test);
    {
        let mut cov = shared.coverage.lock().expect("coverage");
        cov.record(
            "axiomatic-x86",
            &shape,
            0,
            x86.iter().map(|o| o.to_string()),
            0,
        );
        cov.record(
            "axiomatic-370",
            &shape,
            0,
            atomic.iter().map(|o| o.to_string()),
            0,
        );
    }

    struct ModelRow {
        model: ConsistencyModel,
        sims: u64,
        violations: u64,
    }
    struct ViolationRow {
        model: ConsistencyModel,
        pads: Vec<usize>,
        outcome: String,
        minimized: Option<String>,
        triage_paths: Vec<String>,
    }
    let mut rows: Vec<ModelRow> = Vec::new();
    let mut violations: Vec<ViolationRow> = Vec::new();
    if l.check {
        progress(shared, id, "simulate");
        let _sim_span = WallProfiler::span("simulate");
        let pats = l.pads.clone().unwrap_or_else(|| {
            let mut rng = Xoshiro256::seed_from_u64(shared.cfg.seed ^ id.rotate_left(17));
            pad_patterns(&l.test, l.probe, &mut rng)
        });
        for &model in &l.models {
            let allowed: &OutcomeSet = if policy_for(model) == ForwardPolicy::X86 {
                &x86
            } else {
                &atomic
            };
            let mut observed: Vec<String> = Vec::new();
            let mut row = ModelRow {
                model,
                sims: 0,
                violations: 0,
            };
            for pads in &pats {
                inc(&shared.counters.sims);
                row.sims += 1;
                let o = run_on_sim(&l.test, model, pads, shared.cfg.mutate);
                observed.push(o.to_string());
                if allowed.iter().any(|a| *a == o) {
                    continue;
                }
                // First forbidden outcome per model: record it, triage
                // the first one of the job, move to the next model
                // (further pads re-prove the same root cause).
                row.violations += 1;
                inc(&shared.counters.violations);
                let mut vrow = ViolationRow {
                    model,
                    pads: pads.clone(),
                    outcome: o.to_string(),
                    minimized: None,
                    triage_paths: Vec::new(),
                };
                if violations.is_empty() {
                    progress(shared, id, "shrink_triage");
                    let _p = WallProfiler::span("shrink_triage");
                    let tr = triage_violation(
                        &l.test,
                        model,
                        pads,
                        shared.cfg.mutate,
                        &o,
                        shared.cfg.results_dir.as_deref(),
                        id,
                    );
                    inc(&shared.counters.triaged);
                    *shared.latest_triage.lock().expect("triage") = tr.summary_json.clone();
                    vrow.minimized = Some(tr.minimized.clone());
                    vrow.triage_paths = tr.paths.iter().map(|p| p.display().to_string()).collect();
                }
                violations.push(vrow);
                break;
            }
            shared.coverage.lock().expect("coverage").record(
                model.label(),
                &shape,
                row.sims,
                observed.iter(),
                row.violations,
            );
            rows.push(row);
        }
    }

    let mut j = JsonWriter::new();
    j.begin_object()
        .field_str("kind", "litmus")
        .field_str("name", &l.name)
        .field_str("shape", &shape)
        .key("cached")
        .boolean(cached);
    j.field_str("allowed", &allowed_doc)
        .key("checked")
        .boolean(l.check);
    j.key("models").begin_array();
    for row in &rows {
        j.begin_object()
            .field_str("model", row.model.label())
            .field_uint("sims", row.sims)
            .field_uint("violations", row.violations)
            .end_object();
    }
    j.end_array().key("violations").begin_array();
    for v in &violations {
        j.begin_object()
            .field_str("model", v.model.label())
            .key("pads")
            .begin_array();
        for p in &v.pads {
            j.uint(*p as u64);
        }
        j.end_array().field_str("outcome", &v.outcome);
        if let Some(min) = &v.minimized {
            j.field_str("minimized", min);
        }
        j.key("triage").begin_array();
        for p in &v.triage_paths {
            j.string(p);
        }
        j.end_array().end_object();
    }
    j.end_array().end_object();
    (j.finish(), cached)
}

fn run_workload(shared: &Shared, id: u64, w: &WorkloadJob) -> String {
    let spec = sa_workloads::by_name(&w.workload).expect("workload validated at parse");
    let n_cores = w.cores.unwrap_or(match spec.suite {
        WorkloadSuite::Parallel => 8,
        WorkloadSuite::Spec => 1,
    });
    let mut cfg = sa_sim::SimConfig::default()
        .with_model(w.model)
        .with_cores(n_cores);
    if let Some(t) = w.topology {
        cfg = cfg.with_topology(t);
    }
    if let Some(e) = w.engine {
        cfg = cfg.with_engine(e);
    }
    let topology_str = cfg.mem.topology.to_string();
    let engine_str = cfg.engine.to_string();
    progress(shared, id, "generate");
    let traces = {
        let _p = WallProfiler::span("generate");
        spec.generate_cached(n_cores, w.scale, w.seed)
    };
    // Engine spans stay off here (`Multicore::new` = NullProfiler): the
    // service profiles its lifecycle phases, not every simulated cycle.
    let mut sim = sa_sim::Multicore::new(cfg, traces);
    let budget = (w.scale as u64).saturating_mul(2_000).max(10_000_000);
    inc(&shared.counters.sims);
    progress(shared, id, "simulate");
    let _sim_span = WallProfiler::span("simulate");
    let report = sim
        .run(budget)
        .unwrap_or_else(|e| panic!("{} under {}: {e}", w.workload, w.model));
    let mut j = JsonWriter::new();
    j.begin_object()
        .field_str("kind", "workload")
        .field_str("workload", &w.workload)
        .field_str("model", w.model.label())
        .field_uint("scale", w.scale as u64)
        .field_uint("seed", w.seed)
        .field_uint("cores", n_cores as u64)
        .field_str("topology", &topology_str)
        .field_str("engine", &engine_str)
        .field_uint("cycles", report.cycles)
        .field_uint("retired_instrs", report.total().retired_instrs)
        .field_float("ipc", report.ipc());
    if let Some(scope) = sim.scalescope() {
        // Parallel-engine jobs carry their epoch/barrier breakdown in
        // the result and refresh the `/metrics` sa_parallel_* families.
        let (work, wait, exchange) = scope.fractions();
        j.field_uint("parallel_epochs", scope.epochs)
            .field_uint("parallel_lookahead", scope.lookahead)
            .field_float("parallel_work_frac", work)
            .field_float("parallel_wait_frac", wait)
            .field_float("parallel_exchange_frac", exchange);
        *shared.parallel_scope.lock().expect("parallel scope") = Some(scope.clone());
    }
    j.end_object();
    j.finish()
}

// ----------------------------------------------------------------- farm

fn spawn_farm(shared: &Arc<Shared>, programs: u64, seed: u64) {
    let worker = Arc::clone(shared);
    let handle = std::thread::spawn(move || run_farm(&worker, programs, seed));
    shared
        .farm_threads
        .lock()
        .expect("farm threads")
        .push(handle);
}

/// The resident generator: seed programs (probes + the named suite)
/// first — so the farm's corpus always covers the
/// store-atomicity-discriminating shapes — then the endless seeded
/// stream, deduped by canonical form, pushed with *blocking* sends so
/// the farm is throttled to the worker pool's pace.
fn run_farm(shared: &Shared, programs: u64, seed: u64) {
    let mut stream = CorpusStream::new(seed, GenConfig::default());
    let seeds: Vec<(String, sa_litmus::LitmusTest)> = suite::probes()
        .into_iter()
        .map(|t| (t.name.to_string(), t))
        .chain(
            suite::all()
                .into_iter()
                .map(|ct| (ct.test.name.to_string(), ct.test)),
        )
        .collect();
    let mut submitted = 0u64;
    let mut i = 0usize;
    while submitted < programs {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let (name, test) = if i < seeds.len() {
            seeds[i].clone()
        } else {
            let t = stream.next().expect("stream is infinite");
            ("farm".to_string(), t)
        };
        i += 1;
        inc(&shared.counters.farm_generated);
        let key = canonicalize(&test).key;
        let fresh = {
            let mut corpus = shared.corpus.lock().expect("corpus");
            if corpus.contains(&key) {
                false
            } else {
                if corpus.len() < CORPUS_CAP {
                    corpus.insert(key);
                }
                true
            }
        };
        if !fresh {
            inc(&shared.counters.farm_deduped);
            continue;
        }
        let probe = name.starts_with("probe");
        let spec = JobSpec::Litmus(LitmusJob {
            name,
            test,
            probe,
            models: ConsistencyModel::ALL.to_vec(),
            check: true,
            pads: None,
        });
        let id = shared.jobs.lock().expect("jobs").create(spec);
        shared.jobs_cv.notify_all();
        if !shared.queue.push_blocking(id) {
            shared
                .jobs
                .lock()
                .expect("jobs")
                .fail(id, "shutdown before execution".to_string());
            shared.jobs_cv.notify_all();
            break;
        }
        submitted += 1;
    }
}

// ------------------------------------------------------------- exports

fn metrics_text(shared: &Shared) -> String {
    let c = &shared.counters;
    let mut reg = Registry::new();
    reg.counter(
        "sa_serve_jobs_submitted_total",
        "POST /jobs requests received",
        &[],
        get(&c.submitted),
    );
    reg.counter(
        "sa_serve_jobs_accepted_total",
        "jobs accepted into the queue",
        &[],
        get(&c.accepted),
    );
    reg.counter(
        "sa_serve_jobs_rejected_total",
        "submissions rejected with 429 (queue full)",
        &[],
        get(&c.rejected),
    );
    reg.counter(
        "sa_serve_jobs_completed_total",
        "jobs settled done",
        &[],
        get(&c.completed),
    );
    reg.counter(
        "sa_serve_jobs_failed_total",
        "jobs settled failed",
        &[],
        get(&c.failed),
    );
    reg.gauge(
        "sa_serve_queue_depth",
        "jobs waiting in the bounded queue",
        &[],
        shared.queue.len() as f64,
    );
    reg.gauge(
        "sa_serve_queue_capacity",
        "bounded queue capacity",
        &[],
        shared.cfg.queue_cap as f64,
    );
    {
        let cache = shared.cache.lock().expect("cache");
        reg.counter(
            "sa_oracle_cache_hits_total",
            "oracle memo-cache lookups answered without exploration",
            &[],
            cache.hits(),
        );
        reg.counter(
            "sa_oracle_cache_misses_total",
            "oracle memo-cache lookups that ran the explorer",
            &[],
            cache.misses(),
        );
        reg.gauge(
            "sa_oracle_cache_size",
            "distinct canonical programs cached",
            &[],
            cache.len() as f64,
        );
    }
    reg.counter(
        "sa_serve_sims_total",
        "cycle-level simulations executed",
        &[],
        get(&c.sims),
    );
    reg.counter(
        "sa_serve_farm_generated_total",
        "programs drawn by farm generators",
        &[],
        get(&c.farm_generated),
    );
    reg.counter(
        "sa_serve_farm_deduped_total",
        "farm draws dropped as canonical duplicates",
        &[],
        get(&c.farm_deduped),
    );
    reg.counter(
        "sa_serve_violations_total",
        "containment violations observed",
        &[],
        get(&c.violations),
    );
    reg.counter(
        "sa_serve_triaged_total",
        "violations triaged through forensics",
        &[],
        get(&c.triaged),
    );
    reg.gauge(
        "sa_serve_coverage_cells",
        "populated coverage matrix cells",
        &[],
        shared.coverage.lock().expect("coverage").cells() as f64,
    );
    {
        let hists = shared.http_hists.lock().expect("http hists");
        for (endpoint, h) in hists.iter() {
            reg.log2_histogram(
                "sa_serve_http_request_duration_ns",
                "request handling latency by endpoint family",
                &[("endpoint", endpoint)],
                h,
            );
        }
    }
    if let Some(scope) = shared
        .parallel_scope
        .lock()
        .expect("parallel scope")
        .as_ref()
    {
        scope.register(&mut reg);
    }
    let profile = sa_profile::harvest();
    let mut stack: Vec<(usize, String)> = profile
        .roots()
        .iter()
        .rev()
        .map(|&r| (r, profile.node(r).name.clone()))
        .collect();
    while let Some((idx, path)) = stack.pop() {
        let n = profile.node(idx);
        reg.counter(
            "sa_profile_span_total_ns",
            "cumulative wall time per host span path",
            &[("path", &path)],
            n.total_ns,
        );
        reg.counter(
            "sa_profile_span_count",
            "times each host span path was entered",
            &[("path", &path)],
            n.count,
        );
        for &c in profile.children(idx).iter().rev() {
            stack.push((c, format!("{path};{}", profile.node(c).name)));
        }
    }
    reg.prometheus_text()
}

/// Flushes the coverage + counter checkpoint under `results_dir`;
/// returns the path written.
fn write_checkpoint(shared: &Shared) -> Option<PathBuf> {
    let dir = shared.cfg.results_dir.as_ref()?;
    let c = &shared.counters;
    let mut j = JsonWriter::new();
    j.begin_object()
        .field_str("schema", "sa-serve-checkpoint-v1")
        .field_uint("jobs_completed", get(&c.completed))
        .field_uint("jobs_failed", get(&c.failed))
        .field_uint("jobs_rejected", get(&c.rejected))
        .field_uint("sims", get(&c.sims))
        .field_uint("farm_generated", get(&c.farm_generated))
        .field_uint("farm_deduped", get(&c.farm_deduped))
        .field_uint("violations", get(&c.violations));
    {
        let cache = shared.cache.lock().expect("cache");
        j.key("cache")
            .begin_object()
            .field_uint("hits", cache.hits())
            .field_uint("misses", cache.misses())
            .field_uint("size", cache.len() as u64)
            .end_object();
    }
    shared.coverage.lock().expect("coverage").write_json(&mut j);
    j.end_object();
    let doc = j.finish();
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("serve_coverage.json");
    match std::fs::write(&path, format!("{doc}\n")) {
        Ok(()) => {
            inc(&c.checkpoints);
            Some(path)
        }
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn http(port: u16, method: &str, path: &str, body: &str) -> (String, String) {
        let mut s = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        write!(
            s,
            "{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send");
        let mut resp = String::new();
        s.read_to_string(&mut resp).expect("recv");
        let (head, body) = resp.split_once("\r\n\r\n").expect("header split");
        let status = head.lines().next().unwrap_or("").to_string();
        (status, body.to_string())
    }

    /// Boot, submit an oracle-only n6, poll it to done, scrape metrics,
    /// shut down, join — the whole lifecycle in-process.
    #[test]
    fn lifecycle_smoke() {
        let server = Server::start(ServeConfig {
            workers: 2,
            acceptors: 1,
            ..ServeConfig::default()
        })
        .expect("start");
        let port = server.port();

        let (status, body) = http(port, "GET", "/", "");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("sa-serve"));

        let (status, body) = http(port, "POST", "/jobs", r#"{"suite":"n6","check":false}"#);
        assert!(status.contains("202"), "{status}: {body}");
        let v = sa_metrics::JsonValue::parse(&body).expect("submit reply json");
        let id = v.get("id").and_then(|i| i.as_u64()).expect("id");

        let mut last = String::new();
        for _ in 0..200 {
            let (_, body) = http(port, "GET", &format!("/jobs/{id}"), "");
            last = body;
            let v = sa_metrics::JsonValue::parse(&last).expect("status json");
            match v.get("status").and_then(|s| s.as_str()) {
                Some("done") => break,
                Some("failed") => panic!("job failed: {last}"),
                _ => std::thread::sleep(std::time::Duration::from_millis(20)),
            }
        }
        let v = sa_metrics::JsonValue::parse(&last).expect("status json");
        assert_eq!(
            v.get("status").and_then(|s| s.as_str()),
            Some("done"),
            "{last}"
        );
        let allowed = v
            .get("result")
            .and_then(|r| r.get("allowed"))
            .and_then(|a| a.as_str())
            .expect("allowed doc");
        assert!(allowed.contains("[X86]"), "{allowed}");
        assert!(allowed.contains("[StoreAtomic370]"));

        let (_, metrics) = http(port, "GET", "/metrics", "");
        assert!(
            metrics.contains("sa_oracle_cache_misses_total 1"),
            "{metrics}"
        );
        assert!(metrics.contains("sa_serve_jobs_completed_total 1"));

        let (_, unknown) = http(port, "GET", "/jobs/999999", "");
        assert!(unknown.contains("unknown"));
        let (status, _) = http(port, "GET", "/no/such", "");
        assert!(status.contains("404"));

        let (status, body) = http(port, "POST", "/shutdown", "");
        assert!(status.contains("200"), "{status}: {body}");
        let report = server.join();
        assert_eq!(report.completed, 1);
        assert_eq!(report.failed, 0);
        assert_eq!(report.cache, (0, 1, 1));
    }

    /// The backpressure path: a tiny queue with slow submissions must
    /// 429 the overflow and still complete everything accepted.
    #[test]
    fn overflow_rejects_and_drains() {
        let server = Server::start(ServeConfig {
            workers: 1,
            acceptors: 1,
            queue_cap: 2,
            ..ServeConfig::default()
        })
        .expect("start");
        let port = server.port();
        // Fill the pool + queue with checked jobs (slow enough to pile
        // up), then keep submitting until a 429 arrives.
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for _ in 0..40 {
            let (status, _) = http(
                port,
                "POST",
                "/jobs",
                r#"{"suite":"sb","models":["x86"],"pads":[[0,0]]}"#,
            );
            if status.contains("202") {
                accepted += 1;
            } else {
                assert!(status.contains("429"), "{status}");
                rejected += 1;
                if rejected >= 3 {
                    break;
                }
            }
        }
        assert!(rejected >= 1, "queue of 2 must overflow");
        server.shutdown();
        let report = server.join();
        assert_eq!(
            report.completed + report.failed,
            accepted,
            "every accepted job reaches a terminal status"
        );
        assert_eq!(report.rejected, rejected);
    }
}
