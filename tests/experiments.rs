//! Small-scale end-to-end experiment sanity: the shapes the paper's
//! evaluation reports must already be visible at reduced scale.

use sa_isa::ConsistencyModel;
use sa_sim::{Multicore, Report, SimConfig};
use sa_workloads::{Suite, WorkloadSpec};

fn run(w: &WorkloadSpec, model: ConsistencyModel, scale: usize) -> Report {
    let n = if w.suite == Suite::Parallel { 8 } else { 1 };
    let cfg = SimConfig::default().with_model(model).with_cores(n);
    let mut sim = Multicore::new(cfg, w.generate(n, scale, 42));
    sim.run(u64::MAX)
        .unwrap_or_else(|e| panic!("{} under {model}: {e}", w.name))
}

/// Table IV calibration: measured loads% and forwarded% track the spec
/// (which carries the paper's numbers).
#[test]
fn characterization_tracks_table_iv() {
    for name in ["blackscholes", "502.gcc_1"] {
        let w = sa_workloads::by_name(name).unwrap();
        let r = run(&w, ConsistencyModel::Ibm370SlfSosKey, 4_000);
        let t = r.total();
        assert!(
            (t.loads_pct() - w.loads_pct).abs() < 2.5,
            "{name}: loads {:.2} vs spec {:.2}",
            t.loads_pct(),
            w.loads_pct
        );
        assert!(
            (t.forwarded_pct() - w.forwarded_pct).abs() < 2.0,
            "{name}: fwd {:.2} vs spec {:.2}",
            t.forwarded_pct(),
            w.forwarded_pct
        );
    }
}

/// Figure 10 shape: blanket enforcement costs the most; the paper's
/// proposal is the cheapest store-atomic configuration (or within noise
/// of it).
#[test]
fn figure_10_ordering() {
    let w = sa_workloads::by_name("water_spatial").unwrap();
    let x86 = run(&w, ConsistencyModel::X86, 3_000).cycles as f64;
    let nospec = run(&w, ConsistencyModel::Ibm370NoSpec, 3_000).cycles as f64;
    let slfspec = run(&w, ConsistencyModel::Ibm370SlfSpec, 3_000).cycles as f64;
    let key = run(&w, ConsistencyModel::Ibm370SlfSosKey, 3_000).cycles as f64;
    assert!(
        nospec > x86 * 1.02,
        "NoSpec must cost visibly more than x86"
    );
    assert!(key < nospec, "SoS-key must beat blanket enforcement");
    assert!(
        key <= slfspec * 1.05,
        "SoS-key must be at least as good as SC-like speculation"
    );
    assert!(key < x86 * 1.5, "SoS-key stays in x86's ballpark");
}

/// Gate behavior: closing the gate is rare and short-lived (§VI-A) on a
/// moderate-forwarding workload.
#[test]
fn gate_stalls_are_rare() {
    let w = sa_workloads::by_name("swaptions").unwrap();
    let r = run(&w, ConsistencyModel::Ibm370SlfSosKey, 4_000);
    let t = r.total();
    assert!(t.forwarded_pct() > 2.0, "workload does forward");
    assert!(
        t.gate_stall_pct() < t.forwarded_pct(),
        "only a minority of SLF loads close the gate: {:.2}% stalls vs {:.2}% fwd",
        t.gate_stall_pct(),
        t.forwarded_pct()
    );
}

/// The x264 mechanism: contended forwarding produces store-atomicity
/// squashes that do not exist under x86.
#[test]
fn contended_sync_causes_sa_reexecution() {
    let w = WorkloadSpec {
        sync_contention: 0.05,
        shared_access_frac: 0.15,
        shared_write_frac: 0.5,
        ..WorkloadSpec::base("x264-condensed", Suite::Parallel, 26.2, 3.3)
    };
    let key = run(&w, ConsistencyModel::Ibm370SlfSosKey, 3_000);
    let sa = key
        .total()
        .reexec_for(sa_sim::ooo::SquashCause::StoreAtomicity);
    assert!(sa > 0, "contended condvar idiom must trigger SA squashes");
    let x86 = run(&w, ConsistencyModel::X86, 3_000);
    assert_eq!(
        x86.total()
            .reexec_for(sa_sim::ooo::SquashCause::StoreAtomicity),
        0,
        "x86 never squashes for store atomicity"
    );
}

/// The radix mechanism: store streams dominate SQ/SB stalls in every
/// configuration (Figure 9's outlier).
#[test]
fn radix_is_sq_bound() {
    let w = sa_workloads::by_name("radix").unwrap();
    let r = run(&w, ConsistencyModel::X86, 3_000);
    let s = r.stalls();
    assert!(
        s.sq_pct > s.rob_pct && s.sq_pct > s.lq_pct,
        "radix stalls on the SQ/SB: {s:?}"
    );
}

/// Every model agrees on the committed memory image of a deterministic
/// single-core workload (timing differs, architecture doesn't).
#[test]
fn models_agree_on_final_state() {
    let w = sa_workloads::by_name("557.xz_2").unwrap();
    let mut images: Vec<u64> = Vec::new();
    for model in ConsistencyModel::ALL {
        let n = 1;
        let cfg = SimConfig::default().with_model(model).with_cores(n);
        let mut sim = Multicore::new(cfg, w.generate(n, 2_000, 7));
        sim.run(u64::MAX).unwrap();
        images.push(sim.memory().words_written() as u64);
    }
    assert!(images.windows(2).all(|w| w[0] == w[1]), "{images:?}");
}

/// §VI-B: the SA-speculation mechanism adds no extra snoops, so the
/// dynamic-energy proxy of 370-SLFSoS-key stays within a few percent of
/// x86 on the same workload.
#[test]
fn energy_proxy_unchanged_by_sa_speculation() {
    let w = sa_workloads::by_name("water_spatial").unwrap();
    let x86 = run(&w, ConsistencyModel::X86, 3_000);
    let key = run(&w, ConsistencyModel::Ibm370SlfSosKey, 3_000);
    let ratio = key.energy_proxy() / x86.energy_proxy();
    assert!(
        (0.9..=1.1).contains(&ratio),
        "dynamic-energy proxy should be ~unchanged, got {ratio:.3}"
    );
}
