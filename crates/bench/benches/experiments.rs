//! Benches mirroring the paper's tables and figures at reduced scale —
//! one group per artifact, so `cargo bench` exercises every experiment
//! end-to-end on the in-tree timing harness. The full-size outputs come
//! from the binaries (`table4`, `fig9`, `fig10`, ...).

use sa_bench::harness::Group;
use sa_isa::ConsistencyModel;
use sa_litmus::{explore, suite, ForwardPolicy};
use sa_sim::{Multicore, SimConfig};
use sa_workloads::Suite;

const SCALE: usize = 1_500;

fn run(name: &str, model: ConsistencyModel) -> u64 {
    let w = sa_workloads::by_name(name).expect("known benchmark");
    let n = if w.suite == Suite::Parallel { 8 } else { 1 };
    let cfg = SimConfig::default().with_model(model).with_cores(n);
    let mut sim = Multicore::new(cfg, w.generate(n, SCALE, 42));
    sim.run(u64::MAX).expect("completes").cycles
}

fn main() {
    // Table II / Figures 1,2,3,5: exhaustive litmus exploration.
    let g = Group::new("table2_litmus");
    for ct in [suite::n6(), suite::fig5(), suite::iriw()] {
        g.bench(&format!("x86/{}", ct.test.name), || {
            explore(&ct.test, ForwardPolicy::X86).len()
        });
        g.bench(&format!("370/{}", ct.test.name), || {
            explore(&ct.test, ForwardPolicy::StoreAtomic370).len()
        });
    }

    // Table IV: the characterization run (SLFSoS-key on a
    // forwarding-heavy and an eviction-heavy benchmark).
    let g = Group::new("table4_characterization");
    for name in ["barnes", "505.mcf"] {
        g.bench(name, || run(name, ConsistencyModel::Ibm370SlfSosKey));
    }

    // Figure 9 / Figure 10: the five-configuration comparison on one
    // benchmark (stall attribution and execution time come from the
    // same runs).
    let g = Group::new("fig9_fig10_models");
    for model in ConsistencyModel::ALL {
        g.bench(model.label(), || run("water_spatial", model));
    }
}
