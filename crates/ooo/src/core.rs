//! The out-of-order core pipeline.
//!
//! One [`Core`] executes one trace. Each call to [`Core::tick`] simulates
//! one cycle in six phases:
//!
//! 1. **Memory notices** — load completions perform loads (reading the
//!    global value image at the perform instant), ownership grants wake
//!    draining stores, and invalidations/evictions snoop the load queue
//!    (possibly squashing speculative loads — the paper's §IV mechanism).
//! 2. **Store-buffer drain** — the SB head commits to the L1 once owned;
//!    commits publish values, free SQ/SB entries and reopen the retire
//!    gate (by key under `370-SLFSoS-key`, on SB-empty under
//!    `370-SLFSoS`). Younger retired stores prefetch ownership (RFO).
//! 3. **Completions** — executing micro-ops whose latency elapsed become
//!    retirable; mispredicted branches redirect fetch.
//! 4. **Retire** — in-order, up to `width`; loads additionally subject to
//!    the per-model store-atomicity rules.
//! 5. **Schedule/execute** — ready micro-ops issue; loads run the
//!    forwarding search / memory issue state machine; store addresses
//!    resolve and trigger memory-order violation checks.
//! 6. **Dispatch** — up to `width` trace instructions enter the window;
//!    stall cycles are attributed to the first full resource
//!    (ROB/LQ/SQ-SB — Figure 9's metric).
//!
//! All hot loops walk the struct-of-arrays columns of [`Rob`],
//! [`LoadQueue`] and [`StoreQueue`] by physical slot; entities are named
//! by generation-tagged handles (`RobIdx`/`LqIdx`/`SqIdx`), resolved to
//! a slot once per use. Every scan preserves the visit order and
//! side-effect order of the entry-struct implementation it replaced, so
//! simulated cycle counts are bit-exact.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use sa_coherence::{MemReqId, Notice, NoticeKind};
use sa_isa::{
    ConsistencyModel, CoreId, Cycle, FastMap, Line, Op, Reg, StoreOperand, Trace, Value,
    ValueImage, NUM_REGS,
};
use sa_metrics::{CoreMetrics, CpiCategory};
use sa_profile::{NullProfiler, Profiler};
use sa_trace::{EventKind, GateOpenReason, TraceEvent, Tracer, UopKind};

use crate::branch::Tage;
use crate::config::{CoreConfig, InjectedBug};
use crate::gate::{Key, RetireGate};
use crate::lq::{BlockReason, LoadQueue, LoadState, LqIdx};
use crate::port::LoadStorePort;
use crate::rob::{Rob, RobIdx, RobKind, RobState, RobUop};
use crate::sq::{extract_forwarded, SearchHit, SqIdx, StoreQueue};
use crate::stats::{CoreStats, SquashCause};
use crate::storeset::StoreSet;

/// The `sa-trace` mirror of a gate/store key.
fn tkey(k: Key) -> sa_trace::GateKey {
    sa_trace::GateKey {
        slot: k.slot,
        sorting: k.sorting,
    }
}

/// The `sa-trace` mirror of a squash cause.
fn tcause(c: SquashCause) -> sa_trace::SquashKind {
    match c {
        SquashCause::MemOrder => sa_trace::SquashKind::MemOrder,
        SquashCause::LoadLoad => sa_trace::SquashKind::LoadLoad,
        SquashCause::StoreAtomicity => sa_trace::SquashKind::StoreAtomicity,
    }
}

/// Micro-op class of a window entry, for trace labeling.
fn tuop(kind: &RobKind) -> UopKind {
    match kind {
        RobKind::Load { .. } => UopKind::Load,
        RobKind::Store { .. } => UopKind::Store,
        RobKind::Branch { .. } => UopKind::Branch,
        RobKind::Alu { .. } => UopKind::Alu,
        RobKind::Fence => UopKind::Fence,
        RobKind::Nop => UopKind::Nop,
    }
}

/// Which resource blocked dispatch on a zero-dispatch cycle (Figure 9's
/// attribution, remembered for idle replay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DispatchStall {
    Rob,
    Lq,
    Sq,
}

/// What one [`Core::tick`] did, reported to the simulation engine.
#[derive(Debug, Clone, Copy)]
pub struct TickResult {
    /// Whether any pipeline state changed beyond per-cycle bookkeeping.
    /// A `false` tick is a pure stall: re-running it with no new memory
    /// notices only re-accrues the same per-cycle counters, so the
    /// engine may replay it in bulk via [`Core::apply_idle_cycles`].
    pub progress: bool,
    /// Instructions retired this tick.
    pub retired: u64,
}

/// One simulated out-of-order core.
#[derive(Debug)]
pub struct Core {
    id: CoreId,
    cfg: CoreConfig,
    model: ConsistencyModel,
    trace: Trace,
    fetch_idx: usize,
    fetch_resume: Cycle,
    fetch_blocked_on: Option<RobIdx>,
    rob: Rob,
    lq: LoadQueue,
    sq: StoreQueue,
    gate: RetireGate,
    bp: Tage,
    ss: StoreSet,
    arch_regs: [Value; NUM_REGS],
    reg_producer: [Option<RobIdx>; NUM_REGS],
    pending_loads: FastMap<MemReqId, LqIdx>,
    pending_owns: FastMap<MemReqId, SqIdx>,
    completion_q: BinaryHeap<Reverse<(Cycle, RobIdx)>>,
    fences: BTreeSet<RobIdx>,
    gate_stall_cur: Option<RobIdx>,
    /// Loads currently in a Blocked state (gates the retry pass).
    blocked_loads: usize,
    /// Bumped whenever state a blocked load's retry reads changes (store
    /// address resolution, SB commit, fence retire, squash, StoreSet
    /// training). While unchanged, a blocked load re-blocks identically,
    /// so its retry is skipped (see the LQ's `attempt_epoch` column).
    lsq_epoch: u64,
    /// Positions below this in the ROB are all `Done` — the scheduler
    /// scan starts here. A lower bound: refreshed lazily each tick,
    /// shifted on retire, clamped on squash.
    sched_start: usize,
    /// `true` when the pending `fetch_resume` came from a squash replay
    /// rather than a branch redirect (CPI-stack attribution of the
    /// empty-window refill).
    resume_was_squash: bool,
    /// Set by any phase that changes pipeline state this tick; a tick
    /// that ends with it clear is a pure stall the engine may replay.
    progress: bool,
    /// The stall category a no-progress tick charged its retire slots to
    /// (replayed verbatim by [`Core::apply_idle_cycles`]).
    idle_stall: Option<CpiCategory>,
    /// This tick accrued a gate-stall cycle (head load behind a closed
    /// gate).
    idle_gate_stall: bool,
    /// This tick accrued an SLFSpec SB-wait cycle.
    idle_slfspec_stall: bool,
    /// Which resource blocked dispatch this tick, if any.
    idle_dispatch: Option<DispatchStall>,
    /// Reused scratch for the retry pass's blocked-slot snapshot.
    blocked_scratch: Vec<u32>,
    /// Per-SQ-slot memo: `has_ownership` returned true for this store's
    /// line and no ownership-losing notice (invalidation, eviction,
    /// downgrade) has arrived since. Every loss path raises a notice at
    /// the cycle the state changes (the event engine's idle-skip already
    /// depends on that), so a set bit lets the RFO prefetch scan skip
    /// the cache probe — a skipped probe has no side effects.
    rfo_owned: Vec<bool>,
    /// Per-SQ-slot memo: the port's [`reject_epoch`] stamp captured when
    /// `has_ownership` last returned false for this store's line. While
    /// the stamp is unchanged, ownership cannot have been acquired (every
    /// acquisition path is a stamped controller mutation), so the probe
    /// is skipped. `u64::MAX` = no probe recorded.
    ///
    /// [`reject_epoch`]: LoadStorePort::reject_epoch
    sq_unowned_stamp: Vec<u64>,
    /// Per-SQ-slot memo: the stamp captured when an `issue_ownership` for
    /// this store was MSHR-rejected. An unchanged stamp means a retry
    /// would be rejected identically, so its side effects are booked via
    /// `note_rejected_issue` without the issue path. `u64::MAX` = no
    /// rejection recorded.
    sq_own_reject_stamp: Vec<u64>,
    /// Store-queue state changed since the last full [`drain_stores`]
    /// run (alloc, address resolution, data capture, retirement, squash,
    /// or any memory notice). Cleared by the drain itself; while clear,
    /// a quiescent drain's inputs can only change through a stamped
    /// memory-side mutation or the passage of commit time.
    ///
    /// [`drain_stores`]: Core::drain_stores
    sq_dirty: bool,
    /// The last full drain was inert: no commit finished or started and
    /// no issue attempt was made (real or memoized). Together with a
    /// clean [`sq_dirty`](Core::sq_dirty), an unchanged memory stamp,
    /// and `now` short of [`drain_wake`](Core::drain_wake), the next
    /// drain is provably identical and is skipped outright.
    drain_sleep: bool,
    /// The port's `reject_epoch` stamp at the end of the last full drain
    /// (`has_ownership` outcomes are pinned while it is unchanged).
    drain_mem_stamp: u64,
    /// Earliest cycle at which the head commit completes (`Cycle::MAX`
    /// when no commit is in flight): the only time-dependent drain input.
    drain_wake: Cycle,
    stats: CoreStats,
    metrics: CoreMetrics,
}

impl Core {
    /// Creates a core executing `trace` under `model`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CoreConfig::validate`].
    pub fn new(id: CoreId, cfg: CoreConfig, model: ConsistencyModel, trace: Trace) -> Core {
        cfg.validate();
        Core {
            id,
            rob: Rob::new(cfg.rob_entries),
            lq: LoadQueue::new(cfg.lq_entries),
            sq: StoreQueue::new(cfg.sq_sb_entries),
            gate: RetireGate::with_capacity(cfg.gate_keys),
            bp: Tage::new(),
            ss: StoreSet::new(cfg.storeset),
            arch_regs: [0; NUM_REGS],
            reg_producer: [None; NUM_REGS],
            pending_loads: FastMap::default(),
            pending_owns: FastMap::default(),
            completion_q: BinaryHeap::new(),
            fences: BTreeSet::new(),
            gate_stall_cur: None,
            blocked_loads: 0,
            lsq_epoch: 0,
            sched_start: 0,
            resume_was_squash: false,
            progress: false,
            idle_stall: None,
            idle_gate_stall: false,
            idle_slfspec_stall: false,
            idle_dispatch: None,
            blocked_scratch: Vec::new(),
            rfo_owned: vec![false; cfg.sq_sb_entries],
            sq_unowned_stamp: vec![u64::MAX; cfg.sq_sb_entries],
            sq_own_reject_stamp: vec![u64::MAX; cfg.sq_sb_entries],
            sq_dirty: true,
            drain_sleep: false,
            drain_mem_stamp: 0,
            drain_wake: 0,
            stats: CoreStats::default(),
            metrics: CoreMetrics::with_capacities(
                cfg.rob_entries,
                cfg.lq_entries,
                cfg.sq_sb_entries,
            ),
            fetch_idx: 0,
            fetch_resume: 0,
            fetch_blocked_on: None,
            cfg,
            model,
            trace,
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The consistency model this core enforces.
    pub fn model(&self) -> ConsistencyModel {
        self.model
    }

    /// `true` once the whole trace has retired and all stores committed.
    pub fn finished(&self) -> bool {
        self.fetch_idx >= self.trace.len() && self.rob.is_empty() && self.sq.is_empty()
    }

    /// Statistics counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Always-on aggregate metrics: the retire-slot CPI stack and the
    /// window-occupancy histograms.
    pub fn metrics(&self) -> &CoreMetrics {
        &self.metrics
    }

    /// Retired stores still draining from the store buffer.
    pub fn sb_depth(&self) -> usize {
        self.sq.sb_depth()
    }

    /// Architectural value of `r` (final state for litmus outcomes).
    pub fn arch_reg(&self, r: Reg) -> Value {
        self.arch_regs[r.index()]
    }

    /// Branch predictor accuracy observer.
    pub fn branch_mispredict_rate(&self) -> f64 {
        self.bp.mispredict_rate()
    }

    /// Simulates one cycle, emitting structured events into `tracer`.
    ///
    /// This is the single run API: pass
    /// [`&mut NullTracer`](sa_trace::NullTracer) for an untraced tick —
    /// `Tracer::ENABLED` is a compile-time constant, so every emission
    /// site — including the closure building the event — monomorphizes
    /// to dead code and the pipeline is exactly the untraced one.
    pub fn tick<M: LoadStorePort, V: ValueImage, T: Tracer>(
        &mut self,
        now: Cycle,
        mem: &mut M,
        valmem: &mut V,
        notices: &[Notice],
        tracer: &mut T,
    ) -> TickResult {
        self.tick_profiled::<M, V, T, NullProfiler>(now, mem, valmem, notices, tracer)
    }

    /// [`Core::tick`] with host-side phase profiling: each pipeline phase
    /// runs under a `sa-profile` span, so an enabled [`Profiler`] builds
    /// the per-phase wall-time tree the ROADMAP's hot-loop rebuild needs.
    /// With the default [`NullProfiler`] every span compiles away and
    /// this *is* `tick` — same monomorphization discipline as the
    /// [`Tracer`].
    pub fn tick_profiled<M: LoadStorePort, V: ValueImage, T: Tracer, P: Profiler>(
        &mut self,
        now: Cycle,
        mem: &mut M,
        valmem: &mut V,
        notices: &[Notice],
        tracer: &mut T,
    ) -> TickResult {
        self.progress = false;
        self.idle_stall = None;
        self.idle_gate_stall = false;
        self.idle_slfspec_stall = false;
        self.idle_dispatch = None;
        let retired_before = self.stats.retired_instrs;
        self.stats.cycles += 1;
        {
            let _p = P::span("notices");
            self.process_notices(now, valmem, notices, tracer);
        }
        {
            let _p = P::span("sb_drain");
            self.drain_stores(now, mem, valmem, tracer);
        }
        {
            let _p = P::span("complete");
            self.process_completions(now, tracer);
        }
        {
            let _p = P::span("retire");
            self.retire(now, tracer);
        }
        self.schedule::<M, T, P>(now, mem, tracer);
        {
            let _p = P::span("frontend");
            self.dispatch(now, tracer);
        }
        if self.gate.is_closed() {
            self.stats.gate_closed_cycles += 1;
        }
        self.metrics
            .occ
            .record(self.rob.len(), self.lq.len(), self.sq.len());
        tracer.emit(|| TraceEvent {
            cycle: now,
            core: self.id,
            kind: EventKind::Occupancy {
                rob: self.rob.len() as u16,
                lq: self.lq.len() as u16,
                sq: self.sq.len() as u16,
            },
        });
        TickResult {
            progress: self.progress,
            retired: self.stats.retired_instrs - retired_before,
        }
    }

    /// Replays `n` cycles of pure-stall bookkeeping, exactly as `n`
    /// further ticks of the current state would have accrued it. Only
    /// valid straight after a tick that reported no progress, and only
    /// while no new memory notice or timed wakeup intervenes (the
    /// engine's contract — see `Multicore::run`).
    pub fn apply_idle_cycles(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.stats.cycles += n;
        if self.gate.is_closed() {
            self.stats.gate_closed_cycles += n;
        }
        if self.idle_gate_stall {
            self.stats.gate_stall_cycles += n;
        }
        if self.idle_slfspec_stall {
            self.stats.slfspec_stall_cycles += n;
        }
        match self.idle_dispatch {
            Some(DispatchStall::Rob) => self.stats.rob_stall_cycles += n,
            Some(DispatchStall::Lq) => self.stats.lq_stall_cycles += n,
            Some(DispatchStall::Sq) => self.stats.sq_stall_cycles += n,
            None => {}
        }
        let cat = self.idle_stall.expect("an idle core has a stall category");
        self.metrics.cpi.add(cat, self.cfg.width as u64 * n);
        self.metrics
            .occ
            .record_n(self.rob.len(), self.lq.len(), self.sq.len(), n);
    }

    /// The earliest cycle after `now` at which this core could make
    /// progress without an external memory notice, given its post-tick
    /// state: the next internal completion, the SB head's commit
    /// deadline, the fetch-redirect resume point, or the head's `done_at`
    /// becoming retirable. `None` means only a notice can wake it.
    pub fn next_timed_wakeup(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut merge = |c: Cycle| {
            if c > now && next.is_none_or(|n| c < n) {
                next = Some(c);
            }
        };
        if let Some(&Reverse((t, _))) = self.completion_q.peek() {
            merge(t);
        }
        if let Some(h) = self.sq.head_slot() {
            if let Some(t) = self.sq.committing_done[h] {
                merge(t);
            }
        }
        if self.fetch_idx < self.trace.len() && now < self.fetch_resume {
            merge(self.fetch_resume);
        }
        if let Some(h) = self.rob.head_slot() {
            if self.rob.state[h] == RobState::Done {
                merge(self.rob.done_at[h]);
            }
        }
        next
    }

    // ------------------------------------------------------------------
    // Phase 1: memory notices
    // ------------------------------------------------------------------

    fn process_notices<V: ValueImage, T: Tracer>(
        &mut self,
        now: Cycle,
        valmem: &V,
        notices: &[Notice],
        tracer: &mut T,
    ) {
        let cid = self.id;
        if !notices.is_empty() {
            // Notices can clear `own_req`/`rfo_owned` or squash stores
            // without a memory-stamp bump visible to this core's drain.
            self.sq_dirty = true;
        }
        for n in notices {
            match n.kind {
                NoticeKind::LoadDone { id } => {
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::MemResp {
                            req: id.0,
                            rfo: false,
                        },
                    });
                    let Some(lqi) = self.pending_loads.remove(&id) else {
                        continue; // stale response for a squashed load
                    };
                    self.perform_from_memory(lqi, now, valmem, tracer);
                }
                NoticeKind::OwnershipDone { id } => {
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::MemResp {
                            req: id.0,
                            rfo: true,
                        },
                    });
                    if let Some(sqi) = self.pending_owns.remove(&id) {
                        self.progress = true;
                        if let Some(slot) = self.sq.live_slot(sqi) {
                            self.sq.own_req[slot] = None; // drain re-checks has_ownership
                        }
                    }
                }
                NoticeKind::Invalidated { line, by } => {
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::Invalidation { line: line.base() },
                    });
                    self.rfo_owned.fill(false);
                    self.snoop_lq(line, Some(by), now, tracer);
                }
                NoticeKind::Evicted { line } => {
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::Eviction { line: line.base() },
                    });
                    self.rfo_owned.fill(false);
                    // Capacity eviction: a local cause, no remote core to
                    // blame.
                    self.snoop_lq(line, None, now, tracer);
                }
                // Losing write permission needs no core-side action: the
                // store-drain path re-checks `has_ownership` every attempt.
                // The notice only wakes an idle core so the event engine
                // retries the drain at the same cycle lockstep would.
                NoticeKind::Downgraded { .. } => {
                    self.rfo_owned.fill(false);
                }
            }
        }
    }

    fn perform_from_memory<V: ValueImage, T: Tracer>(
        &mut self,
        lqi: LqIdx,
        now: Cycle,
        valmem: &V,
        tracer: &mut T,
    ) {
        self.progress = true;
        let Some(pos) = self.lq.pos_of(lqi) else {
            debug_assert!(false, "completion for a load not in the LQ");
            return;
        };
        let slot = lqi.slot as usize;
        let m_spec = self.lq.any_unperformed_before(pos);
        debug_assert!(matches!(self.lq.state_at(slot), LoadState::Issued(_)));
        self.lq.set_state_at(slot, LoadState::Performed);
        self.lq.performed_at[slot] = now;
        let addr = self.lq.addr[slot];
        let value = valmem.read(addr, self.lq.size[slot]);
        self.lq.value[slot] = value;
        self.lq.m_spec[slot] = m_spec;
        let rid = self.lq.rob[slot];
        let rslot = self.rob.live_slot(rid).expect("load still in ROB");
        self.rob.set_state_at(rslot, RobState::Done);
        self.rob.done_at[rslot] = now;
        self.rob.result[rslot] = value;
        let cid = self.id;
        tracer.emit(|| TraceEvent {
            cycle: now,
            core: cid,
            kind: EventKind::Perform {
                rob: rid.seq,
                addr,
                forwarded: false,
            },
        });
        tracer.emit(|| TraceEvent {
            cycle: now,
            core: cid,
            kind: EventKind::Complete { rob: rid.seq },
        });
    }

    /// Invalidation/eviction snoop of the load queue — the detection
    /// mechanism of §IV. Finds the oldest *speculative* performed load on
    /// `line` and squashes from it.
    fn snoop_lq<T: Tracer>(&mut self, line: Line, by: Option<CoreId>, now: Cycle, tracer: &mut T) {
        let mut victim: Option<(RobIdx, SquashCause)> = None;
        for pos in 0..self.lq.len() {
            let slot = self.lq.phys(pos);
            if self.lq.line[slot] != line || self.lq.state_at(slot) != LoadState::Performed {
                continue;
            }
            let rid = self.lq.rob[slot];
            // Classic in-window speculation (present in all five
            // configurations, including x86): the load is squashable iff
            // *right now* an older load is still unperformed (M-spec) or
            // an older store address is still unresolved (D-spec). Once
            // every older access is bound, the load's early perform is
            // no longer observable and a snoop cannot catch it.
            let classic = self.lq.any_unperformed_before(pos) || self.sq.any_older_unresolved(rid);
            let sa = match self.model {
                ConsistencyModel::X86 | ConsistencyModel::Ibm370NoSpec => false,
                ConsistencyModel::Ibm370SlfSpec => {
                    // SC-like: the SLF load itself is speculative while
                    // older stores linger, and so is anything younger
                    // than a speculative SLF load.
                    let self_spec = self.lq.fwd_from[slot].is_some() && self.sq.any_older(rid);
                    self_spec
                        || (0..pos).any(|p| {
                            let os = self.lq.phys(p);
                            self.lq.fwd_from[os].is_some() && self.sq.any_older(self.lq.rob[os])
                        })
                }
                ConsistencyModel::Ibm370SlfSos | ConsistencyModel::Ibm370SlfSosKey => {
                    // SoS: SLF loads are *sources* of speculation; a load
                    // is SA-speculative iff an older SLF load's
                    // forwarding store is still in the SQ/SB — whether
                    // that SLF load is still in the window or already
                    // retired (then the closed gate remembers it).
                    self.gate.is_closed()
                        || self
                            .lq
                            .older_slf_pending_before(pos, |k| self.sq.contains_key(k))
                }
            };
            if classic || sa {
                let cause = if classic {
                    SquashCause::LoadLoad
                } else {
                    SquashCause::StoreAtomicity
                };
                victim = Some((rid, cause));
                break;
            }
        }
        if let Some((rid, cause)) = victim {
            self.squash_from(rid, cause, by, Some(line), now, tracer);
        }
        // A load whose memory access is still in flight on this line
        // would complete as a stale hit: the line left the cache after
        // the hit/miss decision was made. Drop the pending response and
        // re-execute the load — the replay misses and refetches through
        // the directory, which re-serializes it against the writer
        // (whose eventual commit-time ownership grab then snoops us
        // again). Without this, an early RFO that invalidates before the
        // in-flight load performs lets the later silent commit slip past
        // the §IV detection window entirely.
        for pos in 0..self.lq.len() {
            let slot = self.lq.phys(pos);
            if self.lq.line[slot] != line {
                continue;
            }
            if let LoadState::Issued(req) = self.lq.state_at(slot) {
                self.pending_loads.remove(&req);
                self.progress = true;
                self.blocked_loads += 1;
                self.lq
                    .set_state_at(slot, LoadState::Blocked(BlockReason::Replay));
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: store-buffer drain
    // ------------------------------------------------------------------

    fn drain_stores<M: LoadStorePort, V: ValueImage, T: Tracer>(
        &mut self,
        now: Cycle,
        mem: &mut M,
        valmem: &mut V,
        tracer: &mut T,
    ) {
        if self.sq.is_empty() {
            return;
        }
        // Quiescence memo: the last full drain did nothing, the SQ is
        // untouched since, ownership state is pinned by the unchanged
        // memory stamp, and no in-flight commit has come due — so this
        // drain would scan and do nothing too. Skip it.
        if self.drain_sleep
            && !self.sq_dirty
            && now < self.drain_wake
            && mem.reject_epoch() == Some(self.drain_mem_stamp)
        {
            return;
        }
        // Anything that finishes, starts, or issues below clears
        // quiescence (a rejected issue mutates the memory system every
        // cycle, so it must replay — only a pure scan may sleep).
        let mut active = false;
        let cid = self.id;
        // Finish completed commits, strictly in program order (commits
        // start in order with a uniform latency, so done-times are
        // monotonic — TSO's store order to memory).
        while let Some(h) = self.sq.head_slot() {
            if self.sq.committing_done[h].is_none_or(|t| t > now) {
                break;
            }
            let addr = self.sq.addr[h];
            let size = self.sq.size[h];
            let value = self.sq.value[h].expect("committed store has data");
            let key = self.sq.key_at(h);
            self.sq.pop_head();
            self.lsq_epoch += 1;
            self.progress = true;
            active = true;
            valmem.write(addr, size, value);
            self.stats.sb_commits += 1;
            tracer.emit(|| TraceEvent {
                cycle: now,
                core: cid,
                kind: EventKind::SbCommit {
                    key: tkey(key),
                    addr,
                },
            });
            match self.model {
                // Injected bug (fuzzer self-test): drop the key match —
                // *any* SB commit reopens the gate, so a forwarded load
                // whose store sits behind older SB entries escapes the
                // window of vulnerability early.
                ConsistencyModel::Ibm370SlfSosKey
                    if self.cfg.injected_bug == Some(InjectedBug::GateKeyMatch) =>
                {
                    if self.gate.is_closed() {
                        tracer.emit(|| TraceEvent {
                            cycle: now,
                            core: cid,
                            kind: EventKind::GateOpen {
                                reason: GateOpenReason::SbEmpty,
                            },
                        });
                    }
                    self.gate.force_open();
                }
                ConsistencyModel::Ibm370SlfSosKey if self.gate.try_unlock(key) => {
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::GateOpen {
                            reason: GateOpenReason::KeyMatch(tkey(key)),
                        },
                    });
                }
                ConsistencyModel::Ibm370SlfSos if !self.sq.sb_nonempty() => {
                    if self.gate.is_closed() {
                        tracer.emit(|| TraceEvent {
                            cycle: now,
                            core: cid,
                            kind: EventKind::GateOpen {
                                reason: GateOpenReason::SbEmpty,
                            },
                        });
                    }
                    self.gate.force_open();
                }
                _ => {}
            }
        }
        // Start the next commit. With `commit_pipelined` the L1 write
        // port starts one store per cycle (commits still complete in
        // order); otherwise commits serialize at the L1 write latency —
        // the conservative baseline matching the paper's drain behavior.
        let l1 = mem.l1_latency().max(self.cfg.sb_commit_cycles);
        // Commits start strictly in order and only retired stores
        // commit, so the candidate sits at queue position
        // `n_committing` — inside the retired prefix (`sb_depth`) or
        // nowhere. With serialized commits an in-flight one blocks any
        // start; with pipelined commits the previous store's done-time
        // orders this one.
        let nc = self.sq.n_committing();
        let mut start: Option<(usize, Line, bool)> = None;
        let mut prev_done: Cycle = 0;
        if nc < self.sq.sb_depth() && (self.cfg.commit_pipelined || nc == 0) {
            let s = self.sq.phys(nc);
            debug_assert!(self.sq.retired_at(s) && self.sq.committing_done[s].is_none());
            debug_assert!(
                self.sq.executed_at(s),
                "retired store missing address or data"
            );
            if nc > 0 {
                prev_done = self.sq.committing_done[self.sq.phys(nc - 1)]
                    .expect("committing prefix is dense");
            }
            start = Some((s, self.sq.line[s], self.sq.own_req[s].is_none()));
        }
        if let Some((slot, line, no_req)) = start {
            let stamp = mem.reject_epoch();
            let known_unowned = stamp.is_some() && stamp == Some(self.sq_unowned_stamp[slot]);
            if !known_unowned && mem.has_ownership(line) {
                self.progress = true;
                active = true;
                mem.mark_dirty(line);
                let done = (now + l1).max(prev_done + 1);
                self.sq.start_commit_at(slot, done);
                self.sq.own_req[slot] = None;
            } else {
                if let Some(e) = stamp {
                    self.sq_unowned_stamp[slot] = e;
                }
                if no_req {
                    // Every issue attempt counts as progress: even a
                    // rejected one mutates the memory system (request ids,
                    // MSHR-reject counters), so the lockstep retry cadence
                    // must be kept.
                    self.progress = true;
                    active = true;
                    if stamp.is_some() && stamp == Some(self.sq_own_reject_stamp[slot]) {
                        mem.note_rejected_issues(1);
                    } else if let Some(req) = mem.issue_ownership(line, now) {
                        self.sq.own_req[slot] = Some(req);
                        self.pending_owns.insert(req, self.sq.idx_at_slot(slot));
                        tracer.emit(|| TraceEvent {
                            cycle: now,
                            core: cid,
                            kind: EventKind::MemReq {
                                req: req.0,
                                line: line.base(),
                                rfo: true,
                            },
                        });
                    } else if let Some(e) = stamp {
                        self.sq_own_reject_stamp[slot] = e;
                    }
                }
            }
        }
        // RFO prefetch: as soon as a store's address is known — even
        // before it retires — acquire ownership of its line so the
        // eventual in-order L1 commit is a hit (stores prefetch
        // ownership from the SQ in real cores; this is what hides store
        // miss latency behind the window).
        let mut rfos = 0;
        for pos in 0..self.cfg.rfo_depth {
            if rfos >= 2 {
                break; // RFO issue bandwidth per cycle
            }
            if pos >= self.sq.len() {
                break;
            }
            let s = self.sq.phys(pos);
            if !(self.sq.addr_resolved_at(s)
                && self.sq.own_req[s].is_none()
                && self.sq.committing_done[s].is_none())
            {
                continue;
            }
            if self.rfo_owned[s] {
                continue;
            }
            let line = self.sq.line[s];
            // Re-read per slot: an accepted issue below bumps the stamp.
            let stamp = mem.reject_epoch();
            if stamp.is_some() && stamp == Some(self.sq_unowned_stamp[s]) {
                // Pinned-unowned: the probe would return false again.
            } else if mem.has_ownership(line) {
                self.rfo_owned[s] = true;
                continue;
            } else if let Some(e) = stamp {
                self.sq_unowned_stamp[s] = e;
            }
            self.progress = true; // issue attempt (see above)
            active = true;
            if stamp.is_some() && stamp == Some(self.sq_own_reject_stamp[s]) {
                mem.note_rejected_issues(1);
                continue;
            }
            if let Some(req) = mem.issue_ownership(line, now) {
                self.sq.own_req[s] = Some(req);
                self.pending_owns.insert(req, self.sq.idx_at_slot(s));
                rfos += 1;
                tracer.emit(|| TraceEvent {
                    cycle: now,
                    core: cid,
                    kind: EventKind::MemReq {
                        req: req.0,
                        line: line.base(),
                        rfo: true,
                    },
                });
            } else if let Some(e) = stamp {
                self.sq_own_reject_stamp[s] = e;
            }
        }
        // Record quiescence for the memo at the top: this drain's scan
        // outcome stays valid until the SQ changes, the memory stamp
        // moves, or the in-flight head commit comes due.
        self.sq_dirty = false;
        self.drain_sleep = !active;
        self.drain_mem_stamp = mem.reject_epoch().unwrap_or(0);
        self.drain_wake = self
            .sq
            .head_slot()
            .and_then(|h| self.sq.committing_done[h])
            .unwrap_or(Cycle::MAX);
    }

    // ------------------------------------------------------------------
    // Phase 3: completions
    // ------------------------------------------------------------------

    fn process_completions<T: Tracer>(&mut self, now: Cycle, tracer: &mut T) {
        let cid = self.id;
        while let Some(&Reverse((t, id))) = self.completion_q.peek() {
            if t > now {
                break;
            }
            self.completion_q.pop();
            let Some(slot) = self.rob.live_slot(id) else {
                continue; // squashed while executing
            };
            if self.rob.state[slot] != RobState::Executing {
                continue;
            }
            self.progress = true;
            self.rob.set_state_at(slot, RobState::Done);
            self.rob.done_at[slot] = t;
            tracer.emit(|| TraceEvent {
                cycle: now,
                core: cid,
                kind: EventKind::Complete { rob: id.seq },
            });
            if let RobKind::Branch {
                mispredicted: true, ..
            } = self.rob.kind[slot]
            {
                self.fetch_resume = now + self.cfg.redirect_penalty;
                self.resume_was_squash = false;
                if self.fetch_blocked_on == Some(id) {
                    self.fetch_blocked_on = None;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 4: retire
    // ------------------------------------------------------------------

    fn retire<T: Tracer>(&mut self, now: Cycle, tracer: &mut T) {
        let cid = self.id;
        let mut retired: u64 = 0;
        let mut stall: Option<CpiCategory> = None;
        for _ in 0..self.cfg.width {
            let Some(hs) = self.rob.head_slot() else {
                stall = Some(self.empty_window_category(now));
                break;
            };
            let id = RobIdx {
                seq: self.rob.seq[hs],
                slot: hs as u32,
            };
            let kind = self.rob.kind[hs];
            if self.rob.state[hs] != RobState::Done || self.rob.done_at[hs] > now {
                stall = Some(self.head_wait_category(kind));
                break;
            }
            match kind {
                RobKind::Load { lq } => {
                    if let Some(cat) = self.try_retire_load(id, lq, now, tracer) {
                        stall = Some(cat);
                        break;
                    }
                    retired += 1;
                }
                RobKind::Store { sq } => {
                    let slot = self.sq.live_slot(sq).expect("retiring store in SQ");
                    self.sq.mark_retired_at(slot);
                    self.sq_dirty = true;
                    let key = self.sq.key_at(slot);
                    let addr = self.sq.addr[slot];
                    self.stats.retired_stores += 1;
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::SbEnter {
                            rob: id.seq,
                            key: tkey(key),
                            addr,
                        },
                    });
                    self.pop_retired(now, tracer);
                    retired += 1;
                }
                RobKind::Fence => {
                    if self.sq.sb_nonempty() {
                        // MFENCE waits for the SB to drain.
                        stall = Some(CpiCategory::OtherBackend);
                        break;
                    }
                    self.fences.remove(&id);
                    self.lsq_epoch += 1;
                    self.stats.retired_fences += 1;
                    self.pop_retired(now, tracer);
                    retired += 1;
                }
                RobKind::Branch { .. } => {
                    self.stats.retired_branches += 1;
                    self.pop_retired(now, tracer);
                    retired += 1;
                }
                RobKind::Alu { .. } | RobKind::Nop => {
                    self.pop_retired(now, tracer);
                    retired += 1;
                }
            }
        }
        // CPI-stack account for this cycle: `retired` slots retired an
        // instruction; the remainder are all charged to the single reason
        // the head could not retire. Exactly `width` slots per cycle.
        if retired > 0 {
            self.progress = true;
        }
        self.idle_stall = stall;
        self.metrics.cpi.add(CpiCategory::Retiring, retired);
        let leftover = self.cfg.width as u64 - retired;
        if leftover > 0 {
            let cat = stall.expect("a partial retire cycle names its stall");
            self.metrics.cpi.add(cat, leftover);
        }
    }

    /// Why the Done-but-unretirable or still-executing head is holding
    /// the retire stage.
    fn head_wait_category(&self, kind: RobKind) -> CpiCategory {
        match kind {
            RobKind::Load { lq } => match self.lq.state_of(lq) {
                Some(LoadState::Blocked(BlockReason::StoreCommit(_))) => CpiCategory::NoSpecBlock,
                Some(LoadState::Issued(_))
                | Some(LoadState::Blocked(BlockReason::MshrFull))
                | Some(LoadState::Blocked(BlockReason::Replay)) => CpiCategory::MemMiss,
                _ => CpiCategory::OtherBackend,
            },
            _ => CpiCategory::OtherBackend,
        }
    }

    /// Why the window is empty: squash-replay refill, branch redirect, or
    /// a frontend with nothing in flight (including a drained trace).
    fn empty_window_category(&self, now: Cycle) -> CpiCategory {
        if self.fetch_idx >= self.trace.len() {
            CpiCategory::Frontend
        } else if now < self.fetch_resume {
            if self.resume_was_squash {
                CpiCategory::SquashRefill
            } else {
                CpiCategory::BranchRedirect
            }
        } else if self.fetch_blocked_on.is_some() {
            CpiCategory::BranchRedirect
        } else {
            CpiCategory::Frontend
        }
    }

    /// Returns the stall category when the load must hold the head,
    /// `None` once it retires.
    fn try_retire_load<T: Tracer>(
        &mut self,
        id: RobIdx,
        lqi: LqIdx,
        _now: Cycle,
        tracer: &mut T,
    ) -> Option<CpiCategory> {
        let cid = self.id;
        let slot = self.lq.live_slot(lqi).expect("load in LQ");
        // Retire gate (370-SLFSoS / 370-SLFSoS-key).
        if self.model.uses_retire_gate() && self.gate.is_closed() {
            // Multi-key extension: an SLF load (not speculative itself)
            // may pass a closed gate by depositing its own key, if a key
            // register is free. With the paper's capacity of 1 a closed
            // gate never has space, so this reduces to a plain stall.
            let can_pass = self.model.uses_key()
                && self.gate.has_space()
                && self
                    .lq
                    .slf_key_at(slot)
                    .is_some_and(|k| self.sq.contains_key(k));
            if !can_pass {
                if self.gate_stall_cur != Some(id) {
                    self.gate_stall_cur = Some(id);
                    self.stats.gate_stall_events += 1;
                    tracer.emit(|| TraceEvent {
                        cycle: _now,
                        core: cid,
                        kind: EventKind::GateStall { rob: id.seq },
                    });
                }
                self.stats.gate_stall_cycles += 1;
                self.idle_gate_stall = true;
                return Some(CpiCategory::GateStall);
            }
        }
        // 370-SLFSpec: an SLF load is speculative and may not retire
        // until the store buffer empties.
        if self.model == ConsistencyModel::Ibm370SlfSpec {
            let fwd = self.lq.fwd_from[slot].is_some();
            if fwd && self.sq.sb_nonempty() {
                self.stats.slfspec_stall_cycles += 1;
                self.idle_slfspec_stall = true;
                return Some(CpiCategory::SlfSbWait);
            }
        }
        self.gate_stall_cur = None;
        let fwd_from = self.lq.fwd_from[slot];
        let slf_key = self.lq.slf_key_at(slot);
        self.lq.retire_head(id);
        if fwd_from.is_some() {
            self.stats.forwarded_loads += 1;
        }
        // SoS configurations: a retiring SLF load whose forwarding store
        // is still in the SQ/SB closes the gate behind itself, locked
        // with the store's key (§IV-B2). If the store already left, the
        // window of vulnerability is over and the gate stays open.
        if self.model.uses_retire_gate() && self.cfg.injected_bug != Some(InjectedBug::GateNoClose)
        {
            if let Some(k) = slf_key {
                if self.sq.contains_key(k) {
                    self.gate.close(k);
                    self.stats.gate_closures += 1;
                    tracer.emit(|| TraceEvent {
                        cycle: _now,
                        core: cid,
                        kind: EventKind::GateClose {
                            rob: id.seq,
                            key: tkey(k),
                        },
                    });
                }
            }
        }
        self.stats.retired_loads += 1;
        self.pop_retired(_now, tracer);
        None
    }

    fn pop_retired<T: Tracer>(&mut self, _now: Cycle, tracer: &mut T) {
        let hs = self.rob.head_slot().expect("retiring head");
        let id = RobIdx {
            seq: self.rob.seq[hs],
            slot: hs as u32,
        };
        let dst = self.rob.dst[hs];
        let result = self.rob.result[hs];
        let kind = self.rob.kind[hs];
        self.rob.pop_front();
        self.sched_start = self.sched_start.saturating_sub(1);
        if let Some(dst) = dst {
            self.arch_regs[dst.index()] = result;
            if self.reg_producer[dst.index()] == Some(id) {
                self.reg_producer[dst.index()] = None;
            }
        }
        self.stats.retired_instrs += 1;
        let cid = self.id;
        tracer.emit(|| TraceEvent {
            cycle: _now,
            core: cid,
            kind: EventKind::Retire {
                rob: id.seq,
                uop: tuop(&kind),
            },
        });
    }

    // ------------------------------------------------------------------
    // Phase 5: schedule / execute
    // ------------------------------------------------------------------

    /// Source operand `i` of the micro-op in ROB `slot`, read at issue.
    fn read_src(&self, slot: usize, i: usize) -> Value {
        let Some(r) = self.rob.src_regs[slot][i] else {
            return 0;
        };
        match self.rob.deps[slot][i] {
            Some(pid) => match self.rob.live_slot(pid) {
                Some(ps) => self.rob.result[ps],
                None => self.arch_regs[r.index()], // producer retired
            },
            None => self.arch_regs[r.index()],
        }
    }

    fn deps_ready(&self, slot: usize) -> [bool; 2] {
        let deps = self.rob.deps[slot];
        [
            deps[0].is_none_or(|d| self.rob.dep_satisfied(d)),
            deps[1].is_none_or(|d| self.rob.dep_satisfied(d)),
        ]
    }

    fn schedule<M: LoadStorePort, T: Tracer, P: Profiler>(
        &mut self,
        now: Cycle,
        mem: &mut M,
        tracer: &mut T,
    ) {
        let sched_span = P::span("sched_scan");
        let cid = self.id;
        let mut issued = 0usize;
        let mut load_ports = self.cfg.load_ports;
        let mut store_ports = self.cfg.store_ports;

        // Pass 1: wake waiting ROB entries, oldest first. Candidates are
        // cursor-walked out of the ROB's `waiting & ready` bitsets with
        // the scheduling-window depth (`rs_seen`) computed by popcount
        // over the frozen `not_done` snapshot — identical visit order
        // and window cut-off to the entry-by-entry scan, without
        // touching dep-stalled entries (their ready bits are down until
        // a producer-completion wake). The cursor re-reads the live
        // bitsets each step, so a store completing mid-pass exposes the
        // consumers it wakes to this same pass at their age positions,
        // and a squash (which only removes a strictly-younger suffix)
        // is handled by the per-candidate revalidation below.
        self.sched_start = self.rob.first_not_done(self.sched_start);
        let mut cur = self.rob.sched_pass(self.sched_start, self.cfg.sched_window);
        while issued < self.cfg.width {
            let Some((slot, _)) = self.rob.sched_next(&mut cur) else {
                break;
            };
            let slot = slot as usize;
            if !self.rob.slot_live(slot) || self.rob.state[slot] != RobState::Waiting {
                continue; // squashed by an earlier candidate this cycle
            }
            let id = RobIdx {
                seq: self.rob.seq[slot],
                slot: slot as u32,
            };
            let ready = self.deps_ready(slot);
            match self.rob.kind[slot] {
                RobKind::Alu { unit, eval } => {
                    if ready[0] && ready[1] {
                        let vals = [self.read_src(slot, 0), self.read_src(slot, 1)];
                        let n_srcs = self.rob.src_regs[slot].iter().flatten().count();
                        let result = eval.eval(&vals[..n_srcs]);
                        self.rob.set_state_at(slot, RobState::Executing);
                        self.rob.result[slot] = result;
                        self.completion_q
                            .push(Reverse((now + u64::from(unit.latency()), id)));
                        issued += 1;
                        self.progress = true;
                        tracer.emit(|| TraceEvent {
                            cycle: now,
                            core: cid,
                            kind: EventKind::Issue { rob: id.seq },
                        });
                    } else {
                        // Dep-stalled: the missing operand's armed wake
                        // re-raises the bit when its producer completes.
                        self.rob.clear_ready(slot);
                    }
                }
                RobKind::Branch { .. } => {
                    if ready[0] {
                        self.rob.set_state_at(slot, RobState::Executing);
                        self.completion_q.push(Reverse((now + 1, id)));
                        issued += 1;
                        self.progress = true;
                        tracer.emit(|| TraceEvent {
                            cycle: now,
                            core: cid,
                            kind: EventKind::Issue { rob: id.seq },
                        });
                    } else {
                        self.rob.clear_ready(slot);
                    }
                }
                RobKind::Load { lq } => {
                    // Address operand gates execution. A port-starved
                    // ready load keeps its bit for next cycle's pass.
                    if !ready[0] {
                        self.rob.clear_ready(slot);
                    } else if load_ports > 0 {
                        self.rob.set_state_at(slot, RobState::Executing);
                        // The Waiting→Executing transition is progress
                        // even when the load immediately blocks.
                        self.progress = true;
                        if self.try_execute_load::<M, T, P>(lq, now, mem, tracer) {
                            load_ports -= 1;
                            issued += 1;
                            tracer.emit(|| TraceEvent {
                                cycle: now,
                                core: cid,
                                kind: EventKind::Issue { rob: id.seq },
                            });
                        }
                    }
                }
                RobKind::Store { sq } => {
                    let ss = self.sq.live_slot(sq).expect("store in SQ");
                    let mut progressed = false;
                    // Address resolution (store AGU port).
                    if !self.sq.addr_resolved_at(ss) && ready[1] && store_ports > 0 {
                        store_ports -= 1;
                        progressed = true;
                        self.resolve_store_addr(sq, now, tracer);
                    }
                    // Data capture (register read, no port). A squash
                    // triggered by the address resolution only removes
                    // entries younger than this store, so `slot`/`ss`
                    // stay valid.
                    if self.sq.value[ss].is_none() && ready[0] {
                        let v = self.read_src(slot, 0);
                        self.sq.value[ss] = Some(v);
                        self.sq_dirty = true;
                        progressed = true;
                    }
                    if self.sq.executed_at(ss) {
                        self.rob.set_state_at(slot, RobState::Done);
                        self.rob.done_at[slot] = now + 1;
                        self.progress = true;
                        tracer.emit(|| TraceEvent {
                            cycle: now,
                            core: cid,
                            kind: EventKind::Complete { rob: id.seq },
                        });
                    }
                    if progressed {
                        issued += 1;
                        self.progress = true;
                        tracer.emit(|| TraceEvent {
                            cycle: now,
                            core: cid,
                            kind: EventKind::Issue { rob: id.seq },
                        });
                    }
                    if self.rob.state[slot] == RobState::Waiting {
                        // Keep the candidate bit only while an actionable
                        // job remains (a port-starved address
                        // resolution); a captured-but-incomplete store
                        // waits for its other operand's armed wake.
                        let can = (ready[1] && !self.sq.addr_resolved_at(ss))
                            || (ready[0] && self.sq.value[ss].is_none());
                        if !can {
                            self.rob.clear_ready(slot);
                        }
                    }
                }
                RobKind::Fence | RobKind::Nop => {
                    // Completed at dispatch; unreachable in Waiting.
                }
            }
        }

        // Pass 2: retry blocked loads (their wake conditions are events
        // in the SQ/SB or the memory system). Gated on a counter so the
        // common no-blocked-loads case costs nothing. A load whose retry
        // provably re-blocks identically — LSQ epoch unchanged since it
        // blocked, no rejected memory issue to replay, no forwarding data
        // that just arrived — is skipped outright; a skipped retry has no
        // side effects, so the skip is invisible to the simulation.
        drop(sched_span);
        if self.blocked_loads > 0 {
            let _p = P::span("lsq_retry");
            let mut blocked = std::mem::take(&mut self.blocked_scratch);
            self.lq.blocked_slots(&mut blocked);
            let epoch = self.lsq_epoch;
            // Filter and execute in one pass: a retry never changes the
            // take-decision inputs of a *different* blocked entry (the
            // LSQ epoch and SQ data columns are untouched here), so
            // deciding each entry just before running it matches the
            // two-pass filter-then-run order exactly. Memoized MSHR
            // re-rejections are booked in batches: their ids are
            // order-insensitive among themselves, so deferring a run of
            // them until the next real issue (or the end of the pass)
            // books the same ids at the same sequence positions.
            let mut pending_rejects: u64 = 0;
            for &slot in &blocked {
                let s = slot as usize;
                let take = match self.lq.state_at(s) {
                    // A rejected issue mutates the memory system
                    // (request id, reject counter): replay each cycle.
                    LoadState::Blocked(BlockReason::MshrFull) => {
                        if load_ports == 0 {
                            break;
                        }
                        if self.lq.attempt_epoch[s] == epoch
                            && mem.reject_epoch() == Some(self.lq.reject_stamp[s])
                        {
                            pending_rejects += 1;
                            continue;
                        }
                        true
                    }
                    // A snoop-killed in-flight load re-executes
                    // unconditionally too — its wake event (the
                    // invalidation) already happened.
                    LoadState::Blocked(BlockReason::Replay) => true,
                    LoadState::Blocked(BlockReason::ForwardData(st)) => {
                        self.lq.attempt_epoch[s] != epoch
                            || self
                                .sq
                                .live_slot(st)
                                .is_some_and(|x| self.sq.value[x].is_some())
                    }
                    LoadState::Blocked(_) => self.lq.attempt_epoch[s] != epoch,
                    _ => unreachable!("blocked bitset holds only Blocked entries"),
                };
                if !take {
                    continue;
                }
                if load_ports == 0 {
                    break;
                }
                if pending_rejects > 0 {
                    mem.note_rejected_issues(pending_rejects);
                    self.progress = true;
                    pending_rejects = 0;
                }
                let lqi = LqIdx {
                    seq: self.lq.seq[s],
                    slot,
                };
                let rid = self.lq.rob[s];
                if self.try_execute_load::<M, T, P>(lqi, now, mem, tracer) {
                    load_ports -= 1;
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::Issue { rob: rid.seq },
                    });
                }
            }
            if pending_rejects > 0 {
                mem.note_rejected_issues(pending_rejects);
                self.progress = true;
            }
            self.blocked_scratch = blocked;
        }
    }

    fn resolve_store_addr<T: Tracer>(&mut self, sq: SqIdx, now: Cycle, tracer: &mut T) {
        self.lsq_epoch += 1;
        self.sq_dirty = true;
        let sslot = self.sq.live_slot(sq).expect("resolving store");
        self.sq.resolve_addr_at(sslot);
        let store_rob = self.sq.rob[sslot];
        let store_pc = self.sq.pc[sslot];
        let addr = self.sq.addr[sslot];
        let size = self.sq.size[sslot];
        self.ss.store_resolved(store_pc);
        // Memory-order violation check: a younger load that already read
        // (or is reading) this location must be squashed and replayed.
        let mut victim: Option<(RobIdx, u64)> = None;
        for pos in 0..self.lq.len() {
            let s = self.lq.phys(pos);
            let rid = self.lq.rob[s];
            if rid <= store_rob {
                continue;
            }
            let performed_or_issued = matches!(
                self.lq.state_at(s),
                LoadState::Performed | LoadState::Issued(_)
            );
            if !performed_or_issued {
                continue;
            }
            if !sa_isa::addr::overlaps(addr, size, self.lq.addr[s], self.lq.size[s]) {
                continue;
            }
            // A load correctly forwarded from this store or a younger one
            // is fine; anything else read stale data.
            let ok = self.lq.fwd_from[s].is_some_and(|f| f >= sq);
            if !ok {
                victim = Some((rid, self.lq.pc[s]));
                break;
            }
        }
        if let Some((rid, load_pc)) = victim {
            self.ss.train_violation(store_pc, load_pc);
            self.squash_from(rid, SquashCause::MemOrder, None, None, now, tracer);
        }
    }

    /// Runs the load state machine; returns `true` when a port was
    /// consumed (a forward happened or a request was issued).
    fn try_execute_load<M: LoadStorePort, T: Tracer, P: Profiler>(
        &mut self,
        lqi: LqIdx,
        now: Cycle,
        mem: &mut M,
        tracer: &mut T,
    ) -> bool {
        let slot = self.lq.live_slot(lqi).expect("load in LQ");
        let prev_state = self.lq.state_at(slot);
        let attempt_epoch = self.lq.attempt_epoch[slot];
        // Cheapest exit first: a memoized re-rejection needs no other
        // column (see below) — book it before touching the rest of the
        // entry's cache lines.
        if prev_state == LoadState::Blocked(BlockReason::MshrFull)
            && attempt_epoch == self.lsq_epoch
            && mem.reject_epoch() == Some(self.lq.reject_stamp[slot])
        {
            mem.note_rejected_issues(1);
            self.progress = true;
            return false;
        }
        let id = self.lq.rob[slot];
        let pc = self.lq.pc[slot];
        let addr = self.lq.addr[slot];
        let size = self.lq.size[slot];
        let line = self.lq.line[slot];
        let miss_passed_unresolved = self.lq.miss_passed_unresolved[slot];
        let was_blocked = matches!(prev_state, LoadState::Blocked(_));
        let set_blocked = move |core: &mut Core, reason: BlockReason| {
            if !was_blocked {
                core.blocked_loads += 1;
            }
            // Re-blocking for the same reason leaves the load (and the
            // memory system) untouched — not progress, so a core spinning
            // on such retries can be idled by the event-driven engine.
            if prev_state != LoadState::Blocked(reason) {
                core.progress = true;
            }
            core.lq.set_state_at(slot, LoadState::Blocked(reason));
            core.lq.attempt_epoch[slot] = core.lsq_epoch;
        };

        // Fast path: an `MshrFull` retry under an unchanged LSQ epoch
        // would reproduce the same fence/StoreSet/forwarding-search miss,
        // so only the memory issue — whose rejection mutates the memory
        // system and must replay every cycle — is re-run.
        if prev_state == LoadState::Blocked(BlockReason::MshrFull)
            && attempt_epoch == self.lsq_epoch
        {
            return match mem.issue_load(line, pc, addr, now) {
                Some(req) => {
                    self.finish_load_issue(lqi, req, miss_passed_unresolved, true, now, tracer);
                    true
                }
                None => {
                    // Same rejection: request id and reject counter
                    // moved again.
                    if let Some(e) = mem.reject_epoch() {
                        self.lq.reject_stamp[slot] = e;
                    }
                    self.progress = true;
                    false
                }
            };
        }

        // An older fence blocks load issue.
        if self.fences.iter().next().is_some_and(|&f| f < id) {
            set_blocked(self, BlockReason::Fence);
            return false;
        }
        // StoreSet: wait when an older same-set store's address is
        // unresolved.
        if self.cfg.storeset {
            if let Some(set) = self.ss.set_of(pc) {
                let conflict = self.sq.has_unresolved() && {
                    let mut found = false;
                    for p in 0..self.sq.len() {
                        let s = self.sq.phys(p);
                        if self.sq.rob[s] >= id {
                            break;
                        }
                        if !self.sq.addr_resolved_at(s)
                            && self.ss.set_of(self.sq.pc[s]) == Some(set)
                        {
                            found = true;
                            break;
                        }
                    }
                    found
                };
                if conflict {
                    set_blocked(self, BlockReason::StoreSet);
                    return false;
                }
            }
        }

        let hit = {
            let _p = P::span("sq_search");
            self.sq.search(id, addr, size)
        };
        match hit {
            SearchHit::Forward {
                store,
                passed_unresolved,
            } => {
                if self.model == ConsistencyModel::Ibm370NoSpec {
                    // Blanket store atomicity: no forwarding from
                    // in-limbo stores; wait for the L1 write.
                    if prev_state != LoadState::Blocked(BlockReason::StoreCommit(store)) {
                        self.stats.nospec_block_events += 1;
                    }
                    set_blocked(self, BlockReason::StoreCommit(store));
                    return false;
                }
                let sslot = self.sq.live_slot(store).expect("matched store");
                let Some(sval) = self.sq.value[sslot] else {
                    set_blocked(self, BlockReason::ForwardData(store));
                    return false;
                };
                let value =
                    extract_forwarded(self.sq.addr[sslot], self.sq.size[sslot], sval, addr, size);
                let key = self.sq.key_at(sslot);
                self.progress = true;
                if was_blocked {
                    self.blocked_loads -= 1;
                }
                let pos = self.lq.pos_of(lqi).expect("live load");
                let m_spec = self.lq.any_unperformed_before(pos);
                self.lq.set_state_at(slot, LoadState::Performed);
                self.lq.performed_at[slot] = now + 1;
                self.lq.value[slot] = value;
                self.lq.fwd_from[slot] = Some(store);
                self.lq.set_slf_key_at(slot, key);
                self.lq.d_spec[slot] = passed_unresolved;
                self.lq.m_spec[slot] = m_spec;
                let rslot = self.rob.live_slot(id).expect("load in ROB");
                self.rob.set_state_at(rslot, RobState::Executing);
                self.rob.result[rslot] = value;
                self.completion_q.push(Reverse((now + 1, id)));
                let cid = self.id;
                tracer.emit(|| TraceEvent {
                    cycle: now,
                    core: cid,
                    kind: EventKind::Perform {
                        rob: id.seq,
                        addr,
                        forwarded: true,
                    },
                });
                true
            }
            SearchHit::Partial { store } => {
                // No partial forwarding: wait for the store's L1 write.
                set_blocked(self, BlockReason::StoreCommit(store));
                false
            }
            SearchHit::Miss { passed_unresolved } => match mem.issue_load(line, pc, addr, now) {
                Some(req) => {
                    self.finish_load_issue(lqi, req, passed_unresolved, was_blocked, now, tracer);
                    true
                }
                None => {
                    // The rejected issue still mutated the memory system
                    // (request id, MSHR-reject counter): the core must
                    // stay awake and retry every cycle, as in lockstep.
                    self.progress = true;
                    set_blocked(self, BlockReason::MshrFull);
                    self.lq.miss_passed_unresolved[slot] = passed_unresolved;
                    if let Some(e) = mem.reject_epoch() {
                        self.lq.reject_stamp[slot] = e;
                    }
                    false
                }
            },
        }
    }

    /// Books an accepted memory issue for the load `lqi`: LQ/stat updates
    /// and the trace event. Shared between the forwarding-search miss
    /// path and the `MshrFull` retry fast path.
    fn finish_load_issue<T: Tracer>(
        &mut self,
        lqi: LqIdx,
        req: MemReqId,
        passed_unresolved: bool,
        was_blocked: bool,
        now: Cycle,
        tracer: &mut T,
    ) {
        self.progress = true;
        if was_blocked {
            self.blocked_loads -= 1;
        }
        self.pending_loads.insert(req, lqi);
        self.stats.loads_to_memory += 1;
        let slot = lqi.slot as usize;
        self.lq.set_state_at(slot, LoadState::Issued(req));
        self.lq.d_spec[slot] = passed_unresolved;
        let line = self.lq.line[slot];
        let cid = self.id;
        tracer.emit(|| TraceEvent {
            cycle: now,
            core: cid,
            kind: EventKind::MemReq {
                req: req.0,
                line: line.base(),
                rfo: false,
            },
        });
    }

    // ------------------------------------------------------------------
    // Phase 6: dispatch
    // ------------------------------------------------------------------

    fn dispatch<T: Tracer>(&mut self, now: Cycle, tracer: &mut T) {
        let mut dispatched = 0usize;
        let mut stall = None;
        while dispatched < self.cfg.width {
            if self.fetch_blocked_on.is_some() || now < self.fetch_resume {
                break;
            }
            let Some(instr) = self.trace.get(self.fetch_idx) else {
                break;
            };
            if self.rob.is_full() {
                stall = Some(DispatchStall::Rob);
                break;
            }
            if instr.op.is_load() && self.lq.is_full() {
                stall = Some(DispatchStall::Lq);
                break;
            }
            if instr.op.is_store() && self.sq.is_full() {
                stall = Some(DispatchStall::Sq);
                break;
            }
            let instr = instr.clone();
            let mispredicted = self.dispatch_one(&instr, now, tracer);
            self.fetch_idx += 1;
            dispatched += 1;
            if mispredicted {
                break;
            }
        }
        if dispatched == 0 {
            self.idle_dispatch = stall;
            match stall {
                Some(DispatchStall::Rob) => self.stats.rob_stall_cycles += 1,
                Some(DispatchStall::Lq) => self.stats.lq_stall_cycles += 1,
                Some(DispatchStall::Sq) => self.stats.sq_stall_cycles += 1,
                None => {}
            }
        } else {
            self.progress = true;
        }
    }

    /// Allocates one instruction into the window; returns `true` for a
    /// mispredicted branch (fetch must stall behind it).
    fn dispatch_one<T: Tracer>(
        &mut self,
        instr: &sa_isa::Instr,
        now: Cycle,
        tracer: &mut T,
    ) -> bool {
        let pc = instr.pc;
        let mut uop = RobUop {
            trace_idx: self.fetch_idx,
            pc,
            kind: RobKind::Nop,
            dst: instr.op.dst(),
            deps: [None, None],
            src_regs: [None, None],
            state: RobState::Waiting,
            done_at: 0,
        };
        let mut mispredicted = false;
        match &instr.op {
            Op::Alu {
                unit, srcs, eval, ..
            } => {
                uop.kind = RobKind::Alu {
                    unit: *unit,
                    eval: *eval,
                };
                uop.src_regs = *srcs;
                uop.deps = [
                    srcs[0].and_then(|r| self.reg_producer[r.index()]),
                    srcs[1].and_then(|r| self.reg_producer[r.index()]),
                ];
            }
            Op::Load { addr_src, .. } => {
                // LQ allocation happens after push (needs the ROB
                // handle); the kind's LQ handle is patched then.
                uop.kind = RobKind::Load {
                    lq: LqIdx {
                        seq: u64::MAX,
                        slot: 0,
                    },
                };
                uop.src_regs = [*addr_src, None];
                uop.deps = [addr_src.and_then(|r| self.reg_producer[r.index()]), None];
            }
            Op::Store { src, addr_src, .. } => {
                let data_reg = match src {
                    StoreOperand::Reg(r) => Some(*r),
                    StoreOperand::Imm(_) => None,
                };
                uop.src_regs = [data_reg, *addr_src];
                uop.deps = [
                    data_reg.and_then(|r| self.reg_producer[r.index()]),
                    addr_src.and_then(|r| self.reg_producer[r.index()]),
                ];
                // SQ handle assigned below once the ROB handle exists.
                uop.kind = RobKind::Store {
                    sq: SqIdx {
                        seq: u64::MAX,
                        slot: 0,
                    },
                };
            }
            Op::Branch { taken, src } => {
                let correct = self.bp.update(pc.0, *taken);
                if !correct {
                    self.stats.branch_mispredicts += 1;
                    mispredicted = true;
                }
                uop.kind = RobKind::Branch {
                    taken: *taken,
                    mispredicted: !correct,
                };
                uop.src_regs = [*src, None];
                uop.deps = [src.and_then(|r| self.reg_producer[r.index()]), None];
            }
            Op::Fence => {
                uop.kind = RobKind::Fence;
                uop.state = RobState::Done;
                uop.done_at = now;
            }
            Op::Nop => {
                uop.state = RobState::Done;
                uop.done_at = now;
            }
        }

        let id = self.rob.push(uop);
        let cid = self.id;
        let trace_idx = self.fetch_idx;
        tracer.emit(|| {
            let uop = match &instr.op {
                Op::Load { .. } => UopKind::Load,
                Op::Store { .. } => UopKind::Store,
                Op::Branch { .. } => UopKind::Branch,
                Op::Alu { .. } => UopKind::Alu,
                Op::Fence => UopKind::Fence,
                Op::Nop => UopKind::Nop,
            };
            TraceEvent {
                cycle: now,
                core: cid,
                kind: EventKind::Dispatch {
                    rob: id.seq,
                    trace_idx,
                    pc: pc.0,
                    uop,
                },
            }
        });

        let rslot = id.slot as usize;
        match &instr.op {
            Op::Load {
                dst, addr, size, ..
            } => {
                let lqi = self.lq.alloc(id, pc.0, *addr, *size);
                self.rob.kind[rslot] = RobKind::Load { lq: lqi };
                let _ = dst;
            }
            Op::Store {
                src,
                addr,
                size,
                addr_src,
            } => {
                let value = match src {
                    StoreOperand::Imm(v) => Some(*v),
                    StoreOperand::Reg(_) => None,
                };
                let addr_resolved = addr_src.is_none();
                let sqi = self.sq.alloc(id, pc.0, *addr, *size, addr_resolved, value);
                self.rfo_owned[sqi.slot as usize] = false;
                self.sq_unowned_stamp[sqi.slot as usize] = u64::MAX;
                self.sq_own_reject_stamp[sqi.slot as usize] = u64::MAX;
                self.sq_dirty = true;
                self.rob.kind[rslot] = RobKind::Store { sq: sqi };
                if addr_resolved && value.is_some() {
                    self.rob.set_state_at(rslot, RobState::Done);
                    self.rob.done_at[rslot] = now;
                }
            }
            Op::Fence => {
                self.fences.insert(id);
            }
            _ => {}
        }

        // Seed the scheduler's wake state: a `Waiting` entry is marked
        // ready iff a visit could make progress right now (mirroring the
        // per-kind issue conditions exactly); otherwise each unsatisfied
        // operand arms a completion wake on its producer, which re-raises
        // the ready bit. Satisfied deps stay satisfied (producers only
        // retire after `Done`), so a non-ready entry always has at least
        // one armed wake and can never be stranded.
        if self.rob.state[rslot] == RobState::Waiting {
            let rd = self.deps_ready(rslot);
            let deps = self.rob.deps[rslot];
            let (ready, arm0, arm1) = match self.rob.kind[rslot] {
                RobKind::Alu { .. } => (rd[0] && rd[1], !rd[0], !rd[1]),
                RobKind::Branch { .. } | RobKind::Load { .. } => (rd[0], !rd[0], false),
                RobKind::Store { sq } => {
                    let ss = self.sq.live_slot(sq).expect("store just allocated");
                    let can = (rd[1] && !self.sq.addr_resolved_at(ss))
                        || (rd[0] && self.sq.value[ss].is_none());
                    (can, !rd[0], !rd[1])
                }
                RobKind::Fence | RobKind::Nop => (false, false, false),
            };
            if ready {
                self.rob.mark_ready(rslot);
            }
            if arm0 {
                if let Some(d) = deps[0] {
                    self.rob.arm_wake(d, rslot);
                }
            }
            if arm1 {
                if let Some(d) = deps[1] {
                    self.rob.arm_wake(d, rslot);
                }
            }
        }

        if let Some(dst) = instr.op.dst() {
            self.reg_producer[dst.index()] = Some(id);
        }
        if mispredicted {
            self.fetch_blocked_on = Some(id);
        }
        mispredicted
    }

    // ------------------------------------------------------------------
    // Squash & replay
    // ------------------------------------------------------------------

    fn squash_from<T: Tracer>(
        &mut self,
        from: RobIdx,
        cause: SquashCause,
        by: Option<CoreId>,
        line: Option<Line>,
        now: Cycle,
        tracer: &mut T,
    ) {
        if !self.rob.contains(from) {
            return;
        }
        let replay_trace_idx = self.rob.trace_idx[from.slot as usize];
        let n_removed = self.rob.squash_from(from);
        debug_assert!(n_removed > 0);
        self.sched_start = self.sched_start.min(self.rob.len());
        self.lsq_epoch += 1;
        self.sq_dirty = true;
        self.progress = true;
        self.stats.record_squash(cause, n_removed);
        let cid = self.id;
        tracer.emit(|| TraceEvent {
            cycle: now,
            core: cid,
            kind: EventKind::Squash {
                from_rob: from.seq,
                uops: n_removed,
                cause: tcause(cause),
                by: by.map(|c| c.0),
                line: line.map(|l| l.base()),
            },
        });
        self.fetch_idx = replay_trace_idx;
        self.fetch_resume = now + self.cfg.squash_penalty;
        self.resume_was_squash = true;
        if self.fetch_blocked_on.is_some_and(|b| b >= from) {
            self.fetch_blocked_on = None;
        }
        if self.gate_stall_cur.is_some_and(|g| g >= from) {
            self.gate_stall_cur = None;
        }
        // Live fences at or past the squash point are exactly the ones
        // being removed (the set holds only live fences, age-ordered).
        let _removed_fences = self.fences.split_off(&from);
        // Release in-flight bookkeeping of the LQ suffix, then drop it.
        let lcut = self.lq.cut_pos(from);
        for pos in lcut..self.lq.len() {
            let s = self.lq.phys(pos);
            match self.lq.state_at(s) {
                LoadState::Issued(req) => {
                    self.pending_loads.remove(&req);
                }
                LoadState::Blocked(_) => {
                    self.blocked_loads -= 1;
                }
                _ => {}
            }
        }
        self.lq.truncate(lcut);
        // Same for the SQ suffix (rewinds the circular tail pointer).
        let scut = self.sq.cut_pos(from);
        for pos in scut..self.sq.len() {
            let s = self.sq.phys(pos);
            if let Some(req) = self.sq.own_req[s] {
                self.pending_owns.remove(&req);
            }
        }
        self.sq.truncate(scut);
        // Rebuild the register rename map from the surviving window.
        self.reg_producer = [None; NUM_REGS];
        for pos in 0..self.rob.len() {
            let s = self.rob.phys(pos);
            if let Some(dst) = self.rob.dst[s] {
                self.reg_producer[dst.index()] = Some(RobIdx {
                    seq: self.rob.seq[s],
                    slot: s as u32,
                });
            }
        }
    }

    /// Test/diagnostic hook: the retire gate state.
    pub fn gate(&self) -> &RetireGate {
        &self.gate
    }

    /// Test/diagnostic hook: occupancy of the three window resources.
    pub fn occupancy(&self) -> (usize, usize, usize) {
        (self.rob.len(), self.lq.len(), self.sq.len())
    }
}
