//! Deterministic discrete-event queue, implemented as a bucketed time
//! wheel.
//!
//! The memory system schedules almost every event within a few hundred
//! cycles of "now" (network hops, cache latencies, DRAM), so a wheel of
//! power-of-two slots indexed by delivery cycle turns `schedule` and the
//! common `pop_until` miss into array operations with no heap sift. The
//! rare event beyond the horizon parks in a `BTreeMap` overflow keyed by
//! cycle. Entries carry their absolute cycle, so a slot shared by
//! several cycles (after the cursor moved back for a past-relative
//! schedule) is disambiguated by tag, not by lap arithmetic.

use std::collections::{BTreeMap, VecDeque};

use sa_isa::Cycle;

/// Slots in the wheel; must be a power of two. Covers every latency in
/// the default memory configuration (max is DRAM at 160 cycles plus
/// network hops) with generous slack.
const WHEEL_SLOTS: usize = 1024;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;

#[derive(Debug)]
struct Slotted<E> {
    cycle: Cycle,
    seq: u64,
    payload: E,
}

/// A time-ordered event queue with deterministic FIFO tie-breaking for
/// events scheduled at the same cycle.
///
/// ```
/// use sa_coherence::event::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(5, "b");
/// q.schedule(3, "a");
/// q.schedule(5, "c");
/// assert_eq!(q.pop_until(10), Some((3, "a")));
/// assert_eq!(q.pop_until(10), Some((5, "b")));
/// assert_eq!(q.pop_until(4), None); // "c" is at cycle 5
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    slots: Vec<VecDeque<Slotted<E>>>,
    /// No wheel entry lives at a cycle below this; `pop_until` scans
    /// forward from here and `schedule` moves it back for a cycle in the
    /// past relative to it.
    cursor: Cycle,
    wheel_len: usize,
    /// Events scheduled at or beyond `cursor + WHEEL_SLOTS`.
    overflow: BTreeMap<Cycle, VecDeque<(u64, E)>>,
    overflow_len: usize,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            slots: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            wheel_len: 0,
            overflow: BTreeMap::new(),
            overflow_len: 0,
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue::default()
    }

    /// Schedules `payload` at `cycle`. Events at equal cycles pop in
    /// schedule order.
    pub fn schedule(&mut self, cycle: Cycle, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        if cycle < self.cursor {
            // Scheduling "in the past" relative to the scan cursor (a
            // controller reacting at the cycle currently being drained):
            // move the cursor back so the scan revisits this cycle.
            self.cursor = cycle;
        }
        if cycle - self.cursor < WHEEL_SLOTS as u64 {
            self.slots[(cycle & WHEEL_MASK) as usize].push_back(Slotted {
                cycle,
                seq,
                payload,
            });
            self.wheel_len += 1;
        } else {
            self.overflow
                .entry(cycle)
                .or_default()
                .push_back((seq, payload));
            self.overflow_len += 1;
        }
    }

    /// Position of the earliest entry for exactly `cycle` in its slot
    /// (lowest seq: pushes arrive in seq order, so the first tag match
    /// is it).
    fn slot_front(&self, cycle: Cycle) -> Option<usize> {
        self.slots[(cycle & WHEEL_MASK) as usize]
            .iter()
            .position(|e| e.cycle == cycle)
    }

    /// Advances `cursor` to the first cycle `<= until` holding a wheel
    /// entry and returns it, or parks the cursor at `until + 1`.
    fn scan_wheel(&mut self, until: Cycle) -> Option<Cycle> {
        if self.wheel_len == 0 {
            // Safe to fast-forward: nothing behind can exist.
            self.cursor = self.cursor.max(until.saturating_add(1));
            return None;
        }
        while self.cursor <= until {
            if self.slot_front(self.cursor).is_some() {
                return Some(self.cursor);
            }
            self.cursor += 1;
        }
        None
    }

    /// Pops the earliest event whose cycle is `<= until`, if any.
    pub fn pop_until(&mut self, until: Cycle) -> Option<(Cycle, E)> {
        let wheel = self.scan_wheel(until);
        let of = self.overflow.keys().next().copied().filter(|&c| c <= until);
        match (wheel, of) {
            (None, None) => None,
            (Some(w), None) => Some(self.pop_wheel(w)),
            (None, Some(o)) => Some(self.pop_overflow(o)),
            (Some(w), Some(o)) => {
                if w < o {
                    Some(self.pop_wheel(w))
                } else if o < w {
                    Some(self.pop_overflow(o))
                } else {
                    // Same cycle in both stores (possible after a cursor
                    // move-back): FIFO order decides.
                    let wseq = {
                        let i = self.slot_front(w).expect("scanned entry");
                        self.slots[(w & WHEEL_MASK) as usize][i].seq
                    };
                    let oseq = self.overflow[&o].front().expect("non-empty bucket").0;
                    if wseq < oseq {
                        Some(self.pop_wheel(w))
                    } else {
                        Some(self.pop_overflow(o))
                    }
                }
            }
        }
    }

    fn pop_wheel(&mut self, cycle: Cycle) -> (Cycle, E) {
        let i = self.slot_front(cycle).expect("entry present");
        let e = self.slots[(cycle & WHEEL_MASK) as usize]
            .remove(i)
            .expect("in-bounds index");
        self.wheel_len -= 1;
        (e.cycle, e.payload)
    }

    fn pop_overflow(&mut self, cycle: Cycle) -> (Cycle, E) {
        let bucket = self.overflow.get_mut(&cycle).expect("bucket present");
        let (_, payload) = bucket.pop_front().expect("non-empty bucket");
        if bucket.is_empty() {
            self.overflow.remove(&cycle);
        }
        self.overflow_len -= 1;
        (cycle, payload)
    }

    /// The cycle of the earliest pending event.
    pub fn next_cycle(&self) -> Option<Cycle> {
        let of = self.overflow.keys().next().copied();
        let wheel = if self.wheel_len == 0 {
            None
        } else {
            let mut c = self.cursor;
            loop {
                if self.slot_front(c).is_some() {
                    break Some(c);
                }
                c += 1;
            }
        };
        match (wheel, of) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow_len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_cycle_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        q.schedule(10, 2);
        q.schedule(2, 3);
        q.schedule(10, 4);
        let mut out = Vec::new();
        while let Some((_, p)) = q.pop_until(u64::MAX) {
            out.push(p);
        }
        assert_eq!(out, vec![3, 1, 2, 4]);
    }

    #[test]
    fn pop_until_respects_bound() {
        let mut q = EventQueue::new();
        q.schedule(7, "x");
        assert!(q.pop_until(6).is_none());
        assert_eq!(q.next_cycle(), Some(7));
        assert_eq!(q.pop_until(7), Some((7, "x")));
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_schedule_and_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        let _ = q.pop_until(5);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = EventQueue::new();
        q.schedule(5, "near");
        q.schedule(5 + 10 * WHEEL_SLOTS as u64, "far");
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_cycle(), Some(5));
        assert_eq!(q.pop_until(u64::MAX), Some((5, "near")));
        assert_eq!(q.next_cycle(), Some(5 + 10 * WHEEL_SLOTS as u64));
        assert_eq!(
            q.pop_until(u64::MAX),
            Some((5 + 10 * WHEEL_SLOTS as u64, "far"))
        );
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_behind_cursor_is_found() {
        let mut q = EventQueue::new();
        q.schedule(100, "later");
        // Drain up to 50: cursor parks past 50.
        assert!(q.pop_until(50).is_none());
        // A controller schedules at a cycle the scan already passed.
        q.schedule(20, "revisit");
        assert_eq!(q.pop_until(50), Some((20, "revisit")));
        assert_eq!(q.pop_until(200), Some((100, "later")));
    }

    #[test]
    fn slot_sharing_across_laps_pops_in_cycle_order() {
        // Two wheel entries a full lap apart sharing one slot after a
        // cursor move-back: the cycle tag, not the slot index, decides.
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(q.pop_until(1500).is_none()); // park the cursor forward
        let (near, far) = (WHEEL_SLOTS as u64 + 8, 2 * WHEEL_SLOTS as u64 + 8);
        q.schedule(far, "b"); // within the parked cursor's horizon
        q.schedule(near, "a"); // cursor moves back; same slot as `far`
        assert_eq!(q.pop_until(u64::MAX), Some((near, "a")));
        assert_eq!(q.pop_until(u64::MAX), Some((far, "b")));
    }

    #[test]
    fn fifo_preserved_between_wheel_and_overflow() {
        let mut q = EventQueue::new();
        let c = 2 * WHEEL_SLOTS as u64;
        q.schedule(c, "first"); // beyond horizon: overflow
        assert!(q.pop_until(c - 1).is_none()); // cursor reaches c
        q.schedule(c, "second"); // now within horizon: wheel
        assert_eq!(q.pop_until(c), Some((c, "first")));
        assert_eq!(q.pop_until(c), Some((c, "second")));
    }

    #[test]
    fn randomized_matches_sorted_reference() {
        // Deterministic pseudo-random schedule/pop interleaving compared
        // against a sorted reference implementation.
        let mut q = EventQueue::new();
        let mut reference: Vec<(Cycle, u64, u64)> = Vec::new(); // (cycle, seq, tag)
        let mut seq = 0u64;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for i in 0..2000u64 {
            let r = rand();
            match r % 4 {
                0 | 1 => {
                    // Mostly near-future, occasionally far-future.
                    let delta = if r % 97 == 0 { r % 5000 } else { r % 300 };
                    q.schedule(now + delta, i);
                    reference.push((now + delta, seq, i));
                    seq += 1;
                }
                _ => {
                    now += r % 50;
                    loop {
                        let got = q.pop_until(now);
                        reference.sort();
                        let want = reference.first().filter(|&&(c, _, _)| c <= now).copied();
                        match (got, want) {
                            (None, None) => break,
                            (Some((gc, gt)), Some((wc, _, wt))) => {
                                assert_eq!((gc, gt), (wc, wt));
                                reference.remove(0);
                            }
                            (g, w) => panic!("mismatch: got {g:?}, want {w:?}"),
                        }
                    }
                }
            }
            assert_eq!(q.len(), reference.len());
        }
    }
}
