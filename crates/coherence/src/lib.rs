//! Event-driven timing model of the paper's memory system (Table III):
//! private L1 + L2 caches per core, a shared banked L3 with a blocking
//! MESI directory, and a fully-connected interconnect — the role GEMS and
//! GARNET play in the paper's infrastructure.
//!
//! # Write atomicity
//!
//! The protocol is *write atomic* (the paper's §II-E baseline assumption):
//! a `GetM` is granted only after the directory has collected invalidation
//! acknowledgements from every sharer (or the data/ack from the previous
//! owner). Consequently a store's value becomes visible to all *other*
//! cores at a single instant — its L1 commit — and the only way any core
//! can see a store "early" is its own store buffer, which is exactly the
//! store-atomicity loophole the paper studies.
//!
//! # Core-facing interface
//!
//! The out-of-order core interacts with [`MemorySystem`] through four
//! operations and a notice stream:
//!
//! * [`MemorySystem::issue_load`] — a demand load of a line; completes with
//!   [`NoticeKind::LoadDone`].
//! * [`MemorySystem::issue_ownership`] — acquire M/E ownership of a line
//!   (the RFO a draining store performs); completes with
//!   [`NoticeKind::OwnershipDone`].
//! * [`MemorySystem::has_ownership`] / [`MemorySystem::mark_dirty`] — the
//!   store-commit fast path: once the private hierarchy owns the line, the
//!   L1 write itself is a local action of the core.
//! * [`NoticeKind::Invalidated`] and [`NoticeKind::Evicted`] notices, which
//!   the core's load queue snoops — these open the paper's *window of
//!   vulnerability* (§IV).
//!
//! # Simplifications (documented per DESIGN.md)
//!
//! * Shared (S) lines are evicted silently; the directory may later send a
//!   spurious invalidation, which the private controller simply
//!   acknowledges. This is conservative for the paper's mechanisms.
//! * The directory has full coverage (the paper provisions 200% L2
//!   coverage, making directory evictions negligible).
//! * The L3 is a latency filter backed by infinite-capacity memory state;
//!   its finite data array decides hit/miss latency only.

pub mod cache;
pub mod config;
pub mod dir;
pub mod event;
pub mod memsys;
pub mod msg;
pub mod network;
pub mod noc;
pub mod prefetch;
pub mod private;
pub mod stats;

pub use config::{MemConfig, MemConfigError};
pub use memsys::{
    bank_shard, core_shard, shard_lookahead, MemReqId, MemorySystem, Notice, NoticeKind,
    RemoteEvent,
};
pub use network::Topology;
pub use noc::{BankNoc, LinkRecord, NocStats, StormRecord};
pub use stats::MemStats;
