//! Regenerates Table II: all possible outcomes of the Figure 5 code
//! (two cores each doing `st v,1; ld v; ld other`) under the
//! non-store-atomic x86 model and the store-atomic 370 model.

use sa_litmus::{explore, suite, ForwardPolicy};

// Both tuples are ([x],[y]) as observed by that core. A core "sees an
// order" when it observes one location new and the other old. (The
// paper's Table II prints Core2's case-3 pair in its own read order,
// i.e. ([y],[x]); we print ([x],[y]) uniformly.)
fn case_label(c1: (u64, u64), c2: (u64, u64)) -> &'static str {
    match (c1, c2) {
        ((1, 0), (0, 1)) => "Disagreement in order  (x86 ONLY)",
        ((1, 0), (1, 1)) => "Core2 cannot see order",
        ((1, 1), (0, 1)) => "Core1 cannot see order",
        ((1, 1), (1, 1)) => "None can see any order",
        _ => "unexpected",
    }
}

fn main() {
    sa_bench::cli::parse(&sa_bench::cli::Spec::new(
        "table2",
        "Table II: all possible outcomes of the Figure 5 code",
    ));
    let ct = suite::fig5();
    println!("Table II: all possible outcomes for the code in Figure 5");
    println!("(Core1: st x,1; ld x; ld y   Core2: st y,1; ld y; ld x)\n");
    for (policy, label) in [
        (ForwardPolicy::StoreAtomic370, "370 (store-atomic)"),
        (ForwardPolicy::X86, "x86 (non-store-atomic)"),
    ] {
        let set = explore(&ct.test, policy);
        // Project onto ([x],[y]) as seen by each core: Core1 sees x via
        // its own store (r0) and y via r1; Core2 symmetric.
        let mut cases: Vec<((u64, u64), (u64, u64))> = set
            .iter()
            .map(|o| ((o.regs[0][0], o.regs[0][1]), (o.regs[1][1], o.regs[1][0])))
            .collect();
        cases.sort();
        cases.dedup();
        println!("{label}: {} distinct observations", cases.len());
        println!("  Case  Core1 [x],[y]   Core2 [x],[y]   Comment");
        for (i, (c1, c2)) in cases.iter().enumerate() {
            println!(
                "  {:<5} {},{} (x,y)       {},{} (x,y)       {}",
                i + 1,
                c1.0,
                c1.1,
                c2.0,
                c2.1,
                case_label(*c1, *c2)
            );
        }
        println!();
    }
    println!(
        "Paper: the store-atomic implementation has exactly 3 outcomes;\n\
         the non-store-atomic one adds the disagreement outcome (case 1)."
    );
}
