//! Traces (per-core instruction sequences) and the trace builder.

use crate::addr::within_line;
use crate::instr::{AluEval, ExecUnit, Instr, Op, StoreOperand};
use crate::{Addr, Reg, Value};

/// A program counter.
///
/// PCs identify *static* instructions for the branch predictor and the
/// StoreSet memory-dependence predictor. The [`TraceBuilder`] assigns
/// sequential PCs by default but generators can pin PCs to model loops
/// (the same static instruction appearing many times dynamically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u64);

impl std::fmt::Display for Pc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A finite, per-core dynamic instruction stream.
///
/// Traces are immutable once built; the core replays them from arbitrary
/// positions after squashes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    instrs: Vec<Instr>,
}

impl Trace {
    /// An empty trace (a core that does nothing).
    pub fn empty() -> Trace {
        Trace::default()
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the trace has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at dynamic position `idx`.
    pub fn get(&self, idx: usize) -> Option<&Instr> {
        self.instrs.get(idx)
    }

    /// Iterates over the instructions in dynamic order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instr> {
        self.instrs.iter()
    }

    /// Counts dynamic instructions matching `pred`.
    pub fn count_matching(&self, pred: impl Fn(&Op) -> bool) -> usize {
        self.instrs.iter().filter(|i| pred(&i.op)).count()
    }
}

impl FromIterator<Instr> for Trace {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Trace {
        Trace {
            instrs: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Instr;
    type IntoIter = std::slice::Iter<'a, Instr>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Incrementally builds a [`Trace`].
///
/// ```
/// use sa_isa::{Reg, TraceBuilder};
/// let mut b = TraceBuilder::new();
/// b.mov_imm(Reg::new(0), 7);
/// b.store_reg(0x40, Reg::new(0));
/// b.load(Reg::new(1), 0x40);
/// b.branch(true, None);
/// let t = b.build();
/// assert_eq!(t.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct TraceBuilder {
    instrs: Vec<Instr>,
    next_pc: u64,
    pinned_pc: Option<Pc>,
}

impl TraceBuilder {
    /// Creates an empty builder with PCs starting at 0x1000.
    pub fn new() -> TraceBuilder {
        TraceBuilder {
            instrs: Vec::new(),
            next_pc: 0x1000,
            pinned_pc: None,
        }
    }

    /// Pins the PC of subsequently pushed instructions (to model a loop
    /// body whose static instructions repeat). Call [`TraceBuilder::unpin_pc`]
    /// to resume sequential PCs.
    pub fn pin_pc(&mut self, pc: Pc) -> &mut Self {
        self.pinned_pc = Some(pc);
        self
    }

    /// Resumes automatic sequential PC assignment.
    pub fn unpin_pc(&mut self) -> &mut Self {
        self.pinned_pc = None;
        self
    }

    fn alloc_pc(&mut self) -> Pc {
        if let Some(pc) = self.pinned_pc {
            pc
        } else {
            let pc = Pc(self.next_pc);
            self.next_pc += 4;
            pc
        }
    }

    /// Pushes an arbitrary op.
    ///
    /// # Panics
    ///
    /// Panics if a memory access crosses a cache line or has a size other
    /// than 1, 2, 4 or 8.
    pub fn push(&mut self, op: Op) -> &mut Self {
        if let Op::Load { addr, size, .. } | Op::Store { addr, size, .. } = &op {
            assert!(
                matches!(size, 1 | 2 | 4 | 8),
                "unsupported access size {size}"
            );
            assert!(
                within_line(*addr, *size),
                "access at {addr:#x} size {size} crosses a cache line"
            );
        }
        let pc = self.alloc_pc();
        self.instrs.push(Instr { pc, op });
        self
    }

    /// Pushes an op with an explicit PC (does not advance the sequential
    /// counter).
    pub fn push_at(&mut self, pc: Pc, op: Op) -> &mut Self {
        let saved = self.pinned_pc;
        self.pinned_pc = Some(pc);
        self.push(op);
        self.pinned_pc = saved;
        self
    }

    /// `ld dst <- [addr]` (8 bytes).
    pub fn load(&mut self, dst: Reg, addr: Addr) -> &mut Self {
        self.push(Op::Load {
            dst,
            addr,
            size: 8,
            addr_src: None,
        })
    }

    /// `ld dst <- [addr]` whose address generation waits on `addr_src`.
    pub fn load_dep(&mut self, dst: Reg, addr: Addr, addr_src: Reg) -> &mut Self {
        self.push(Op::Load {
            dst,
            addr,
            size: 8,
            addr_src: Some(addr_src),
        })
    }

    /// `st [addr] <- imm` (8 bytes).
    pub fn store_imm(&mut self, addr: Addr, value: Value) -> &mut Self {
        self.push(Op::Store {
            src: StoreOperand::Imm(value),
            addr,
            size: 8,
            addr_src: None,
        })
    }

    /// `st [addr] <- src` (8 bytes).
    pub fn store_reg(&mut self, addr: Addr, src: Reg) -> &mut Self {
        self.push(Op::Store {
            src: StoreOperand::Reg(src),
            addr,
            size: 8,
            addr_src: None,
        })
    }

    /// A store whose *address* resolves only after `addr_src` is produced.
    pub fn store_imm_dep(&mut self, addr: Addr, value: Value, addr_src: Reg) -> &mut Self {
        self.push(Op::Store {
            src: StoreOperand::Imm(value),
            addr,
            size: 8,
            addr_src: Some(addr_src),
        })
    }

    /// `dst = imm`, 1-cycle integer op.
    pub fn mov_imm(&mut self, dst: Reg, value: Value) -> &mut Self {
        self.push(Op::Alu {
            unit: ExecUnit::Int,
            dst: Some(dst),
            srcs: [None, None],
            eval: AluEval::Imm(value),
        })
    }

    /// `dst = src`, 1-cycle integer op.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Op::Alu {
            unit: ExecUnit::Int,
            dst: Some(dst),
            srcs: [Some(src), None],
            eval: AluEval::Move,
        })
    }

    /// `dst = a + b`.
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Op::Alu {
            unit: ExecUnit::Int,
            dst: Some(dst),
            srcs: [Some(a), Some(b)],
            eval: AluEval::Add,
        })
    }

    /// A dependence-only ALU op on `unit` reading `srcs` and producing an
    /// opaque value in `dst`.
    pub fn alu(&mut self, unit: ExecUnit, dst: Option<Reg>, srcs: [Option<Reg>; 2]) -> &mut Self {
        self.push(Op::Alu {
            unit,
            dst,
            srcs,
            eval: AluEval::Opaque,
        })
    }

    /// A conditional branch with outcome `taken`, optionally reading `src`.
    pub fn branch(&mut self, taken: bool, src: Option<Reg>) -> &mut Self {
        self.push(Op::Branch { taken, src })
    }

    /// A full fence.
    pub fn fence(&mut self) -> &mut Self {
        self.push(Op::Fence)
    }

    /// A no-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Op::Nop)
    }

    /// Number of instructions pushed so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Finishes the trace.
    pub fn build(self) -> Trace {
        Trace {
            instrs: self.instrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_pcs() {
        let mut b = TraceBuilder::new();
        b.nop().nop().nop();
        let t = b.build();
        let pcs: Vec<u64> = t.iter().map(|i| i.pc.0).collect();
        assert_eq!(pcs, vec![0x1000, 0x1004, 0x1008]);
    }

    #[test]
    fn pinned_pc_repeats() {
        let mut b = TraceBuilder::new();
        b.pin_pc(Pc(0x42));
        b.nop().nop();
        b.unpin_pc();
        b.nop();
        let t = b.build();
        assert_eq!(t.get(0).unwrap().pc, Pc(0x42));
        assert_eq!(t.get(1).unwrap().pc, Pc(0x42));
        assert_eq!(t.get(2).unwrap().pc, Pc(0x1000));
    }

    #[test]
    #[should_panic(expected = "crosses a cache line")]
    fn line_crossing_rejected() {
        let mut b = TraceBuilder::new();
        b.load(Reg::new(0), 0x103c);
    }

    #[test]
    #[should_panic(expected = "unsupported access size")]
    fn bad_size_rejected() {
        let mut b = TraceBuilder::new();
        b.push(Op::Load {
            dst: Reg::new(0),
            addr: 0,
            size: 3,
            addr_src: None,
        });
    }

    #[test]
    fn count_matching_ops() {
        let mut b = TraceBuilder::new();
        b.load(Reg::new(0), 0x100).store_imm(0x100, 1).nop();
        let t = b.build();
        assert_eq!(t.count_matching(Op::is_load), 1);
        assert_eq!(t.count_matching(Op::is_store), 1);
        assert_eq!(t.count_matching(Op::is_mem), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn trace_from_iterator() {
        let t: Trace = vec![Instr {
            pc: Pc(0),
            op: Op::Nop,
        }]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(Trace::empty().is_empty());
    }
}
