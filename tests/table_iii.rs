//! Table III: the default configuration *is* the paper's system, and the
//! §IV-D storage arithmetic holds.

use sa_sim::SimConfig;

#[test]
fn defaults_reproduce_table_iii() {
    let cfg = SimConfig::default();
    cfg.validate();
    // Processor.
    assert_eq!(cfg.core.width, 5);
    assert_eq!(cfg.core.rob_entries, 224);
    assert_eq!(cfg.core.lq_entries, 72);
    assert_eq!(cfg.core.sq_sb_entries, 56);
    assert!(cfg.core.storeset);
    // Memory.
    assert_eq!(cfg.mem.n_cores, 8);
    assert_eq!(cfg.mem.l1_bytes, 32 * 1024);
    assert_eq!(cfg.mem.l1_assoc, 8);
    assert_eq!(cfg.mem.l1_latency, 4);
    assert!(cfg.mem.prefetch, "Table III lists a stride L1 prefetcher");
    assert_eq!(cfg.mem.l2_bytes, 128 * 1024);
    assert_eq!(cfg.mem.l2_latency, 12);
    assert_eq!(cfg.mem.l3_banks, 8);
    assert_eq!(cfg.mem.l3_bytes_per_bank, 1024 * 1024);
    assert_eq!(cfg.mem.l3_latency, 35);
    assert_eq!(cfg.mem.mem_latency, 160);
    // Network.
    assert_eq!(cfg.mem.hop_latency, 6);
    assert_eq!(cfg.mem.data_flits, 5);
    assert_eq!(cfg.mem.ctrl_flits, 1);
}

#[test]
fn section_iv_d_storage_is_640_bits() {
    let cfg = SimConfig::default();
    assert_eq!(cfg.core.sa_storage_bits(), 640);
}

#[test]
fn rendering_matches_paper_phrasing() {
    let s = SimConfig::default().render_table3();
    assert!(s.contains("Issue / Retire width        5 instructions"));
    assert!(s.contains("Reorder buffer              224 entries"));
    assert!(s.contains("Fully connected"));
}
