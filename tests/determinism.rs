//! Full-stack determinism: identical configuration + seed produce
//! bit-identical reports, across all five configurations.

use sa_isa::ConsistencyModel;
use sa_sim::{Multicore, Report, SimConfig};

fn run_once(model: ConsistencyModel) -> Report {
    let w = sa_workloads::by_name("dedup").expect("dedup exists");
    let cfg = SimConfig::default().with_model(model).with_cores(8);
    let mut sim = Multicore::new(cfg, w.generate(8, 1_500, 99));
    sim.run(u64::MAX).expect("completes")
}

#[test]
fn reports_are_bit_identical_across_runs() {
    for model in ConsistencyModel::ALL {
        let a = run_once(model);
        let b = run_once(model);
        assert_eq!(a, b, "{model} diverged between identical runs");
    }
}

/// The interval sampler is part of the Report, so with a fine interval
/// two identical runs must produce identical time-series sample by
/// sample — the sampler reads only deterministic simulator state.
#[test]
fn sampler_time_series_is_deterministic() {
    let run = |model| {
        let w = sa_workloads::by_name("dedup").expect("dedup exists");
        let cfg = SimConfig::default()
            .with_model(model)
            .with_cores(8)
            .with_sample_interval(64);
        let mut sim = Multicore::new(cfg, w.generate(8, 1_500, 99));
        sim.run(u64::MAX).expect("completes")
    };
    for model in ConsistencyModel::ALL {
        let a = run(model);
        let b = run(model);
        assert!(
            !a.samples.is_empty(),
            "{model}: a 64-cycle interval must produce samples"
        );
        assert_eq!(a.samples, b.samples, "{model} sampler diverged");
        assert_eq!(a, b, "{model} full report diverged");
    }
}

#[test]
fn different_seeds_differ() {
    let w = sa_workloads::by_name("dedup").unwrap();
    let cfg = SimConfig::default().with_cores(8);
    let mut s1 = Multicore::new(cfg.clone(), w.generate(8, 1_500, 1));
    let mut s2 = Multicore::new(cfg, w.generate(8, 1_500, 2));
    let r1 = s1.run(u64::MAX).unwrap();
    let r2 = s2.run(u64::MAX).unwrap();
    assert_ne!(
        r1.cycles, r2.cycles,
        "distinct traces should differ in timing"
    );
}
