//! The unified store queue / store buffer (SQ/SB).
//!
//! As in actual implementations (and the paper's §II-A), the SQ and SB are
//! one physical circular buffer; the boundary between them is just the
//! retired/non-retired flag. Each entry's **key** is its position in the
//! circular buffer plus a *sorting bit* that flips on wrap-around, so a
//! key uniquely names one store generation (§IV-B2).

use std::collections::VecDeque;

use sa_coherence::MemReqId;
use sa_isa::{addr, Addr, Cycle, Line, Value};

use crate::gate::Key;
use crate::rob::RobId;

/// A unique (never reused) store identifier, monotonic in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SqId(pub u64);

/// One SQ/SB entry.
#[derive(Debug, Clone)]
pub struct SqEntry {
    /// Unique id.
    pub id: SqId,
    /// The ROB entry this store belongs to.
    pub rob_id: RobId,
    /// Static instruction PC (StoreSet training).
    pub pc: u64,
    /// Byte address (known from the trace; *architecturally resolved*
    /// only once `addr_resolved`).
    pub addr: Addr,
    /// Access size in bytes.
    pub size: u8,
    /// Cache line of `addr`.
    pub line: Line,
    /// Whether the address has been computed.
    pub addr_resolved: bool,
    /// Store data, once the data operand is ready.
    pub value: Option<Value>,
    /// Retired (i.e., in the SB portion).
    pub retired: bool,
    /// In-progress L1 commit completes at this cycle.
    pub committing_done: Option<Cycle>,
    /// Outstanding ownership (RFO) request.
    pub own_req: Option<MemReqId>,
    /// The store's key (position + sorting bit).
    pub key: Key,
}

impl SqEntry {
    /// `true` once address and data are both available.
    pub fn executed(&self) -> bool {
        self.addr_resolved && self.value.is_some()
    }
}

/// Result of a load's forwarding search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchHit {
    /// No older store overlaps; `passed_unresolved` reports whether the
    /// scan skipped stores with unresolved addresses (D-speculation).
    Miss {
        /// Scan skipped at least one unresolved-address older store.
        passed_unresolved: bool,
    },
    /// The youngest older matching store fully covers the load.
    Forward {
        /// The matching store.
        store: SqId,
        /// Scan skipped an unresolved-address store younger than `store`.
        passed_unresolved: bool,
    },
    /// The youngest older overlapping store only partially covers the
    /// load (no forwarding possible).
    Partial {
        /// The overlapping store.
        store: SqId,
    },
}

/// The circular SQ/SB.
#[derive(Debug)]
pub struct StoreQueue {
    entries: VecDeque<SqEntry>,
    capacity: usize,
    /// Total allocations; `alloc % capacity` is the circular slot and
    /// `(alloc / capacity) & 1` the sorting bit. Rewound on squash exactly
    /// like a hardware tail pointer.
    alloc_count: u64,
    next_id: u64,
}

impl StoreQueue {
    /// An empty SQ/SB of `capacity` entries.
    pub fn new(capacity: usize) -> StoreQueue {
        StoreQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            alloc_count: 0,
            next_id: 0,
        }
    }

    /// `true` when no entry can be allocated.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// `true` when there are no stores at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Allocates a store at the tail.
    ///
    /// # Panics
    ///
    /// Panics when full — the dispatcher must check [`StoreQueue::is_full`].
    pub fn alloc(
        &mut self,
        rob_id: RobId,
        pc: u64,
        addr: Addr,
        size: u8,
        addr_resolved: bool,
        value: Option<Value>,
    ) -> SqId {
        assert!(!self.is_full(), "SQ/SB overflow");
        let id = SqId(self.next_id);
        self.next_id += 1;
        let slot = (self.alloc_count % self.capacity as u64) as u16;
        let sorting = (self.alloc_count / self.capacity as u64) & 1 == 1;
        self.alloc_count += 1;
        self.entries.push_back(SqEntry {
            id,
            rob_id,
            pc,
            addr,
            size,
            line: Line::containing(addr),
            addr_resolved,
            value,
            retired: false,
            committing_done: None,
            own_req: None,
            key: Key { slot, sorting },
        });
        id
    }

    fn position(&self, id: SqId) -> Option<usize> {
        self.entries.binary_search_by_key(&id, |e| e.id).ok()
    }

    /// Entry by id.
    pub fn get(&self, id: SqId) -> Option<&SqEntry> {
        self.position(id).map(|i| &self.entries[i])
    }

    /// Entry by id, mutably.
    pub fn get_mut(&mut self, id: SqId) -> Option<&mut SqEntry> {
        self.position(id).map(move |i| &mut self.entries[i])
    }

    /// The oldest store (the SB head when retired).
    pub fn head(&self) -> Option<&SqEntry> {
        self.entries.front()
    }

    /// Entry at position `idx` from the head (oldest first), letting
    /// callers scan a prefix without building an iterator chain.
    pub fn at(&self, idx: usize) -> Option<&SqEntry> {
        self.entries.get(idx)
    }

    /// The oldest store, mutably.
    pub fn head_mut(&mut self) -> Option<&mut SqEntry> {
        self.entries.front_mut()
    }

    /// Removes the committed head.
    pub fn pop_head(&mut self) -> Option<SqEntry> {
        self.entries.pop_front()
    }

    /// `true` while a store whose key is `key` is still in the SQ/SB —
    /// the hardware check a retiring SLF load performs (position bits
    /// index the buffer; sorting bits must match).
    pub fn contains_key(&self, key: Key) -> bool {
        self.entries.iter().any(|e| e.key == key)
    }

    /// `true` when any *retired, uncommitted* store exists (the SB is
    /// non-empty) — the `370-SLFSpec` retire condition and the fence
    /// condition.
    pub fn sb_nonempty(&self) -> bool {
        self.entries.iter().any(|e| e.retired)
    }

    /// `true` when any store *older than* `rob_id` is still in the SQ/SB.
    pub fn any_older(&self, rob_id: RobId) -> bool {
        self.entries.front().is_some_and(|e| e.rob_id < rob_id)
    }

    /// `true` when a store older than `rob_id` has an unresolved address
    /// (the load at `rob_id` is D-speculative right now).
    pub fn any_older_unresolved(&self, rob_id: RobId) -> bool {
        self.entries
            .iter()
            .take_while(|e| e.rob_id < rob_id)
            .any(|e| !e.addr_resolved)
    }

    /// Forwarding search for a load (`rob_id`, `[a, a+size)`): scans older
    /// stores youngest-first (§II-A: the most recent matching store
    /// wins).
    pub fn search(&self, rob_id: RobId, a: Addr, size: u8) -> SearchHit {
        let mut passed_unresolved = false;
        // Entries are age-ordered, so the older prefix ends at the
        // partition point — younger entries are never visited.
        let older = self.entries.partition_point(|e| e.rob_id < rob_id);
        for e in self.entries.iter().take(older).rev() {
            if !e.addr_resolved {
                passed_unresolved = true;
                continue;
            }
            if addr::covers(e.addr, e.size, a, size) {
                return SearchHit::Forward {
                    store: e.id,
                    passed_unresolved,
                };
            }
            if addr::overlaps(e.addr, e.size, a, size) {
                return SearchHit::Partial { store: e.id };
            }
        }
        SearchHit::Miss { passed_unresolved }
    }

    /// Removes all *non-retired* stores with `rob_id >= from`, rewinding
    /// the circular tail pointer (slots and sorting bits are reused, as in
    /// hardware). Returns the removed entries oldest-first.
    pub fn squash_from(&mut self, from: RobId) -> Vec<SqEntry> {
        let pos = self.entries.partition_point(|e| e.rob_id < from);
        let removed: Vec<SqEntry> = self.entries.split_off(pos).into_iter().collect();
        debug_assert!(
            removed.iter().all(|e| !e.retired),
            "squashed a retired store"
        );
        self.alloc_count -= removed.len() as u64;
        removed
    }

    /// Iterates oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &SqEntry> {
        self.entries.iter()
    }

    /// Iterates oldest → youngest, mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut SqEntry> {
        self.entries.iter_mut()
    }
}

/// Extracts the bytes `[la, la+lsize)` from a store of `value` at
/// `[sa, sa+ssize)`; the store must cover the load.
pub fn extract_forwarded(sa: Addr, ssize: u8, value: Value, la: Addr, lsize: u8) -> Value {
    debug_assert!(
        addr::covers(sa, ssize, la, lsize),
        "store does not cover load"
    );
    let shift = (la - sa) * 8;
    let v = value >> shift;
    if lsize == 8 {
        v
    } else {
        v & ((1u64 << (u64::from(lsize) * 8)) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq() -> StoreQueue {
        StoreQueue::new(4)
    }

    #[test]
    fn keys_cycle_with_sorting_bit() {
        let mut q = StoreQueue::new(2);
        let a = q.alloc(RobId(0), 0, 0x100, 8, true, Some(1));
        let b = q.alloc(RobId(1), 0, 0x108, 8, true, Some(2));
        assert_eq!(
            q.get(a).unwrap().key,
            Key {
                slot: 0,
                sorting: false
            }
        );
        assert_eq!(
            q.get(b).unwrap().key,
            Key {
                slot: 1,
                sorting: false
            }
        );
        q.pop_head();
        q.pop_head();
        let c = q.alloc(RobId(2), 0, 0x110, 8, true, Some(3));
        assert_eq!(
            q.get(c).unwrap().key,
            Key {
                slot: 0,
                sorting: true
            },
            "wrap-around flips the sorting bit"
        );
    }

    #[test]
    fn squash_rewinds_tail_pointer() {
        let mut q = StoreQueue::new(2);
        let _a = q.alloc(RobId(0), 0, 0x100, 8, true, Some(1));
        let b = q.alloc(RobId(5), 0, 0x108, 8, true, Some(2));
        let key_b = q.get(b).unwrap().key;
        let removed = q.squash_from(RobId(5));
        assert_eq!(removed.len(), 1);
        // Replay allocates the same slot and sorting bit.
        let b2 = q.alloc(RobId(7), 0, 0x108, 8, true, Some(2));
        assert_eq!(q.get(b2).unwrap().key, key_b);
    }

    #[test]
    fn search_prefers_youngest_older_match() {
        let mut q = sq();
        q.alloc(RobId(0), 0, 0x100, 8, true, Some(1));
        let newer = q.alloc(RobId(2), 0, 0x100, 8, true, Some(2));
        // Load at RobId(5) matches the younger of the two stores.
        match q.search(RobId(5), 0x100, 8) {
            SearchHit::Forward {
                store,
                passed_unresolved,
            } => {
                assert_eq!(store, newer);
                assert!(!passed_unresolved);
            }
            other => panic!("expected forward, got {other:?}"),
        }
        // A load older than both misses.
        assert_eq!(
            q.search(RobId(0), 0x100, 8),
            SearchHit::Miss {
                passed_unresolved: false
            }
        );
    }

    #[test]
    fn search_reports_unresolved_scans() {
        let mut q = sq();
        q.alloc(RobId(0), 0, 0x100, 8, true, Some(1));
        q.alloc(RobId(2), 0, 0x900, 8, false, None); // unresolved
        match q.search(RobId(5), 0x100, 8) {
            SearchHit::Forward {
                passed_unresolved, ..
            } => assert!(passed_unresolved),
            other => panic!("{other:?}"),
        }
        match q.search(RobId(5), 0x700, 8) {
            SearchHit::Miss { passed_unresolved } => assert!(passed_unresolved),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn partial_overlap_detected() {
        let mut q = sq();
        q.alloc(RobId(0), 0, 0x104, 4, true, Some(1));
        match q.search(RobId(5), 0x100, 8) {
            SearchHit::Partial { .. } => {}
            other => panic!("expected partial, got {other:?}"),
        }
    }

    #[test]
    fn sb_nonempty_tracks_retirement() {
        let mut q = sq();
        let a = q.alloc(RobId(0), 0, 0x100, 8, true, Some(1));
        assert!(!q.sb_nonempty());
        q.get_mut(a).unwrap().retired = true;
        assert!(q.sb_nonempty());
        q.pop_head();
        assert!(!q.sb_nonempty());
    }

    #[test]
    fn contains_key_identifies_generation() {
        let mut q = StoreQueue::new(2);
        let a = q.alloc(RobId(0), 0, 0x100, 8, true, Some(1));
        let key = q.get(a).unwrap().key;
        assert!(q.contains_key(key));
        q.pop_head();
        assert!(!q.contains_key(key));
        // Next generation in the same slot has a different key (the
        // sorting bit flips), so a stale key can never match it.
        let _b = q.alloc(RobId(1), 0, 0x108, 8, true, Some(2));
        let c = q.alloc(RobId(2), 0, 0x110, 8, true, Some(2));
        assert_eq!(q.get(c).unwrap().key.slot, key.slot);
        assert_ne!(q.get(c).unwrap().key, key);
        assert!(!q.contains_key(key));
    }

    #[test]
    fn extract_forwarded_subsets() {
        assert_eq!(
            extract_forwarded(0x100, 8, 0x1122_3344_5566_7788, 0x100, 8),
            0x1122_3344_5566_7788
        );
        assert_eq!(
            extract_forwarded(0x100, 8, 0x1122_3344_5566_7788, 0x104, 4),
            0x1122_3344
        );
        assert_eq!(
            extract_forwarded(0x100, 8, 0x1122_3344_5566_7788, 0x100, 1),
            0x88
        );
    }

    #[test]
    #[should_panic(expected = "SQ/SB overflow")]
    fn overflow_panics() {
        let mut q = StoreQueue::new(1);
        q.alloc(RobId(0), 0, 0x100, 8, true, None);
        q.alloc(RobId(1), 0, 0x108, 8, true, None);
    }
}
