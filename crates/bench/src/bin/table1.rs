//! Regenerates Table I: atomicity of store operations.

fn main() {
    sa_bench::cli::parse(&sa_bench::cli::Spec::new(
        "table1",
        "Table I: atomicity taxonomy of store operations",
    ));
    print!("{}", sa_litmus::taxonomy::render_table1());
    println!();
    println!("Simulator mapping:");
    for m in sa_isa::ConsistencyModel::ALL {
        println!(
            "  {:<16} store-atomic: {:<5} forwarding: {:<5} retire gate: {}",
            m.label(),
            m.is_store_atomic(),
            m.allows_forwarding(),
            if m.uses_retire_gate() {
                if m.uses_key() {
                    "key-unlocked"
                } else {
                    "SB-drain-unlocked"
                }
            } else {
                "none"
            }
        );
    }
}
