//! Integration tests for the axiomatic oracle and the differential
//! fuzzing harness: the oracle's allowed sets for the paper's key
//! litmus shapes are pinned as golden files, the shrinker must converge
//! to a fixed point, and a fixed-seed fuzz run must be reproducible.
//!
//! Regenerate the golden files after an intentional oracle change with:
//! `SA_BLESS_GOLDEN=1 cargo test -p sa-bench --test fuzz_oracle`

use std::path::PathBuf;

use sa_bench::fuzz::{run_fuzz, FuzzConfig};
use sa_litmus::{render_allowed_doc, shrink, suite, ForwardPolicy, LitmusTest, Oracle};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../tests/golden/{name}"))
}

/// Renders both reference models' allowed sets for one test — the same
/// document sa-serve returns for a submitted program, so these goldens
/// also pin the service's wire format.
fn render_allowed(test: &LitmusTest) -> String {
    let mut oracle = Oracle::new();
    let x86 = oracle.allowed(test, ForwardPolicy::X86).clone();
    let atomic = oracle.allowed(test, ForwardPolicy::StoreAtomic370).clone();
    render_allowed_doc(test.name, test, &x86, &atomic)
}

fn check_golden(file: &str, test: &LitmusTest) {
    let doc = render_allowed(test);
    let path = golden_path(file);
    if std::env::var_os("SA_BLESS_GOLDEN").is_some() {
        std::fs::write(&path, &doc).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {file} ({e}); bless with SA_BLESS_GOLDEN=1"));
    assert_eq!(
        doc, golden,
        "oracle allowed set for {} drifted from tests/golden/{file}; \
         if the change is intentional, rerun with SA_BLESS_GOLDEN=1",
        test.name
    );
}

#[test]
fn oracle_mp_allowed_set_matches_golden() {
    check_golden("oracle_mp.txt", &suite::mp().test);
}

#[test]
fn oracle_sb_allowed_set_matches_golden() {
    check_golden("oracle_sb.txt", &suite::sb().test);
}

#[test]
fn oracle_n6_allowed_set_matches_golden() {
    check_golden("oracle_n6.txt", &suite::n6().test);
}

#[test]
fn oracle_iriw_allowed_set_matches_golden() {
    check_golden("oracle_iriw.txt", &suite::iriw().test);
}

#[test]
fn oracle_wrc_allowed_set_matches_golden() {
    check_golden("oracle_wrc.txt", &suite::wrc().test);
}

#[test]
fn oracle_lb_allowed_set_matches_golden() {
    check_golden("oracle_lb.txt", &suite::lb().test);
}

/// The non-store-atomic n6 outcome separates the two reference models:
/// x86-TSO allows it, atomic 370 forbids it. The oracle must agree.
#[test]
fn n6_separates_the_reference_models() {
    let mut oracle = Oracle::new();
    let test = suite::n6().test;
    let x86 = oracle.allowed(&test, ForwardPolicy::X86).clone();
    let atomic = oracle.allowed(&test, ForwardPolicy::StoreAtomic370).clone();
    assert!(atomic.is_subset(&x86), "370 must be a refinement of TSO");
    assert!(
        !x86.difference(&atomic).is_empty(),
        "n6 must have an x86-only (non-store-atomic) outcome"
    );
}

/// Shrinking with a stable predicate converges: the minimized program
/// still reproduces, and re-shrinking it is a fixed point.
#[test]
fn shrinker_converges_to_a_fixed_point() {
    // "Has an x86-only outcome" is a deterministic predicate the
    // shrinker can chase without a simulator in the loop.
    let mut repro = |t: &LitmusTest| {
        let mut oracle = Oracle::new();
        let x86 = oracle.allowed(t, ForwardPolicy::X86).clone();
        let atomic = oracle.allowed(t, ForwardPolicy::StoreAtomic370).clone();
        !x86.difference(&atomic).is_empty()
    };
    // n6 padded with irrelevant ops the shrinker should strip.
    let bloated = {
        use sa_litmus::ast::{LOp, Y, Z};
        let n6 = suite::n6().test;
        let mut threads = n6.threads.clone();
        threads[0].push(LOp::Ld(Z));
        threads[0].insert(0, LOp::Ld(Y));
        threads[1].push(LOp::St(Z, 3));
        LitmusTest::new("n6_bloated", threads)
    };
    assert!(repro(&bloated), "bloated n6 must still reproduce");
    let min = shrink(&bloated, &mut repro);
    assert!(repro(&min), "shrinker must preserve the predicate");
    let total_ops = |t: &LitmusTest| t.threads.iter().map(Vec::len).sum::<usize>();
    assert!(
        total_ops(&min) < total_ops(&bloated),
        "shrinker should remove the padding ops"
    );
    let again = shrink(&min, &mut repro);
    assert_eq!(
        again.threads, min.threads,
        "re-shrinking a minimized program must be a fixed point"
    );
}

/// The same (seed, programs) input replays to the identical report.
#[test]
fn fixed_seed_fuzz_run_is_reproducible() {
    let cfg = FuzzConfig {
        programs: 2,
        seed: 7,
        jobs: 2,
        mutate: None,
    };
    let a = run_fuzz(&cfg);
    let b = run_fuzz(&cfg);
    assert_eq!(a.corpus, b.corpus);
    assert_eq!(a.runs, b.runs);
    assert!(
        a.violations.is_empty() && b.violations.is_empty(),
        "clean machine must pass: {:?}",
        a.violations
    );
}
