//! Quickstart: build a tiny program, run it under the non-store-atomic
//! x86 configuration and under the paper's 370-SLFSoS-key configuration,
//! and compare what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sa_isa::{ConsistencyModel, CoreId, Reg, Trace, TraceBuilder};
use sa_sim::{Multicore, SimConfig};

fn program() -> Trace {
    let mut b = TraceBuilder::new();
    // A little "function call": write two arguments to the stack, do some
    // work, read them back (store-to-load forwarding), combine.
    b.mov_imm(Reg::new(1), 40);
    b.mov_imm(Reg::new(2), 2);
    b.store_reg(0x7000_0000, Reg::new(1)); // push arg0
    b.store_reg(0x7000_0008, Reg::new(2)); // push arg1
    for _ in 0..4 {
        b.alu(
            sa_isa::ExecUnit::Int,
            Some(Reg::new(3)),
            [Some(Reg::new(1)), None],
        );
    }
    b.load(Reg::new(4), 0x7000_0000); // forwarded from the store buffer
    b.load(Reg::new(5), 0x7000_0008); // forwarded from the store buffer
    b.add(Reg::new(6), Reg::new(4), Reg::new(5));
    b.store_reg(0x1000_0000, Reg::new(6)); // publish the answer
    b.build()
}

fn main() {
    for model in [ConsistencyModel::X86, ConsistencyModel::Ibm370SlfSosKey] {
        let cfg = SimConfig::default().with_model(model).with_cores(1);
        let mut sim = Multicore::new(cfg, vec![program()]);
        let report = sim.run(1_000_000).expect("program finishes");
        let stats = report.total();
        println!("--- {model} ---");
        println!(
            "  answer               = {}",
            sim.memory().read(0x1000_0000, 8)
        );
        println!(
            "  r6                   = {}",
            sim.core(CoreId(0)).arch_reg(Reg::new(6))
        );
        println!("  cycles               = {}", report.cycles);
        println!("  instructions retired = {}", stats.retired_instrs);
        println!("  forwarded loads      = {}", stats.forwarded_loads);
        println!("  gate closures        = {}", stats.gate_closures);
        println!("  gate stall cycles    = {}", stats.gate_stall_cycles);
        println!();
    }
    println!(
        "Both configurations compute 42; the store-atomic one pays (at most)\n\
         a few gate-stall cycles for a strictly stronger memory model."
    );
}
