//! Minimal HTTP/1.1 request/response handling on `std::net`.
//!
//! Extends the read-only scrape loop of `sa_bench::serve::MetricsServer`
//! to request *bodies*: the head is read until `\r\n\r\n` (with a size
//! cap), then `Content-Length` more bytes. One request per connection,
//! `Connection: close` — the clients here are `curl`, a Prometheus
//! scraper, and the polling job client, none of which need keep-alive.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Request heads larger than this are rejected outright.
const MAX_HEAD: usize = 8 * 1024;
/// Bodies larger than this return 413 — a litmus program is a few
/// hundred bytes; nothing legitimate approaches the cap.
pub const MAX_BODY: usize = 64 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path component of the request target (no query handling).
    pub path: String,
    /// Raw body bytes (empty for bodyless requests).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed, mapped to the status it earns.
#[derive(Debug, PartialEq, Eq)]
pub enum BadRequest {
    /// Malformed head or oversized head.
    Malformed,
    /// Body exceeds [`MAX_BODY`].
    TooLarge,
}

impl BadRequest {
    /// The HTTP status line for this rejection.
    pub fn status(&self) -> &'static str {
        match self {
            BadRequest::Malformed => "400 Bad Request",
            BadRequest::TooLarge => "413 Payload Too Large",
        }
    }
}

/// Reads one request (head + `Content-Length` body) off the stream.
/// The outer `Err` is an I/O failure (drop the connection); the inner
/// `Err` is a protocol failure (answer with its status).
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Result<Request, BadRequest>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i + 4;
        }
        if buf.len() > MAX_HEAD {
            return Ok(Err(BadRequest::Malformed));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(Err(BadRequest::Malformed));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut first = head.lines().next().unwrap_or("").split_whitespace();
    let (Some(method), Some(path)) = (first.next(), first.next()) else {
        return Ok(Err(BadRequest::Malformed));
    };
    let content_length = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Ok(Err(BadRequest::TooLarge));
    }
    let mut body: Vec<u8> = buf[head_end..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(Err(BadRequest::Malformed));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    }))
}

/// Writes one complete response and flushes.
pub fn respond(
    stream: &mut TcpStream,
    status: &str,
    ctype: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &[u8]) -> Result<Request, BadRequest> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            // Hold the connection open until the server has parsed.
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream).unwrap();
        let _ = respond(&mut stream, "200 OK", "text/plain", "ok");
        drop(stream);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_get_without_body() {
        let r = round_trip(b"GET /jobs/7 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/jobs/7");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let body = b"{\"kind\":\"litmus\"}";
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            String::from_utf8_lossy(body)
        );
        let r = round_trip(raw.as_bytes()).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/jobs");
        assert_eq!(r.body, body);
    }

    #[test]
    fn rejects_oversized_bodies_with_413() {
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let e = round_trip(raw.as_bytes()).unwrap_err();
        assert_eq!(e, BadRequest::TooLarge);
        assert_eq!(e.status(), "413 Payload Too Large");
    }

    #[test]
    fn rejects_garbage_head() {
        let e = round_trip(b"\r\n\r\n").unwrap_err();
        assert_eq!(e, BadRequest::Malformed);
    }
}
