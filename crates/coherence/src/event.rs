//! Deterministic discrete-event queue, implemented as a bucketed time
//! wheel.
//!
//! The memory system schedules almost every event within a few hundred
//! cycles of "now" (network hops, cache latencies, DRAM), so a wheel of
//! power-of-two slots indexed by delivery cycle turns `schedule` and the
//! common `pop_until` miss into array operations with no heap sift. The
//! rare event beyond the horizon parks in a `BTreeMap` overflow keyed by
//! cycle. Entries carry their absolute cycle, so a slot shared by
//! several cycles (after the cursor moved back for a past-relative
//! schedule) is disambiguated by tag, not by lap arithmetic.
//!
//! ## Canonical ordering
//!
//! Events pop in `(cycle, origin, seq)` order. `origin` is the linear
//! index of the node that *emitted* the event (cores first, then
//! directory banks — the same placement [`crate::Topology`] uses) and
//! `seq` is a per-queue monotone counter. Because a node's emissions are
//! themselves deterministic, this key is reproducible no matter how the
//! nodes are partitioned across threads: the parallel engine's shards
//! stamp events with the same `(cycle, origin, seq)` keys the serial
//! engine would, and [`EventQueue::inject`] lets a shard enqueue a
//! remote shard's event under its original key. Same-key collisions are
//! impossible — one origin's events always come from one counter.

use std::collections::{BTreeMap, VecDeque};

use sa_isa::Cycle;

/// Slots in the wheel; must be a power of two. Covers every latency in
/// the default memory configuration (max is DRAM at 160 cycles plus
/// network hops) with generous slack.
const WHEEL_SLOTS: usize = 1024;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;

#[derive(Debug)]
struct Slotted<E> {
    cycle: Cycle,
    origin: u32,
    seq: u64,
    payload: E,
}

/// A time-ordered event queue with deterministic `(origin, seq)`
/// tie-breaking for events scheduled at the same cycle.
///
/// ```
/// use sa_coherence::event::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(5, "b");
/// q.schedule(3, "a");
/// q.schedule(5, "c");
/// assert_eq!(q.pop_until(10), Some((3, "a")));
/// assert_eq!(q.pop_until(10), Some((5, "b")));
/// assert_eq!(q.pop_until(4), None); // "c" is at cycle 5
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    slots: Vec<VecDeque<Slotted<E>>>,
    /// No wheel entry lives at a cycle below this; `pop_until` scans
    /// forward from here and `schedule` moves it back for a cycle in the
    /// past relative to it.
    cursor: Cycle,
    wheel_len: usize,
    /// Events scheduled at or beyond `cursor + WHEEL_SLOTS`.
    overflow: BTreeMap<Cycle, Vec<(u32, u64, E)>>,
    overflow_len: usize,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            slots: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            wheel_len: 0,
            overflow: BTreeMap::new(),
            overflow_len: 0,
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue::default()
    }

    /// Schedules `payload` at `cycle` from origin 0. Events at equal
    /// cycles and origins pop in schedule order.
    pub fn schedule(&mut self, cycle: Cycle, payload: E) {
        self.schedule_from(cycle, 0, payload);
    }

    /// Schedules `payload` at `cycle`, stamped with the emitting node's
    /// linear index so same-cycle events pop in `(origin, seq)` order.
    pub fn schedule_from(&mut self, cycle: Cycle, origin: u32, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.insert(cycle, origin, seq, payload);
    }

    /// Enqueues an event under an explicit `(origin, seq)` key minted by
    /// another queue — the parallel engine's cross-shard delivery path.
    /// The local counter is bumped past `seq` so later local emissions
    /// never sort before an already-injected event of the same origin.
    pub fn inject(&mut self, cycle: Cycle, origin: u32, seq: u64, payload: E) {
        self.seq = self.seq.max(seq + 1);
        self.insert(cycle, origin, seq, payload);
    }

    /// The key the next locally-scheduled event would get; paired with
    /// [`EventQueue::inject`] to relay an event queue-to-queue.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Consumes and returns the next local seq without enqueuing
    /// anything — used when an emission is diverted to another queue (a
    /// cross-shard outbox) but must keep its place in this origin's
    /// emission order.
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn insert(&mut self, cycle: Cycle, origin: u32, seq: u64, payload: E) {
        if cycle < self.cursor {
            // Scheduling "in the past" relative to the scan cursor (a
            // controller reacting at the cycle currently being drained):
            // move the cursor back so the scan revisits this cycle.
            self.cursor = cycle;
        }
        if cycle - self.cursor < WHEEL_SLOTS as u64 {
            self.slots[(cycle & WHEEL_MASK) as usize].push_back(Slotted {
                cycle,
                origin,
                seq,
                payload,
            });
            self.wheel_len += 1;
        } else {
            self.overflow
                .entry(cycle)
                .or_default()
                .push((origin, seq, payload));
            self.overflow_len += 1;
        }
    }

    /// Position of the `(origin, seq)`-minimal entry for exactly `cycle`
    /// in its slot.
    fn slot_front(&self, cycle: Cycle) -> Option<usize> {
        let slot = &self.slots[(cycle & WHEEL_MASK) as usize];
        let mut best: Option<(u32, u64, usize)> = None;
        for (i, e) in slot.iter().enumerate() {
            if e.cycle == cycle && best.is_none_or(|(o, s, _)| (e.origin, e.seq) < (o, s)) {
                best = Some((e.origin, e.seq, i));
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Position of the `(origin, seq)`-minimal entry in an overflow
    /// bucket.
    fn bucket_front(bucket: &[(u32, u64, E)]) -> usize {
        let mut best = 0;
        for (i, e) in bucket.iter().enumerate().skip(1) {
            let (bo, bs, _) = &bucket[best];
            if (e.0, e.1) < (*bo, *bs) {
                best = i;
            }
        }
        best
    }

    /// Advances `cursor` to the first cycle `<= until` holding a wheel
    /// entry and returns it, or parks the cursor at `until + 1`.
    fn scan_wheel(&mut self, until: Cycle) -> Option<Cycle> {
        if self.wheel_len == 0 {
            // Safe to fast-forward: nothing behind can exist.
            self.cursor = self.cursor.max(until.saturating_add(1));
            return None;
        }
        while self.cursor <= until {
            if self.slot_front(self.cursor).is_some() {
                return Some(self.cursor);
            }
            self.cursor += 1;
        }
        None
    }

    /// Pops the earliest event whose cycle is `<= until`, if any.
    pub fn pop_until(&mut self, until: Cycle) -> Option<(Cycle, E)> {
        self.pop_until_keyed(until).map(|(c, _, _, e)| (c, e))
    }

    /// [`EventQueue::pop_until`] exposing the popped event's full
    /// canonical key `(cycle, origin, seq)`.
    pub fn pop_until_keyed(&mut self, until: Cycle) -> Option<(Cycle, u32, u64, E)> {
        let wheel = self.scan_wheel(until);
        let of = self.overflow.keys().next().copied().filter(|&c| c <= until);
        match (wheel, of) {
            (None, None) => None,
            (Some(w), None) => Some(self.pop_wheel(w)),
            (None, Some(o)) => Some(self.pop_overflow(o)),
            (Some(w), Some(o)) => {
                if w < o {
                    Some(self.pop_wheel(w))
                } else if o < w {
                    Some(self.pop_overflow(o))
                } else {
                    // Same cycle in both stores (possible after a cursor
                    // move-back): the canonical key decides.
                    let wkey = {
                        let i = self.slot_front(w).expect("scanned entry");
                        let e = &self.slots[(w & WHEEL_MASK) as usize][i];
                        (e.origin, e.seq)
                    };
                    let bucket = &self.overflow[&o];
                    let b = &bucket[Self::bucket_front(bucket)];
                    if wkey < (b.0, b.1) {
                        Some(self.pop_wheel(w))
                    } else {
                        Some(self.pop_overflow(o))
                    }
                }
            }
        }
    }

    fn pop_wheel(&mut self, cycle: Cycle) -> (Cycle, u32, u64, E) {
        let i = self.slot_front(cycle).expect("entry present");
        let e = self.slots[(cycle & WHEEL_MASK) as usize]
            .remove(i)
            .expect("in-bounds index");
        self.wheel_len -= 1;
        (e.cycle, e.origin, e.seq, e.payload)
    }

    fn pop_overflow(&mut self, cycle: Cycle) -> (Cycle, u32, u64, E) {
        let bucket = self.overflow.get_mut(&cycle).expect("bucket present");
        let i = Self::bucket_front(bucket);
        let (origin, seq, payload) = bucket.remove(i);
        if bucket.is_empty() {
            self.overflow.remove(&cycle);
        }
        self.overflow_len -= 1;
        (cycle, origin, seq, payload)
    }

    /// The cycle of the earliest pending event.
    pub fn next_cycle(&self) -> Option<Cycle> {
        let of = self.overflow.keys().next().copied();
        let wheel = if self.wheel_len == 0 {
            None
        } else {
            let mut c = self.cursor;
            loop {
                if self.slot_front(c).is_some() {
                    break Some(c);
                }
                c += 1;
            }
        };
        match (wheel, of) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow_len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_cycle_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        q.schedule(10, 2);
        q.schedule(2, 3);
        q.schedule(10, 4);
        let mut out = Vec::new();
        while let Some((_, p)) = q.pop_until(u64::MAX) {
            out.push(p);
        }
        assert_eq!(out, vec![3, 1, 2, 4]);
    }

    #[test]
    fn same_cycle_orders_by_origin_before_seq() {
        let mut q = EventQueue::new();
        q.schedule_from(10, 3, "late-origin, early seq");
        q.schedule_from(10, 1, "mid");
        q.schedule_from(10, 0, "first");
        q.schedule_from(10, 1, "mid-second");
        let mut out = Vec::new();
        while let Some((_, p)) = q.pop_until(u64::MAX) {
            out.push(p);
        }
        assert_eq!(
            out,
            vec!["first", "mid", "mid-second", "late-origin, early seq"]
        );
    }

    #[test]
    fn inject_preserves_remote_keys() {
        // Shard A emits (origin 2, seq 5) at cycle 10; shard B holds a
        // local (origin 7, seq 0) at the same cycle. After injection the
        // pop order is the canonical serial order, and B's counter jumps
        // past the injected seq.
        let mut q = EventQueue::new();
        q.schedule_from(10, 7, "local");
        q.inject(10, 2, 5, "remote");
        assert!(q.next_seq() >= 6);
        assert_eq!(q.pop_until(u64::MAX), Some((10, "remote")));
        assert_eq!(q.pop_until(u64::MAX), Some((10, "local")));
    }

    #[test]
    fn pop_until_respects_bound() {
        let mut q = EventQueue::new();
        q.schedule(7, "x");
        assert!(q.pop_until(6).is_none());
        assert_eq!(q.next_cycle(), Some(7));
        assert_eq!(q.pop_until(7), Some((7, "x")));
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_schedule_and_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        let _ = q.pop_until(5);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = EventQueue::new();
        q.schedule(5, "near");
        q.schedule(5 + 10 * WHEEL_SLOTS as u64, "far");
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_cycle(), Some(5));
        assert_eq!(q.pop_until(u64::MAX), Some((5, "near")));
        assert_eq!(q.next_cycle(), Some(5 + 10 * WHEEL_SLOTS as u64));
        assert_eq!(
            q.pop_until(u64::MAX),
            Some((5 + 10 * WHEEL_SLOTS as u64, "far"))
        );
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_behind_cursor_is_found() {
        let mut q = EventQueue::new();
        q.schedule(100, "later");
        // Drain up to 50: cursor parks past 50.
        assert!(q.pop_until(50).is_none());
        // A controller schedules at a cycle the scan already passed.
        q.schedule(20, "revisit");
        assert_eq!(q.pop_until(50), Some((20, "revisit")));
        assert_eq!(q.pop_until(200), Some((100, "later")));
    }

    #[test]
    fn slot_sharing_across_laps_pops_in_cycle_order() {
        // Two wheel entries a full lap apart sharing one slot after a
        // cursor move-back: the cycle tag, not the slot index, decides.
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(q.pop_until(1500).is_none()); // park the cursor forward
        let (near, far) = (WHEEL_SLOTS as u64 + 8, 2 * WHEEL_SLOTS as u64 + 8);
        q.schedule(far, "b"); // within the parked cursor's horizon
        q.schedule(near, "a"); // cursor moves back; same slot as `far`
        assert_eq!(q.pop_until(u64::MAX), Some((near, "a")));
        assert_eq!(q.pop_until(u64::MAX), Some((far, "b")));
    }

    #[test]
    fn canonical_order_preserved_between_wheel_and_overflow() {
        let mut q = EventQueue::new();
        let c = 2 * WHEEL_SLOTS as u64;
        q.schedule_from(c, 1, "origin1"); // beyond horizon: overflow
        assert!(q.pop_until(c - 1).is_none()); // cursor reaches c
        q.schedule_from(c, 0, "origin0"); // now within horizon: wheel
        q.schedule_from(c, 2, "origin2"); // wheel, later origin
        assert_eq!(q.pop_until(c), Some((c, "origin0")));
        assert_eq!(q.pop_until(c), Some((c, "origin1")));
        assert_eq!(q.pop_until(c), Some((c, "origin2")));
    }

    #[test]
    fn randomized_matches_sorted_reference() {
        // Deterministic pseudo-random schedule/pop interleaving compared
        // against a sorted reference implementation of the canonical
        // (cycle, origin, seq) order.
        let mut q = EventQueue::new();
        let mut reference: Vec<(Cycle, u32, u64, u64)> = Vec::new(); // (cycle, origin, seq, tag)
        let mut seq = 0u64;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for i in 0..2000u64 {
            let r = rand();
            match r % 4 {
                0 | 1 => {
                    // Mostly near-future, occasionally far-future.
                    let delta = if r % 97 == 0 { r % 5000 } else { r % 300 };
                    let origin = (r >> 32) as u32 % 9;
                    q.schedule_from(now + delta, origin, i);
                    reference.push((now + delta, origin, seq, i));
                    seq += 1;
                }
                _ => {
                    now += r % 50;
                    loop {
                        let got = q.pop_until(now);
                        reference.sort();
                        let want = reference.first().filter(|&&(c, _, _, _)| c <= now).copied();
                        match (got, want) {
                            (None, None) => break,
                            (Some((gc, gt)), Some((wc, _, _, wt))) => {
                                assert_eq!((gc, gt), (wc, wt));
                                reference.remove(0);
                            }
                            (g, w) => panic!("mismatch: got {g:?}, want {w:?}"),
                        }
                    }
                }
            }
            assert_eq!(q.len(), reference.len());
        }
    }
}
