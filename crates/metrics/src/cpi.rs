//! Retire-slot CPI stacks.
//!
//! Top-down accounting at the retire stage: a `width`-wide core offers
//! `width` retire slots every cycle, and every slot is charged to exactly
//! one [`CpiCategory`] — either an instruction retired through it
//! ([`CpiCategory::Retiring`]) or the whole remainder of the cycle's
//! slots is charged to the *one* reason the head of the ROB could not
//! retire. The invariant that categories sum to `width × cycles` is what
//! makes the stack an *account* rather than a set of overlapping
//! counters: the Figure 10 time delta between two configurations is
//! exactly the difference of their non-retiring slot counts.

use crate::pct;

/// Number of CPI-stack categories.
pub const CPI_CATEGORIES: usize = 9;

/// Where a retire slot went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpiCategory {
    /// An instruction retired through the slot.
    Retiring,
    /// Head load stalled behind the closed retire gate
    /// (`370-SLFSoS` / `370-SLFSoS-key` — Table IV "Gate Stalls").
    GateStall,
    /// Head SLF load waiting for the SB to drain (`370-SLFSpec` rule).
    SlfSbWait,
    /// Head load blocked at execute waiting for a store's L1 write
    /// (`370-NoSpec` blanket enforcement, or a partial overlap).
    NoSpecBlock,
    /// Head load waiting on the memory system (issued miss or MSHR
    /// pressure).
    MemMiss,
    /// Window empty while fetch refills after a squash replay.
    SquashRefill,
    /// Window empty (or head unresolved) behind a mispredicted branch /
    /// fetch redirect.
    BranchRedirect,
    /// Window empty with fetch unobstructed: the trace drained, or the
    /// frontend simply has nothing in flight yet.
    Frontend,
    /// Head not ready for any other backend reason (ALU latency, store
    /// data/address, fence waiting on SB drain, ...).
    OtherBackend,
}

impl CpiCategory {
    /// All categories, in display order.
    pub const ALL: [CpiCategory; CPI_CATEGORIES] = [
        CpiCategory::Retiring,
        CpiCategory::GateStall,
        CpiCategory::SlfSbWait,
        CpiCategory::NoSpecBlock,
        CpiCategory::MemMiss,
        CpiCategory::SquashRefill,
        CpiCategory::BranchRedirect,
        CpiCategory::Frontend,
        CpiCategory::OtherBackend,
    ];

    /// Stable index into [`CpiStack::slots`].
    pub fn index(self) -> usize {
        match self {
            CpiCategory::Retiring => 0,
            CpiCategory::GateStall => 1,
            CpiCategory::SlfSbWait => 2,
            CpiCategory::NoSpecBlock => 3,
            CpiCategory::MemMiss => 4,
            CpiCategory::SquashRefill => 5,
            CpiCategory::BranchRedirect => 6,
            CpiCategory::Frontend => 7,
            CpiCategory::OtherBackend => 8,
        }
    }

    /// Short kebab-case label (metric/JSON key).
    pub fn label(self) -> &'static str {
        match self {
            CpiCategory::Retiring => "retiring",
            CpiCategory::GateStall => "gate-stall",
            CpiCategory::SlfSbWait => "slf-sb-wait",
            CpiCategory::NoSpecBlock => "nospec-block",
            CpiCategory::MemMiss => "mem-miss",
            CpiCategory::SquashRefill => "squash-refill",
            CpiCategory::BranchRedirect => "branch-redirect",
            CpiCategory::Frontend => "frontend-empty",
            CpiCategory::OtherBackend => "other-backend",
        }
    }
}

impl std::fmt::Display for CpiCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One core's (or one machine's, after merging) retire-slot account.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpiStack {
    /// Slot counts, indexed by [`CpiCategory::index`].
    pub slots: [u64; CPI_CATEGORIES],
}

impl CpiStack {
    /// Charges `n` slots to `cat`.
    pub fn add(&mut self, cat: CpiCategory, n: u64) {
        self.slots[cat.index()] += n;
    }

    /// Slots charged to `cat`.
    pub fn get(&self, cat: CpiCategory) -> u64 {
        self.slots[cat.index()]
    }

    /// Total slots accounted.
    pub fn total(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// Share of `cat` in percent of all slots (0.0 for an empty stack).
    pub fn share_pct(&self, cat: CpiCategory) -> f64 {
        pct(self.get(cat), self.total())
    }

    /// All shares in [`CpiCategory::ALL`] order, in percent. Sums to
    /// ~100 for a non-empty stack.
    pub fn shares_pct(&self) -> [f64; CPI_CATEGORIES] {
        let mut out = [0.0; CPI_CATEGORIES];
        for (i, c) in CpiCategory::ALL.iter().enumerate() {
            out[i] = self.share_pct(*c);
        }
        out
    }

    /// Sums another stack into this one.
    pub fn merge(&mut self, o: &CpiStack) {
        for i in 0..CPI_CATEGORIES {
            self.slots[i] += o.slots[i];
        }
    }

    /// The hard accounting invariant: every one of the `width × cycles`
    /// retire slots is charged exactly once.
    pub fn invariant_holds(&self, width: u64, cycles: u64) -> bool {
        self.total() == width.saturating_mul(cycles)
    }

    /// Panicking form of [`CpiStack::invariant_holds`], for harnesses.
    ///
    /// # Panics
    ///
    /// Panics with the full stack when the account does not balance.
    pub fn assert_invariant(&self, width: u64, cycles: u64) {
        assert!(
            self.invariant_holds(width, cycles),
            "CPI stack does not balance: {} slots accounted, width {} x cycles {} = {} expected; {:?}",
            self.total(),
            width,
            cycles,
            width.saturating_mul(cycles),
            self.slots
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_a_bijection() {
        for (i, c) in CpiCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let mut labels: Vec<&str> = CpiCategory::ALL.iter().map(|c| c.label()).collect();
        labels.dedup();
        assert_eq!(labels.len(), CPI_CATEGORIES);
    }

    #[test]
    fn shares_sum_to_100() {
        let mut s = CpiStack::default();
        s.add(CpiCategory::Retiring, 70);
        s.add(CpiCategory::GateStall, 10);
        s.add(CpiCategory::MemMiss, 20);
        let sum: f64 = s.shares_pct().iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!((s.share_pct(CpiCategory::Retiring) - 70.0).abs() < 1e-9);
    }

    #[test]
    fn invariant_checks_width_times_cycles() {
        let mut s = CpiStack::default();
        s.add(CpiCategory::Retiring, 12);
        s.add(CpiCategory::Frontend, 8);
        assert!(s.invariant_holds(5, 4));
        assert!(!s.invariant_holds(5, 5));
        s.assert_invariant(5, 4);
    }

    #[test]
    #[should_panic(expected = "does not balance")]
    fn assert_invariant_panics_on_imbalance() {
        CpiStack::default().assert_invariant(5, 1);
    }

    #[test]
    fn empty_stack_shares_are_zero() {
        let s = CpiStack::default();
        assert_eq!(s.share_pct(CpiCategory::Retiring), 0.0);
        assert!(s.invariant_holds(5, 0));
    }
}
