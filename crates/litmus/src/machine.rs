//! The operational TSO machine and the exhaustive interleaving explorer.

use std::collections::{BTreeMap, HashSet, VecDeque};

use crate::ast::{LOp, LitmusTest, Var};
use crate::outcome::{Outcome, OutcomeSet};

/// How a load interacts with the thread's own store buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForwardPolicy {
    /// x86-TSO: the load must read the youngest matching store in the
    /// local store buffer (store-to-load forwarding) — the
    /// non-store-atomic behavior.
    X86,
    /// IBM 370: the load blocks while any matching store is in the local
    /// store buffer; it reads memory only after the store drained
    /// (store-atomic TSO).
    StoreAtomic370,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    pcs: Vec<usize>,
    regs: Vec<Vec<u64>>,
    sbs: Vec<VecDeque<(Var, u64)>>,
    mem: BTreeMap<Var, u64>,
}

impl State {
    fn initial(test: &LitmusTest) -> State {
        State {
            pcs: vec![0; test.threads.len()],
            regs: test.threads.iter().map(|_| Vec::new()).collect(),
            sbs: test.threads.iter().map(|_| VecDeque::new()).collect(),
            mem: test.vars().into_iter().map(|v| (v, 0)).collect(),
        }
    }

    fn is_final(&self, test: &LitmusTest) -> bool {
        self.pcs
            .iter()
            .enumerate()
            .all(|(t, &pc)| pc == test.threads[t].len() && self.sbs[t].is_empty())
    }
}

/// Enumerates every final outcome of `test` under `policy` by exhaustive
/// depth-first search over all interleavings of thread steps and
/// store-buffer drains (with state memoization). RMWs are desugared to
/// their fenced-exchange sequence first — the same expansion the
/// cycle-level lowering uses, so both machines run the same program.
pub fn explore(test: &LitmusTest, policy: ForwardPolicy) -> OutcomeSet {
    let desugared = test.desugared();
    let test = &desugared;
    let mut outcomes = OutcomeSet::new();
    let mut seen: HashSet<State> = HashSet::new();
    let mut stack = vec![State::initial(test)];
    while let Some(s) = stack.pop() {
        if !seen.insert(s.clone()) {
            continue;
        }
        if s.is_final(test) {
            outcomes.insert(Outcome {
                regs: s.regs.clone(),
                mem: s.mem.clone(),
            });
            continue;
        }
        for t in 0..test.threads.len() {
            // Transition 1: thread t executes its next instruction.
            if s.pcs[t] < test.threads[t].len() {
                match test.threads[t][s.pcs[t]] {
                    LOp::St(v, val) => {
                        let mut n = s.clone();
                        n.sbs[t].push_back((v, val));
                        n.pcs[t] += 1;
                        stack.push(n);
                    }
                    LOp::Ld(v) => {
                        let local = s.sbs[t].iter().rev().find(|(sv, _)| *sv == v);
                        match (policy, local) {
                            (ForwardPolicy::X86, Some(&(_, val))) => {
                                // Mandatory store-to-load forwarding.
                                let mut n = s.clone();
                                n.regs[t].push(val);
                                n.pcs[t] += 1;
                                stack.push(n);
                            }
                            (ForwardPolicy::StoreAtomic370, Some(_)) => {
                                // Blocked until the matching store drains
                                // (the drain transition will unblock it).
                            }
                            (_, None) => {
                                let mut n = s.clone();
                                let val = *s.mem.get(&v).unwrap_or(&0);
                                n.regs[t].push(val);
                                n.pcs[t] += 1;
                                stack.push(n);
                            }
                        }
                    }
                    LOp::Fence => {
                        if s.sbs[t].is_empty() {
                            let mut n = s.clone();
                            n.pcs[t] += 1;
                            stack.push(n);
                        }
                    }
                    LOp::Rmw(..) => unreachable!("RMWs are desugared before exploration"),
                }
            }
            // Transition 2: thread t's store buffer drains one entry
            // (this is the store's single global commit instant —
            // write-atomic by construction).
            if !s.sbs[t].is_empty() {
                let mut n = s.clone();
                let (v, val) = n.sbs[t].pop_front().expect("non-empty SB");
                n.mem.insert(v, val);
                stack.push(n);
            }
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{X, Y};

    fn single_thread_store_load() -> LitmusTest {
        LitmusTest::new("local", vec![vec![LOp::St(X, 1), LOp::Ld(X)]])
    }

    #[test]
    fn x86_forwards_own_store() {
        let t = single_thread_store_load();
        let set = explore(&t, ForwardPolicy::X86);
        // Only outcome: r0 = 1 (forwarding is mandatory), [x] = 1.
        assert_eq!(set.len(), 1);
        let o = set.iter().next().unwrap();
        assert_eq!(o.regs[0], vec![1]);
        assert_eq!(o.mem[&X], 1);
    }

    #[test]
    fn ibm370_also_reads_own_store_but_later() {
        // Sequential semantics are preserved either way — the difference
        // is only *when* the load may perform.
        let t = single_thread_store_load();
        let set = explore(&t, ForwardPolicy::StoreAtomic370);
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().next().unwrap().regs[0], vec![1]);
    }

    #[test]
    fn store_buffering_visible_in_both() {
        // Dekker/sb: both threads may read 0 under TSO.
        let t = LitmusTest::new(
            "sb",
            vec![
                vec![LOp::St(X, 1), LOp::Ld(Y)],
                vec![LOp::St(Y, 1), LOp::Ld(X)],
            ],
        );
        for policy in [ForwardPolicy::X86, ForwardPolicy::StoreAtomic370] {
            let set = explore(&t, policy);
            assert!(
                set.iter()
                    .any(|o| o.regs[0] == vec![0] && o.regs[1] == vec![0]),
                "{policy:?} must allow the (0,0) outcome"
            );
        }
    }

    #[test]
    fn fence_forbids_store_buffering() {
        let t = LitmusTest::new(
            "sb+fences",
            vec![
                vec![LOp::St(X, 1), LOp::Fence, LOp::Ld(Y)],
                vec![LOp::St(Y, 1), LOp::Fence, LOp::Ld(X)],
            ],
        );
        for policy in [ForwardPolicy::X86, ForwardPolicy::StoreAtomic370] {
            let set = explore(&t, policy);
            assert!(
                !set.iter()
                    .any(|o| o.regs[0] == vec![0] && o.regs[1] == vec![0]),
                "{policy:?} must forbid (0,0) with fences"
            );
        }
    }

    #[test]
    fn final_memory_is_last_drain() {
        let t = LitmusTest::new("ww", vec![vec![LOp::St(X, 1)], vec![LOp::St(X, 2)]]);
        let set = explore(&t, ForwardPolicy::X86);
        let finals: Vec<u64> = set.iter().map(|o| o.mem[&X]).collect();
        assert!(finals.contains(&1) && finals.contains(&2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn rmw_is_a_fenced_exchange_not_a_locked_op() {
        // Two racing exchanges on x. The desugared `fence; ld; st; fence`
        // admits both threads reading 0 (a locked exchange would not) —
        // the honest semantics both the oracle and the simulator share.
        let t = LitmusTest::new("xchg", vec![vec![LOp::Rmw(X, 1)], vec![LOp::Rmw(X, 2)]]);
        for policy in [ForwardPolicy::X86, ForwardPolicy::StoreAtomic370] {
            let set = explore(&t, policy);
            assert!(
                set.iter()
                    .any(|o| o.regs[0] == vec![0] && o.regs[1] == vec![0]),
                "{policy:?}: both-read-0 must be allowed"
            );
            assert!(
                set.iter()
                    .any(|o| o.regs[0] == vec![0] && o.regs[1] == vec![1]),
                "{policy:?}: serialized order must be allowed"
            );
        }
        // The trailing fence still orders the exchange against later ops:
        // rmw x; ld y  |  rmw y; ld x  cannot both read 0 afterwards.
        let sb = LitmusTest::new(
            "xchg+sb",
            vec![
                vec![LOp::Rmw(X, 1), LOp::Ld(Y)],
                vec![LOp::Rmw(Y, 1), LOp::Ld(X)],
            ],
        );
        for policy in [ForwardPolicy::X86, ForwardPolicy::StoreAtomic370] {
            let set = explore(&sb, policy);
            assert!(
                !set.iter()
                    .any(|o| o.regs[0] == vec![0, 0] && o.regs[1] == vec![0, 0]),
                "{policy:?}: fenced exchanges forbid the sb (0,0) outcome"
            );
        }
    }

    #[test]
    fn exploration_terminates_on_larger_tests() {
        // 3 threads x 3 ops: still milliseconds thanks to memoization.
        let t = LitmusTest::new(
            "big",
            vec![
                vec![LOp::St(X, 1), LOp::Ld(Y), LOp::St(Y, 3)],
                vec![LOp::St(Y, 1), LOp::Ld(X), LOp::St(X, 3)],
                vec![LOp::Ld(X), LOp::Ld(Y), LOp::Fence],
            ],
        );
        let set = explore(&t, ForwardPolicy::X86);
        assert!(set.len() > 4);
    }
}
