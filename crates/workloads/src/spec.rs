//! Workload parameter model.

use sa_isa::Trace;

use crate::generator::TraceGen;

/// The paper's Table IV measurements for one benchmark (reference values
/// for paper-vs-measured comparison; not used by the generator).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TableIvRef {
    /// Gate stalls as % of total instructions.
    pub gate_stall_pct: f64,
    /// Average stall cycles per gate stall.
    pub avg_stall_cycles: f64,
    /// Instructions re-executed due to store-atomicity misspeculation, %.
    pub reexec_pct: f64,
}

/// Which benchmark suite a workload models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// SPLASH-3 / PARSEC 3.0, 8 threads (Table IV top).
    Parallel,
    /// SPECrate CPU 2017, single thread (Table IV bottom).
    Spec,
}

/// Parameters of one synthetic benchmark.
///
/// `loads_pct` and `forwarded_pct` are copied from the paper's Table IV
/// characterization; the remaining knobs encode the qualitative behavior
/// of each application.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name (Table IV row).
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// Loads as % of total instructions (Table IV).
    pub loads_pct: f64,
    /// Store-to-load-forwarded loads as % of total instructions
    /// (Table IV).
    pub forwarded_pct: f64,
    /// Stores as % of total instructions (beyond the forwarding pairs).
    pub stores_pct: f64,
    /// Branches as % of total instructions.
    pub branches_pct: f64,
    /// Fraction of branch *sites* with data-dependent (unpredictable)
    /// outcomes.
    pub branch_noise: f64,
    /// Private working set in cache lines (drives miss/eviction rates;
    /// the private L2 holds 2048 lines).
    pub private_ws_lines: u64,
    /// Fraction of private accesses that walk sequentially (prefetch
    /// friendly) rather than jump randomly.
    pub locality: f64,
    /// Shared working set in cache lines (parallel only).
    pub shared_ws_lines: u64,
    /// Fraction of memory accesses that target the shared region
    /// (parallel only).
    pub shared_access_frac: f64,
    /// Fraction of shared accesses that are stores (invalidation
    /// pressure).
    pub shared_write_frac: f64,
    /// Probability per slot of an x264-style contended synchronization
    /// idiom: store + forwarded load on a hot shared line, then a load of
    /// a second hot line (the paper's §VI-A outlier mechanism).
    pub sync_contention: f64,
    /// Fraction of stores that stream to fresh lines (radix/lbm-style
    /// SQ/SB pressure).
    pub store_burst: f64,
    /// Fraction of stores whose address resolves late (exercises the
    /// StoreSet predictor / D-speculation).
    pub late_store_addr: f64,
    /// Fraction of private accesses that walk a cache-set-conflicting
    /// stride (505.mcf-style: recently fetched lines get evicted while
    /// their loads are still in the LQ).
    pub set_conflict: f64,
    /// Fraction of ALU ops that are floating point (longer latencies).
    pub fp_frac: f64,
    /// The paper's Table IV row for this benchmark (reference only).
    pub paper: TableIvRef,
}

impl WorkloadSpec {
    /// A neutral baseline the suite tables override per benchmark.
    pub fn base(name: &'static str, suite: Suite, loads_pct: f64, forwarded_pct: f64) -> Self {
        WorkloadSpec {
            name,
            suite,
            loads_pct,
            forwarded_pct,
            stores_pct: 10.0,
            branches_pct: 10.0,
            branch_noise: 0.15,
            private_ws_lines: 1536,
            locality: 0.8,
            shared_ws_lines: 512,
            shared_access_frac: if suite == Suite::Parallel { 0.05 } else { 0.0 },
            shared_write_frac: 0.3,
            sync_contention: 0.0,
            store_burst: 0.0,
            late_store_addr: 0.05,
            set_conflict: 0.0,
            fp_frac: 0.2,
            paper: TableIvRef::default(),
        }
    }

    /// Sanity-checks parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics when percentages are out of range or inconsistent.
    pub fn validate(&self) {
        assert!(
            self.loads_pct >= 0.0 && self.loads_pct <= 60.0,
            "{}: loads_pct",
            self.name
        );
        assert!(
            self.forwarded_pct >= 0.0 && self.forwarded_pct <= self.loads_pct,
            "{}: forwarded loads are a subset of loads",
            self.name
        );
        assert!(
            self.loads_pct + self.stores_pct + self.branches_pct <= 95.0,
            "{}: instruction mix exceeds 100%",
            self.name
        );
        for (what, v) in [
            ("branch_noise", self.branch_noise),
            ("locality", self.locality),
            ("shared_access_frac", self.shared_access_frac),
            ("shared_write_frac", self.shared_write_frac),
            ("sync_contention", self.sync_contention),
            ("store_burst", self.store_burst),
            ("late_store_addr", self.late_store_addr),
            ("set_conflict", self.set_conflict),
            ("fp_frac", self.fp_frac),
        ] {
            assert!(
                (0.0..=1.0).contains(&v),
                "{}: {what} out of [0,1]",
                self.name
            );
        }
        assert!(
            self.private_ws_lines > 0,
            "{}: empty working set",
            self.name
        );
    }

    /// Generates one deterministic trace per core.
    pub fn generate(&self, n_cores: usize, instrs_per_core: usize, seed: u64) -> Vec<Trace> {
        self.validate();
        (0..n_cores)
            .map(|core| TraceGen::new(self, core, seed).generate(instrs_per_core))
            .collect()
    }

    /// Like [`generate`](Self::generate), but memoized process-wide:
    /// the first request for a `(spec, cores, length, seed)` tuple runs
    /// the generator, later requests clone the cached result. Sweeps
    /// that run the same trace under several consistency models should
    /// use this — the instruction stream is identical across models by
    /// construction, so decoding it once per model is pure overhead.
    pub fn generate_cached(&self, n_cores: usize, instrs_per_core: usize, seed: u64) -> Vec<Trace> {
        crate::cache::generate_cached(self, n_cores, instrs_per_core, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_spec_is_valid() {
        WorkloadSpec::base("t", Suite::Parallel, 25.0, 4.0).validate();
        WorkloadSpec::base("t", Suite::Spec, 25.0, 4.0).validate();
    }

    #[test]
    #[should_panic(expected = "subset of loads")]
    fn forwarded_beyond_loads_rejected() {
        WorkloadSpec::base("t", Suite::Spec, 5.0, 10.0).validate();
    }

    #[test]
    fn spec_suite_has_no_shared_accesses() {
        let s = WorkloadSpec::base("t", Suite::Spec, 20.0, 1.0);
        assert_eq!(s.shared_access_frac, 0.0);
    }

    #[test]
    fn generate_is_deterministic() {
        let s = WorkloadSpec::base("t", Suite::Parallel, 25.0, 4.0);
        let a = s.generate(2, 500, 7);
        let b = s.generate(2, 500, 7);
        assert_eq!(a, b);
        let c = s.generate(2, 500, 8);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn cores_get_distinct_traces() {
        let s = WorkloadSpec::base("t", Suite::Parallel, 25.0, 4.0);
        let ts = s.generate(2, 500, 7);
        assert_ne!(ts[0], ts[1]);
    }
}
