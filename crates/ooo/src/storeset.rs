//! StoreSet memory-dependence predictor (Chrysos & Emer, ISCA 1998),
//! listed in the paper's Table III.
//!
//! Two structures: the Store Set ID Table (SSIT), indexed by instruction
//! PC, and the Last Fetched Store Table (LFST), indexed by store-set ID.
//! A load whose PC maps to a store set must wait for older in-flight
//! stores of the same set to resolve; everything else may speculate past
//! unresolved store addresses. Violations train the tables by merging the
//! offending store and load into one set.

const SSIT_SIZE: usize = 1024;
const LFST_SIZE: usize = 128;

/// A store-set identifier.
pub type Ssid = u16;

/// The predictor.
#[derive(Debug)]
pub struct StoreSet {
    ssit: Vec<Option<Ssid>>,
    /// LFST: per-set count of in-flight (unresolved) stores.
    lfst_inflight: Vec<u32>,
    next_ssid: Ssid,
    enabled: bool,
    violations: u64,
}

impl StoreSet {
    /// Creates a predictor; when `enabled` is false all loads speculate
    /// freely (no waiting) and training is a no-op.
    pub fn new(enabled: bool) -> StoreSet {
        StoreSet {
            ssit: vec![None; SSIT_SIZE],
            lfst_inflight: vec![0; LFST_SIZE],
            next_ssid: 0,
            enabled,
            violations: 0,
        }
    }

    fn idx(pc: u64) -> usize {
        ((pc >> 2) as usize) & (SSIT_SIZE - 1)
    }

    /// Store set of the instruction at `pc`, if any.
    pub fn set_of(&self, pc: u64) -> Option<Ssid> {
        if self.enabled {
            self.ssit[Self::idx(pc)]
        } else {
            None
        }
    }

    /// Called when a store with an assigned set dispatches with its
    /// address unresolved.
    pub fn store_dispatched(&mut self, pc: u64) {
        if let Some(s) = self.set_of(pc) {
            self.lfst_inflight[s as usize % LFST_SIZE] += 1;
        }
    }

    /// Called when that store's address resolves (or the store squashes).
    pub fn store_resolved(&mut self, pc: u64) {
        if let Some(s) = self.set_of(pc) {
            let c = &mut self.lfst_inflight[s as usize % LFST_SIZE];
            *c = c.saturating_sub(1);
        }
    }

    /// `true` when the load at `load_pc` must wait because a store of its
    /// set is in flight with an unresolved address.
    pub fn load_must_wait(&self, load_pc: u64) -> bool {
        match self.set_of(load_pc) {
            Some(s) => self.lfst_inflight[s as usize % LFST_SIZE] > 0,
            None => false,
        }
    }

    /// Trains on a memory-order violation between `store_pc` and
    /// `load_pc`: both instructions join one store set.
    pub fn train_violation(&mut self, store_pc: u64, load_pc: u64) {
        if !self.enabled {
            return;
        }
        self.violations += 1;
        let si = Self::idx(store_pc);
        let li = Self::idx(load_pc);
        match (self.ssit[si], self.ssit[li]) {
            (Some(s), _) => self.ssit[li] = Some(s),
            (None, Some(l)) => self.ssit[si] = Some(l),
            (None, None) => {
                let id = self.next_ssid;
                self.next_ssid = self.next_ssid.wrapping_add(1);
                self.ssit[si] = Some(id);
                self.ssit[li] = Some(id);
            }
        }
    }

    /// Violations trained so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_loads_speculate() {
        let s = StoreSet::new(true);
        assert!(!s.load_must_wait(0x100));
    }

    #[test]
    fn violation_creates_dependence() {
        let mut s = StoreSet::new(true);
        s.train_violation(0x200, 0x100);
        assert_eq!(s.set_of(0x200), s.set_of(0x100));
        assert!(s.set_of(0x100).is_some());
        // Store in flight -> load waits.
        s.store_dispatched(0x200);
        assert!(s.load_must_wait(0x100));
        s.store_resolved(0x200);
        assert!(!s.load_must_wait(0x100));
    }

    #[test]
    fn unrelated_load_unaffected() {
        let mut s = StoreSet::new(true);
        s.train_violation(0x200, 0x100);
        s.store_dispatched(0x200);
        assert!(!s.load_must_wait(0x3000));
    }

    #[test]
    fn merging_sets_via_shared_store() {
        let mut s = StoreSet::new(true);
        s.train_violation(0x200, 0x100);
        s.train_violation(0x200, 0x300);
        assert_eq!(s.set_of(0x100), s.set_of(0x300));
        assert_eq!(s.violations(), 2);
    }

    #[test]
    fn disabled_never_waits_or_trains() {
        let mut s = StoreSet::new(false);
        s.train_violation(0x200, 0x100);
        s.store_dispatched(0x200);
        assert!(!s.load_must_wait(0x100));
        assert_eq!(s.violations(), 0);
    }

    #[test]
    fn resolve_without_dispatch_is_safe() {
        let mut s = StoreSet::new(true);
        s.train_violation(0x200, 0x100);
        s.store_resolved(0x200); // saturating, no underflow
        assert!(!s.load_must_wait(0x100));
    }
}
