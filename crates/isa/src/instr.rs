//! Instructions (micro-ops) executed by the out-of-order core model.

use crate::trace::Pc;
use crate::{Addr, Reg, Value};

/// Execution-unit class; determines which issue port class an ALU op
/// competes for and its default latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecUnit {
    /// Simple integer op (1 cycle).
    Int,
    /// Integer multiply (3 cycles).
    IntMul,
    /// Integer divide (20 cycles, unpipelined in spirit but modeled
    /// pipelined).
    IntDiv,
    /// FP add/sub/convert (4 cycles).
    FpAdd,
    /// FP multiply (4 cycles).
    FpMul,
    /// FP divide (14 cycles).
    FpDiv,
}

impl ExecUnit {
    /// Default execution latency in cycles.
    pub fn latency(self) -> u8 {
        match self {
            ExecUnit::Int => 1,
            ExecUnit::IntMul => 3,
            ExecUnit::IntDiv => 20,
            ExecUnit::FpAdd | ExecUnit::FpMul => 4,
            ExecUnit::FpDiv => 14,
        }
    }
}

/// The value function of an ALU micro-op.
///
/// Synthetic workloads mostly use [`AluEval::Opaque`] (the value is
/// irrelevant to timing); litmus tests use the value-carrying forms so that
/// register contents flow exactly as the program dictates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluEval {
    /// `dst = imm`.
    Imm(Value),
    /// `dst = src0`.
    Move,
    /// `dst = src0 + src1` (wrapping).
    Add,
    /// `dst = src0 ^ src1`.
    Xor,
    /// `dst = some function of srcs` — value produced is 0. Used by
    /// synthetic traces where only the dependence shape matters.
    Opaque,
}

impl AluEval {
    /// Applies the value function to the source operand values.
    pub fn eval(self, srcs: &[Value]) -> Value {
        match self {
            AluEval::Imm(v) => v,
            AluEval::Move => srcs.first().copied().unwrap_or(0),
            AluEval::Add => srcs.iter().copied().fold(0u64, |a, b| a.wrapping_add(b)),
            AluEval::Xor => srcs.iter().copied().fold(0u64, |a, b| a ^ b),
            AluEval::Opaque => 0,
        }
    }
}

/// The data operand of a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOperand {
    /// Store an immediate value.
    Imm(Value),
    /// Store the value of a register.
    Reg(Reg),
}

/// A micro-operation.
///
/// Memory operations carry concrete addresses (the trace generator resolved
/// them), plus an optional `addr_src` register whose readiness gates address
/// *computation* — this is what exercises the memory-dependence predictor:
/// a store whose address resolves late forces younger loads to either wait
/// or speculate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// An arithmetic/logic micro-op.
    Alu {
        /// Execution unit class (decides latency).
        unit: ExecUnit,
        /// Destination register, if any.
        dst: Option<Reg>,
        /// Source registers (up to two).
        srcs: [Option<Reg>; 2],
        /// Value function.
        eval: AluEval,
    },
    /// A load of `size` bytes at `addr` into `dst`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Concrete byte address.
        addr: Addr,
        /// Access size in bytes (1, 2, 4 or 8).
        size: u8,
        /// Register whose readiness gates address generation.
        addr_src: Option<Reg>,
    },
    /// A store of `size` bytes of `src` at `addr`.
    Store {
        /// Data operand.
        src: StoreOperand,
        /// Concrete byte address.
        addr: Addr,
        /// Access size in bytes (1, 2, 4 or 8).
        size: u8,
        /// Register whose readiness gates address generation.
        addr_src: Option<Reg>,
    },
    /// A conditional branch with its architectural outcome. The core's
    /// branch predictor races against `taken`; a mispredict redirects fetch.
    Branch {
        /// Architectural outcome recorded in the trace.
        taken: bool,
        /// Source register the branch condition depends on, if any.
        src: Option<Reg>,
    },
    /// A full memory fence (x86 `MFENCE` semantics): retires only once the
    /// store buffer has drained; younger loads do not issue past it.
    Fence,
    /// No-operation (pipeline filler).
    Nop,
}

impl Op {
    /// `true` for loads.
    pub fn is_load(&self) -> bool {
        matches!(self, Op::Load { .. })
    }

    /// `true` for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, Op::Store { .. })
    }

    /// `true` for either kind of memory access.
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// `true` for branches.
    pub fn is_branch(&self) -> bool {
        matches!(self, Op::Branch { .. })
    }

    /// Destination register written by this op, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Op::Alu { dst, .. } => *dst,
            Op::Load { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// All source registers read by this op (data and address sources).
    pub fn srcs(&self) -> impl Iterator<Item = Reg> + '_ {
        let arr: [Option<Reg>; 3] = match self {
            Op::Alu { srcs, .. } => [srcs[0], srcs[1], None],
            Op::Load { addr_src, .. } => [*addr_src, None, None],
            Op::Store { src, addr_src, .. } => {
                let data = match src {
                    StoreOperand::Reg(r) => Some(*r),
                    StoreOperand::Imm(_) => None,
                };
                [data, *addr_src, None]
            }
            Op::Branch { src, .. } => [*src, None, None],
            Op::Fence | Op::Nop => [None, None, None],
        };
        arr.into_iter().flatten()
    }
}

/// One trace entry: a program counter plus the micro-op at that PC.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instr {
    /// Program counter. PCs index the branch predictor and the StoreSet
    /// memory-dependence predictor, so the trace generators give static
    /// instructions stable PCs.
    pub pc: Pc,
    /// The micro-op.
    pub op: Op,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_functions() {
        assert_eq!(AluEval::Imm(7).eval(&[]), 7);
        assert_eq!(AluEval::Move.eval(&[42]), 42);
        assert_eq!(AluEval::Add.eval(&[2, 3]), 5);
        assert_eq!(AluEval::Xor.eval(&[0b1100, 0b1010]), 0b0110);
        assert_eq!(AluEval::Opaque.eval(&[99, 98]), 0);
    }

    #[test]
    fn add_wraps() {
        assert_eq!(AluEval::Add.eval(&[u64::MAX, 1]), 0);
    }

    #[test]
    fn op_classification() {
        let ld = Op::Load {
            dst: Reg::new(1),
            addr: 0x10,
            size: 8,
            addr_src: None,
        };
        let st = Op::Store {
            src: StoreOperand::Imm(0),
            addr: 0x10,
            size: 8,
            addr_src: None,
        };
        assert!(ld.is_load() && ld.is_mem() && !ld.is_store());
        assert!(st.is_store() && st.is_mem() && !st.is_load());
        assert!(!Op::Fence.is_mem());
        assert!(Op::Branch {
            taken: true,
            src: None
        }
        .is_branch());
    }

    #[test]
    fn src_enumeration() {
        let st = Op::Store {
            src: StoreOperand::Reg(Reg::new(2)),
            addr: 0,
            size: 8,
            addr_src: Some(Reg::new(3)),
        };
        let srcs: Vec<Reg> = st.srcs().collect();
        assert_eq!(srcs, vec![Reg::new(2), Reg::new(3)]);

        let alu = Op::Alu {
            unit: ExecUnit::Int,
            dst: Some(Reg::new(0)),
            srcs: [Some(Reg::new(1)), None],
            eval: AluEval::Move,
        };
        assert_eq!(alu.srcs().collect::<Vec<_>>(), vec![Reg::new(1)]);
        assert_eq!(alu.dst(), Some(Reg::new(0)));
    }

    #[test]
    fn unit_latencies_ordered() {
        assert!(ExecUnit::Int.latency() < ExecUnit::IntMul.latency());
        assert!(ExecUnit::IntMul.latency() < ExecUnit::IntDiv.latency());
        assert!(ExecUnit::FpAdd.latency() < ExecUnit::FpDiv.latency());
    }
}
