//! The shared command-line surface of every `sa-bench` binary.
//!
//! All binaries accept one common flag set — `--scale`, `--seed`,
//! `--suite`, `--only`, `--jobs`, `--csv`, `--json`, `--out`, `--help` —
//! parsed here into [`Opts`]; a binary declares its extra flags (and
//! default overrides) in a [`Spec`] and reads them from the returned
//! [`Args`]. JSON-emitting binaries open their document with
//! [`schema_header`], so every artifact carries the same
//! `schema`/`scale`/`seed` result-schema header.
//!
//! [`parse`] is the `main()` entry (prints usage and exits on `--help`
//! or bad input); [`parse_from`] is the pure, testable core.

use sa_metrics::JsonWriter;
use sa_sim::{parse_topology, EngineMode, SimConfig, Topology};
use sa_workloads::WorkloadSpec;

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Instructions per core per run.
    pub scale: usize,
    /// RNG seed for trace generation.
    pub seed: u64,
    /// Which suite(s) to run.
    pub suite: SuiteSel,
    /// Restrict to one benchmark by name.
    pub only: Option<String>,
    /// Worker threads for independent simulations.
    pub jobs: usize,
    /// Emit machine-readable CSV instead of aligned tables.
    pub csv: bool,
    /// Emit machine-readable JSON instead of aligned tables.
    pub json: bool,
    /// Output path for binaries that write a file.
    pub out: Option<String>,
    /// Interconnect topology override (`--topology fc|mesh:<w>`);
    /// `None` keeps each binary's default.
    pub topology: Option<Topology>,
    /// Engine override (`--engine lockstep|event|parallel:<t>`);
    /// `None` keeps each binary's default.
    pub engine: Option<EngineMode>,
    /// Core-count override for workload cells (`--cores N`); `None`
    /// keeps each suite's default (8 parallel / 1 spec).
    pub cores: Option<usize>,
}

/// Suite selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteSel {
    /// SPLASH-3/PARSEC only.
    Parallel,
    /// SPEC CPU2017 only.
    Spec,
    /// Both suites.
    All,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            scale: 30_000,
            seed: 42,
            suite: SuiteSel::All,
            only: None,
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            csv: false,
            json: false,
            out: None,
            topology: None,
            engine: None,
            cores: None,
        }
    }
}

impl Opts {
    /// The selected workloads.
    pub fn workloads(&self) -> Vec<WorkloadSpec> {
        let mut ws = match self.suite {
            SuiteSel::Parallel => sa_workloads::parallel_suite(),
            SuiteSel::Spec => sa_workloads::spec_suite(),
            SuiteSel::All => {
                let mut v = sa_workloads::parallel_suite();
                v.extend(sa_workloads::spec_suite());
                v
            }
        };
        if let Some(only) = &self.only {
            ws.retain(|w| w.name == only.as_str());
            assert!(!ws.is_empty(), "no workload named {only}");
        }
        ws
    }

    /// Applies the `--topology` / `--engine` overrides to a config (a
    /// no-op for whichever was not given).
    pub fn apply_to(&self, mut cfg: SimConfig) -> SimConfig {
        if let Some(t) = self.topology {
            cfg = cfg.with_topology(t);
        }
        if let Some(e) = self.engine {
            cfg = cfg.with_engine(e);
        }
        cfg
    }
}

/// How many values an extra flag takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// A bare switch (present or absent).
    Switch,
    /// One value; a repeat overwrites.
    One,
    /// One value per occurrence; repeats accumulate.
    Many,
}

/// An extra flag a binary accepts beyond the common set.
#[derive(Debug, Clone, Copy)]
pub struct Flag {
    /// Spelling including the dashes, e.g. `"--mutate"`.
    pub name: &'static str,
    /// Value arity.
    pub arity: Arity,
    /// One-line help text (shown by `--help`).
    pub help: &'static str,
}

/// A binary's command-line contract.
#[derive(Debug, Clone, Copy)]
pub struct Spec {
    /// Binary name, for the usage line.
    pub bin: &'static str,
    /// One-line description, for `--help`.
    pub about: &'static str,
    /// Overrides [`Opts::default`]'s scale when set (e.g. the pinned
    /// perf suite runs at 2000 by default).
    pub default_scale: Option<usize>,
    /// Default for `--out` when the binary writes a file.
    pub default_out: Option<&'static str>,
    /// Extra flags beyond the common set.
    pub extras: &'static [Flag],
}

impl Spec {
    /// A spec with no extras and no overrides.
    pub const fn new(bin: &'static str, about: &'static str) -> Spec {
        Spec {
            bin,
            about,
            default_scale: None,
            default_out: None,
            extras: &[],
        }
    }
}

/// Parsed command line: the common [`Opts`] plus any extra-flag values.
#[derive(Debug, Clone)]
pub struct Args {
    /// The common options.
    pub opts: Opts,
    extras: Vec<(&'static str, Vec<String>)>,
}

impl Args {
    /// `true` when the switch `name` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.extras.iter().any(|(n, _)| *n == name)
    }

    /// Last value of flag `name`, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.extras
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .and_then(|(_, vs)| vs.last())
            .map(String::as_str)
    }

    /// All values of a [`Arity::Many`] flag, in order.
    pub fn values(&self, name: &str) -> Vec<&str> {
        self.extras
            .iter()
            .filter(|(n, _)| *n == name)
            .flat_map(|(_, vs)| vs.iter().map(String::as_str))
            .collect()
    }

    /// Last value of flag `name` parsed as `T`.
    ///
    /// # Panics
    ///
    /// Panics (with the flag name) when the value does not parse — by
    /// then the arguments came from [`parse`], which already validated
    /// the shape, so a bad value is the user's typo and the message says
    /// which flag to fix.
    pub fn parsed<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.value(name).map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name}: cannot parse {v:?}"))
        })
    }
}

/// The usage text for `spec`.
pub fn usage(spec: &Spec) -> String {
    let mut s = format!("{} — {}\n\n", spec.bin, spec.about);
    s.push_str(&format!(
        "usage: {} [options]\n\ncommon options:\n",
        spec.bin
    ));
    let scale = spec.default_scale.unwrap_or_else(|| Opts::default().scale);
    s.push_str(&format!(
        "  --scale N            instructions per core (default {scale})\n"
    ));
    s.push_str("  --seed N             RNG seed for trace generation (default 42)\n");
    s.push_str("  --suite parallel|spec|all\n");
    s.push_str("  --only NAME          restrict to one benchmark\n");
    s.push_str("  --jobs N             worker threads (default: all cores)\n");
    s.push_str("  --topology fc|mesh:W interconnect topology override\n");
    s.push_str("  --engine MODE        lockstep|event|parallel:<threads>\n");
    s.push_str("  --cores N            workload core-count override (default: suite's)\n");
    s.push_str("  --csv                machine-readable CSV output\n");
    s.push_str("  --json               machine-readable JSON output\n");
    match spec.default_out {
        Some(d) => s.push_str(&format!(
            "  --out PATH           output path (default {d})\n"
        )),
        None => s.push_str("  --out PATH           output path\n"),
    }
    s.push_str("  --help               this text\n");
    if !spec.extras.is_empty() {
        s.push_str(&format!("\n{} options:\n", spec.bin));
        for f in spec.extras {
            let val = match f.arity {
                Arity::Switch => String::new(),
                Arity::One => " VAL".into(),
                Arity::Many => " VAL (repeatable)".into(),
            };
            s.push_str(&format!(
                "  {:<20} {}\n",
                format!("{}{val}", f.name),
                f.help
            ));
        }
    }
    s
}

/// Parses `args` (without the program name) against `spec` — the pure
/// core of [`parse`]. `Err` carries the message to print before the
/// usage text.
pub fn parse_from(spec: &Spec, args: &[String]) -> Result<Args, String> {
    let mut opts = Opts::default();
    if let Some(s) = spec.default_scale {
        opts.scale = s;
    }
    let mut extras: Vec<(&'static str, Vec<String>)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut need = || -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg {
            "--scale" => {
                opts.scale = need()?
                    .parse()
                    .map_err(|_| "--scale takes a number".to_string())?;
            }
            "--seed" => {
                opts.seed = need()?
                    .parse()
                    .map_err(|_| "--seed takes a number".to_string())?;
            }
            "--suite" => {
                opts.suite = match need()?.as_str() {
                    "parallel" => SuiteSel::Parallel,
                    "spec" => SuiteSel::Spec,
                    "all" => SuiteSel::All,
                    other => return Err(format!("unknown suite {other:?}")),
                };
            }
            "--only" => opts.only = Some(need()?),
            "--jobs" => {
                opts.jobs = need()?
                    .parse()
                    .map_err(|_| "--jobs takes a number".to_string())?;
            }
            "--topology" => opts.topology = Some(parse_topology(&need()?)?),
            "--engine" => opts.engine = Some(EngineMode::parse(&need()?)?),
            "--cores" => {
                let n: usize = need()?
                    .parse()
                    .map_err(|_| "--cores takes a number".to_string())?;
                if n == 0 || n > sa_isa::MAX_CORES {
                    return Err(format!("--cores must be 1..={}", sa_isa::MAX_CORES));
                }
                opts.cores = Some(n);
            }
            "--csv" => opts.csv = true,
            "--json" => opts.json = true,
            "--out" => opts.out = Some(need()?),
            other => match spec.extras.iter().find(|f| f.name == other) {
                Some(f) => {
                    let vs = match f.arity {
                        Arity::Switch => Vec::new(),
                        Arity::One | Arity::Many => vec![need()?],
                    };
                    extras.push((f.name, vs));
                }
                None => return Err(format!("unknown option {other}")),
            },
        }
        i += 1;
    }
    if opts.out.is_none() {
        opts.out = spec.default_out.map(String::from);
    }
    Ok(Args { opts, extras })
}

/// Parses the process arguments against `spec`. Prints usage and exits 0
/// on `--help`, prints the error and usage and exits 2 on bad input.
pub fn parse(spec: &Spec) -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage(spec));
        std::process::exit(0);
    }
    parse_from(spec, &args).unwrap_or_else(|e| {
        eprintln!("{}: {e}\n", spec.bin);
        eprint!("{}", usage(spec));
        std::process::exit(2);
    })
}

/// Opens a JSON result document with the shared result-schema header:
/// `begin_object` + `schema`/`scale`/`seed` fields. Callers add their
/// payload and close the object.
pub fn schema_header<'a>(j: &'a mut JsonWriter, schema: &str, opts: &Opts) -> &'a mut JsonWriter {
    j.begin_object()
        .field_str("schema", schema)
        .field_uint("scale", opts.scale as u64)
        .field_uint("seed", opts.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    const EXTRAS: &[Flag] = &[
        Flag {
            name: "--mutate",
            arity: Arity::One,
            help: "inject a bug",
        },
        Flag {
            name: "--litmus",
            arity: Arity::Many,
            help: "litmus test",
        },
        Flag {
            name: "--verbose",
            arity: Arity::Switch,
            help: "chatter",
        },
    ];

    fn spec() -> Spec {
        Spec {
            bin: "fuzz",
            about: "differential fuzzer",
            default_scale: Some(2_000),
            default_out: Some("results"),
            extras: EXTRAS,
        }
    }

    #[test]
    fn common_flags_parse() {
        let a = parse_from(
            &spec(),
            &to_args(&[
                "--scale", "500", "--seed", "9", "--suite", "spec", "--jobs", "3", "--json",
                "--only", "radix",
            ]),
        )
        .unwrap();
        assert_eq!(a.opts.scale, 500);
        assert_eq!(a.opts.seed, 9);
        assert_eq!(a.opts.suite, SuiteSel::Spec);
        assert_eq!(a.opts.jobs, 3);
        assert!(a.opts.json && !a.opts.csv);
        assert_eq!(a.opts.only.as_deref(), Some("radix"));
    }

    #[test]
    fn spec_defaults_apply() {
        let a = parse_from(&spec(), &[]).unwrap();
        assert_eq!(a.opts.scale, 2_000, "default_scale override");
        assert_eq!(a.opts.out.as_deref(), Some("results"), "default_out");
        let b = parse_from(&spec(), &to_args(&["--scale", "7", "--out", "x.json"])).unwrap();
        assert_eq!(b.opts.scale, 7);
        assert_eq!(b.opts.out.as_deref(), Some("x.json"));
    }

    #[test]
    fn extra_flags_by_arity() {
        let a = parse_from(
            &spec(),
            &to_args(&[
                "--mutate",
                "gate-key",
                "--litmus",
                "n6",
                "--litmus",
                "mp",
                "--verbose",
            ]),
        )
        .unwrap();
        assert_eq!(a.value("--mutate"), Some("gate-key"));
        assert_eq!(a.values("--litmus"), vec!["n6", "mp"]);
        assert!(a.switch("--verbose"));
        assert!(!a.switch("--quiet"));
        assert_eq!(a.value("--absent"), None);
        assert_eq!(a.parsed::<u64>("--absent"), None);
    }

    #[test]
    fn topology_and_engine_flags_parse() {
        let a = parse_from(
            &spec(),
            &to_args(&["--topology", "mesh:4", "--engine", "parallel:8"]),
        )
        .unwrap();
        assert_eq!(a.opts.topology, Some(Topology::Mesh2D { width: 4 }));
        assert_eq!(a.opts.engine, Some(EngineMode::Parallel { threads: 8 }));
        let cfg = a.opts.apply_to(SimConfig::default().with_cores(8));
        assert_eq!(cfg.mem.topology, Topology::Mesh2D { width: 4 });
        assert_eq!(cfg.engine, EngineMode::Parallel { threads: 8 });

        let b = parse_from(
            &spec(),
            &to_args(&["--topology", "fc", "--engine", "event"]),
        )
        .unwrap();
        assert_eq!(b.opts.topology, Some(Topology::FullyConnected));
        assert_eq!(b.opts.engine, Some(EngineMode::EventDriven));

        let none = parse_from(&spec(), &[]).unwrap();
        assert_eq!(none.opts.topology, None);
        assert_eq!(none.opts.engine, None);
        let cfg = none.opts.apply_to(SimConfig::default());
        assert_eq!(cfg.mem.topology, Topology::FullyConnected, "no-op default");

        assert!(parse_from(&spec(), &to_args(&["--topology", "ring"]))
            .unwrap_err()
            .contains("unknown topology"));
        assert!(parse_from(&spec(), &to_args(&["--engine", "warp"]))
            .unwrap_err()
            .contains("unknown engine"));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let s = spec();
        assert!(parse_from(&s, &to_args(&["--frobnicate"]))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_from(&s, &to_args(&["--scale"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_from(&s, &to_args(&["--scale", "x"]))
            .unwrap_err()
            .contains("number"));
        assert!(parse_from(&s, &to_args(&["--suite", "bogus"]))
            .unwrap_err()
            .contains("unknown suite"));
    }

    #[test]
    fn usage_mentions_everything() {
        let u = usage(&spec());
        for needle in [
            "--scale",
            "--seed",
            "--suite",
            "--only",
            "--jobs",
            "--csv",
            "--json",
            "--out",
            "--mutate",
            "--litmus",
            "--verbose",
            "default 2000",
            "default results",
        ] {
            assert!(u.contains(needle), "usage missing {needle}: {u}");
        }
    }

    #[test]
    fn schema_header_shape() {
        let mut j = JsonWriter::new();
        let opts = Opts {
            scale: 123,
            seed: 4,
            ..Opts::default()
        };
        schema_header(&mut j, "sa-bench-test-v1", &opts).end_object();
        let s = j.finish();
        assert!(s.contains("\"schema\":\"sa-bench-test-v1\""));
        assert!(s.contains("\"scale\":123"));
        assert!(s.contains("\"seed\":4"));
    }

    #[test]
    fn opts_workload_selection() {
        let o = Opts {
            suite: SuiteSel::Parallel,
            ..Opts::default()
        };
        assert_eq!(o.workloads().len(), 25);
        let o = Opts {
            suite: SuiteSel::Spec,
            ..Opts::default()
        };
        assert_eq!(o.workloads().len(), 36);
        let o = Opts {
            suite: SuiteSel::All,
            only: Some("radix".into()),
            ..Opts::default()
        };
        assert_eq!(o.workloads().len(), 1);
    }
}
