//! Property-style tests of the core's window structures and of the whole
//! pipeline on randomized single-threaded programs (architectural
//! equivalence across all five consistency configurations), driven by
//! the in-tree seeded RNG.
//!
//! The SoA queues are checked against naive array-of-structs reference
//! models under alloc/free churn that wraps the physical rings, and the
//! generation-tagged handles are checked to reject stale lookups after
//! their slots are reused.

use sa_isa::rng::Xoshiro256;
use sa_isa::{ConsistencyModel, CoreId, Line, Reg, TraceBuilder, ValueMemory};
use sa_ooo::lq::{LoadQueue, LoadState, LqIdx};
use sa_ooo::port::SimpleMem;
use sa_ooo::rob::{Rob, RobIdx, RobKind, RobState, RobUop};
use sa_ooo::sq::{SearchHit, StoreQueue};
use sa_ooo::{Core, CoreConfig, Key};
use sa_trace::NullTracer;

fn rob_id(seq: u64) -> RobIdx {
    // The queues only order handles by `seq`; the slot field is the
    // ROB's physical slot and is irrelevant to LQ/SQ-internal logic.
    RobIdx {
        seq,
        slot: (seq % 64) as u32,
    }
}

/// Keys of live SQ/SB entries are always unique — the invariant the
/// retire gate relies on ("one and only one store matching the key").
#[test]
fn live_store_keys_are_unique() {
    let mut rng = Xoshiro256::seed_from_u64(0x5109_0001);
    for _ in 0..64 {
        let n = rng.gen_range_usize(1, 300);
        let mut q = StoreQueue::new(8);
        let mut seq = 0u64;
        for _ in 0..n {
            let push = rng.gen_bool();
            if push && !q.is_full() {
                seq += 1;
                q.alloc(rob_id(seq), 0, 0x100 + seq * 8 % 512, 8, true, Some(1));
            } else if !push && !q.is_empty() {
                q.pop_head();
            }
            let keys: Vec<_> = q.keys().collect();
            let mut dedup = keys.clone();
            dedup.sort_by_key(|k| (k.slot, k.sorting));
            dedup.dedup();
            assert_eq!(keys.len(), dedup.len(), "duplicate live key");
        }
    }
}

/// The forwarding search returns the youngest older fully-covering
/// store, verified against a naive reference model.
#[test]
fn search_matches_reference() {
    let mut rng = Xoshiro256::seed_from_u64(0x5109_0002);
    for _ in 0..512 {
        let n = rng.gen_range_usize(0, 8);
        let stores: Vec<(u64, bool)> = (0..n)
            .map(|_| (rng.gen_range_u64(0, 8), rng.gen_bool()))
            .collect();
        let load_slot = rng.gen_range_u64(0, 8);
        let mut q = StoreQueue::new(16);
        let mut ids = Vec::new();
        for (i, (slot, resolved)) in stores.iter().enumerate() {
            ids.push(q.alloc(
                rob_id(i as u64),
                0,
                0x100 + slot * 8,
                8,
                *resolved,
                Some(*slot),
            ));
        }
        let load_rob = rob_id(stores.len() as u64 + 1);
        let la = 0x100 + load_slot * 8;
        // Reference: youngest older resolved store covering the load,
        // unless a younger unresolved store makes the scan speculative.
        let expect = stores
            .iter()
            .enumerate()
            .rev()
            .find(|(_, (slot, resolved))| *resolved && *slot == load_slot)
            .map(|(i, _)| ids[i]);
        match q.search(load_rob, la, 8) {
            SearchHit::Forward { store, .. } => {
                assert_eq!(Some(store), expect);
            }
            SearchHit::Miss { .. } => assert_eq!(expect, None),
            SearchHit::Partial { .. } => panic!("no partials generated"),
        }
    }
}

/// SoA forwarding-age search against a naive array-of-structs model,
/// under alloc/pop churn that wraps the physical ring many times and
/// with partial overlaps and unresolved addresses in the mix.
#[test]
fn sq_search_matches_model_under_wraparound_churn() {
    #[derive(Clone)]
    struct ModelStore {
        id: sa_ooo::sq::SqIdx,
        rob: RobIdx,
        addr: u64,
        size: u8,
        resolved: bool,
    }
    let mut rng = Xoshiro256::seed_from_u64(0x5109_0005);
    for _ in 0..64 {
        let mut q = StoreQueue::new(8);
        let mut model: Vec<ModelStore> = Vec::new();
        let mut seq = 0u64;
        for _ in 0..400 {
            match rng.gen_range_u64(0, 4) {
                0 if !q.is_full() => {
                    seq += 1;
                    // Sizes 1/2/4/8 at byte granularity: exercises
                    // covers-vs-overlaps distinctions.
                    let size = 1u8 << rng.gen_range_u64(0, 4);
                    let addr = 0x200 + rng.gen_range_u64(0, 24);
                    let resolved = rng.gen_range_u64(0, 4) != 0;
                    let id = q.alloc(rob_id(seq), 0, addr, size, resolved, Some(seq));
                    model.push(ModelStore {
                        id,
                        rob: rob_id(seq),
                        addr,
                        size,
                        resolved,
                    });
                }
                1 if !q.is_empty() => {
                    q.pop_head();
                    model.remove(0);
                }
                2 => {
                    // Resolve a random still-unresolved store.
                    if let Some(m) = model.iter_mut().find(|m| !m.resolved) {
                        assert!(q.resolve_addr(m.id));
                        m.resolved = true;
                    }
                }
                _ => {}
            }
            // Probe with a load younger than everything live.
            let load_rob = rob_id(seq + 1);
            let la = 0x200 + rng.gen_range_u64(0, 24);
            let lsize = 1u8 << rng.gen_range_u64(0, 4);
            // Naive model: youngest-first over older stores, exactly the
            // documented search semantics.
            let mut passed = false;
            let mut expect = SearchHit::Miss {
                passed_unresolved: false,
            };
            for m in model.iter().rev() {
                if m.rob >= load_rob {
                    continue;
                }
                if !m.resolved {
                    passed = true;
                    continue;
                }
                if sa_isa::addr::covers(m.addr, m.size, la, lsize) {
                    expect = SearchHit::Forward {
                        store: m.id,
                        passed_unresolved: passed,
                    };
                    break;
                }
                if sa_isa::addr::overlaps(m.addr, m.size, la, lsize) {
                    expect = SearchHit::Partial { store: m.id };
                    break;
                }
            }
            if matches!(
                expect,
                SearchHit::Miss {
                    passed_unresolved: false
                }
            ) {
                expect = SearchHit::Miss {
                    passed_unresolved: passed,
                };
            }
            assert_eq!(q.search(load_rob, la, lsize), expect);
            // Secondary invariants against the same model.
            assert_eq!(
                q.has_unresolved(),
                model.iter().any(|m| !m.resolved),
                "unresolved counter drifted"
            );
            assert_eq!(
                q.any_older_unresolved(load_rob),
                model.iter().any(|m| m.rob < load_rob && !m.resolved)
            );
            let live: Vec<_> = q.iter().collect();
            let want: Vec<_> = model.iter().map(|m| m.id).collect();
            assert_eq!(live, want, "live handle order drifted");
        }
    }
}

/// SoA load queue (performed bitset, SLF-pending counter, age order)
/// against a naive model, under churn that wraps the physical ring —
/// the primitives the snoop probe and the retire gate are built from.
#[test]
fn lq_snoop_primitives_match_model_under_wraparound() {
    #[derive(Clone)]
    struct ModelLoad {
        id: LqIdx,
        rob: RobIdx,
        performed: bool,
        slf: Option<Key>,
    }
    let mut rng = Xoshiro256::seed_from_u64(0x5109_0006);
    for _ in 0..48 {
        let mut q = LoadQueue::new(24);
        let mut model: Vec<ModelLoad> = Vec::new();
        let mut seq = 0u64;
        let mut live_keys: Vec<Key> = Vec::new();
        for _ in 0..500 {
            match rng.gen_range_u64(0, 4) {
                0 if !q.is_full() => {
                    seq += 1;
                    let id = q.alloc(rob_id(seq), 0, 0x100 + seq % 32 * 8, 8);
                    model.push(ModelLoad {
                        id,
                        rob: rob_id(seq),
                        performed: false,
                        slf: None,
                    });
                }
                1 if !q.is_empty() => {
                    // In-order retirement frees the head slot.
                    let head = model.remove(0);
                    q.retire_head(head.rob);
                }
                2 => {
                    if let Some(m) = model.iter_mut().find(|m| !m.performed) {
                        assert!(q.set_state(m.id, LoadState::Performed));
                        m.performed = true;
                        if rng.gen_bool() {
                            let key = Key {
                                slot: rng.gen_range_u64(0, 8) as u16,
                                sorting: rng.gen_bool(),
                            };
                            assert!(q.set_slf_key(m.id, key));
                            m.slf = Some(key);
                            if rng.gen_bool() {
                                live_keys.push(key);
                            }
                        }
                    }
                }
                _ => {
                    if !live_keys.is_empty() {
                        live_keys.remove(0);
                    }
                }
            }
            let live: Vec<_> = q.iter().collect();
            let want: Vec<_> = model.iter().map(|m| m.id).collect();
            assert_eq!(live, want, "live handle order drifted");
            for (i, m) in model.iter().enumerate() {
                let state = q.state_of(m.id).expect("live entry");
                assert_eq!(
                    matches!(state, LoadState::Performed),
                    m.performed,
                    "state drifted"
                );
                assert_eq!(
                    q.any_older_unperformed(m.id),
                    model[..i].iter().any(|o| !o.performed),
                    "performed-prefix query drifted"
                );
                assert_eq!(
                    q.older_slf_pending(m.id, |k| live_keys.contains(&k)),
                    model[..i]
                        .iter()
                        .any(|o| o.slf.is_some_and(|k| live_keys.contains(&k))),
                    "SLF-pending query drifted"
                );
            }
        }
    }
}

/// Generation-tagged handles go stale exactly when their entry leaves
/// the queue, and stay stale after the physical slot is reused.
#[test]
fn stale_handles_are_rejected_after_slot_reuse() {
    let mut rng = Xoshiro256::seed_from_u64(0x5109_0007);

    // ROB: retire past several ring generations.
    let mut rob = Rob::new(8);
    let mut freed: Vec<RobIdx> = Vec::new();
    for i in 0..64u64 {
        let id = rob.push(RobUop {
            trace_idx: i as usize,
            pc: sa_isa::Pc(i),
            kind: RobKind::Nop,
            dst: None,
            deps: [None, None],
            src_regs: [None, None],
            state: RobState::Done,
            done_at: 0,
        });
        if rob.is_full() {
            let f = rob.front().unwrap();
            rob.pop_front();
            freed.push(f);
        }
        assert!(rob.contains(id));
    }
    for f in &freed {
        assert!(!rob.contains(*f), "stale ROB handle accepted");
        assert_eq!(rob.state_of(*f), None);
        // A retired producer counts as satisfied, never as a live dep.
        assert!(rob.dep_satisfied(*f));
        assert_eq!(rob.squash_from(*f), 0, "stale squash must be a no-op");
    }

    // LQ: free via in-order retirement, wrap the ring.
    let mut lq = LoadQueue::new(8);
    let mut lfreed: Vec<LqIdx> = Vec::new();
    let mut live: Vec<(LqIdx, RobIdx)> = Vec::new();
    for i in 0..200u64 {
        if lq.is_full() || (!live.is_empty() && rng.gen_bool()) {
            let (id, r) = live.remove(0);
            lq.retire_head(r);
            lfreed.push(id);
        } else {
            let id = lq.alloc(rob_id(i), 0, i * 8, 8);
            live.push((id, rob_id(i)));
        }
    }
    for f in &lfreed {
        assert!(!lq.contains(*f), "stale LQ handle accepted");
        assert_eq!(lq.state_of(*f), None);
        assert!(!lq.set_state(*f, LoadState::Performed));
        assert!(!lq.set_slf_key(
            *f,
            Key {
                slot: 0,
                sorting: false
            }
        ));
    }
    for (id, _) in &live {
        assert!(lq.contains(*id), "live LQ handle rejected");
    }

    // SQ: free via head commit, wrap the exact-capacity ring (the
    // sorting bit flips each generation, so keys stay unique too).
    let mut sq = StoreQueue::new(8);
    let mut sfreed = Vec::new();
    let mut slive = Vec::new();
    for i in 0..200u64 {
        if sq.is_full() || (!slive.is_empty() && rng.gen_bool()) {
            let (id, key): (sa_ooo::sq::SqIdx, Key) = slive.remove(0);
            sq.pop_head();
            sfreed.push((id, key));
        } else {
            let id = sq.alloc(rob_id(i), 0, i * 8, 8, true, Some(i));
            slive.push((id, sq.key_of(id).unwrap()));
        }
    }
    for (f, key) in &sfreed {
        assert!(!sq.contains(*f), "stale SQ handle accepted");
        assert_eq!(sq.key_of(*f), None);
        assert!(!sq.resolve_addr(*f));
        assert!(!sq.mark_retired(*f));
        // The 1-bit sorting scheme only distinguishes *adjacent*
        // generations (all the hardware needs — a load can't outlive
        // two full SQ wraps): a dead key matches exactly when a live
        // store holds the same slot+sorting pair.
        assert_eq!(
            sq.contains_key(*key),
            slive.iter().any(|(_, k)| k == key),
            "contains_key disagrees with the live-key model"
        );
    }
    for (id, key) in &slive {
        assert!(sq.contains(*id));
        assert!(sq.contains_key(*key));
    }
}

/// Architectural results of a random single-threaded program are
/// identical across all five consistency configurations and match an
/// interpreter — timing may differ, architecture must not.
#[test]
fn models_match_reference_interpreter() {
    let mut rng = Xoshiro256::seed_from_u64(0x5109_0003);
    for _ in 0..48 {
        let n = rng.gen_range_usize(1, 60);
        let ops: Vec<(u8, u64, u64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range_u64(0, 4) as u8,
                    rng.gen_range_u64(0, 6),
                    rng.gen_range_u64(1, 100),
                )
            })
            .collect();
        // Reference interpreter.
        let mut ref_mem = std::collections::HashMap::<u64, u64>::new();
        let mut ref_regs = [0u64; 4];
        let mut b = TraceBuilder::new();
        for (kind, slot, val) in &ops {
            let addr = 0x1000 + slot * 8;
            match kind % 4 {
                0 => {
                    b.store_imm(addr, *val);
                    ref_mem.insert(addr, *val);
                }
                1 => {
                    let r = Reg::new((val % 4) as u8);
                    b.load(r, addr);
                    ref_regs[(val % 4) as usize] = ref_mem.get(&addr).copied().unwrap_or(0);
                }
                2 => {
                    let d = Reg::new((val % 4) as u8);
                    let s = Reg::new(((val + 1) % 4) as u8);
                    b.add(d, s, s);
                    ref_regs[(val % 4) as usize] =
                        ref_regs[((val + 1) % 4) as usize].wrapping_mul(2);
                }
                _ => {
                    b.branch(val % 2 == 0, None);
                }
            }
        }
        let trace = b.build();
        for model in ConsistencyModel::ALL {
            let mut core = Core::new(CoreId(0), CoreConfig::default(), model, trace.clone());
            let mut mem = SimpleMem::new(6, 12);
            let mut valmem = ValueMemory::new();
            let mut t = 0u64;
            while !core.finished() {
                assert!(t < 1_000_000, "{model} wedged");
                let notices = mem.take_due(t);
                core.tick(t, &mut mem, &mut valmem, &notices, &mut NullTracer);
                t += 1;
            }
            for r in 0..4u8 {
                assert_eq!(
                    core.arch_reg(Reg::new(r)),
                    ref_regs[r as usize],
                    "{model} register r{r}"
                );
            }
            for (addr, v) in &ref_mem {
                assert_eq!(valmem.read(*addr, 8), *v, "{model} [{addr:#x}]");
            }
        }
    }
}

/// Squash/replay transparency: random invalidations and evictions
/// never change the architectural result of a single-threaded
/// program (they only cost time).
#[test]
fn invalidations_are_architecturally_transparent() {
    let mut rng = Xoshiro256::seed_from_u64(0x5109_0004);
    for _ in 0..64 {
        let n = rng.gen_range_usize(1, 40);
        let ops: Vec<(u8, u64, u64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range_u64(0, 3) as u8,
                    rng.gen_range_u64(0, 4),
                    rng.gen_range_u64(1, 50),
                )
            })
            .collect();
        let n_inv = rng.gen_range_usize(0, 10);
        let invals: Vec<(u64, u64, bool)> = (0..n_inv)
            .map(|_| {
                (
                    rng.gen_range_u64(0, 500),
                    rng.gen_range_u64(0, 4),
                    rng.gen_bool(),
                )
            })
            .collect();
        let build = |ops: &[(u8, u64, u64)]| {
            let mut b = TraceBuilder::new();
            for (kind, slot, val) in ops {
                let addr = 0x1000 + slot * 8;
                match kind % 3 {
                    0 => {
                        b.store_imm(addr, *val);
                    }
                    1 => {
                        b.load(Reg::new((val % 4) as u8), addr);
                    }
                    _ => {
                        b.add(Reg::new(0), Reg::new(1), Reg::new(2));
                    }
                }
            }
            b.build()
        };
        let run = |with_invals: bool| {
            let mut core = Core::new(
                CoreId(0),
                CoreConfig::default(),
                ConsistencyModel::Ibm370SlfSosKey,
                build(&ops),
            );
            let mut mem = SimpleMem::new(6, 12);
            if with_invals {
                for (at, slot, evict) in &invals {
                    let line = Line::containing(0x1000 + slot * 8);
                    if *evict {
                        mem.inject_eviction(line, *at);
                    } else {
                        mem.inject_invalidation(line, *at);
                    }
                }
            }
            let mut valmem = ValueMemory::new();
            let mut t = 0u64;
            while !core.finished() {
                assert!(t < 2_000_000, "wedged");
                let notices = mem.take_due(t);
                core.tick(t, &mut mem, &mut valmem, &notices, &mut NullTracer);
                t += 1;
            }
            (0..4u8)
                .map(|r| core.arch_reg(Reg::new(r)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }
}
