//! The unified store queue / store buffer (SQ/SB), stored
//! struct-of-arrays.
//!
//! As in actual implementations (and the paper's §II-A), the SQ and SB are
//! one physical circular buffer; the boundary between them is just the
//! retired/non-retired flag. Each entry's **key** is its position in the
//! circular buffer plus a *sorting bit* that flips on wrap-around, so a
//! key uniquely names one store generation (§IV-B2).
//!
//! The SoA ring is sized exactly to the architectural capacity, which
//! makes the physical slot *be* the key's position bits: `contains_key`
//! — the check every retiring SLF load and every gate-key probe performs
//! — is one occupancy test plus one sorting-bit compare instead of a
//! queue scan. The forwarding age search walks the dense
//! address/size/resolved columns youngest-first.

use sa_coherence::MemReqId;
use sa_isa::{addr, Addr, Cycle, Line, Value};

use crate::gate::Key;
use crate::rob::RobIdx;

/// Generation-tagged handle to an SQ/SB entry. `seq` is the unique,
/// monotonic store id (program order, never reused — squash rewinds the
/// circular tail but not the seq counter); `slot` locates the physical
/// column index, which equals the key's position bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SqIdx {
    /// Unique store id (program order).
    pub seq: u64,
    /// Physical slot in the SoA columns (== `Key::slot`).
    pub slot: u32,
}

/// Result of a load's forwarding search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchHit {
    /// No older store overlaps; `passed_unresolved` reports whether the
    /// scan skipped stores with unresolved addresses (D-speculation).
    Miss {
        /// Scan skipped at least one unresolved-address older store.
        passed_unresolved: bool,
    },
    /// The youngest older matching store fully covers the load.
    Forward {
        /// The matching store.
        store: SqIdx,
        /// Scan skipped an unresolved-address store younger than `store`.
        passed_unresolved: bool,
    },
    /// The youngest older overlapping store only partially covers the
    /// load (no forwarding possible).
    Partial {
        /// The overlapping store.
        store: SqIdx,
    },
}

/// The circular SQ/SB over struct-of-arrays columns.
#[derive(Debug)]
pub struct StoreQueue {
    capacity: usize,
    /// Physical slot of the oldest entry.
    head: usize,
    /// Occupied entries.
    len: usize,
    /// Total allocations; `alloc % capacity` is the circular slot and
    /// `(alloc / capacity) & 1` the sorting bit. Rewound on squash exactly
    /// like a hardware tail pointer, so `(head + len) % capacity ==
    /// alloc_count % capacity` is an invariant.
    alloc_count: u64,
    next_seq: u64,
    /// Live stores with an unresolved address — lets the D-speculation
    /// prefix scans ([`StoreQueue::any_older_unresolved`] and the
    /// StoreSet conflict test) exit in O(1) in the common all-resolved
    /// case.
    unresolved: usize,
    /// Live retired (SB-portion) stores — makes `sb_nonempty`/`sb_depth`
    /// O(1).
    n_retired: usize,
    /// Live stores whose commit has started (`committing_done` set).
    /// Commits start in order, so the next candidate is at queue
    /// position `n_committing` — an O(1) lookup instead of a prefix
    /// walk in the drain phase.
    n_committing: usize,
    /// Bloom-style presence filter over the 8-byte granules touched by
    /// live stores: bit `(addr >> 3) & 63` is set while any live store
    /// writes that granule. Addresses are fixed at `alloc` (resolution
    /// is a timing event, not a value event), so the filter only moves
    /// on alloc / pop / truncate; `filter_counts` makes removal exact.
    /// When every address is resolved and no load granule hits the
    /// filter, a forwarding search is a guaranteed clean miss without
    /// walking the queue.
    filter: u64,
    filter_counts: [u16; 64],
    // --- parallel columns, indexed by physical slot ---
    pub(crate) seq: Vec<u64>,
    pub(crate) rob: Vec<RobIdx>,
    pub(crate) pc: Vec<u64>,
    pub(crate) addr: Vec<Addr>,
    pub(crate) size: Vec<u8>,
    pub(crate) line: Vec<Line>,
    addr_resolved: Vec<bool>,
    pub(crate) value: Vec<Option<Value>>,
    retired: Vec<bool>,
    pub(crate) committing_done: Vec<Option<Cycle>>,
    pub(crate) own_req: Vec<Option<MemReqId>>,
    sorting: Vec<bool>,
}

impl StoreQueue {
    /// An empty SQ/SB of `capacity` entries.
    pub fn new(capacity: usize) -> StoreQueue {
        StoreQueue {
            capacity,
            head: 0,
            len: 0,
            alloc_count: 0,
            next_seq: 0,
            unresolved: 0,
            n_retired: 0,
            n_committing: 0,
            filter: 0,
            filter_counts: [0; 64],
            seq: vec![0; capacity],
            rob: vec![RobIdx { seq: 0, slot: 0 }; capacity],
            pc: vec![0; capacity],
            addr: vec![0; capacity],
            size: vec![0; capacity],
            line: vec![Line::containing(0); capacity],
            addr_resolved: vec![false; capacity],
            value: vec![None; capacity],
            retired: vec![false; capacity],
            committing_done: vec![None; capacity],
            own_req: vec![None; capacity],
            sorting: vec![false; capacity],
        }
    }

    /// The (at most two) filter bits for the granules `[a, a+size)`
    /// touches: a ≤8-byte access spans one or two 8-byte granules.
    #[inline]
    fn filter_bits(a: Addr, size: u8) -> (u32, Option<u32>) {
        let lo = ((a >> 3) & 63) as u32;
        let hi = (((a + u64::from(size) - 1) >> 3) & 63) as u32;
        (lo, if hi == lo { None } else { Some(hi) })
    }

    #[inline]
    fn filter_add(&mut self, a: Addr, size: u8) {
        let (lo, hi) = Self::filter_bits(a, size);
        self.filter_counts[lo as usize] += 1;
        self.filter |= 1u64 << lo;
        if let Some(hi) = hi {
            self.filter_counts[hi as usize] += 1;
            self.filter |= 1u64 << hi;
        }
    }

    #[inline]
    fn filter_remove(&mut self, a: Addr, size: u8) {
        let (lo, hi) = Self::filter_bits(a, size);
        self.filter_counts[lo as usize] -= 1;
        if self.filter_counts[lo as usize] == 0 {
            self.filter &= !(1u64 << lo);
        }
        if let Some(hi) = hi {
            self.filter_counts[hi as usize] -= 1;
            if self.filter_counts[hi as usize] == 0 {
                self.filter &= !(1u64 << hi);
            }
        }
    }

    /// `false` only when no live store can overlap `[a, a+size)`.
    #[inline]
    fn filter_may_match(&self, a: Addr, size: u8) -> bool {
        let (lo, hi) = Self::filter_bits(a, size);
        let mut probe = 1u64 << lo;
        if let Some(hi) = hi {
            probe |= 1u64 << hi;
        }
        self.filter & probe != 0
    }

    /// `true` when no entry can be allocated.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// `true` when there are no stores at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Physical slot of queue position `pos` (0 = oldest); `pos < len`.
    #[inline]
    pub(crate) fn phys(&self, pos: usize) -> usize {
        let s = self.head + pos;
        if s >= self.capacity {
            s - self.capacity
        } else {
            s
        }
    }

    /// Queue position of a live handle, `None` when stale.
    #[inline]
    pub fn pos_of(&self, idx: SqIdx) -> Option<usize> {
        let slot = idx.slot as usize;
        if slot >= self.capacity {
            return None;
        }
        let pos = if slot >= self.head {
            slot - self.head
        } else {
            slot + self.capacity - self.head
        };
        (pos < self.len && self.seq[slot] == idx.seq).then_some(pos)
    }

    /// Physical slot of a live handle, `None` when stale.
    #[inline]
    pub(crate) fn live_slot(&self, idx: SqIdx) -> Option<usize> {
        self.pos_of(idx).map(|_| idx.slot as usize)
    }

    /// `true` while the handle names a live entry.
    pub fn contains(&self, idx: SqIdx) -> bool {
        self.pos_of(idx).is_some()
    }

    /// Handle of the entry in physical `slot` (must be occupied).
    #[inline]
    pub(crate) fn idx_at_slot(&self, slot: usize) -> SqIdx {
        SqIdx {
            seq: self.seq[slot],
            slot: slot as u32,
        }
    }

    /// Handle of the oldest store (the SB head when retired).
    pub fn head_idx(&self) -> Option<SqIdx> {
        (self.len > 0).then(|| self.idx_at_slot(self.head))
    }

    /// Physical slot of the oldest store.
    #[inline]
    pub(crate) fn head_slot(&self) -> Option<usize> {
        (self.len > 0).then_some(self.head)
    }

    /// Allocates a store at the tail.
    ///
    /// # Panics
    ///
    /// Panics when full — the dispatcher must check [`StoreQueue::is_full`].
    pub fn alloc(
        &mut self,
        rob: RobIdx,
        pc: u64,
        addr: Addr,
        size: u8,
        addr_resolved: bool,
        value: Option<Value>,
    ) -> SqIdx {
        assert!(!self.is_full(), "SQ/SB overflow");
        let slot = (self.alloc_count % self.capacity as u64) as usize;
        debug_assert_eq!(slot, self.phys(self.len), "tail/alloc invariant");
        let sorting = (self.alloc_count / self.capacity as u64) & 1 == 1;
        self.alloc_count += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.seq[slot] = seq;
        self.rob[slot] = rob;
        self.pc[slot] = pc;
        self.addr[slot] = addr;
        self.size[slot] = size;
        self.line[slot] = Line::containing(addr);
        self.addr_resolved[slot] = addr_resolved;
        self.value[slot] = value;
        self.retired[slot] = false;
        self.committing_done[slot] = None;
        self.own_req[slot] = None;
        self.sorting[slot] = sorting;
        if !addr_resolved {
            self.unresolved += 1;
        }
        self.filter_add(addr, size);
        SqIdx {
            seq,
            slot: slot as u32,
        }
    }

    /// The key of the entry in physical `slot`.
    #[inline]
    pub(crate) fn key_at(&self, slot: usize) -> Key {
        Key {
            slot: slot as u16,
            sorting: self.sorting[slot],
        }
    }

    /// The key of a live store, `None` when the handle is stale.
    pub fn key_of(&self, idx: SqIdx) -> Option<Key> {
        self.live_slot(idx).map(|s| self.key_at(s))
    }

    /// Whether the entry in `slot` has its address resolved.
    #[inline]
    pub(crate) fn addr_resolved_at(&self, slot: usize) -> bool {
        self.addr_resolved[slot]
    }

    /// Marks the address of `slot` resolved, maintaining the unresolved
    /// count.
    pub(crate) fn resolve_addr_at(&mut self, slot: usize) {
        if !self.addr_resolved[slot] {
            self.addr_resolved[slot] = true;
            self.unresolved -= 1;
        }
    }

    /// Marks a live store's address resolved; `false` when stale.
    pub fn resolve_addr(&mut self, idx: SqIdx) -> bool {
        match self.live_slot(idx) {
            Some(slot) => {
                self.resolve_addr_at(slot);
                true
            }
            None => false,
        }
    }

    /// Whether the entry in `slot` is retired (in the SB portion).
    #[inline]
    pub(crate) fn retired_at(&self, slot: usize) -> bool {
        self.retired[slot]
    }

    /// Moves the entry in `slot` to the SB portion, maintaining the
    /// retired count.
    pub(crate) fn mark_retired_at(&mut self, slot: usize) {
        debug_assert!(!self.retired[slot], "store retired twice");
        self.retired[slot] = true;
        self.n_retired += 1;
    }

    /// Moves a live store to the SB portion; `false` when stale.
    pub fn mark_retired(&mut self, idx: SqIdx) -> bool {
        match self.live_slot(idx) {
            Some(slot) => {
                self.mark_retired_at(slot);
                true
            }
            None => false,
        }
    }

    /// `true` once address and data of `slot` are both available.
    #[inline]
    pub(crate) fn executed_at(&self, slot: usize) -> bool {
        self.addr_resolved[slot] && self.value[slot].is_some()
    }

    /// Removes the committed head. The caller reads any fields it needs
    /// from the head columns first.
    /// Marks the store in physical `slot` as committing, done at `done`
    /// — the only writer of `committing_done`, so the started-commit
    /// counter stays exact.
    #[inline]
    pub(crate) fn start_commit_at(&mut self, slot: usize, done: Cycle) {
        debug_assert!(self.committing_done[slot].is_none(), "commit started twice");
        self.committing_done[slot] = Some(done);
        self.n_committing += 1;
    }

    /// Started (possibly finished, not yet drained) commits. Commits
    /// start strictly in order, so this doubles as the queue position of
    /// the next commit candidate.
    #[inline]
    pub(crate) fn n_committing(&self) -> usize {
        self.n_committing
    }

    pub fn pop_head(&mut self) {
        debug_assert!(self.len > 0, "popping empty SQ/SB");
        let slot = self.head;
        if self.retired[slot] {
            self.n_retired -= 1;
        }
        if self.committing_done[slot].is_some() {
            self.n_committing -= 1;
        }
        if !self.addr_resolved[slot] {
            self.unresolved -= 1;
        }
        self.filter_remove(self.addr[slot], self.size[slot]);
        self.head = if self.head + 1 >= self.capacity {
            0
        } else {
            self.head + 1
        };
        self.len -= 1;
    }

    /// `true` while a store whose key is `key` is still in the SQ/SB —
    /// the hardware check a retiring SLF load performs. The position
    /// bits index the buffer directly (physical slot == key slot) and
    /// the sorting bit disambiguates the generation, so this is O(1).
    pub fn contains_key(&self, key: Key) -> bool {
        let slot = key.slot as usize;
        if slot >= self.capacity {
            return false;
        }
        let pos = if slot >= self.head {
            slot - self.head
        } else {
            slot + self.capacity - self.head
        };
        pos < self.len && self.sorting[slot] == key.sorting
    }

    /// `true` when any *retired, uncommitted* store exists (the SB is
    /// non-empty) — the `370-SLFSpec` retire condition and the fence
    /// condition.
    pub fn sb_nonempty(&self) -> bool {
        self.n_retired > 0
    }

    /// Retired (SB-portion) stores right now.
    pub fn sb_depth(&self) -> usize {
        self.n_retired
    }

    /// `true` when any live store's address is still unresolved — O(1)
    /// gate for the StoreSet conflict scan.
    pub fn has_unresolved(&self) -> bool {
        self.unresolved > 0
    }

    /// `true` when any store *older than* `rob` is still in the SQ/SB.
    pub fn any_older(&self, rob: RobIdx) -> bool {
        self.len > 0 && self.rob[self.head] < rob
    }

    /// `true` when a store older than `rob` has an unresolved address
    /// (the load at `rob` is D-speculative right now).
    pub fn any_older_unresolved(&self, rob: RobIdx) -> bool {
        if self.unresolved == 0 {
            return false;
        }
        for pos in 0..self.len {
            let s = self.phys(pos);
            if self.rob[s] >= rob {
                break;
            }
            if !self.addr_resolved[s] {
                return true;
            }
        }
        false
    }

    /// Forwarding search for a load (`rob`, `[a, a+size)`): scans older
    /// stores youngest-first (§II-A: the most recent matching store
    /// wins).
    pub fn search(&self, rob: RobIdx, a: Addr, size: u8) -> SearchHit {
        // Fast path: every address is resolved (so the walk can't set
        // `passed_unresolved`) and no live store touches the load's
        // granules — a clean miss without walking the queue.
        if self.unresolved == 0 && !self.filter_may_match(a, size) {
            return SearchHit::Miss {
                passed_unresolved: false,
            };
        }
        let mut passed_unresolved = false;
        // Entries are age-ordered, so the younger suffix is located with
        // a binary search instead of being stepped over entry by entry.
        let mut pos = self.cut_pos(rob);
        while pos > 0 {
            pos -= 1;
            let s = self.phys(pos);
            debug_assert!(self.rob[s] < rob);
            if !self.addr_resolved[s] {
                passed_unresolved = true;
                continue;
            }
            if addr::covers(self.addr[s], self.size[s], a, size) {
                return SearchHit::Forward {
                    store: self.idx_at_slot(s),
                    passed_unresolved,
                };
            }
            if addr::overlaps(self.addr[s], self.size[s], a, size) {
                return SearchHit::Partial {
                    store: self.idx_at_slot(s),
                };
            }
        }
        SearchHit::Miss { passed_unresolved }
    }

    /// First queue position whose store is `from` or younger (the squash
    /// cut point); `len` when every store is older.
    pub fn cut_pos(&self, from: RobIdx) -> usize {
        let (mut lo, mut hi) = (0, self.len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.rob[self.phys(mid)] < from {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Drops every *non-retired* store at queue position `new_len` and
    /// beyond, rewinding the circular tail pointer (slots and sorting
    /// bits are reused, as in hardware). The caller walks the suffix
    /// first to release any in-flight bookkeeping.
    pub fn truncate(&mut self, new_len: usize) {
        debug_assert!(new_len <= self.len);
        for pos in new_len..self.len {
            let s = self.phys(pos);
            debug_assert!(!self.retired[s], "squashed a retired store");
            if !self.addr_resolved[s] {
                self.unresolved -= 1;
            }
            self.filter_remove(self.addr[s], self.size[s]);
        }
        self.alloc_count -= (self.len - new_len) as u64;
        self.len = new_len;
    }

    /// Iterates live handles oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = SqIdx> + '_ {
        (0..self.len).map(|pos| self.idx_at_slot(self.phys(pos)))
    }

    /// Iterates live keys oldest → youngest.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        (0..self.len).map(|pos| self.key_at(self.phys(pos)))
    }
}

/// Extracts the bytes `[la, la+lsize)` from a store of `value` at
/// `[sa, sa+ssize)`; the store must cover the load.
pub fn extract_forwarded(sa: Addr, ssize: u8, value: Value, la: Addr, lsize: u8) -> Value {
    debug_assert!(
        addr::covers(sa, ssize, la, lsize),
        "store does not cover load"
    );
    let shift = (la - sa) * 8;
    let v = value >> shift;
    if lsize == 8 {
        v
    } else {
        v & ((1u64 << (u64::from(lsize) * 8)) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(seq: u64) -> RobIdx {
        RobIdx { seq, slot: 0 }
    }

    fn sq() -> StoreQueue {
        StoreQueue::new(4)
    }

    #[test]
    fn keys_cycle_with_sorting_bit() {
        let mut q = StoreQueue::new(2);
        let a = q.alloc(rid(0), 0, 0x100, 8, true, Some(1));
        let b = q.alloc(rid(1), 0, 0x108, 8, true, Some(2));
        assert_eq!(
            q.key_of(a).unwrap(),
            Key {
                slot: 0,
                sorting: false
            }
        );
        assert_eq!(
            q.key_of(b).unwrap(),
            Key {
                slot: 1,
                sorting: false
            }
        );
        q.pop_head();
        q.pop_head();
        let c = q.alloc(rid(2), 0, 0x110, 8, true, Some(3));
        assert_eq!(
            q.key_of(c).unwrap(),
            Key {
                slot: 0,
                sorting: true
            },
            "wrap-around flips the sorting bit"
        );
    }

    #[test]
    fn squash_rewinds_tail_pointer() {
        let mut q = StoreQueue::new(2);
        let _a = q.alloc(rid(0), 0, 0x100, 8, true, Some(1));
        let b = q.alloc(rid(5), 0, 0x108, 8, true, Some(2));
        let key_b = q.key_of(b).unwrap();
        let cut = q.cut_pos(rid(5));
        q.truncate(cut);
        assert_eq!(q.len(), 1);
        assert!(!q.contains(b), "squashed handle is stale");
        // Replay allocates the same slot and sorting bit.
        let b2 = q.alloc(rid(7), 0, 0x108, 8, true, Some(2));
        assert_eq!(q.key_of(b2).unwrap(), key_b);
        assert!(!q.contains(b), "stale handle stays dead after slot reuse");
    }

    #[test]
    fn search_prefers_youngest_older_match() {
        let mut q = sq();
        q.alloc(rid(0), 0, 0x100, 8, true, Some(1));
        let newer = q.alloc(rid(2), 0, 0x100, 8, true, Some(2));
        // A load at seq 5 matches the younger of the two stores.
        match q.search(rid(5), 0x100, 8) {
            SearchHit::Forward {
                store,
                passed_unresolved,
            } => {
                assert_eq!(store, newer);
                assert!(!passed_unresolved);
            }
            other => panic!("expected forward, got {other:?}"),
        }
        // A load older than both misses.
        assert_eq!(
            q.search(rid(0), 0x100, 8),
            SearchHit::Miss {
                passed_unresolved: false
            }
        );
    }

    #[test]
    fn search_reports_unresolved_scans() {
        let mut q = sq();
        q.alloc(rid(0), 0, 0x100, 8, true, Some(1));
        q.alloc(rid(2), 0, 0x900, 8, false, None); // unresolved
        match q.search(rid(5), 0x100, 8) {
            SearchHit::Forward {
                passed_unresolved, ..
            } => assert!(passed_unresolved),
            other => panic!("{other:?}"),
        }
        match q.search(rid(5), 0x700, 8) {
            SearchHit::Miss { passed_unresolved } => assert!(passed_unresolved),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn partial_overlap_detected() {
        let mut q = sq();
        q.alloc(rid(0), 0, 0x104, 4, true, Some(1));
        match q.search(rid(5), 0x100, 8) {
            SearchHit::Partial { .. } => {}
            other => panic!("expected partial, got {other:?}"),
        }
    }

    #[test]
    fn sb_nonempty_tracks_retirement() {
        let mut q = sq();
        let a = q.alloc(rid(0), 0, 0x100, 8, true, Some(1));
        assert!(!q.sb_nonempty());
        q.mark_retired(a);
        assert!(q.sb_nonempty());
        assert_eq!(q.sb_depth(), 1);
        q.pop_head();
        assert!(!q.sb_nonempty());
        assert_eq!(q.sb_depth(), 0);
    }

    #[test]
    fn contains_key_identifies_generation() {
        let mut q = StoreQueue::new(2);
        let a = q.alloc(rid(0), 0, 0x100, 8, true, Some(1));
        let key = q.key_of(a).unwrap();
        assert!(q.contains_key(key));
        q.pop_head();
        assert!(!q.contains_key(key));
        // Next generation in the same slot has a different key (the
        // sorting bit flips), so a stale key can never match it.
        let _b = q.alloc(rid(1), 0, 0x108, 8, true, Some(2));
        let c = q.alloc(rid(2), 0, 0x110, 8, true, Some(2));
        let ck = q.key_of(c).unwrap();
        assert_eq!(ck.slot, key.slot);
        assert_ne!(ck, key);
        assert!(!q.contains_key(key));
    }

    #[test]
    fn unresolved_count_gates_prefix_scan() {
        let mut q = sq();
        let a = q.alloc(rid(0), 0, 0x100, 8, false, None);
        q.alloc(rid(1), 0, 0x108, 8, true, Some(2));
        assert!(q.any_older_unresolved(rid(5)));
        assert!(!q.any_older_unresolved(rid(0)));
        q.resolve_addr(a);
        assert!(!q.any_older_unresolved(rid(5)));
    }

    #[test]
    fn extract_forwarded_subsets() {
        assert_eq!(
            extract_forwarded(0x100, 8, 0x1122_3344_5566_7788, 0x100, 8),
            0x1122_3344_5566_7788
        );
        assert_eq!(
            extract_forwarded(0x100, 8, 0x1122_3344_5566_7788, 0x104, 4),
            0x1122_3344
        );
        assert_eq!(
            extract_forwarded(0x100, 8, 0x1122_3344_5566_7788, 0x100, 1),
            0x88
        );
    }

    #[test]
    #[should_panic(expected = "SQ/SB overflow")]
    fn overflow_panics() {
        let mut q = StoreQueue::new(1);
        q.alloc(rid(0), 0, 0x100, 8, true, None);
        q.alloc(rid(1), 0, 0x108, 8, true, None);
    }
}
