//! Litmus-test programs: a handful of loads, stores and fences per
//! thread over a few shared variables.

use sa_isa::{Reg, Trace, TraceBuilder};

/// A shared variable. The explorer treats variables symbolically; the
/// cycle-level conversion maps them to distinct cache lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u8);

/// Conventional first variable (`x`).
pub const X: Var = Var(0);
/// Conventional second variable (`y`).
pub const Y: Var = Var(1);
/// Conventional third variable (`z`).
pub const Z: Var = Var(2);

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            0 => write!(f, "x"),
            1 => write!(f, "y"),
            2 => write!(f, "z"),
            n => write!(f, "v{n}"),
        }
    }
}

/// One litmus operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LOp {
    /// `st var, val`.
    St(Var, u64),
    /// `ld var` into the thread's next load slot.
    Ld(Var),
    /// A full fence (drains the store buffer).
    Fence,
}

/// A litmus-test program: one op sequence per thread. All variables start
/// at 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusTest {
    /// Test name (litmus7 conventions: `mp`, `n6`, `iriw`, ...).
    pub name: &'static str,
    /// Per-thread operation sequences.
    pub threads: Vec<Vec<LOp>>,
}

impl LitmusTest {
    /// Creates a test.
    pub fn new(name: &'static str, threads: Vec<Vec<LOp>>) -> LitmusTest {
        LitmusTest { name, threads }
    }

    /// Number of loads in thread `t` (its register-slot count).
    pub fn loads_in(&self, t: usize) -> usize {
        self.threads[t]
            .iter()
            .filter(|o| matches!(o, LOp::Ld(_)))
            .count()
    }

    /// All variables mentioned, ascending.
    pub fn vars(&self) -> Vec<Var> {
        let mut vs: Vec<Var> = self
            .threads
            .iter()
            .flatten()
            .filter_map(|o| match o {
                LOp::St(v, _) | LOp::Ld(v) => Some(*v),
                LOp::Fence => None,
            })
            .collect();
        vs.sort();
        vs.dedup();
        vs
    }

    /// Byte address a variable maps to in the cycle-level simulator
    /// (distinct cache lines, away from address 0).
    pub fn var_addr(v: Var) -> u64 {
        0x10_000 + u64::from(v.0) * 0x40
    }

    /// Lowers the test to one trace per core for the cycle-level
    /// simulator. Load `i` of thread `t` targets register `r(i)`; loads
    /// and stores become 8-byte accesses to [`LitmusTest::var_addr`].
    pub fn to_traces(&self) -> Vec<Trace> {
        self.to_traces_padded(&vec![0; self.threads.len()])
    }

    /// Like [`LitmusTest::to_traces`], but prepends `pads[t]` no-ops to
    /// thread `t` — the knob a litmus harness turns to skew the cores
    /// against each other and expose rare interleavings.
    ///
    /// # Panics
    ///
    /// Panics if `pads.len()` differs from the thread count.
    pub fn to_traces_padded(&self, pads: &[usize]) -> Vec<Trace> {
        assert_eq!(pads.len(), self.threads.len(), "one pad per thread");
        self.threads
            .iter()
            .zip(pads)
            .map(|(ops, &pad)| {
                let mut b = TraceBuilder::new();
                for _ in 0..pad {
                    b.nop();
                }
                let mut slot = 0u8;
                for op in ops {
                    match op {
                        LOp::St(v, val) => {
                            b.store_imm(Self::var_addr(*v), *val);
                        }
                        LOp::Ld(v) => {
                            b.load(Reg::new(slot), Self::var_addr(*v));
                            slot += 1;
                        }
                        LOp::Fence => {
                            b.fence();
                        }
                    }
                }
                b.build()
            })
            .collect()
    }
}

/// A litmus condition: a conjunction of register and final-memory
/// equalities, e.g. `0:r0=1 /\ 0:r1=0 /\ [x]=1`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cond {
    /// `(thread, load_slot, value)` constraints.
    pub regs: Vec<(usize, usize, u64)>,
    /// `(variable, value)` final-memory constraints.
    pub mem: Vec<(Var, u64)>,
}

impl Cond {
    /// Empty condition (matches everything).
    pub fn new() -> Cond {
        Cond::default()
    }

    /// Adds a register constraint `thread:r{slot} == value`.
    pub fn reg(mut self, thread: usize, slot: usize, value: u64) -> Cond {
        self.regs.push((thread, slot, value));
        self
    }

    /// Adds a final-memory constraint `[var] == value`.
    pub fn mem(mut self, var: Var, value: u64) -> Cond {
        self.mem.push((var, value));
        self
    }
}

/// A named test together with the condition the paper discusses and its
/// expected classification under each model.
#[derive(Debug, Clone)]
pub struct ClassifiedTest {
    /// The program.
    pub test: LitmusTest,
    /// The interesting outcome.
    pub condition: Cond,
    /// Observable under x86-TSO.
    pub allowed_x86: bool,
    /// Observable under the store-atomic 370 model.
    pub allowed_370: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_display_and_addressing() {
        assert_eq!(X.to_string(), "x");
        assert_eq!(Y.to_string(), "y");
        assert_eq!(Var(7).to_string(), "v7");
        assert_ne!(LitmusTest::var_addr(X), LitmusTest::var_addr(Y));
        assert_eq!(LitmusTest::var_addr(X) % 64, 0);
    }

    #[test]
    fn loads_counted_per_thread() {
        let t = LitmusTest::new(
            "t",
            vec![
                vec![LOp::Ld(X), LOp::St(Y, 1), LOp::Ld(Y)],
                vec![LOp::Fence],
            ],
        );
        assert_eq!(t.loads_in(0), 2);
        assert_eq!(t.loads_in(1), 0);
        assert_eq!(t.vars(), vec![X, Y]);
    }

    #[test]
    fn lowering_to_traces() {
        let t = LitmusTest::new("t", vec![vec![LOp::St(X, 1), LOp::Ld(X), LOp::Fence]]);
        let traces = t.to_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].len(), 3);
        assert_eq!(traces[0].count_matching(sa_isa::Op::is_store), 1);
        assert_eq!(traces[0].count_matching(sa_isa::Op::is_load), 1);
    }

    #[test]
    fn cond_builder() {
        let c = Cond::new().reg(0, 1, 0).mem(X, 1);
        assert_eq!(c.regs, vec![(0, 1, 0)]);
        assert_eq!(c.mem, vec![(X, 1)]);
    }
}
