//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Produces the classic JSON trace-event format: one process per core,
//! with named threads for the pipeline, retire gate, store buffer,
//! memory requests and coherence traffic. Open the output at
//! `ui.perfetto.dev` (drag & drop) or `chrome://tracing`.
//!
//! Mapping:
//!
//! * Each µop is a complete (`"X"`) slice on the *pipeline* track from
//!   dispatch to retire (or squash), with its stage timestamps in
//!   `args`. Squashed µops carry `"squashed": true`.
//! * Each gate episode is an `"X"` slice on the *gate* track from close
//!   to open; the close and open are additionally instant events whose
//!   `args.key` carry the locking/unlocking key — the §III window of
//!   vulnerability is the span between them.
//! * SB residency (retire → L1 commit) is an `"X"` slice per store on
//!   the *store-buffer* track; commits are instants with the key.
//! * Memory requests are `"X"` slices on the *memory* track; coherence
//!   messages, invalidations and evictions are instants.
//! * Occupancy samples become counter (`"C"`) events, which Perfetto
//!   renders as per-core area charts.
//!
//! Timestamps are cycles written as microseconds (1 cycle = 1 µs), the
//! conventional trick for unitless cycle-level traces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sa_isa::CoreId;

use crate::event::{EventKind, GateOpenReason, TraceEvent};

const TID_PIPE: u32 = 1;
const TID_GATE: u32 = 2;
const TID_SB: u32 = 3;
const TID_MEM: u32 = 4;
const TID_COH: u32 = 5;

fn esc(s: &str) -> String {
    // The strings we emit are mnemonics and hex numbers; escape anyway.
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

struct Json {
    out: String,
    first: bool,
}

impl Json {
    fn new() -> Json {
        Json {
            out: String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"),
            first: true,
        }
    }

    fn push(&mut self, obj: String) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str(&obj);
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

fn meta_thread(json: &mut Json, pid: u16, tid: u32, name: &str) {
    json.push(format!(
        "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        esc(name)
    ));
}

#[derive(Debug, Clone)]
struct OpenUop {
    dispatch: u64,
    name: String,
    trace_idx: usize,
    pc: u64,
    issue: Option<u64>,
    perform: Option<(u64, bool)>,
    complete: Option<u64>,
}

fn close_uop(json: &mut Json, core: CoreId, rob: u64, u: &OpenUop, end: u64, squashed: bool) {
    let mut args = format!(
        "\"rob\":{rob},\"idx\":{},\"pc\":\"0x{:x}\"",
        u.trace_idx, u.pc
    );
    if let Some(i) = u.issue {
        let _ = write!(args, ",\"issue\":{i}");
    }
    if let Some((p, fwd)) = u.perform {
        let _ = write!(args, ",\"perform\":{p},\"forwarded\":{fwd}");
    }
    if let Some(c) = u.complete {
        let _ = write!(args, ",\"complete\":{c}");
    }
    if squashed {
        args.push_str(",\"squashed\":true");
    }
    // Zero-duration slices are dropped by some viewers; clamp to 1.
    let dur = (end - u.dispatch).max(1);
    json.push(format!(
        "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"uop\",\"pid\":{},\"tid\":{TID_PIPE},\
         \"ts\":{},\"dur\":{dur},\"args\":{{{args}}}}}",
        esc(&u.name),
        core.0,
        u.dispatch,
    ));
}

/// A host-side wall-time span for [`export_chrome_host_spans`].
///
/// Unlike [`TraceEvent`]s, which are stamped in simulated cycles, these
/// carry real nanoseconds — `sa-profile` lays its aggregated phase tree
/// out as a sequence of these and reuses this crate's Chrome writer so
/// host profiles load in Perfetto exactly like guest traces do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSpan {
    /// Phase name (one path component, not the full `;`-joined path —
    /// nesting is conveyed by slice containment).
    pub name: String,
    /// Start offset in nanoseconds.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// How many times the phase was entered.
    pub count: u64,
}

/// Renders host wall-time spans as Chrome trace-event JSON.
///
/// All spans land on one `host / wall time` track; a span whose
/// `[ts, ts+dur]` interval is contained in another's nests under it,
/// which is how trace viewers reconstruct the call tree. Timestamps are
/// nanoseconds written as fractional microseconds (the trace-event
/// `ts` unit).
pub fn export_chrome_host_spans(spans: &[HostSpan]) -> String {
    let mut json = Json::new();
    json.push(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\
         \"args\":{\"name\":\"host\"}}"
            .to_string(),
    );
    meta_thread(&mut json, 0, 1, "wall time");
    for s in spans {
        json.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"host\",\"pid\":0,\"tid\":1,\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"count\":{}}}}}",
            esc(&s.name),
            s.ts_ns as f64 / 1000.0,
            (s.dur_ns.max(1)) as f64 / 1000.0,
            s.count,
        ));
    }
    json.finish()
}

/// One phase of one shard's epoch on the parallel engine's host
/// timeline, for [`export_chrome_epoch_lanes`].
///
/// Like [`HostSpan`] these carry real host nanoseconds, not simulated
/// cycles — the parallel engine (sa-sim's scalescope telemetry) lays
/// each shard's per-epoch work / barrier-wait / exchange slices out as
/// a sequence of these; sa-sim depends on this crate, so the span type
/// lives here and the producer converts into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSpan {
    /// Shard (worker thread) index; becomes the track.
    pub shard: u32,
    /// Epoch number, carried in `args`.
    pub epoch: u64,
    /// Phase label: `"work"`, `"barrier-a"`, `"exchange"`, `"barrier-b"`.
    pub name: &'static str,
    /// Start offset in nanoseconds from the parallel region's start.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Process id of the epoch-lane track group (out of the way of per-core
/// pids and the host profile's pid 0).
const EPOCH_PID: u32 = 999_999;

/// Renders the parallel engine's epoch/barrier lanes as Chrome
/// trace-event JSON: one `parallel engine` process with a track per
/// shard, each epoch a work → barrier-a → exchange → barrier-b slice
/// sequence. Timestamps are nanoseconds written as fractional
/// microseconds, the same convention as [`export_chrome_host_spans`].
pub fn export_chrome_epoch_lanes(spans: &[EpochSpan]) -> String {
    let mut json = Json::new();
    json.push(format!(
        "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{EPOCH_PID},\
         \"args\":{{\"name\":\"parallel engine\"}}}}"
    ));
    let mut named: Vec<u32> = Vec::new();
    for s in spans {
        if !named.contains(&s.shard) {
            named.push(s.shard);
            json.push(format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{EPOCH_PID},\
                 \"tid\":{},\"args\":{{\"name\":\"shard {}\"}}}}",
                s.shard + 1,
                s.shard
            ));
        }
        json.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"epoch\",\"pid\":{EPOCH_PID},\
             \"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"epoch\":{}}}}}",
            esc(s.name),
            s.shard + 1,
            s.ts_ns as f64 / 1000.0,
            (s.dur_ns.max(1)) as f64 / 1000.0,
            s.epoch,
        ));
    }
    json.finish()
}

/// Renders `events` as Chrome trace-event JSON.
///
/// Events must be in per-core nondecreasing cycle order — what every
/// sink in this crate records naturally.
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    let mut json = Json::new();
    let mut named: Vec<u16> = Vec::new();
    let mut open_uops: BTreeMap<(u16, u64), OpenUop> = BTreeMap::new();
    let mut open_gate: BTreeMap<u16, (u64, Option<String>)> = BTreeMap::new();
    let mut open_sb: BTreeMap<(u16, String), (u64, u64)> = BTreeMap::new();
    let mut open_mem: BTreeMap<(u16, u64), (u64, bool, u64)> = BTreeMap::new();

    for ev in events {
        let pid = ev.core.0;
        if !named.contains(&pid) {
            named.push(pid);
            json.push(format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\
                 \"args\":{{\"name\":\"core {pid}\"}}}}"
            ));
            meta_thread(&mut json, pid, TID_PIPE, "pipeline");
            meta_thread(&mut json, pid, TID_GATE, "retire gate");
            meta_thread(&mut json, pid, TID_SB, "store buffer");
            meta_thread(&mut json, pid, TID_MEM, "memory");
            meta_thread(&mut json, pid, TID_COH, "coherence");
        }
        let ts = ev.cycle;
        match ev.kind {
            EventKind::Dispatch {
                rob,
                trace_idx,
                pc,
                uop,
            } => {
                open_uops.insert(
                    (pid, rob),
                    OpenUop {
                        dispatch: ts,
                        name: format!("{} 0x{:x}", uop.mnemonic(), pc),
                        trace_idx,
                        pc,
                        issue: None,
                        perform: None,
                        complete: None,
                    },
                );
            }
            EventKind::Issue { rob } => {
                if let Some(u) = open_uops.get_mut(&(pid, rob)) {
                    u.issue = Some(ts);
                }
            }
            EventKind::Perform { rob, forwarded, .. } => {
                if let Some(u) = open_uops.get_mut(&(pid, rob)) {
                    u.perform = Some((ts, forwarded));
                }
            }
            EventKind::Complete { rob } => {
                if let Some(u) = open_uops.get_mut(&(pid, rob)) {
                    u.complete = Some(ts);
                }
            }
            EventKind::Retire { rob, .. } => {
                if let Some(u) = open_uops.remove(&(pid, rob)) {
                    close_uop(&mut json, ev.core, rob, &u, ts, false);
                }
            }
            EventKind::Squash {
                from_rob,
                uops,
                cause,
                by,
                line,
            } => {
                let blame = match (by, line) {
                    (Some(c), Some(l)) => format!(",\"by\":\"core{c}\",\"line\":{l}"),
                    (None, Some(l)) => format!(",\"by\":\"local\",\"line\":{l}"),
                    _ => String::new(),
                };
                json.push(format!(
                    "{{\"ph\":\"i\",\"name\":\"squash {}\",\"cat\":\"squash\",\"s\":\"t\",\
                     \"pid\":{pid},\"tid\":{TID_PIPE},\"ts\":{ts},\
                     \"args\":{{\"from_rob\":{from_rob},\"uops\":{uops}{blame}}}}}",
                    cause.label()
                ));
                let squashed: Vec<(u16, u64)> = open_uops
                    .range((pid, from_rob)..(pid, u64::MAX))
                    .map(|(k, _)| *k)
                    .collect();
                for k in squashed {
                    let u = open_uops.remove(&k).expect("key from range");
                    close_uop(&mut json, ev.core, k.1, &u, ts, true);
                }
            }
            EventKind::GateStall { rob } => {
                json.push(format!(
                    "{{\"ph\":\"i\",\"name\":\"gate stall\",\"cat\":\"gate\",\"s\":\"t\",\
                     \"pid\":{pid},\"tid\":{TID_GATE},\"ts\":{ts},\"args\":{{\"rob\":{rob}}}}}"
                ));
            }
            EventKind::GateClose { rob, key } => {
                json.push(format!(
                    "{{\"ph\":\"i\",\"name\":\"gate close\",\"cat\":\"gate\",\"s\":\"t\",\
                     \"pid\":{pid},\"tid\":{TID_GATE},\"ts\":{ts},\
                     \"args\":{{\"key\":\"{key}\",\"rob\":{rob}}}}}"
                ));
                open_gate.entry(pid).or_insert((ts, Some(key.to_string())));
            }
            EventKind::GateOpen { reason } => {
                let (reason_s, key_s) = match reason {
                    GateOpenReason::KeyMatch(k) => ("key-match", Some(k.to_string())),
                    GateOpenReason::SbEmpty => ("sb-empty", None),
                    GateOpenReason::Squash => ("squash", None),
                };
                let key_arg = key_s.map_or(String::new(), |k| format!(",\"key\":\"{k}\""));
                json.push(format!(
                    "{{\"ph\":\"i\",\"name\":\"gate open\",\"cat\":\"gate\",\"s\":\"t\",\
                     \"pid\":{pid},\"tid\":{TID_GATE},\"ts\":{ts},\
                     \"args\":{{\"reason\":\"{reason_s}\"{key_arg}}}}}"
                ));
                if let Some((start, lock_key)) = open_gate.remove(&pid) {
                    let lock = lock_key.unwrap_or_default();
                    json.push(format!(
                        "{{\"ph\":\"X\",\"name\":\"gate closed [{lock}]\",\"cat\":\"gate\",\
                         \"pid\":{pid},\"tid\":{TID_GATE},\"ts\":{start},\"dur\":{},\
                         \"args\":{{\"opened_by\":\"{reason_s}\"}}}}",
                        (ts - start).max(1)
                    ));
                }
            }
            EventKind::SbEnter { rob, key, addr } => {
                open_sb.insert((pid, key.to_string()), (ts, addr));
                let _ = rob;
            }
            EventKind::SbCommit { key, addr } => {
                json.push(format!(
                    "{{\"ph\":\"i\",\"name\":\"sb commit\",\"cat\":\"sb\",\"s\":\"t\",\
                     \"pid\":{pid},\"tid\":{TID_SB},\"ts\":{ts},\
                     \"args\":{{\"key\":\"{key}\",\"addr\":\"0x{addr:x}\"}}}}"
                ));
                if let Some((start, a)) = open_sb.remove(&(pid, key.to_string())) {
                    json.push(format!(
                        "{{\"ph\":\"X\",\"name\":\"SB 0x{a:x} [{key}]\",\"cat\":\"sb\",\
                         \"pid\":{pid},\"tid\":{TID_SB},\"ts\":{start},\"dur\":{}}}",
                        (ts - start).max(1)
                    ));
                }
            }
            EventKind::MemReq { req, line, rfo } => {
                open_mem.insert((pid, req), (ts, rfo, line));
            }
            EventKind::MemResp { req, rfo } => {
                if let Some((start, _, line)) = open_mem.remove(&(pid, req)) {
                    let name = if rfo { "rfo" } else { "load" };
                    json.push(format!(
                        "{{\"ph\":\"X\",\"name\":\"{name} 0x{line:x}\",\"cat\":\"mem\",\
                         \"pid\":{pid},\"tid\":{TID_MEM},\"ts\":{start},\"dur\":{},\
                         \"args\":{{\"req\":{req}}}}}",
                        (ts - start).max(1)
                    ));
                }
            }
            EventKind::Invalidation { line } => {
                json.push(format!(
                    "{{\"ph\":\"i\",\"name\":\"invalidation\",\"cat\":\"coh\",\"s\":\"t\",\
                     \"pid\":{pid},\"tid\":{TID_COH},\"ts\":{ts},\
                     \"args\":{{\"line\":\"0x{line:x}\"}}}}"
                ));
            }
            EventKind::Eviction { line } => {
                json.push(format!(
                    "{{\"ph\":\"i\",\"name\":\"eviction\",\"cat\":\"coh\",\"s\":\"t\",\
                     \"pid\":{pid},\"tid\":{TID_COH},\"ts\":{ts},\
                     \"args\":{{\"line\":\"0x{line:x}\"}}}}"
                ));
            }
            EventKind::CohMsg {
                from,
                to,
                line,
                msg,
            } => {
                json.push(format!(
                    "{{\"ph\":\"i\",\"name\":\"{msg} {from}>{to}\",\"cat\":\"coh\",\"s\":\"t\",\
                     \"pid\":{pid},\"tid\":{TID_COH},\"ts\":{ts},\
                     \"args\":{{\"line\":\"0x{line:x}\"}}}}"
                ));
            }
            EventKind::Occupancy { rob, lq, sq } => {
                json.push(format!(
                    "{{\"ph\":\"C\",\"name\":\"occupancy\",\"pid\":{pid},\"ts\":{ts},\
                     \"args\":{{\"rob\":{rob},\"lq\":{lq},\"sq\":{sq}}}}}"
                ));
            }
        }
    }

    // Close whatever is still in flight at the last stamped cycle.
    let end = events.last().map_or(0, |e| e.cycle) + 1;
    let leftover: Vec<(u16, u64)> = open_uops.keys().copied().collect();
    for k in leftover {
        let u = open_uops.remove(&k).expect("listed key");
        close_uop(&mut json, CoreId(k.0), k.1, &u, end, false);
    }
    json.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{GateKey, SquashKind, UopKind};

    fn ev(core: u16, cycle: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            core: CoreId(core),
            kind,
        }
    }

    #[test]
    fn export_pairs_dispatch_with_retire() {
        let events = vec![
            ev(
                0,
                5,
                EventKind::Dispatch {
                    rob: 1,
                    trace_idx: 0,
                    pc: 0x100,
                    uop: UopKind::Load,
                },
            ),
            ev(0, 7, EventKind::Issue { rob: 1 }),
            ev(
                0,
                9,
                EventKind::Perform {
                    rob: 1,
                    addr: 0x1000,
                    forwarded: true,
                },
            ),
            ev(0, 10, EventKind::Complete { rob: 1 }),
            ev(
                0,
                12,
                EventKind::Retire {
                    rob: 1,
                    uop: UopKind::Load,
                },
            ),
        ];
        let out = export_chrome_trace(&events);
        assert!(out.contains("\"name\":\"ld 0x100\""));
        assert!(out.contains("\"ts\":5,\"dur\":7"));
        assert!(out.contains("\"forwarded\":true"));
        // Valid JSON shape (no trailing comma, balanced braces).
        assert!(out.starts_with('{') && out.trim_end().ends_with('}'));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn gate_episode_spans_close_to_open() {
        let key = GateKey {
            slot: 3,
            sorting: false,
        };
        let events = vec![
            ev(0, 20, EventKind::GateClose { rob: 9, key }),
            ev(
                0,
                95,
                EventKind::GateOpen {
                    reason: GateOpenReason::KeyMatch(key),
                },
            ),
        ];
        let out = export_chrome_trace(&events);
        assert!(out.contains("\"name\":\"gate close\""));
        assert!(out.contains("\"key\":\"k3.0\""));
        assert!(out.contains("gate closed [k3.0]"));
        assert!(out.contains("\"ts\":20,\"dur\":75"));
    }

    #[test]
    fn epoch_lanes_track_per_shard() {
        let spans = vec![
            EpochSpan {
                shard: 0,
                epoch: 0,
                name: "work",
                ts_ns: 0,
                dur_ns: 1500,
            },
            EpochSpan {
                shard: 0,
                epoch: 0,
                name: "barrier-a",
                ts_ns: 1500,
                dur_ns: 300,
            },
            EpochSpan {
                shard: 1,
                epoch: 0,
                name: "work",
                ts_ns: 0,
                dur_ns: 1800,
            },
        ];
        let out = export_chrome_epoch_lanes(&spans);
        assert!(out.contains("parallel engine"));
        assert!(out.contains("\"name\":\"shard 0\""));
        assert!(out.contains("\"name\":\"shard 1\""));
        assert!(out.contains("\"name\":\"barrier-a\""));
        assert!(out.contains("\"ts\":1.500,\"dur\":0.300"));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn squash_closes_only_younger_uops() {
        let events = vec![
            ev(
                0,
                1,
                EventKind::Dispatch {
                    rob: 1,
                    trace_idx: 0,
                    pc: 0x10,
                    uop: UopKind::Alu,
                },
            ),
            ev(
                0,
                1,
                EventKind::Dispatch {
                    rob: 2,
                    trace_idx: 1,
                    pc: 0x18,
                    uop: UopKind::Load,
                },
            ),
            ev(
                0,
                9,
                EventKind::Squash {
                    from_rob: 2,
                    uops: 1,
                    cause: SquashKind::MemOrder,
                    by: None,
                    line: None,
                },
            ),
            ev(
                0,
                15,
                EventKind::Retire {
                    rob: 1,
                    uop: UopKind::Alu,
                },
            ),
        ];
        let out = export_chrome_trace(&events);
        assert!(out.contains("\"squashed\":true"));
        assert!(out.contains("squash mem-order"));
        // rob 1 retired normally (its slice has no squashed flag).
        let rob1 = out
            .lines()
            .find(|l| l.contains("\"rob\":1,"))
            .expect("rob 1 slice");
        assert!(!rob1.contains("squashed"));
    }
}
