//! Window-occupancy histograms, recorded always-on.
//!
//! `hist[n]` counts the cycles a structure was observed holding exactly
//! `n` entries. These are the raw series behind Figure 9's stall
//! attribution: a workload whose dispatch stalls are charged to the
//! SQ/SB must also show the SQ/SB histogram pinned at capacity. The same
//! shape used to be collected only by `sa-trace`'s counters-only sink;
//! the core now records it unconditionally and the sink bridges into
//! this type ([`OccupancyHists::from_slices`]) so both paths feed one
//! registry representation.

/// Occupancy histograms for the three window resources.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OccupancyHists {
    /// ROB occupancy histogram.
    pub rob: Vec<u64>,
    /// LQ occupancy histogram.
    pub lq: Vec<u64>,
    /// SQ/SB occupancy histogram.
    pub sq: Vec<u64>,
}

fn bump(hist: &mut Vec<u64>, value: usize, n: u64) {
    if hist.len() <= value {
        hist.resize(value + 1, 0);
    }
    hist[value] += n;
}

fn merge_into(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

impl OccupancyHists {
    /// Pre-sizes each histogram to `capacity + 1` bins so the per-cycle
    /// [`OccupancyHists::record`] never reallocates.
    pub fn with_capacities(rob: usize, lq: usize, sq: usize) -> OccupancyHists {
        OccupancyHists {
            rob: vec![0; rob + 1],
            lq: vec![0; lq + 1],
            sq: vec![0; sq + 1],
        }
    }

    /// Bridges histograms recorded elsewhere (e.g. `sa-trace`'s
    /// counters-only sink) into this representation.
    pub fn from_slices(rob: &[u64], lq: &[u64], sq: &[u64]) -> OccupancyHists {
        OccupancyHists {
            rob: rob.to_vec(),
            lq: lq.to_vec(),
            sq: sq.to_vec(),
        }
    }

    /// Records one cycle's occupancies.
    pub fn record(&mut self, rob: usize, lq: usize, sq: usize) {
        self.record_n(rob, lq, sq, 1);
    }

    /// Records `n` consecutive cycles at identical occupancies — the
    /// event-driven engine's bulk path for skipped stall ranges.
    pub fn record_n(&mut self, rob: usize, lq: usize, sq: usize, n: u64) {
        bump(&mut self.rob, rob, n);
        bump(&mut self.lq, lq, n);
        bump(&mut self.sq, sq, n);
    }

    /// Sums another set of histograms into this one.
    pub fn merge(&mut self, o: &OccupancyHists) {
        merge_into(&mut self.rob, &o.rob);
        merge_into(&mut self.lq, &o.lq);
        merge_into(&mut self.sq, &o.sq);
    }

    /// Cycles sampled (per structure; all three agree when recorded via
    /// [`OccupancyHists::record`]).
    pub fn cycles_sampled(&self) -> u64 {
        self.rob.iter().sum()
    }

    /// Fraction of sampled cycles a histogram spent at or above
    /// occupancy `n` (0.0 when nothing was sampled).
    pub fn fraction_at_or_above(hist: &[u64], n: usize) -> f64 {
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let above: u64 = hist.iter().skip(n).sum();
        above as f64 / total as f64
    }

    /// Mean occupancy of a histogram (0.0 when nothing was sampled).
    pub fn mean(hist: &[u64]) -> f64 {
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = hist.iter().enumerate().map(|(i, c)| i as u64 * c).sum();
        weighted as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_bumps_each_structure() {
        let mut h = OccupancyHists::with_capacities(8, 4, 4);
        h.record(3, 1, 0);
        h.record(3, 2, 0);
        assert_eq!(h.rob[3], 2);
        assert_eq!(h.lq[1], 1);
        assert_eq!(h.sq[0], 2);
        assert_eq!(h.cycles_sampled(), 2);
    }

    #[test]
    fn record_grows_past_preallocated_bins() {
        let mut h = OccupancyHists::with_capacities(2, 2, 2);
        h.record(5, 0, 0);
        assert_eq!(h.rob[5], 1);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = OccupancyHists::with_capacities(8, 4, 4);
        let mut single = OccupancyHists::with_capacities(8, 4, 4);
        bulk.record_n(3, 1, 0, 5);
        for _ in 0..5 {
            single.record(3, 1, 0);
        }
        assert_eq!(bulk, single);
        assert_eq!(bulk.cycles_sampled(), 5);
    }

    #[test]
    fn merge_handles_unequal_lengths() {
        let mut a = OccupancyHists::from_slices(&[1, 2], &[1], &[1]);
        let b = OccupancyHists::from_slices(&[0, 0, 7], &[1], &[1]);
        a.merge(&b);
        assert_eq!(a.rob, vec![1, 2, 7]);
    }

    #[test]
    fn summary_statistics() {
        let hist = [0, 2, 0, 2]; // two cycles at 1, two at 3
        assert!((OccupancyHists::mean(&hist) - 2.0).abs() < 1e-12);
        assert!((OccupancyHists::fraction_at_or_above(&hist, 2) - 0.5).abs() < 1e-12);
        assert_eq!(OccupancyHists::mean(&[]), 0.0);
        assert_eq!(OccupancyHists::fraction_at_or_above(&[], 1), 0.0);
    }
}
