//! Live scrape endpoint for the long-running binaries.
//!
//! A zero-dependency HTTP server on `std::net::TcpListener`: the bench
//! binary publishes its latest metrics snapshot into shared state and a
//! detached acceptor thread serves it to anything that connects —
//! `curl`, a Prometheus scraper, or a browser. Three routes:
//!
//! | path         | content type            | body |
//! |--------------|-------------------------|------|
//! | `/metrics`   | `text/plain; version=0.0.4` | Prometheus exposition text |
//! | `/forensics` | `application/json`      | latest forensics summary JSON |
//! | `/profile`   | `application/json`      | latest host wall-time profile tree |
//! | `/`          | `text/plain`            | index listing the ones above |
//!
//! The server holds only the rendered strings (bounded memory, no
//! history), is updated from worker threads mid-sweep via
//! [`MetricsServer::set_prometheus`] / [`MetricsServer::set_forensics`]
//! / [`MetricsServer::set_profile`], and dies with the process —
//! requests are served one at a time, which is plenty for a scrape
//! interval measured in seconds.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

/// Shared snapshot the acceptor thread reads and the bench loop writes.
#[derive(Default)]
struct ServeState {
    prometheus: String,
    forensics: String,
    profile: String,
}

/// Handle to a running scrape endpoint. Clone-free: wrap in `Arc` to
/// update from parallel workers (all methods take `&self`).
pub struct MetricsServer {
    state: Arc<Mutex<ServeState>>,
    port: u16,
}

impl MetricsServer {
    /// Binds `127.0.0.1:port` (0 picks a free port) and spawns the
    /// acceptor thread. The thread is detached; it lives until the
    /// process exits.
    pub fn start(port: u16) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let port = listener.local_addr()?.port();
        let state = Arc::new(Mutex::new(ServeState::default()));
        let thread_state = Arc::clone(&state);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                // A scraper that wedges mid-request must not wedge the
                // endpoint forever.
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
                let _ = handle(stream, &thread_state);
            }
        });
        Ok(MetricsServer { state, port })
    }

    /// The bound port (useful when started with port 0).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Replaces the Prometheus exposition snapshot served at `/metrics`.
    pub fn set_prometheus(&self, text: String) {
        self.state.lock().expect("serve state").prometheus = text;
    }

    /// Replaces the forensics JSON snapshot served at `/forensics`.
    pub fn set_forensics(&self, json: String) {
        self.state.lock().expect("serve state").forensics = json;
    }

    /// Replaces the host wall-time profile JSON served at `/profile`.
    pub fn set_profile(&self, json: String) {
        self.state.lock().expect("serve state").profile = json;
    }
}

/// Reads the request line, routes, writes one response, closes.
fn handle(mut stream: TcpStream, state: &Mutex<ServeState>) -> std::io::Result<()> {
    // Clients may deliver the request head across several writes; keep
    // reading until the header terminator (or a size cap) so we don't
    // respond to — and close on — a half-sent request.
    let mut head_buf: Vec<u8> = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head_buf.extend_from_slice(&buf[..n]);
        if head_buf.windows(4).any(|w| w == b"\r\n\r\n") || head_buf.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&head_buf);
    let path = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/")
        .to_string();

    let (status, ctype, body) = match path.as_str() {
        "/metrics" => {
            let s = state.lock().expect("serve state");
            (
                "200 OK",
                "text/plain; version=0.0.4",
                s.prometheus.clone(),
            )
        }
        "/forensics" => {
            let s = state.lock().expect("serve state");
            if s.forensics.is_empty() {
                (
                    "200 OK",
                    "application/json",
                    "{\"status\":\"no forensics snapshot yet\"}".to_string(),
                )
            } else {
                ("200 OK", "application/json", s.forensics.clone())
            }
        }
        "/profile" => {
            let s = state.lock().expect("serve state");
            if s.profile.is_empty() {
                (
                    "200 OK",
                    "application/json",
                    "{\"status\":\"no profile snapshot yet\"}".to_string(),
                )
            } else {
                ("200 OK", "application/json", s.profile.clone())
            }
        }
        "/" => (
            "200 OK",
            "text/plain",
            "sa-bench live endpoint\n  /metrics    Prometheus exposition\n  /forensics  forensics summary JSON\n  /profile    host wall-time profile tree JSON\n"
                .to_string(),
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };

    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(port: u16, path: &str) -> String {
        let mut s = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_metrics_and_forensics_snapshots() {
        let srv = MetricsServer::start(0).expect("bind");
        srv.set_prometheus("sa_test_metric 42\n".to_string());
        srv.set_forensics("{\"schema\":\"sa-forensics-v1\"}".to_string());

        let m = get(srv.port(), "/metrics");
        assert!(m.starts_with("HTTP/1.1 200 OK"), "{m}");
        assert!(m.contains("text/plain"), "{m}");
        assert!(m.contains("sa_test_metric 42"), "{m}");

        let f = get(srv.port(), "/forensics");
        assert!(f.contains("application/json"), "{f}");
        assert!(f.contains("sa-forensics-v1"), "{f}");

        srv.set_profile("{\"total_ns\":7,\"roots\":[]}".to_string());
        let p = get(srv.port(), "/profile");
        assert!(p.contains("application/json"), "{p}");
        assert!(p.contains("\"total_ns\":7"), "{p}");
    }

    #[test]
    fn index_and_missing_routes() {
        let srv = MetricsServer::start(0).expect("bind");
        let idx = get(srv.port(), "/");
        assert!(idx.contains("/metrics"), "{idx}");
        let miss = get(srv.port(), "/nope");
        assert!(miss.starts_with("HTTP/1.1 404"), "{miss}");
    }

    #[test]
    fn empty_forensics_snapshot_is_valid_json_stub() {
        let srv = MetricsServer::start(0).expect("bind");
        let f = get(srv.port(), "/forensics");
        assert!(f.contains("no forensics snapshot yet"), "{f}");
    }

    #[test]
    fn updates_replace_previous_snapshot() {
        let srv = MetricsServer::start(0).expect("bind");
        srv.set_prometheus("gen 1\n".to_string());
        srv.set_prometheus("gen 2\n".to_string());
        let m = get(srv.port(), "/metrics");
        assert!(m.contains("gen 2"), "{m}");
        assert!(!m.contains("gen 1"), "{m}");
    }
}
