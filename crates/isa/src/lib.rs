//! Instruction-set, trace, and memory-model types shared by every crate in
//! the store-atomicity simulator workspace.
//!
//! The simulator is *trace driven*: a [`Trace`] is a per-core sequence of
//! [`Instr`] values with concrete data addresses and architectural branch
//! outcomes. The out-of-order core model (`sa-ooo`) executes traces with full
//! value semantics — loads observe the value that the memory system makes
//! globally visible at the instant the load performs, and stores publish
//! their value at the instant they commit to the L1 — so the same machinery
//! runs both synthetic performance workloads and value-sensitive litmus
//! tests.
//!
//! # Example
//!
//! ```
//! use sa_isa::{ConsistencyModel, Reg, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! b.store_imm(0x1000, 1); // st [0x1000] <- 1
//! b.load(Reg::new(0), 0x1000); // ld r0 <- [0x1000] (store-to-load forwarding)
//! b.load(Reg::new(1), 0x2000); // ld r1 <- [0x2000]
//! let trace = b.build();
//! assert_eq!(trace.len(), 3);
//! assert_eq!(ConsistencyModel::X86.is_store_atomic(), false);
//! ```

pub mod addr;
pub mod hash;
pub mod instr;
pub mod interp;
pub mod mem;
pub mod model;
pub mod reg;
pub mod rng;
pub mod trace;

pub use addr::{Addr, Line, LINE_BYTES, LINE_SHIFT};
pub use hash::{FastMap, FastSet, FxBuildHasher, FxHasher};
pub use instr::{AluEval, ExecUnit, Instr, Op, StoreOperand};
pub use interp::{interpret, ArchState};
pub use mem::{StripedValueMemory, ValueImage, ValueMemory};
pub use model::ConsistencyModel;
pub use reg::{Reg, NUM_REGS};
pub use trace::{Pc, Trace, TraceBuilder};

/// Simulation time, in core clock cycles.
pub type Cycle = u64;

/// A 64-bit architectural value.
pub type Value = u64;

/// Identifies one core of the simulated multicore (0-based).
///
/// `u16`-wide: the simulator scales to [`MAX_CORES`] cores (the paper's
/// Table III stops at 8; the scale-out engine runs mesh cells up to
/// 1024).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u16);

/// Hard upper bound on the simulated core count, enforced by
/// configuration validation.
pub const MAX_CORES: usize = 1024;

impl CoreId {
    /// Index form, for direct use with `Vec` storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The id for core index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= MAX_CORES`.
    #[inline]
    pub fn from_index(i: usize) -> CoreId {
        assert!(i < MAX_CORES, "core index {i} out of range");
        CoreId(i as u16)
    }
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_roundtrip() {
        let c = CoreId(3);
        assert_eq!(c.index(), 3);
        assert_eq!(c.to_string(), "core3");
    }

    #[test]
    fn core_id_ordering() {
        assert!(CoreId(1) < CoreId(2));
        assert_eq!(CoreId::default(), CoreId(0));
    }
}
