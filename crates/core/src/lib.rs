//! # Speculative enforcement of store atomicity — full-system simulator
//!
//! This crate assembles the out-of-order cores (`sa-ooo`) and the MESI
//! directory memory system (`sa-coherence`) into the 8-core Skylake-like
//! multicore of the paper's Table III, and exposes the experiment API the
//! benchmark harness (`sa-bench`) drives.
//!
//! ## Quickstart
//!
//! ```
//! use sa_sim::{Multicore, SimConfig};
//! use sa_isa::{ConsistencyModel, Reg, TraceBuilder};
//!
//! // One core stores then loads through the store buffer.
//! let mut b = TraceBuilder::new();
//! b.store_imm(0x1000, 7);
//! b.load(Reg::new(0), 0x1000);
//!
//! let cfg = SimConfig::default()
//!     .with_model(ConsistencyModel::Ibm370SlfSosKey)
//!     .with_cores(1);
//! let mut sim = Multicore::new(cfg, vec![b.build()]);
//! let report = sim.run(1_000_000).expect("run completes");
//! assert_eq!(sim.core(sa_isa::CoreId(0)).arch_reg(Reg::new(0)), 7);
//! assert_eq!(report.total().forwarded_loads, 1);
//! ```
//!
//! ## The five configurations
//!
//! [`SimConfig::with_model`] selects among `x86`, `370-NoSpec`,
//! `370-SLFSpec`, `370-SLFSoS` and `370-SLFSoS-key`
//! (see [`sa_isa::ConsistencyModel`]). Everything else — window sizes,
//! cache geometry, network timing — stays identical, which is exactly the
//! comparison the paper makes.

pub mod config;
pub mod multicore;
pub mod report;
pub mod scalescope;

pub use config::{parse_topology, ConfigError, EngineMode, SimConfig, SimConfigBuilder};
pub use multicore::{Multicore, RunError};
pub use report::{Report, StallBreakdown};
pub use sa_coherence::{NocStats, Topology};
pub use scalescope::{EpochSlice, ParallelScope, ShardScope};

// Re-export the component crates so downstream users need one dependency.
pub use sa_coherence as coherence;
pub use sa_isa as isa;
pub use sa_ooo as ooo;
