//! sa-scalescope epoch/barrier telemetry for the parallel engine.
//!
//! The conservative-lookahead engine's wall time decomposes per shard
//! into exactly four phases each epoch: local **work** (the two
//! `run_span` passes), **barrier-A wait** (the publish/decide
//! rendezvous), **exchange** (routing the outbox and injecting the
//! inbox), and **barrier-B wait** (the delivery rendezvous). This
//! module records that anatomy per shard and per epoch, so a slow cell
//! in `BENCH_scale.json` can be attributed instead of guessed at.
//!
//! Two kinds of fields coexist and must not be confused:
//!
//! * **Sim-side** fields (`epochs`, `sim_cycles`, `events_out/in`, the
//!   epoch-cycle and exchange-size histograms, `lookahead`) are pure
//!   functions of the bit-exact simulation and are deterministic for a
//!   given `(config, trace, threads)` triple.
//! * **Host-side** fields (`*_ns`, `last_arriver_*`) measure real time
//!   and OS scheduling; they vary run to run and are excluded from the
//!   determinism assertions in `tests/scalescope.rs`.
//!
//! Neither kind feeds back into simulated time — telemetry is written
//! around the phases the engine already executes, so the bit-exactness
//! contract (`tests/parallel_equivalence.rs`, bench-diff 0.00 drift)
//! holds with telemetry enabled. When the parallel engine is not used
//! the telemetry is not merely zeroed, it is never allocated:
//! `Multicore::scalescope()` returns `None` after serial runs.
//!
//! Reconciliation invariants (enforced by `tests/scalescope.rs`):
//!
//! * every shard's `sim_cycles` equals the report's total cycle count —
//!   each shard walks the same virtual clock from 0 to the finish;
//! * per barrier, the shards' `last_arriver_*` counts sum to the total
//!   number of crossings — exactly one shard arrives last each time;
//! * `work + wait + exchange` covers ≥ 90% of `threads × wall_ns` for
//!   any non-trivial run — the epoch loop has no other phase to hide
//!   time in.

use sa_metrics::{JsonWriter, Log2Hist, Registry};
use sa_trace::EpochSpan;

/// Cap on retained per-epoch lane records per shard. Aggregate sums and
/// histograms stay exact past the cap; only the Perfetto lane truncates
/// (with `lane_dropped` recording how much).
pub const LANE_CAP: usize = 65_536;

/// One epoch of one shard, in host nanoseconds — the Perfetto lane
/// record. Phase order within the epoch loop: work (phase 1 + phase 2
/// spans), barrier-A wait, exchange (outbox routing + inbox injection,
/// which straddle barrier B), barrier-B wait.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochSlice {
    /// Local simulation time (both `run_span` passes).
    pub work_ns: u64,
    /// Blocked at the publish/decide barrier.
    pub wait_a_ns: u64,
    /// Routing the outbox and injecting the inbox.
    pub exchange_ns: u64,
    /// Blocked at the delivery barrier.
    pub wait_b_ns: u64,
}

/// One shard's telemetry, accumulated inside the worker loop and
/// returned with the shard.
#[derive(Debug, Clone, Default)]
pub struct ShardScope {
    /// Shard index.
    pub shard: usize,
    /// Barrier-A crossings (== epochs entered, including the final one).
    pub epochs: u64,
    /// Barrier-B crossings (the final epoch returns before barrier B).
    pub epochs_exchanged: u64,
    /// Σ virtual cycles this shard's clock advanced (== total cycles).
    pub sim_cycles: u64,
    /// Host ns in local simulation.
    pub work_ns: u64,
    /// Host ns blocked at barrier A.
    pub wait_a_ns: u64,
    /// Host ns blocked at barrier B.
    pub wait_b_ns: u64,
    /// Host ns routing/injecting cross-shard events.
    pub exchange_ns: u64,
    /// Cross-shard events this shard sent.
    pub events_out: u64,
    /// Cross-shard events this shard received.
    pub events_in: u64,
    /// Crossings of barrier A where this shard arrived last (it made
    /// everyone else wait — the critical shard).
    pub last_arriver_a: u64,
    /// Crossings of barrier B where this shard arrived last.
    pub last_arriver_b: u64,
    /// Distribution of virtual cycles advanced per epoch.
    pub epoch_cycles: Log2Hist,
    /// Distribution of outbox sizes per exchange.
    pub exchange_events: Log2Hist,
    /// Per-epoch lane records (capped at [`LANE_CAP`]).
    pub lane: Vec<EpochSlice>,
    /// Epochs whose lane record was dropped by the cap.
    pub lane_dropped: u64,
}

impl ShardScope {
    /// Closes out one epoch: fold the slice into the aggregates and
    /// retain it for the lane if under the cap.
    pub fn record_epoch(&mut self, slice: EpochSlice, cycles: u64) {
        self.work_ns += slice.work_ns;
        self.wait_a_ns += slice.wait_a_ns;
        self.wait_b_ns += slice.wait_b_ns;
        self.exchange_ns += slice.exchange_ns;
        self.epoch_cycles.observe(cycles);
        if self.lane.len() < LANE_CAP {
            self.lane.push(slice);
        } else {
            self.lane_dropped += 1;
        }
    }

    /// Host ns accounted to one of the four phases.
    pub fn accounted_ns(&self) -> u64 {
        self.work_ns + self.wait_a_ns + self.wait_b_ns + self.exchange_ns
    }
}

/// The merged telemetry of one parallel run, stored on `Multicore`
/// beside `parallel_mem_stats` — outside `Report`, so the
/// engine-equivalence assertions never see it.
#[derive(Debug, Clone, Default)]
pub struct ParallelScope {
    /// Worker threads (shards).
    pub threads: usize,
    /// Conservative lookahead L in cycles (epoch length), as computed
    /// from the topology — the mesh's distance-aware bound.
    pub lookahead: u64,
    /// Topology spelling the lookahead was computed for (`fc`,
    /// `mesh:<w>`).
    pub topology: String,
    /// Host ns for the whole parallel region (spawn to join).
    pub wall_ns: u64,
    /// Barrier-A crossings (identical for every shard).
    pub epochs: u64,
    /// Per-shard telemetry, indexed by shard id.
    pub per_shard: Vec<ShardScope>,
}

impl ParallelScope {
    /// Σ work over shards.
    pub fn work_ns(&self) -> u64 {
        self.per_shard.iter().map(|s| s.work_ns).sum()
    }

    /// Σ barrier wait (A + B) over shards.
    pub fn wait_ns(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.wait_a_ns + s.wait_b_ns)
            .sum()
    }

    /// Σ exchange over shards.
    pub fn exchange_ns(&self) -> u64 {
        self.per_shard.iter().map(|s| s.exchange_ns).sum()
    }

    /// Fraction of `threads × wall_ns` accounted to work/wait/exchange —
    /// the reconciliation ratio (≥ 0.9 for non-trivial runs).
    pub fn coverage(&self) -> f64 {
        let accounted: u64 = self.per_shard.iter().map(|s| s.accounted_ns()).sum();
        accounted as f64 / ((self.threads as u64 * self.wall_ns).max(1)) as f64
    }

    /// Work / wait / exchange as fractions of total accounted time —
    /// the `scale --explain` breakdown triple.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = (self.work_ns() + self.wait_ns() + self.exchange_ns()).max(1) as f64;
        (
            self.work_ns() as f64 / total,
            self.wait_ns() as f64 / total,
            self.exchange_ns() as f64 / total,
        )
    }

    /// Total cross-shard events exchanged (each counted once, at the
    /// sender).
    pub fn events_exchanged(&self) -> u64 {
        self.per_shard.iter().map(|s| s.events_out).sum()
    }

    /// Registers the `sa_parallel_*` Prometheus families.
    pub fn register(&self, reg: &mut Registry) {
        reg.gauge(
            "sa_parallel_threads",
            "shard worker threads of the last parallel run",
            &[],
            self.threads as f64,
        );
        reg.gauge(
            "sa_parallel_lookahead_cycles",
            "conservative lookahead L (epoch length)",
            &[("topology", &self.topology)],
            self.lookahead as f64,
        );
        reg.counter(
            "sa_parallel_epochs_total",
            "epoch-barrier rounds executed",
            &[],
            self.epochs,
        );
        reg.counter(
            "sa_parallel_wall_ns",
            "host ns for the parallel region",
            &[],
            self.wall_ns,
        );
        reg.gauge(
            "sa_parallel_coverage",
            "fraction of threads*wall accounted to work/wait/exchange",
            &[],
            self.coverage(),
        );
        let mut epoch_cycles = Log2Hist::new();
        let mut exchange_events = Log2Hist::new();
        for s in &self.per_shard {
            let shard = s.shard.to_string();
            reg.counter(
                "sa_parallel_work_ns_total",
                "host ns in local simulation per shard",
                &[("shard", &shard)],
                s.work_ns,
            );
            reg.counter(
                "sa_parallel_barrier_wait_ns_total",
                "host ns blocked at the epoch barriers per shard",
                &[("shard", &shard), ("barrier", "a")],
                s.wait_a_ns,
            );
            reg.counter(
                "sa_parallel_barrier_wait_ns_total",
                "host ns blocked at the epoch barriers per shard",
                &[("shard", &shard), ("barrier", "b")],
                s.wait_b_ns,
            );
            reg.counter(
                "sa_parallel_exchange_ns_total",
                "host ns routing/injecting cross-shard events per shard",
                &[("shard", &shard)],
                s.exchange_ns,
            );
            reg.counter(
                "sa_parallel_last_arriver_total",
                "barrier crossings where the shard arrived last",
                &[("shard", &shard), ("barrier", "a")],
                s.last_arriver_a,
            );
            reg.counter(
                "sa_parallel_last_arriver_total",
                "barrier crossings where the shard arrived last",
                &[("shard", &shard), ("barrier", "b")],
                s.last_arriver_b,
            );
            reg.counter(
                "sa_parallel_events_out_total",
                "cross-shard events sent per shard",
                &[("shard", &shard)],
                s.events_out,
            );
            epoch_cycles.merge(&s.epoch_cycles);
            exchange_events.merge(&s.exchange_events);
        }
        reg.log2_histogram(
            "sa_parallel_epoch_cycles",
            "virtual cycles advanced per shard-epoch",
            &[],
            &epoch_cycles,
        );
        reg.log2_histogram(
            "sa_parallel_exchange_size_events",
            "outbox size per barrier-B exchange",
            &[],
            &exchange_events,
        );
    }

    /// Writes the telemetry as a JSON object value (caller supplies the
    /// surrounding key) — the `parallel` section of the
    /// `sa-bench-scalescope-v1` schema.
    pub fn write_json(&self, j: &mut JsonWriter) {
        let (work, wait, exchange) = self.fractions();
        j.begin_object()
            .field_uint("threads", self.threads as u64)
            .field_uint("lookahead", self.lookahead)
            .field_str("topology", &self.topology)
            .field_uint("wall_ns", self.wall_ns)
            .field_uint("epochs", self.epochs)
            .field_float("coverage", self.coverage())
            .field_float("work_frac", work)
            .field_float("wait_frac", wait)
            .field_float("exchange_frac", exchange)
            .field_uint("events_exchanged", self.events_exchanged())
            .key("shards")
            .begin_array();
        for s in &self.per_shard {
            j.begin_object()
                .field_uint("shard", s.shard as u64)
                .field_uint("sim_cycles", s.sim_cycles)
                .field_uint("work_ns", s.work_ns)
                .field_uint("wait_a_ns", s.wait_a_ns)
                .field_uint("wait_b_ns", s.wait_b_ns)
                .field_uint("exchange_ns", s.exchange_ns)
                .field_uint("events_out", s.events_out)
                .field_uint("events_in", s.events_in)
                .field_uint("last_arriver_a", s.last_arriver_a)
                .field_uint("last_arriver_b", s.last_arriver_b)
                .field_uint("lane_dropped", s.lane_dropped)
                .end_object();
        }
        j.end_array().end_object();
    }

    /// Lays the per-epoch lane records out as Perfetto spans, one track
    /// per shard ([`sa_trace::export_chrome_epoch_lanes`] renders them).
    /// Timestamps are cumulative within each shard — the slices are
    /// contiguous in the shard's wall time by construction.
    pub fn epoch_spans(&self) -> Vec<EpochSpan> {
        let mut out = Vec::new();
        for s in &self.per_shard {
            let mut ts = 0u64;
            for (epoch, e) in s.lane.iter().enumerate() {
                for (name, dur) in [
                    ("work", e.work_ns),
                    ("barrier-a", e.wait_a_ns),
                    ("exchange", e.exchange_ns),
                    ("barrier-b", e.wait_b_ns),
                ] {
                    if dur > 0 {
                        out.push(EpochSpan {
                            shard: s.shard as u32,
                            epoch: epoch as u64,
                            name,
                            ts_ns: ts,
                            dur_ns: dur,
                        });
                        ts += dur;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope_with(shards: usize) -> ParallelScope {
        let mut p = ParallelScope {
            threads: shards,
            lookahead: 7,
            topology: "fc".to_string(),
            wall_ns: 1_000,
            epochs: 2,
            ..ParallelScope::default()
        };
        for i in 0..shards {
            let mut s = ShardScope {
                shard: i,
                epochs: 2,
                ..ShardScope::default()
            };
            s.record_epoch(
                EpochSlice {
                    work_ns: 400,
                    wait_a_ns: 300,
                    exchange_ns: 100,
                    wait_b_ns: 150,
                },
                7,
            );
            s.record_epoch(
                EpochSlice {
                    work_ns: 30,
                    ..EpochSlice::default()
                },
                7,
            );
            p.per_shard.push(s);
        }
        p
    }

    #[test]
    fn coverage_and_fractions_reconcile() {
        let p = scope_with(2);
        // Each shard accounts 980 ns of the 1000 ns wall.
        assert!((p.coverage() - 0.98).abs() < 1e-9);
        let (w, wait, x) = p.fractions();
        assert!((w + wait + x - 1.0).abs() < 1e-9);
        // Per shard: 430 work, 450 wait (300 A + 150 B), 100 exchange.
        assert!(wait > w && w > x);
    }

    #[test]
    fn epoch_spans_are_contiguous_per_shard() {
        let p = scope_with(1);
        let spans = p.epoch_spans();
        // 4 phases in epoch 0, 1 non-empty phase in epoch 1.
        assert_eq!(spans.len(), 5);
        for pair in spans.windows(2) {
            assert_eq!(pair[0].ts_ns + pair[0].dur_ns, pair[1].ts_ns);
        }
        assert_eq!(spans[4].name, "work");
        assert_eq!(spans[4].epoch, 1);
    }

    #[test]
    fn registry_families_export() {
        let p = scope_with(2);
        let mut reg = Registry::new();
        p.register(&mut reg);
        let text = reg.prometheus_text();
        assert!(text.contains("sa_parallel_epochs_total"));
        assert!(text.contains("sa_parallel_barrier_wait_ns_total"));
        assert!(text.contains("shard=\"1\""));
        assert!(text.contains("sa_parallel_epoch_cycles"));
    }
}
