//! The ConsistencyChecker workflow: compare a program's possible outcomes
//! under the x86 model and the store-atomic 370 model, listing the
//! behaviors only the non-store-atomic machine can produce.
//!
//! Runs the built-in suite (the paper's Figures 1/2/3/5 and friends) and
//! then a custom user program built with the litmus AST.
//!
//! ```sh
//! cargo run --release --example litmus_checker
//! ```

use sa_litmus::ast::{LOp::*, LitmusTest, X, Y, Z};
use sa_litmus::compare;

fn main() {
    println!("== Built-in suite ==\n");
    for ct in sa_litmus::suite::all() {
        print!("{}", compare(&ct.test).render());
    }

    println!("\n== A custom program ==\n");
    // Three threads: T0 forwards from its own store of x and then reads
    // z; T1 moves z; T2 publishes x again. Is any outcome visible here
    // that a store-atomic machine cannot produce?
    let custom = LitmusTest::new(
        "custom-3t",
        vec![
            vec![St(X, 1), Ld(X), Ld(Z)],
            vec![St(Z, 1), Ld(Y)],
            vec![St(Y, 1), St(X, 2)],
        ],
    );
    let cmp = compare(&custom);
    print!("{}", cmp.render());
    if cmp.has_violations() {
        println!(
            "\n-> this program needs fencing on x86 if those outcomes are\n\
             unacceptable; under SA-speculation hardware it does not."
        );
    }
}
