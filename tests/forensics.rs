//! Episode-linking and reconciliation invariants for `sa-forensics`.
//!
//! The forensics analyzer derives everything from the event stream; the
//! simulator keeps its own aggregate counters (`CoreStats`, CPI stack,
//! interval sampler). These tests pin the two derivations to each other
//! across the full configuration matrix — any skew means either the
//! event stream or the counters lie:
//!
//! * every `GateClose` pairs with exactly one reopen-or-drain, so summed
//!   episode durations equal the counted `gate_closed_cycles` exactly;
//! * blame-matrix row sums equal per-core squash refill-cycle totals;
//! * forensics squash/µop counts reconcile with the counters and with
//!   the CPI stack's squash-refill category;
//! * the interval sampler's gate-closed fraction reconstructs the same
//!   gate-closed total the episodes sum to (satellite cross-check);
//! * the n6 blame report matches the paper's §III walkthrough and a
//!   committed golden file.

use sa_bench::run_workload_traced;
use sa_forensics::{EpisodeEnd, Forensics, Summary};
use sa_isa::ConsistencyModel;
use sa_metrics::CpiCategory;
use sa_sim::{Multicore, Report, SimConfig};

fn run_litmus(name: &str, model: ConsistencyModel) -> (Report, Summary) {
    let ct = match name {
        "n6" => sa_litmus::suite::n6(),
        "mp" => sa_litmus::suite::mp(),
        other => panic!("unknown litmus test {other}"),
    };
    let traces = ct.test.to_traces();
    let n = traces.len();
    let cfg = SimConfig::default().with_model(model).with_cores(n);
    let mut sim = Multicore::with_tracer(cfg, traces, Forensics::new(n));
    let report = sim.run(5_000_000).expect("litmus run completes");
    let summary = sim.into_tracer().finish(report.cycles);
    (report, summary)
}

fn run_workload(name: &str, model: ConsistencyModel, scale: usize) -> (Report, Summary) {
    let w = sa_workloads::by_name(name).expect("pinned workload exists");
    let (report, forensics) = run_workload_traced(&w, model, scale, 42, Forensics::new);
    let cycles = report.cycles;
    (report, forensics.finish(cycles))
}

/// The cells every reconciliation assertion sweeps: both pinned litmus
/// tests and a small contended workload, under all five configs.
fn matrix() -> Vec<(String, Report, Summary)> {
    let mut out = Vec::new();
    for model in ConsistencyModel::ALL {
        for name in ["n6", "mp"] {
            let (r, s) = run_litmus(name, model);
            out.push((format!("{name}/{}", model.label()), r, s));
        }
        let (r, s) = run_workload("x264", model, 300);
        out.push((format!("x264/{}", model.label()), r, s));
    }
    out
}

#[test]
fn squash_counts_reconcile_with_core_counters() {
    for (tag, report, summary) in matrix() {
        for (i, core) in report.per_core.iter().enumerate() {
            let counted: u64 = core.squashes.iter().sum();
            assert_eq!(
                summary.per_core[i].squashes, counted,
                "{tag}: core {i} squash events vs counter"
            );
            let reexec: u64 = core.reexec_instrs.iter().sum();
            assert_eq!(
                summary.per_core[i].squashed_uops, reexec,
                "{tag}: core {i} squashed µops vs re-exec counter"
            );
        }
    }
}

#[test]
fn episode_durations_equal_gate_closed_cycles_exactly() {
    for (tag, report, summary) in matrix() {
        for (i, core) in report.per_core.iter().enumerate() {
            assert_eq!(
                summary.per_core[i].gate_cycles, core.gate_closed_cycles,
                "{tag}: core {i} summed episode durations vs gate_closed_cycles"
            );
        }
    }
}

#[test]
fn blame_matrix_rows_sum_to_per_core_squash_cycles() {
    for (tag, _report, summary) in matrix() {
        for (i, core) in summary.per_core.iter().enumerate() {
            assert_eq!(
                summary.blame.row_cycles(i),
                core.squash_cycles,
                "{tag}: blame row {i} vs per-core refill cycles"
            );
            assert_eq!(
                summary.blame.row_counts(i),
                core.squashes,
                "{tag}: blame row {i} counts vs per-core squashes"
            );
        }
        let all: u64 = (0..summary.per_core.len())
            .map(|i| summary.blame.row_cycles(i))
            .sum();
        assert_eq!(all, summary.squash_cycles(), "{tag}: matrix total");
    }
}

/// The CPI stack only charges `SquashRefill` slots while re-fetching
/// after a squash, so squash-free runs must show zero refill slots. The
/// converse is deliberately not asserted per cell: a squash whose
/// re-fetch overlaps other stall causes (or lands at the end of the
/// run) can legitimately charge zero empty slots.
#[test]
fn cpi_squash_refill_is_zero_without_squashes() {
    let mut coupled = false;
    for (tag, report, summary) in matrix() {
        let refill = report.cpi_total().get(CpiCategory::SquashRefill);
        if summary.squashes() == 0 {
            assert_eq!(refill, 0, "{tag}: CPI charged refill with no squash events");
        } else if refill > 0 {
            coupled = true;
        }
    }
    assert!(
        coupled,
        "no cell in the matrix coupled squashes to CPI refill slots"
    );
}

/// Satellite cross-check: reconstructing gate-closed cycles from the
/// interval sampler's `gate_closed_frac` agrees with the forensics
/// episode total. The sampler covers whole intervals only, so the
/// reconstruction may lag by at most one interval's worth of cycles per
/// core (the unsampled tail); it must never exceed the episode total.
#[test]
fn sampler_gate_fraction_reconstructs_episode_total() {
    // A dense sampling interval so even a small run yields many samples.
    let w = sa_workloads::by_name("x264").expect("pinned workload exists");
    let n = 8;
    let cfg = SimConfig::default()
        .with_model(ConsistencyModel::Ibm370SlfSosKey)
        .with_cores(n)
        .with_sample_interval(500);
    let traces = w.generate(n, 2_000, 42);
    let mut sim = Multicore::with_tracer(cfg, traces, Forensics::new(n));
    let report = sim.run(50_000_000).expect("x264 run completes");
    let summary = sim.into_tracer().finish(report.cycles);
    assert!(
        report.samples.len() >= 4,
        "interval too coarse to exercise the sampler ({} samples)",
        report.samples.len()
    );
    let n_cores = report.per_core.len() as f64;
    let interval = report.sample_interval as f64;
    let reconstructed: f64 = report
        .samples
        .iter()
        .map(|s| s.gate_closed_frac * interval * n_cores)
        .sum();
    let total = summary.gate_cycles() as f64;
    let tail = interval * n_cores;
    assert!(
        reconstructed <= total + 1e-6 * total.max(1.0),
        "sampler reconstruction {reconstructed} exceeds episode total {total}"
    );
    assert!(
        total - reconstructed <= tail + 1e-6 * total.max(1.0),
        "sampler reconstruction {reconstructed} lags episode total {total} \
         by more than one interval ({tail})"
    );
}

/// The paper's §III walkthrough, as a machine-checked blame report: n6
/// under 370-SLFSoS-key closes the forwarding core's gate under the
/// forwarding store's key and reopens it at the SB-commit key match.
#[test]
fn n6_episode_matches_section_iii() {
    let (_report, summary) = run_litmus("n6", ConsistencyModel::Ibm370SlfSosKey);
    assert!(
        summary.episodes() > 0,
        "n6 must close the gate at least once"
    );
    // Every completed episode ends at a key match or SB drain — never
    // truncated by the end of the run (the program completes and the SB
    // drains first).
    assert_eq!(summary.open_at_end, 0, "n6 gate must reopen before exit");
    for ep in &summary.recent {
        assert!(
            matches!(ep.end, EpisodeEnd::KeyMatch | EpisodeEnd::SbDrain),
            "n6 episode ended {:?}",
            ep.end
        );
        assert!(ep.duration() > 0, "episode must span at least one cycle");
    }
    // The forwarding core's episode carries the store's address, joined
    // from its SbEnter event.
    let forwarding = summary
        .recent
        .iter()
        .find(|e| e.end == EpisodeEnd::KeyMatch)
        .expect("n6 has a key-match episode");
    assert!(
        forwarding.store_addr.is_some(),
        "episode must carry the forwarding store's address"
    );
    // §III's blame chain: the squash inside the episode is caused by the
    // remote writer's ownership request, never by the victim itself.
    if forwarding.squashes > 0 {
        let by = forwarding.first_blame.expect("remote invalidation blamed");
        assert_ne!(by, forwarding.core, "a core cannot blame itself");
        assert!(
            forwarding.first_blame_line.is_some(),
            "blame must carry the invalidated line"
        );
        assert!(
            summary
                .blame
                .cycles(forwarding.core as usize, Some(by as usize))
                > 0,
            "blame matrix must charge the victim/blamer cell"
        );
    }
}

/// Any invalidation-caused squash must blame the remote core that
/// requested ownership, and the blamed line must be a real hotspot.
#[test]
fn invalidation_squashes_blame_the_remote_writer() {
    let (_report, summary) = run_workload("x264", ConsistencyModel::Ibm370SlfSosKey, 2_000);
    if summary.squashes() == 0 {
        // Contention is timing-dependent at small scale; nothing to
        // attribute. The workload sweep in `--bin forensics` covers the
        // full-scale behavior.
        return;
    }
    let n = summary.blame.n_cores();
    let remote: u64 = (0..n)
        .map(|v| {
            (0..n)
                .map(|b| summary.blame.cycles(v, Some(b)))
                .sum::<u64>()
        })
        .sum();
    let local: u64 = (0..n).map(|v| summary.blame.cycles(v, None)).sum();
    assert_eq!(remote + local, summary.squash_cycles());
    // x264's squashes come from condvar contention: remote invalidations,
    // not local evictions, must dominate the blame.
    assert!(
        remote >= local,
        "x264 blame should be invalidation-dominated (remote {remote} vs local {local})"
    );
    let top = &summary.hotspots[0];
    assert!(
        top.invalidations >= top.evictions,
        "x264 top hotspot should be invalidation-authored"
    );
}

/// 505.mcf's squashes are capacity evictions of a >100k-line working
/// set: local blame, not cross-core.
#[test]
fn mcf_squashes_blame_local_evictions() {
    let (_report, summary) = run_workload("505.mcf", ConsistencyModel::Ibm370SlfSosKey, 2_000);
    if summary.squashes() == 0 {
        return;
    }
    let local = summary.blame.column_cycles(None);
    assert_eq!(
        local,
        summary.squash_cycles(),
        "single-core mcf has no remote cores to blame"
    );
    let top = &summary.hotspots[0];
    assert!(top.evictions >= top.invalidations);
}

/// Golden blame report for n6 under the headline config. Regenerate
/// with `SA_BLESS_GOLDEN=1 cargo test -p sa-bench --test forensics`.
#[test]
fn n6_blame_report_matches_golden() {
    let (_report, summary) = run_litmus("n6", ConsistencyModel::Ibm370SlfSosKey);
    let got = summary.blame_report("n6 / 370-SLFSoS-key");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/forensics_n6_report.txt"
    );
    if std::env::var_os("SA_BLESS_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("bless golden");
        return;
    }
    let want =
        std::fs::read_to_string(path).expect("golden file exists (bless with SA_BLESS_GOLDEN=1)");
    assert_eq!(got, want, "n6 blame report drifted from golden");
}

/// The `sa_forensics_*` family reaches the Prometheus exposition when a
/// summary is attached to the report (the `/metrics` endpoint body).
#[test]
fn forensics_family_exports_to_prometheus() {
    let (report, summary) = run_litmus("n6", ConsistencyModel::Ibm370SlfSosKey);
    let text = report.with_forensics(summary).registry().prometheus_text();
    for metric in [
        "sa_forensics_episodes_total",
        "sa_forensics_gate_cycles_total",
        "sa_forensics_blame_cycles_total",
        "sa_forensics_hotspot_squash_cycles_total",
    ] {
        assert!(text.contains(metric), "{metric} missing from exposition");
    }
}

/// JSON snapshot is parseable and internally consistent with the typed
/// summary (exercises the jsonval reader end to end).
#[test]
fn forensics_json_round_trips() {
    let (_report, summary) = run_litmus("n6", ConsistencyModel::Ibm370SlfSosKey);
    let v = sa_metrics::JsonValue::parse(&summary.json()).expect("valid JSON");
    assert_eq!(
        v.get("schema").and_then(sa_metrics::JsonValue::as_str),
        Some("sa-forensics-v1")
    );
    let s = v.get("summary").expect("summary key");
    assert_eq!(
        s.get("episodes").and_then(sa_metrics::JsonValue::as_u64),
        Some(summary.episodes())
    );
}
