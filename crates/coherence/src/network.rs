//! Interconnect model (GARNET substitute).
//!
//! The paper's Table III uses a fully-connected topology: every pair of
//! nodes has a dedicated channel; a message occupies its source-side
//! channel for one cycle per flit (1 flit control / 5 flits data) and
//! then travels one switch-to-switch hop (6 cycles). Channel occupancy
//! serializes messages and guarantees per-channel FIFO delivery, which
//! the blocking directory relies on.
//!
//! A 2D-mesh topology with XY dimension-ordered hop counts is also
//! provided (the common GARNET configuration) for sensitivity studies —
//! only the hop count changes; per-channel FIFO is preserved because a
//! source-destination pair always takes the same path.

use sa_isa::{Cycle, FastMap};
use sa_metrics::Log2Hist;

use crate::msg::NodeId;
use crate::noc::{LinkRecord, NocStats};

/// Interconnect topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every node pair one switch-to-switch hop apart (Table III).
    FullyConnected,
    /// Nodes placed row-major on a `width`-column grid; hops = Manhattan
    /// distance (minimum 1), XY-routed.
    Mesh2D {
        /// Grid columns.
        width: usize,
    },
}

impl std::fmt::Display for Topology {
    /// The CLI / job-spec spelling: `fc` or `mesh:<width>`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Topology::FullyConnected => write!(f, "fc"),
            Topology::Mesh2D { width } => write!(f, "mesh:{width}"),
        }
    }
}

impl Topology {
    /// Linear index of a node: cores first, then banks.
    fn index(node: NodeId, n_cores: usize) -> usize {
        match node {
            NodeId::Core(c) => c.index(),
            NodeId::Bank(b) => n_cores + b as usize,
        }
    }

    /// Switch-to-switch hops between two nodes.
    pub fn hops(self, src: NodeId, dst: NodeId, n_cores: usize) -> u64 {
        match self {
            Topology::FullyConnected => 1,
            Topology::Mesh2D { width } => {
                let w = width.max(1);
                let a = Self::index(src, n_cores);
                let b = Self::index(dst, n_cores);
                let (ax, ay) = (a % w, a / w);
                let (bx, by) = (b % w, b / w);
                ((ax.abs_diff(bx) + ay.abs_diff(by)) as u64).max(1)
            }
        }
    }
}

/// Per-channel state: the FIFO serialization point plus the
/// scalescope link counters. Widening the existing map value keeps the
/// per-link matrix at zero extra hash lookups per send.
#[derive(Debug, Clone, Copy, Default)]
struct ChannelState {
    busy_until: Cycle,
    flits: u64,
    msgs: u64,
}

/// Computes message delivery times over the fabric.
#[derive(Debug)]
pub struct Network {
    hop_latency: u64,
    data_flits: u64,
    ctrl_flits: u64,
    topology: Topology,
    n_cores: usize,
    channels: FastMap<(NodeId, NodeId), ChannelState>,
    latency: Log2Hist,
    flits_sent: u64,
    msgs_sent: u64,
}

impl Network {
    /// Creates a fully-connected network (Table III) with the given hop
    /// latency and message sizes.
    pub fn new(hop_latency: u64, data_flits: u64, ctrl_flits: u64) -> Network {
        Network::with_topology(
            hop_latency,
            data_flits,
            ctrl_flits,
            Topology::FullyConnected,
            0,
        )
    }

    /// Creates a network with an explicit topology; `n_cores` anchors the
    /// node placement for mesh hop counts.
    pub fn with_topology(
        hop_latency: u64,
        data_flits: u64,
        ctrl_flits: u64,
        topology: Topology,
        n_cores: usize,
    ) -> Network {
        Network {
            hop_latency,
            data_flits,
            ctrl_flits,
            topology,
            n_cores,
            channels: FastMap::default(),
            latency: Log2Hist::new(),
            flits_sent: 0,
            msgs_sent: 0,
        }
    }

    /// Accounts for a message injected at `now` from `src` to `dst` and
    /// returns its delivery cycle.
    pub fn send(&mut self, src: NodeId, dst: NodeId, now: Cycle, data: bool) -> Cycle {
        let flits = if data {
            self.data_flits
        } else {
            self.ctrl_flits
        };
        let hops = self.topology.hops(src, dst, self.n_cores);
        let chan = self.channels.entry((src, dst)).or_default();
        let start = now.max(chan.busy_until);
        chan.busy_until = start + flits;
        chan.flits += flits;
        chan.msgs += 1;
        self.flits_sent += flits;
        self.msgs_sent += 1;
        let deliver = start + flits + hops * self.hop_latency;
        self.latency.observe(deliver - now);
        deliver
    }

    /// Total flits injected so far.
    pub fn flits_sent(&self) -> u64 {
        self.flits_sent
    }

    /// Total messages injected so far.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent
    }

    /// The heatmap-ready link matrix: one record per used (src, dst)
    /// channel, sorted by linear node index (cores then banks).
    pub fn links(&self) -> Vec<LinkRecord> {
        let mut out: Vec<LinkRecord> = self
            .channels
            .iter()
            .map(|((src, dst), c)| LinkRecord {
                src: NocStats::node_index(*src, self.n_cores),
                dst: NocStats::node_index(*dst, self.n_cores),
                flits: c.flits,
                msgs: c.msgs,
            })
            .collect();
        out.sort_by_key(|l| (l.src, l.dst));
        out
    }

    /// Injection-to-delivery latency distribution, per message.
    pub fn latency_hist(&self) -> &Log2Hist {
        &self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_isa::CoreId;

    fn core(i: u16) -> NodeId {
        NodeId::Core(CoreId(i))
    }

    #[test]
    fn control_and_data_latency() {
        let mut n = Network::new(6, 5, 1);
        // control: 1 flit + 6 hop
        assert_eq!(n.send(core(0), NodeId::Bank(0), 100, false), 107);
        // data on an idle channel: 5 flits + 6 hop
        assert_eq!(n.send(core(1), NodeId::Bank(0), 100, true), 111);
    }

    #[test]
    fn channel_serialization_is_fifo() {
        let mut n = Network::new(6, 5, 1);
        let a = n.send(core(0), core(1), 10, true); // starts 10, done 15, arrives 21
        let b = n.send(core(0), core(1), 10, false); // starts 15, done 16, arrives 22
        assert_eq!(a, 21);
        assert_eq!(b, 22);
        assert!(b > a, "per-channel FIFO preserved");
    }

    #[test]
    fn distinct_channels_do_not_interfere() {
        let mut n = Network::new(6, 5, 1);
        let a = n.send(core(0), core(1), 0, true);
        let b = n.send(core(1), core(0), 0, true);
        assert_eq!(a, b);
    }

    #[test]
    fn mesh_hops_are_manhattan() {
        // 4 cores + 4 banks on a 3-wide grid:
        //   c0 c1 c2
        //   c3 b0 b1
        //   b2 b3
        let t = Topology::Mesh2D { width: 3 };
        assert_eq!(t.hops(core(0), core(1), 4), 1);
        assert_eq!(t.hops(core(0), core(2), 4), 2);
        assert_eq!(t.hops(core(0), NodeId::Bank(3), 4), 3); // (0,0)->(1,2)
        assert_eq!(t.hops(core(1), core(1), 4), 1, "self traffic still one hop");
        assert_eq!(
            Topology::FullyConnected.hops(core(0), NodeId::Bank(7), 4),
            1
        );
    }

    #[test]
    fn mesh_network_delivers_later_than_fully_connected() {
        let mut fc = Network::new(6, 5, 1);
        let mut mesh = Network::with_topology(6, 5, 1, Topology::Mesh2D { width: 3 }, 4);
        let a = fc.send(core(0), NodeId::Bank(3), 0, true);
        let b = mesh.send(core(0), NodeId::Bank(3), 0, true);
        assert_eq!(a, 11);
        assert_eq!(b, 5 + 3 * 6);
    }

    #[test]
    fn traffic_counters() {
        let mut n = Network::new(6, 5, 1);
        n.send(core(0), core(1), 0, true);
        n.send(core(0), core(1), 0, false);
        assert_eq!(n.flits_sent(), 6);
        assert_eq!(n.msgs_sent(), 2);
    }

    #[test]
    fn link_matrix_tracks_per_channel_traffic() {
        let mut n = Network::with_topology(6, 5, 1, Topology::FullyConnected, 4);
        n.send(core(0), NodeId::Bank(0), 0, true); // data: 5 flits
        n.send(core(0), NodeId::Bank(0), 0, false); // ctrl: +1 flit, same channel
        n.send(core(2), NodeId::Bank(1), 0, false);
        let links = n.links();
        assert_eq!(links.len(), 2);
        // Channels sort by linear (src, dst): core 0 -> bank 0 is (0, 4).
        assert_eq!((links[0].src, links[0].dst), (0, 4));
        assert_eq!(links[0].flits, 6);
        assert_eq!(links[0].msgs, 2);
        assert_eq!((links[1].src, links[1].dst), (2, 5));
        // The matrix totals reconcile with the aggregate counters.
        assert_eq!(links.iter().map(|l| l.flits).sum::<u64>(), n.flits_sent());
        assert_eq!(links.iter().map(|l| l.msgs).sum::<u64>(), n.msgs_sent());
        // Every send observed one latency sample.
        assert_eq!(n.latency_hist().count(), 3);
        // First data send on an idle channel: 5 flits + 6 hop = 11.
        assert_eq!(n.latency_hist().sum(), 11 + 12 + 7);
    }
}
