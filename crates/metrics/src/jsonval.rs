//! Minimal JSON reader — the inverse of [`crate::json::JsonWriter`].
//!
//! The bench harness writes its baselines as JSON and, until now, read
//! them back with ad-hoc python in CI. This module closes the loop
//! offline: a small recursive-descent parser into a [`JsonValue`] tree,
//! sufficient for the machine-generated documents this repository
//! produces (`BENCH_*.json`, `results/forensics_*.json`). It accepts
//! standard JSON — objects, arrays, strings with escapes, numbers,
//! booleans, null — and rejects everything else with a byte-offset
//! error. Not a general-purpose library: no streaming, no
//! serde-style mapping, numbers normalized to `f64`.

use std::collections::BTreeMap;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// All numbers parse as `f64`; [`JsonValue::as_u64`] round-trips
    /// integers up to 2^53, far beyond any counter this repo emits.
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Sorted map: key order is not semantically meaningful in any
    /// document we produce, and `BTreeMap` keeps lookups and equality
    /// deterministic.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let b = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array element lookup; `None` for non-arrays or out of range.
    pub fn idx(&self, i: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Arr(v) => v.get(i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a number; `None` if negative, fractional, or not
    /// a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte '{}' at {pos}", *c as char)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs don't occur in our generated
                        // docs; map lone surrogates to the replacement
                        // character rather than erroring.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through verbatim.
                let ch_len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&b[*pos..*pos + ch_len.min(b.len() - *pos)])
                    .map_err(|_| format!("invalid utf-8 at byte {pos}"))?;
                out.push_str(s);
                *pos += ch_len;
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut v = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(v));
    }
    loop {
        v.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(v));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut m = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(m));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        m.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(m));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(
            JsonValue::parse("\"a\\n\\\"b\\u0041\"").unwrap().as_str(),
            Some("a\n\"bA")
        );
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"schema":"sa-bench-perf-v1","workloads":[{"name":"n6","configs":[{"cycles":123,"ipc":0.5}]}]}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some("sa-bench-perf-v1")
        );
        let cell = v
            .get("workloads")
            .and_then(|w| w.idx(0))
            .and_then(|w| w.get("configs"))
            .and_then(|c| c.idx(0))
            .unwrap();
        assert_eq!(cell.get("cycles").and_then(JsonValue::as_u64), Some(123));
        assert_eq!(cell.get("ipc").and_then(JsonValue::as_f64), Some(0.5));
    }

    #[test]
    fn round_trips_json_writer_output() {
        let mut j = crate::JsonWriter::new();
        j.begin_object()
            .field_str("s", "x\"y")
            .field_uint("u", 7)
            .field_float("f", 1.25)
            .key("a")
            .begin_array();
        j.uint(1).uint(2).end_array().end_object();
        let v = JsonValue::parse(&j.finish()).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x\"y"));
        assert_eq!(v.get("u").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(1.25));
        assert_eq!(
            v.get("a").and_then(JsonValue::as_arr).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\":1} x").is_err());
        assert!(JsonValue::parse("\"open").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = JsonValue::parse("[1,2]").unwrap();
        assert!(v.get("k").is_none());
        assert!(v.as_str().is_none());
        assert!(v.idx(5).is_none());
        assert_eq!(JsonValue::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("-3").unwrap().as_u64(), None);
    }
}
