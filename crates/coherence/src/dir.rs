//! L3 bank + MESI directory slice.
//!
//! The directory is *blocking*: at most one transaction is in flight per
//! line; requests that arrive for a busy line are deferred in arrival
//! order. Together with per-channel FIFO delivery this keeps the protocol
//! race surface small without sacrificing the property the paper needs —
//! **write atomicity**: `GrantM` is sent only after every sharer
//! acknowledged its invalidation (or the previous owner returned its copy).

use std::collections::VecDeque;

use sa_isa::FastMap;

use sa_isa::{CoreId, Cycle, Line};

use crate::cache::CacheArray;
use crate::memsys::Action;
use crate::msg::{Msg, NodeId};
use crate::noc::BankScope;

/// A set of sharer cores. Machines up to 64 cores (the common case, and
/// everything the paper measures) stay on an inline bit mask; wider
/// machines spill to a boxed multi-word mask allocated only for lines
/// that actually gain a sharer beyond core 63.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharerSet {
    /// Cores 0..64 as an inline bit mask.
    Small(u64),
    /// Multi-word bit mask for machines wider than 64 cores.
    Big(Box<[u64]>),
}

impl SharerSet {
    /// The empty set.
    pub fn empty() -> SharerSet {
        SharerSet::Small(0)
    }

    /// The set containing exactly `core`.
    pub fn singleton(core: CoreId) -> SharerSet {
        let mut s = SharerSet::empty();
        s.insert(core);
        s
    }

    /// Adds `core` to the set.
    pub fn insert(&mut self, core: CoreId) {
        let i = core.index();
        match self {
            SharerSet::Small(mask) if i < 64 => *mask |= 1 << i,
            SharerSet::Small(mask) => {
                let mut words = vec![0u64; i / 64 + 1].into_boxed_slice();
                words[0] = *mask;
                words[i / 64] |= 1 << (i % 64);
                *self = SharerSet::Big(words);
            }
            SharerSet::Big(words) => {
                if i / 64 >= words.len() {
                    let mut grown = vec![0u64; i / 64 + 1];
                    grown[..words.len()].copy_from_slice(words);
                    *words = grown.into_boxed_slice();
                }
                words[i / 64] |= 1 << (i % 64);
            }
        }
    }

    /// Removes `core` from the set.
    pub fn remove(&mut self, core: CoreId) {
        let i = core.index();
        match self {
            SharerSet::Small(mask) => {
                if i < 64 {
                    *mask &= !(1 << i);
                }
            }
            SharerSet::Big(words) => {
                if let Some(w) = words.get_mut(i / 64) {
                    *w &= !(1 << (i % 64));
                }
            }
        }
    }

    /// `true` when `core` is in the set.
    pub fn contains(&self, core: CoreId) -> bool {
        let i = core.index();
        match self {
            SharerSet::Small(mask) => i < 64 && mask & (1 << i) != 0,
            SharerSet::Big(words) => words.get(i / 64).is_some_and(|w| w & (1 << (i % 64)) != 0),
        }
    }

    /// `true` when no core is in the set.
    pub fn is_empty(&self) -> bool {
        match self {
            SharerSet::Small(mask) => *mask == 0,
            SharerSet::Big(words) => words.iter().all(|w| *w == 0),
        }
    }

    /// Number of cores in the set.
    pub fn count(&self) -> u32 {
        match self {
            SharerSet::Small(mask) => mask.count_ones(),
            SharerSet::Big(words) => words.iter().map(|w| w.count_ones()).sum(),
        }
    }

    /// The member cores in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        let words: &[u64] = match self {
            SharerSet::Small(mask) => std::slice::from_ref(mask),
            SharerSet::Big(words) => words,
        };
        words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(CoreId::from_index(wi * 64 + bit))
            })
        })
    }

    /// The low 64 cores as a bit mask (test observability).
    pub fn mask64(&self) -> u64 {
        match self {
            SharerSet::Small(mask) => *mask,
            SharerSet::Big(words) => words.first().copied().unwrap_or(0),
        }
    }
}

/// Stable (non-transient) directory state for a line. Absent = Uncached.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DirState {
    /// Read-only copies at the cores in the set.
    Shared(SharerSet),
    /// Exclusive/modified copy at one core.
    Owned(CoreId),
}

/// An in-flight transaction occupying a line.
#[derive(Debug)]
enum Txn {
    /// `GetS` waiting for the owner's `AckData`.
    FetchForS { req: CoreId },
    /// `GetM` waiting for the owner's `AckData`.
    FetchForM { req: CoreId },
    /// `GetM` waiting for `pending` sharer invalidation acks.
    CollectAcks {
        req: CoreId,
        pending: u32,
        need_data: bool,
    },
}

/// Counters exported by each bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// `GetS` requests processed.
    pub gets: u64,
    /// `GetM` requests processed.
    pub getm: u64,
    /// Invalidations sent to sharers.
    pub invs_sent: u64,
    /// Requests that found the line busy and were deferred.
    pub deferred: u64,
    /// Accesses that missed the L3 data array (paid memory latency).
    pub l3_misses: u64,
    /// Writebacks accepted.
    pub writebacks: u64,
}

/// One shared-L3 bank with its directory slice.
#[derive(Debug)]
pub struct DirBank {
    node: NodeId,
    l3: CacheArray<()>,
    state: FastMap<Line, DirState>,
    busy: FastMap<Line, Txn>,
    deferred: FastMap<Line, VecDeque<Msg>>,
    l3_latency: u64,
    mem_latency: u64,
    /// Public counters.
    pub stats: BankStats,
    /// Scalescope-side occupancy/reject/storm instrument. Kept out of
    /// [`BankStats`] so the `MemStats` snapshot inside `Report` — and
    /// the engine-equivalence assertions over it — are unchanged.
    pub scope: BankScope,
}

impl DirBank {
    /// Creates bank `id` with an L3 data array of `l3_bytes`/`l3_assoc`.
    pub fn new(
        id: u16,
        l3_bytes: usize,
        l3_assoc: usize,
        l3_latency: u64,
        mem_latency: u64,
    ) -> DirBank {
        DirBank {
            node: NodeId::Bank(id),
            l3: CacheArray::new(l3_bytes, l3_assoc),
            state: FastMap::default(),
            busy: FastMap::default(),
            deferred: FastMap::default(),
            l3_latency,
            mem_latency,
            stats: BankStats::default(),
            scope: BankScope::new(id),
        }
    }

    /// Latency of producing data for `line` from this bank (L3 hit or
    /// L3 + memory), filling the L3 array as a side effect.
    fn data_latency(&mut self, line: Line) -> u64 {
        if self.l3.contains(line) {
            self.l3.touch(line);
            self.l3_latency
        } else {
            self.stats.l3_misses += 1;
            // Fill; victims are silent (the directory keeps full state).
            let _ = self.l3.insert(line, ());
            self.l3_latency + self.mem_latency
        }
    }

    fn send(&self, to: NodeId, msg: Msg, at: Cycle, out: &mut Vec<Action>) {
        out.push(Action::Send {
            from: self.node,
            to,
            msg,
            at,
        });
    }

    /// Handles an incoming message, returning protocol actions.
    pub fn handle(&mut self, msg: Msg, now: Cycle) -> Vec<Action> {
        let mut out = Vec::new();
        match msg {
            Msg::GetS { line, .. } | Msg::GetM { line, .. } | Msg::PutM { line, .. } => {
                if self.busy.contains_key(&line) {
                    self.stats.deferred += 1;
                    self.scope.reject();
                    self.deferred.entry(line).or_default().push_back(msg);
                } else {
                    self.process_request(msg, now, &mut out);
                }
            }
            Msg::InvAck { line, .. } => self.on_inv_ack(line, now, &mut out),
            Msg::AckData {
                line,
                dirty,
                retained,
                ..
            } => self.on_ack_data(line, dirty, retained, now, &mut out),
            other => unreachable!("directory received {other:?}"),
        }
        out
    }

    fn process_request(&mut self, msg: Msg, now: Cycle, out: &mut Vec<Action>) {
        match msg {
            Msg::GetS { line, req } => self.process_gets(line, req, now, out),
            Msg::GetM { line, req } => self.process_getm(line, req, now, out),
            Msg::PutM { line, from } => self.process_putm(line, from, now, out),
            other => unreachable!("not a directory request: {other:?}"),
        }
    }

    fn process_gets(&mut self, line: Line, req: CoreId, now: Cycle, out: &mut Vec<Action>) {
        self.stats.gets += 1;
        match self.state.get(&line) {
            None => {
                let lat = self.data_latency(line);
                self.state.insert(line, DirState::Owned(req));
                self.send(NodeId::Core(req), Msg::DataE { line }, now + lat, out);
            }
            Some(DirState::Shared(sharers)) => {
                let mut sharers = sharers.clone();
                let lat = self.data_latency(line);
                sharers.insert(req);
                self.state.insert(line, DirState::Shared(sharers));
                self.send(NodeId::Core(req), Msg::DataS { line }, now + lat, out);
            }
            Some(DirState::Owned(owner)) => {
                let owner = *owner;
                debug_assert_ne!(owner, req, "owner re-requesting S");
                self.scope.txn_open(line, now);
                self.busy.insert(line, Txn::FetchForS { req });
                self.send(NodeId::Core(owner), Msg::FetchS { line }, now, out);
            }
        }
    }

    fn process_getm(&mut self, line: Line, req: CoreId, now: Cycle, out: &mut Vec<Action>) {
        self.stats.getm += 1;
        match self.state.get(&line) {
            None => {
                let lat = self.data_latency(line);
                self.state.insert(line, DirState::Owned(req));
                self.send(NodeId::Core(req), Msg::GrantM { line }, now + lat, out);
            }
            Some(DirState::Shared(sharers)) => {
                let mut others = sharers.clone();
                let need_data = !others.contains(req);
                others.remove(req);
                if others.is_empty() {
                    // Upgrade with no other sharers (or sole cold GetM).
                    let lat = if need_data {
                        self.data_latency(line)
                    } else {
                        0
                    };
                    self.state.insert(line, DirState::Owned(req));
                    self.send(NodeId::Core(req), Msg::GrantM { line }, now + lat, out);
                } else {
                    let pending = others.count();
                    self.scope.invalidation(line, pending as u64, now);
                    for c in others.iter() {
                        self.stats.invs_sent += 1;
                        self.send(NodeId::Core(c), Msg::Inv { line, by: req }, now, out);
                    }
                    self.scope.txn_open(line, now);
                    self.busy.insert(
                        line,
                        Txn::CollectAcks {
                            req,
                            pending,
                            need_data,
                        },
                    );
                }
            }
            Some(DirState::Owned(owner)) => {
                let owner = *owner;
                debug_assert_ne!(owner, req, "owner re-requesting M");
                self.scope.txn_open(line, now);
                self.busy.insert(line, Txn::FetchForM { req });
                self.send(
                    NodeId::Core(owner),
                    Msg::FetchInv { line, by: req },
                    now,
                    out,
                );
            }
        }
    }

    fn process_putm(&mut self, line: Line, from: CoreId, now: Cycle, out: &mut Vec<Action>) {
        let stale = self.state.get(&line) != Some(&DirState::Owned(from));
        if !stale {
            self.stats.writebacks += 1;
            self.state.remove(&line);
            let _ = self.l3.insert(line, ());
        }
        self.send(NodeId::Core(from), Msg::PutMAck { line, stale }, now, out);
    }

    fn on_inv_ack(&mut self, line: Line, now: Cycle, out: &mut Vec<Action>) {
        let finish = match self.busy.get_mut(&line) {
            Some(Txn::CollectAcks { pending, .. }) => {
                *pending -= 1;
                *pending == 0
            }
            other => unreachable!("InvAck for line in txn {other:?}"),
        };
        if finish {
            let Some(Txn::CollectAcks { req, need_data, .. }) = self.busy.remove(&line) else {
                unreachable!("checked above");
            };
            self.scope.txn_close(line, now);
            let lat = if need_data {
                self.data_latency(line)
            } else {
                0
            };
            self.state.insert(line, DirState::Owned(req));
            self.send(NodeId::Core(req), Msg::GrantM { line }, now + lat, out);
            self.drain_deferred(line, now, out);
        }
    }

    fn on_ack_data(
        &mut self,
        line: Line,
        dirty: bool,
        retained: bool,
        now: Cycle,
        out: &mut Vec<Action>,
    ) {
        if dirty {
            let _ = self.l3.insert(line, ());
        }
        match self.busy.remove(&line) {
            Some(Txn::FetchForS { req }) => {
                self.scope.txn_close(line, now);
                let old_owner = match self.state.get(&line) {
                    Some(DirState::Owned(o)) => *o,
                    other => unreachable!("FetchForS on {other:?}"),
                };
                let mut sharers = SharerSet::singleton(req);
                if retained {
                    sharers.insert(old_owner);
                }
                self.state.insert(line, DirState::Shared(sharers));
                self.send(NodeId::Core(req), Msg::DataS { line }, now, out);
            }
            Some(Txn::FetchForM { req }) => {
                self.scope.txn_close(line, now);
                self.state.insert(line, DirState::Owned(req));
                self.send(NodeId::Core(req), Msg::GrantM { line }, now, out);
            }
            other => unreachable!("AckData for line in txn {other:?}"),
        }
        self.drain_deferred(line, now, out);
    }

    /// After a transaction completes, process deferred requests until one
    /// of them makes the line busy again (or none remain).
    fn drain_deferred(&mut self, line: Line, now: Cycle, out: &mut Vec<Action>) {
        while !self.busy.contains_key(&line) {
            let Some(next) = self.deferred.get_mut(&line).and_then(VecDeque::pop_front) else {
                self.deferred.remove(&line);
                return;
            };
            self.process_request(next, now, out);
        }
    }

    /// Directory's view of the owner of `line`, for tests.
    pub fn owner_of(&self, line: Line) -> Option<CoreId> {
        match self.state.get(&line) {
            Some(DirState::Owned(o)) => Some(*o),
            _ => None,
        }
    }

    /// Directory's sharer mask for `line` (low 64 cores), for tests.
    pub fn sharers_of(&self, line: Line) -> u64 {
        match self.state.get(&line) {
            Some(DirState::Shared(s)) => s.mask64(),
            Some(DirState::Owned(o)) if o.index() < 64 => 1u64 << o.index(),
            _ => 0,
        }
    }

    /// `true` while a transaction is in flight for `line`.
    pub fn is_busy(&self, line: Line) -> bool {
        self.busy.contains_key(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> DirBank {
        DirBank::new(0, 64 * 64, 8, 35, 160)
    }

    fn ln(i: u64) -> Line {
        Line::from_raw(i)
    }

    fn sends(actions: &[Action]) -> Vec<(NodeId, Msg, Cycle)> {
        actions
            .iter()
            .map(|a| match a {
                Action::Send { to, msg, at, .. } => (*to, *msg, *at),
                other => panic!("unexpected action {other:?}"),
            })
            .collect()
    }

    #[test]
    fn cold_gets_returns_exclusive_with_memory_latency() {
        let mut b = bank();
        let a = b.handle(
            Msg::GetS {
                line: ln(1),
                req: CoreId(0),
            },
            100,
        );
        let s = sends(&a);
        assert_eq!(
            s,
            vec![(
                NodeId::Core(CoreId(0)),
                Msg::DataE { line: ln(1) },
                100 + 35 + 160
            )]
        );
        assert_eq!(b.owner_of(ln(1)), Some(CoreId(0)));
        assert_eq!(b.stats.l3_misses, 1);
    }

    #[test]
    fn second_gets_downgrades_owner() {
        let mut b = bank();
        b.handle(
            Msg::GetS {
                line: ln(1),
                req: CoreId(0),
            },
            0,
        );
        let a = b.handle(
            Msg::GetS {
                line: ln(1),
                req: CoreId(1),
            },
            50,
        );
        let s = sends(&a);
        assert_eq!(
            s,
            vec![(NodeId::Core(CoreId(0)), Msg::FetchS { line: ln(1) }, 50)]
        );
        assert!(b.is_busy(ln(1)));
        let a = b.handle(
            Msg::AckData {
                line: ln(1),
                from: CoreId(0),
                dirty: false,
                retained: true,
            },
            80,
        );
        let s = sends(&a);
        assert_eq!(
            s,
            vec![(NodeId::Core(CoreId(1)), Msg::DataS { line: ln(1) }, 80)]
        );
        assert_eq!(b.sharers_of(ln(1)), 0b11);
        assert!(!b.is_busy(ln(1)));
    }

    #[test]
    fn getm_collects_all_acks_before_grant() {
        let mut b = bank();
        // Make cores 0 and 1 sharers.
        b.handle(
            Msg::GetS {
                line: ln(1),
                req: CoreId(0),
            },
            0,
        );
        b.handle(
            Msg::GetS {
                line: ln(1),
                req: CoreId(1),
            },
            0,
        );
        b.handle(
            Msg::AckData {
                line: ln(1),
                from: CoreId(0),
                dirty: false,
                retained: true,
            },
            10,
        );
        // Core 2 wants M: invalidations to 0 and 1 first.
        let a = b.handle(
            Msg::GetM {
                line: ln(1),
                req: CoreId(2),
            },
            20,
        );
        let s = sends(&a);
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|(_, m, _)| matches!(m, Msg::Inv { .. })));
        // First ack: no grant yet (write atomicity).
        let a = b.handle(
            Msg::InvAck {
                line: ln(1),
                from: CoreId(0),
            },
            30,
        );
        assert!(a.is_empty());
        // Second ack: grant.
        let a = b.handle(
            Msg::InvAck {
                line: ln(1),
                from: CoreId(1),
            },
            40,
        );
        let s = sends(&a);
        assert_eq!(s.len(), 1);
        let (to, msg, at) = s[0];
        assert_eq!(to, NodeId::Core(CoreId(2)));
        assert!(matches!(msg, Msg::GrantM { .. }));
        assert_eq!(at, 40 + 35, "data from L3 after acks");
        assert_eq!(b.owner_of(ln(1)), Some(CoreId(2)));
    }

    #[test]
    fn upgrade_by_sole_sharer_is_immediate() {
        let mut b = bank();
        b.handle(
            Msg::GetS {
                line: ln(1),
                req: CoreId(0),
            },
            0,
        );
        b.handle(
            Msg::GetS {
                line: ln(1),
                req: CoreId(1),
            },
            0,
        );
        b.handle(
            Msg::AckData {
                line: ln(1),
                from: CoreId(0),
                dirty: false,
                retained: false,
            },
            10,
        );
        // Only core 1 shares now; it upgrades without data or invs.
        let a = b.handle(
            Msg::GetM {
                line: ln(1),
                req: CoreId(1),
            },
            20,
        );
        let s = sends(&a);
        assert_eq!(
            s,
            vec![(NodeId::Core(CoreId(1)), Msg::GrantM { line: ln(1) }, 20)]
        );
    }

    #[test]
    fn requests_defer_while_busy() {
        let mut b = bank();
        b.handle(
            Msg::GetS {
                line: ln(1),
                req: CoreId(0),
            },
            0,
        );
        b.handle(
            Msg::GetS {
                line: ln(1),
                req: CoreId(1),
            },
            10,
        ); // busy: FetchForS
        let a = b.handle(
            Msg::GetM {
                line: ln(1),
                req: CoreId(2),
            },
            12,
        );
        assert!(a.is_empty(), "deferred while busy");
        assert_eq!(b.stats.deferred, 1);
        // Owner responds; deferred GetM should start immediately.
        let a = b.handle(
            Msg::AckData {
                line: ln(1),
                from: CoreId(0),
                dirty: true,
                retained: true,
            },
            30,
        );
        let s = sends(&a);
        // DataS to core1, then invalidations to cores 0 and 1 for the GetM.
        assert!(matches!(s[0].1, Msg::DataS { .. }));
        assert_eq!(
            s.iter()
                .filter(|(_, m, _)| matches!(m, Msg::Inv { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn putm_from_owner_accepted_from_other_stale() {
        let mut b = bank();
        b.handle(
            Msg::GetS {
                line: ln(1),
                req: CoreId(0),
            },
            0,
        );
        let a = b.handle(
            Msg::PutM {
                line: ln(1),
                from: CoreId(0),
            },
            10,
        );
        let s = sends(&a);
        assert_eq!(
            s,
            vec![(
                NodeId::Core(CoreId(0)),
                Msg::PutMAck {
                    line: ln(1),
                    stale: false
                },
                10
            )]
        );
        assert_eq!(b.owner_of(ln(1)), None);
        assert_eq!(b.stats.writebacks, 1);
        let a = b.handle(
            Msg::PutM {
                line: ln(1),
                from: CoreId(3),
            },
            20,
        );
        let s = sends(&a);
        assert_eq!(
            s,
            vec![(
                NodeId::Core(CoreId(3)),
                Msg::PutMAck {
                    line: ln(1),
                    stale: true
                },
                20
            )]
        );
    }

    #[test]
    fn fetch_for_m_grants_after_owner_ack() {
        let mut b = bank();
        b.handle(
            Msg::GetS {
                line: ln(1),
                req: CoreId(0),
            },
            0,
        );
        let a = b.handle(
            Msg::GetM {
                line: ln(1),
                req: CoreId(1),
            },
            10,
        );
        assert!(matches!(sends(&a)[0].1, Msg::FetchInv { .. }));
        let a = b.handle(
            Msg::AckData {
                line: ln(1),
                from: CoreId(0),
                dirty: true,
                retained: false,
            },
            40,
        );
        let s = sends(&a);
        assert!(matches!(s[0].1, Msg::GrantM { .. }));
        assert_eq!(b.owner_of(ln(1)), Some(CoreId(1)));
    }

    #[test]
    fn l3_hit_after_writeback_avoids_memory() {
        let mut b = bank();
        b.handle(
            Msg::GetS {
                line: ln(1),
                req: CoreId(0),
            },
            0,
        );
        b.handle(
            Msg::PutM {
                line: ln(1),
                from: CoreId(0),
            },
            10,
        );
        let a = b.handle(
            Msg::GetS {
                line: ln(1),
                req: CoreId(1),
            },
            20,
        );
        let s = sends(&a);
        assert_eq!(s[0].2, 20 + 35, "L3 hit, no memory latency");
    }
}
