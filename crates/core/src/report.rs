//! Run reports: the numbers behind Table IV, Figure 9 and Figure 10.

use sa_coherence::MemStats;
use sa_isa::ConsistencyModel;
use sa_ooo::CoreStats;

/// Figure 9's stacked bars: the share of execution cycles in which the
/// processor could not dispatch because a window resource was full.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StallBreakdown {
    /// % of cycles stalled on a full ROB.
    pub rob_pct: f64,
    /// % of cycles stalled on a full LQ.
    pub lq_pct: f64,
    /// % of cycles stalled on a full SQ/SB.
    pub sq_pct: f64,
}

impl StallBreakdown {
    /// Total stalled share.
    pub fn total_pct(&self) -> f64 {
        self.rob_pct + self.lq_pct + self.sq_pct
    }
}

/// Statistics snapshot of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Consistency model that ran.
    pub model: ConsistencyModel,
    /// Wall-clock of the run in cycles (time until the last core
    /// finished — Figure 10's metric).
    pub cycles: u64,
    /// Per-core counters.
    pub per_core: Vec<CoreStats>,
    /// Memory-system counters.
    pub mem: MemStats,
}

impl Report {
    /// All cores' counters merged (sums; `cycles` is the max).
    pub fn total(&self) -> CoreStats {
        let mut t = CoreStats::default();
        for c in &self.per_core {
            t.merge(c);
        }
        t
    }

    /// Figure 9's breakdown, aggregated over cores (stall cycles over
    /// total per-core execution cycles).
    pub fn stalls(&self) -> StallBreakdown {
        let cycles: u64 = self.per_core.iter().map(|c| c.cycles).sum();
        if cycles == 0 {
            return StallBreakdown::default();
        }
        let rob: u64 = self.per_core.iter().map(|c| c.rob_stall_cycles).sum();
        let lq: u64 = self.per_core.iter().map(|c| c.lq_stall_cycles).sum();
        let sq: u64 = self.per_core.iter().map(|c| c.sq_stall_cycles).sum();
        let f = 100.0 / cycles as f64;
        StallBreakdown {
            rob_pct: rob as f64 * f,
            lq_pct: lq as f64 * f,
            sq_pct: sq as f64 * f,
        }
    }

    /// Execution time normalized to `baseline` (Figure 10's metric).
    pub fn normalized_time(&self, baseline: &Report) -> f64 {
        if baseline.cycles == 0 {
            return 0.0;
        }
        self.cycles as f64 / baseline.cycles as f64
    }

    /// Instructions per cycle across the machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.total().retired_instrs as f64 / self.cycles as f64
    }

    /// A dynamic-energy proxy (arbitrary units): weighted counts of the
    /// events that dominate dynamic energy in the structures the paper's
    /// mechanism touches — cache accesses, network flits, DRAM accesses,
    /// and squash-replayed instructions.
    ///
    /// §VI-B argues the proposal does not significantly alter dynamic
    /// energy because it adds no extra snoops; this proxy makes that
    /// claim checkable: for the same workload, per-model values should
    /// differ by little beyond the squash-replay term.
    pub fn energy_proxy(&self) -> f64 {
        let t = self.total();
        let mem = &self.mem;
        let l1 = mem.demand_loads() as f64 + t.sb_commits as f64;
        let l2: f64 = mem
            .per_core
            .iter()
            .map(|c| (c.l2_hits + c.misses) as f64)
            .sum();
        let l3: f64 = mem.per_bank.iter().map(|b| (b.gets + b.getm) as f64).sum();
        let dram: f64 = mem.per_bank.iter().map(|b| b.l3_misses as f64).sum();
        let flits = mem.flits_sent as f64;
        let replays: f64 = t.reexec_instrs.iter().sum::<u64>() as f64;
        // Rough per-event weights (relative dynamic energy).
        l1 * 1.0 + l2 * 4.0 + l3 * 12.0 + dram * 80.0 + flits * 2.0 + replays * 1.5
    }
}

/// Geometric mean of a slice of ratios (the paper reports geomeans in
/// Figure 10). Returns 0 for an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, per_core: Vec<CoreStats>) -> Report {
        Report {
            model: ConsistencyModel::X86,
            cycles,
            per_core,
            mem: MemStats::default(),
        }
    }

    #[test]
    fn stall_breakdown_percentages() {
        let c = CoreStats {
            cycles: 1000,
            rob_stall_cycles: 100,
            lq_stall_cycles: 50,
            sq_stall_cycles: 25,
            ..CoreStats::default()
        };
        let r = report(1000, vec![c, c]);
        let s = r.stalls();
        assert!((s.rob_pct - 10.0).abs() < 1e-9);
        assert!((s.lq_pct - 5.0).abs() < 1e-9);
        assert!((s.sq_pct - 2.5).abs() < 1e-9);
        assert!((s.total_pct() - 17.5).abs() < 1e-9);
    }

    #[test]
    fn normalized_time_ratio() {
        let a = report(1025, vec![]);
        let b = report(1000, vec![]);
        assert!((a.normalized_time(&b) - 1.025).abs() < 1e-12);
    }

    #[test]
    fn ipc_computation() {
        let c = CoreStats {
            cycles: 100,
            retired_instrs: 250,
            ..CoreStats::default()
        };
        let r = report(100, vec![c]);
        assert!((r.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_proxy_counts_events() {
        let mut r = report(
            100,
            vec![CoreStats {
                sb_commits: 10,
                ..CoreStats::default()
            }],
        );
        assert!((r.energy_proxy() - 10.0).abs() < 1e-9, "10 L1 writes");
        r.mem.flits_sent = 5;
        assert!(
            (r.energy_proxy() - 20.0).abs() < 1e-9,
            "plus 5 flits at weight 2"
        );
    }

    #[test]
    fn empty_report_is_zeroes() {
        let r = report(0, vec![]);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.stalls(), StallBreakdown::default());
    }
}
