//! Architectural register names.

/// Number of architectural registers visible to traces.
pub const NUM_REGS: usize = 64;

/// An architectural register identifier (`r0` .. `r63`).
///
/// ```
/// use sa_isa::Reg;
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_REGS`.
    #[inline]
    pub fn new(idx: u8) -> Reg {
        assert!(
            (idx as usize) < NUM_REGS,
            "register index {idx} out of range"
        );
        Reg(idx)
    }

    /// Index form, for direct use with array storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        assert_eq!(Reg::new(0).index(), 0);
        assert_eq!(Reg::new(63).index(), 63);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(64);
    }
}
