//! Table I — the atomicity taxonomy of store operations — plus the
//! program-shape taxonomy the sa-serve coverage matrix buckets by.

use crate::ast::{LOp, LitmusTest};

/// A consistency model's store-atomicity class, in the three vocabularies
/// Table I aligns (Adve & Gharachorloo, Trippel et al., Ros & Kaxiras).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomicityClass {
    /// Model name ("370", "x86", "PC").
    pub model: &'static str,
    /// Adve & Gharachorloo's relaxation name.
    pub adve_gharachorloo: &'static str,
    /// Trippel et al.'s MCA classification.
    pub trippel: &'static str,
    /// This paper's terminology.
    pub ros_kaxiras: &'static str,
    /// Whether a core may see its *own* stores early.
    pub read_own_write_early: bool,
    /// Whether a core may see *another* core's store early.
    pub read_others_write_early: bool,
}

/// The rows of Table I.
pub const TABLE_I: [AtomicityClass; 3] = [
    AtomicityClass {
        model: "370",
        adve_gharachorloo: "-",
        trippel: "MCA",
        ros_kaxiras: "Store atomicity",
        read_own_write_early: false,
        read_others_write_early: false,
    },
    AtomicityClass {
        model: "x86",
        adve_gharachorloo: "Read own write early",
        trippel: "rMCA",
        ros_kaxiras: "Write atomicity",
        read_own_write_early: true,
        read_others_write_early: false,
    },
    AtomicityClass {
        model: "PC",
        adve_gharachorloo: "Read others' write early",
        trippel: "non-MCA",
        ros_kaxiras: "Non write-atomic",
        read_own_write_early: true,
        read_others_write_early: true,
    },
];

/// Renders Table I.
pub fn render_table1() -> String {
    let mut s = String::from(
        "Table I: Atomicity of store operations\n\
         Model  Adve & Gharachorloo       Trippel et al.  Ros & Kaxiras\n",
    );
    for row in TABLE_I {
        s.push_str(&format!(
            "{:<6} {:<25} {:<15} {}\n",
            row.model, row.adve_gharachorloo, row.trippel, row.ros_kaxiras
        ));
    }
    s
}

/// Buckets a program by the structural features that decide which
/// memory-model behaviors it can exercise: thread count, whether any
/// thread can store-to-load forward (a store to `v` with a later load of
/// `v` in the same thread — the paper's whole subject), and fence/RMW
/// presence. E.g. `"t2+fwd+fence"`. The sa-serve coverage matrix uses
/// this as its program-shape axis: a corpus that never produces a `fwd`
/// shape cannot test store atomicity at all, and the matrix makes that
/// visible.
pub fn shape_label(test: &LitmusTest) -> String {
    let d = test.desugared();
    let mut fwd = false;
    for ops in &d.threads {
        let mut stored: Vec<crate::ast::Var> = Vec::new();
        for op in ops {
            match op {
                LOp::St(v, _) if !stored.contains(v) => stored.push(*v),
                LOp::St(..) => {}
                LOp::Ld(v) => fwd |= stored.contains(v),
                _ => {}
            }
        }
    }
    // Fences and RMWs are classified on the *written* form: desugaring
    // turns every RMW into fences, which would erase the distinction.
    let has_fence = test
        .threads
        .iter()
        .flatten()
        .any(|op| matches!(op, LOp::Fence));
    let has_rmw = test
        .threads
        .iter()
        .flatten()
        .any(|op| matches!(op, LOp::Rmw(..)));
    let mut label = format!("t{}", test.threads.len());
    if fwd {
        label.push_str("+fwd");
    }
    if has_fence {
        label.push_str("+fence");
    }
    if has_rmw {
        label.push_str("+rmw");
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_monotone_in_relaxation() {
        // 370 relaxes nothing; x86 relaxes own-write-early; PC relaxes
        // both.
        assert!(!TABLE_I[0].read_own_write_early);
        assert!(TABLE_I[1].read_own_write_early && !TABLE_I[1].read_others_write_early);
        assert!(TABLE_I[2].read_own_write_early && TABLE_I[2].read_others_write_early);
    }

    #[test]
    fn render_contains_all_rows() {
        let s = render_table1();
        for m in [
            "370",
            "x86",
            "PC",
            "MCA",
            "rMCA",
            "non-MCA",
            "Store atomicity",
        ] {
            assert!(s.contains(m), "missing {m}");
        }
    }

    #[test]
    fn shape_labels_of_the_suite() {
        use crate::suite;
        let label_of = |name: &str| shape_label(&suite::by_name(name).unwrap().test);
        assert_eq!(label_of("n6"), "t2+fwd");
        assert_eq!(label_of("mp"), "t2");
        assert_eq!(label_of("sb+fences"), "t2+fence");
        assert_eq!(label_of("iriw"), "t4");
        assert_eq!(label_of("z6"), "t3+fwd");
        assert_eq!(label_of("n6+fence"), "t2+fwd+fence");
    }

    #[test]
    fn rmw_forwarding_counts_as_fwd() {
        use crate::ast::{X, Y};
        // The RMW's desugared store can forward into the later load.
        let t = LitmusTest::new(
            "rmw_fwd",
            vec![vec![LOp::Rmw(X, 1), LOp::Ld(X)], vec![LOp::Ld(Y)]],
        );
        assert_eq!(shape_label(&t), "t2+fwd+rmw");
    }

    #[test]
    fn classification_matches_model_enum() {
        // The simulator's ConsistencyModel enum agrees with Table I: the
        // 370 configurations are store-atomic, x86 is not.
        use sa_isa::ConsistencyModel;
        assert!(!ConsistencyModel::X86.is_store_atomic());
        assert!(ConsistencyModel::Ibm370SlfSosKey.is_store_atomic());
    }
}
