//! Canonical program forms for memoizing oracle and simulation results.
//!
//! Two byte-different litmus programs are often the *same* test: variable
//! names permuted, stored values relabeled, RMWs written as their fenced
//! expansion. The explorer's semantics are value-blind (no operation
//! branches on data) and variables map to disjoint cache lines, so any
//! per-variable injective relabeling of nonzero stored values and any
//! renaming of variables yields an isomorphic program — its outcome set
//! is the original's mapped element-wise through the relabeling.
//!
//! [`canonicalize`] computes the canonical representative of that
//! isomorphism class deterministically: desugar RMWs, rename variables in
//! first-appearance order (thread-major), and relabel each variable's
//! distinct nonzero stored values to `1, 2, …` in first-appearance order.
//! Zero is pinned (it is the initial memory value, and relabeling across
//! it would change "reads the initial value" relations). The canonical
//! thread list is the cache key; the retained maps invert cached
//! (canonical-space) outcomes back into the submitter's vocabulary, so a
//! service can answer a renamed duplicate from cache and still reply in
//! the caller's names and values.
//!
//! Thread *order* is deliberately not canonicalized: outcomes name
//! threads positionally, and reordering would change what the caller's
//! condition refers to.

use crate::ast::{LOp, LitmusTest, Var};
use crate::outcome::{Outcome, OutcomeSet};

/// The canonical form of a program plus the inverse maps needed to
/// translate canonical-space outcomes back to the original program's
/// variables and values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Canonical {
    /// Canonical thread programs — the memoization key. Desugared (no
    /// RMWs), variables renamed to `x, y, z, v3, …` in first-appearance
    /// order, stored values relabeled per variable.
    pub key: Vec<Vec<LOp>>,
    /// `var_back[c]`: the original variable canonical `Var(c)` stands for.
    var_back: Vec<Var>,
    /// `val_back[c][k-1]`: the original value canonical value `k` of
    /// canonical variable `c` stands for (canonical values are 1-based;
    /// 0 maps to 0).
    val_back: Vec<Vec<u64>>,
    /// `slot_var[t][i]`: canonical variable read by load slot `i` of
    /// thread `t` (desugared slot numbering, which matches the original
    /// program's — RMW expansion preserves slots).
    slot_var: Vec<Vec<u8>>,
}

/// Computes the canonical form of `test`. Deterministic: equal programs
/// (up to variable renaming, per-variable value relabeling and RMW
/// sugar) yield equal [`Canonical::key`]s.
pub fn canonicalize(test: &LitmusTest) -> Canonical {
    let d = test.desugared();
    // Variables in first-appearance order, thread-major.
    let mut var_back: Vec<Var> = Vec::new();
    let canon_of = |v: Var, var_back: &mut Vec<Var>| -> u8 {
        match var_back.iter().position(|&o| o == v) {
            Some(c) => c as u8,
            None => {
                var_back.push(v);
                (var_back.len() - 1) as u8
            }
        }
    };
    for op in d.threads.iter().flatten() {
        match op {
            LOp::St(v, _) | LOp::Ld(v) | LOp::Rmw(v, _) => {
                canon_of(*v, &mut var_back);
            }
            LOp::Fence => {}
        }
    }
    // Distinct nonzero stored values per canonical variable, in
    // first-appearance order.
    let mut val_back: Vec<Vec<u64>> = vec![Vec::new(); var_back.len()];
    for op in d.threads.iter().flatten() {
        if let LOp::St(v, val) | LOp::Rmw(v, val) = op {
            if *val != 0 {
                let c = var_back.iter().position(|o| o == v).unwrap();
                if !val_back[c].contains(val) {
                    val_back[c].push(*val);
                }
            }
        }
    }
    let canon_val = |c: usize, val: u64| -> u64 {
        if val == 0 {
            0
        } else {
            val_back[c].iter().position(|&o| o == val).unwrap() as u64 + 1
        }
    };
    let key: Vec<Vec<LOp>> = d
        .threads
        .iter()
        .map(|ops| {
            ops.iter()
                .map(|op| match *op {
                    LOp::St(v, val) => {
                        let c = var_back.iter().position(|&o| o == v).unwrap();
                        LOp::St(Var(c as u8), canon_val(c, val))
                    }
                    LOp::Ld(v) => {
                        let c = var_back.iter().position(|&o| o == v).unwrap();
                        LOp::Ld(Var(c as u8))
                    }
                    LOp::Fence => LOp::Fence,
                    // `desugared` removed every RMW.
                    LOp::Rmw(..) => unreachable!("desugared program has no RMW"),
                })
                .collect()
        })
        .collect();
    let slot_var: Vec<Vec<u8>> = key
        .iter()
        .map(|ops| {
            ops.iter()
                .filter_map(|op| match op {
                    LOp::Ld(v) => Some(v.0),
                    _ => None,
                })
                .collect()
        })
        .collect();
    Canonical {
        key,
        var_back,
        val_back,
        slot_var,
    }
}

impl Canonical {
    /// The canonical program as a runnable test.
    pub fn test(&self) -> LitmusTest {
        LitmusTest::new("canonical", self.key.clone())
    }

    /// Inverse value map for canonical variable `c`.
    fn orig_val(&self, c: usize, canon: u64) -> u64 {
        if canon == 0 {
            return 0;
        }
        // A canonical-space outcome can only hold values some store wrote
        // (or 0); anything else would be an explorer bug — surface it.
        self.val_back[c][(canon - 1) as usize]
    }

    /// Maps one canonical-space outcome back into the original program's
    /// variables and values.
    pub fn restore_outcome(&self, o: &Outcome) -> Outcome {
        let regs = o
            .regs
            .iter()
            .enumerate()
            .map(|(t, regs)| {
                regs.iter()
                    .enumerate()
                    .map(|(i, &v)| self.orig_val(self.slot_var[t][i] as usize, v))
                    .collect()
            })
            .collect();
        let mem = o
            .mem
            .iter()
            .map(|(cvar, &cval)| {
                let c = cvar.0 as usize;
                (self.var_back[c], self.orig_val(c, cval))
            })
            .collect();
        Outcome { regs, mem }
    }

    /// Maps a whole canonical-space outcome set back.
    pub fn restore_set(&self, s: &OutcomeSet) -> OutcomeSet {
        s.iter().map(|o| self.restore_outcome(o)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{X, Y, Z};
    use crate::machine::{explore, ForwardPolicy};
    use crate::suite;

    /// n6 with every stored value relabeled and x/y swapped — the
    /// duplicate a memoizing service must recognize.
    fn renamed_n6() -> LitmusTest {
        use LOp::{Ld, St};
        LitmusTest::new(
            "n6_renamed",
            vec![vec![St(Y, 3), Ld(Y), Ld(Z)], vec![St(Z, 9), St(Y, 5)]],
        )
    }

    #[test]
    fn value_and_variable_renamings_share_a_key() {
        let a = canonicalize(&suite::n6().test);
        let b = canonicalize(&renamed_n6());
        assert_eq!(a.key, b.key);
        // A genuinely different program does not.
        let c = canonicalize(&suite::mp().test);
        assert_ne!(a.key, c.key);
    }

    #[test]
    fn rmw_sugar_shares_a_key_with_its_expansion() {
        let sugar = LitmusTest::new("s", vec![vec![LOp::Rmw(X, 1)], vec![LOp::Ld(X)]]);
        let expanded = LitmusTest::new(
            "e",
            vec![
                vec![LOp::Fence, LOp::Ld(X), LOp::St(X, 1), LOp::Fence],
                vec![LOp::Ld(X)],
            ],
        );
        assert_eq!(canonicalize(&sugar).key, canonicalize(&expanded).key);
    }

    #[test]
    fn restored_outcomes_equal_direct_exploration() {
        // The isomorphism claim, checked exhaustively: exploring the
        // canonical program and mapping back equals exploring the
        // original — for the whole named suite and both policies.
        for ct in suite::all() {
            let canon = canonicalize(&ct.test);
            for policy in [ForwardPolicy::X86, ForwardPolicy::StoreAtomic370] {
                let direct = explore(&ct.test, policy);
                let via_canon = canon.restore_set(&explore(&canon.test(), policy));
                assert_eq!(direct, via_canon, "{} under {policy:?}", ct.test.name);
            }
        }
    }

    #[test]
    fn restored_outcomes_equal_direct_exploration_on_generated_programs() {
        use sa_isa::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..25 {
            let t = crate::gen::generate(&mut rng, &crate::gen::GenConfig::default());
            let canon = canonicalize(&t);
            let direct = explore(&t, ForwardPolicy::X86);
            let via_canon = canon.restore_set(&explore(&canon.test(), ForwardPolicy::X86));
            assert_eq!(direct, via_canon, "{}", t.render());
        }
    }

    #[test]
    fn renamed_duplicate_restores_into_its_own_vocabulary() {
        let renamed = renamed_n6();
        let canon = canonicalize(&renamed);
        let direct = explore(&renamed, ForwardPolicy::X86);
        let restored = canon.restore_set(&explore(&canon.test(), ForwardPolicy::X86));
        assert_eq!(direct, restored);
        // The restored outcomes speak the renamed program's values.
        assert!(restored
            .iter()
            .any(|o| o.mem.values().any(|&v| v == 9 || v == 5)));
    }

    #[test]
    fn zero_valued_stores_stay_zero() {
        let t = LitmusTest::new(
            "z0",
            vec![vec![LOp::St(X, 0), LOp::Ld(X)], vec![LOp::St(X, 7)]],
        );
        let canon = canonicalize(&t);
        assert!(canon.key[0].contains(&LOp::St(X, 0)), "{:?}", canon.key);
        let direct = explore(&t, ForwardPolicy::X86);
        assert_eq!(
            direct,
            canon.restore_set(&explore(&canon.test(), ForwardPolicy::X86))
        );
    }
}
