//! Property-based tests of the coherence substrate: cache-array
//! invariants, event-queue ordering, and whole-protocol randomized
//! exercises (no panics, quiescence, single-writer).

use proptest::prelude::*;
use sa_coherence::cache::CacheArray;
use sa_coherence::event::EventQueue;
use sa_coherence::{MemConfig, MemorySystem, NoticeKind};
use sa_isa::{CoreId, Line};

proptest! {
    /// The array never exceeds capacity, and an inserted line is present
    /// unless a later insert to the same set evicted it.
    #[test]
    fn cache_array_capacity_and_presence(lines in prop::collection::vec(0u64..64, 1..200)) {
        let mut arr: CacheArray<u64> = CacheArray::new(8 * 64, 2); // 4 sets x 2
        for (i, l) in lines.iter().enumerate() {
            let line = Line::from_raw(*l);
            let victim = arr.insert(line, i as u64);
            prop_assert!(arr.len() <= 8);
            prop_assert!(arr.contains(line), "inserted line must be present");
            if let Some((v, _)) = victim {
                prop_assert!(!arr.contains(v), "victim must be gone");
                prop_assert_ne!(v, line, "never evict the line being inserted");
            }
        }
    }

    /// After touching a line it survives the next insert into its set
    /// (true LRU: the most recently used way is never the victim in a
    /// 2-way set).
    #[test]
    fn lru_touch_protects(seed in 0u64..32, other in 0u64..32, incoming in 0u64..32) {
        let seed = Line::from_raw(seed * 4);        // all in set 0 (4 sets)
        let other = Line::from_raw(other * 4 + 128);
        let incoming = Line::from_raw(incoming * 4 + 256);
        prop_assume!(seed != other && other != incoming && seed != incoming);
        let mut arr: CacheArray<()> = CacheArray::new(8 * 64, 2);
        arr.insert(seed, ());
        arr.insert(other, ());
        arr.touch(seed);
        arr.insert(incoming, ());
        prop_assert!(arr.contains(seed), "MRU line evicted");
    }

    /// Events pop in nondecreasing cycle order, FIFO within a cycle.
    #[test]
    fn event_queue_ordering(events in prop::collection::vec((0u64..50, 0u32..1000), 1..100)) {
        let mut q = EventQueue::new();
        for (cycle, tag) in &events {
            q.schedule(*cycle, (*cycle, *tag));
        }
        let mut last: Option<(u64, usize)> = None; // (cycle, seq index)
        let mut popped = 0;
        while let Some((cycle, (ev_cycle, _))) = q.pop_until(u64::MAX) {
            prop_assert_eq!(cycle, ev_cycle);
            if let Some((lc, _)) = last {
                prop_assert!(cycle >= lc, "cycle order violated");
            }
            last = Some((cycle, popped));
            popped += 1;
        }
        prop_assert_eq!(popped, events.len());
    }

    /// Randomized protocol exercise: arbitrary interleavings of loads and
    /// ownership requests never panic, always quiesce, and end with at
    /// most one owner per line.
    #[test]
    fn protocol_random_walk(ops in prop::collection::vec((0u8..4, 0u64..6, any::<bool>()), 1..120)) {
        let mut m = MemorySystem::new(MemConfig { prefetch: false, ..MemConfig::with_cores(4) });
        let mut t = 0u64;
        for (core, line, is_store) in ops {
            let core = CoreId(core);
            let line = Line::from_raw(line);
            m.advance(t);
            let _ = m.drain_notices(core);
            if is_store {
                let _ = m.issue_ownership(core, line, t);
            } else {
                let _ = m.issue_load(core, line, 0, line.base(), t);
            }
            t += 3;
        }
        // Drain everything.
        m.advance(t + 100_000);
        prop_assert!(m.quiescent(), "protocol wedged");
        for l in 0..6u64 {
            let line = Line::from_raw(l);
            let owners = (0..4u8).filter(|c| m.has_ownership(CoreId(*c), line)).count();
            prop_assert!(owners <= 1, "line {l} has {owners} owners");
        }
    }

    /// Every issued load eventually completes exactly once.
    #[test]
    fn loads_complete_exactly_once(ops in prop::collection::vec((0u8..2, 0u64..4), 1..60)) {
        let mut m = MemorySystem::new(MemConfig { prefetch: false, ..MemConfig::with_cores(2) });
        let mut t = 0u64;
        let mut issued = Vec::new();
        for (core, line) in ops {
            m.advance(t);
            for c in 0..2u8 {
                let _ = m.drain_notices(CoreId(c));
            }
            if let Some(id) = m.issue_load(CoreId(core), Line::from_raw(line), 0, line * 64, t) {
                issued.push((core, id));
            }
            t += 2;
        }
        m.advance(t + 100_000);
        let mut done = std::collections::HashSet::new();
        for c in 0..2u8 {
            for n in m.drain_notices(CoreId(c)) {
                if let NoticeKind::LoadDone { id } = n.kind {
                    prop_assert!(done.insert((c, id)), "duplicate completion");
                }
            }
        }
        for (core, id) in issued {
            prop_assert!(done.contains(&(core, id)), "lost completion for {id:?}");
        }
    }
}
