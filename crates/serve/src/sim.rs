//! Cycle-level execution of litmus programs — the simulation half of a
//! differential check. Shared by the sa-bench fuzzer and the service's
//! workers (sa-bench re-exports these from `sa_bench::fuzz`).

use sa_isa::rng::Xoshiro256;
use sa_isa::{ConsistencyModel, CoreId, Reg};
use sa_litmus::{LitmusTest, Outcome};
use sa_ooo::InjectedBug;
use sa_sim::{Multicore, SimConfig};

/// Runs `test` on the cycle-level simulator and extracts its outcome in
/// the oracle's format (one register per load in program order, plus
/// final memory).
pub fn run_on_sim(
    test: &LitmusTest,
    model: ConsistencyModel,
    pads: &[usize],
    bug: Option<InjectedBug>,
) -> Outcome {
    let traces = test.to_traces_padded(pads);
    let cfg = SimConfig::builder()
        .model(model)
        .cores(traces.len())
        .injected_bug(bug)
        .build()
        .expect("litmus sim config is valid");
    let mut sim = Multicore::new(cfg, traces);
    sim.run(5_000_000)
        .unwrap_or_else(|e| panic!("{} under {model}: {e}", test.name));
    // RMWs desugar to an extra load slot in both the lowering and the
    // explorer, so slot counts come from the desugared form.
    let desugared = test.desugared();
    let regs = (0..test.threads.len())
        .map(|t| {
            (0..desugared.loads_in(t))
                .map(|slot| {
                    sim.core(CoreId::from_index(t))
                        .arch_reg(Reg::new(slot as u8))
                })
                .collect()
        })
        .collect();
    let mem = test
        .vars()
        .into_iter()
        .map(|v| (v, sim.memory().read(LitmusTest::var_addr(v), 8)))
        .collect();
    Outcome { regs, mem }
}

/// The skew patterns a program is swept over. Every program gets the
/// aligned start plus single-thread skews; with `probe_sweep` set (the
/// engineered `probe_*` programs) every thread additionally sweeps the
/// §III-A window (the 150–280 range `tests/window_of_vulnerability.rs`
/// established — at retire width 5, a pad of `p` shifts a thread ~`p/5`
/// cycles against the common cold-miss alignment point), plus two random
/// patterns from the per-program stream.
pub fn pad_patterns(test: &LitmusTest, probe_sweep: bool, rng: &mut Xoshiro256) -> Vec<Vec<usize>> {
    let n = test.threads.len();
    let mut pats = vec![vec![0; n]];
    for skew in [60usize, 180, 260] {
        for t in 0..n {
            let mut p = vec![0; n];
            p[t] = skew;
            pats.push(p);
        }
    }
    if probe_sweep {
        for t in 0..n {
            for pad in (140..=300).step_by(10) {
                let mut p = vec![0; n];
                p[t] = pad;
                pats.push(p);
            }
        }
    }
    for _ in 0..2 {
        pats.push((0..n).map(|_| rng.gen_range_usize(0, 301)).collect());
    }
    pats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_litmus::{policy_for, suite, Oracle};

    #[test]
    fn clean_sim_outcomes_are_oracle_contained() {
        let mut oracle = Oracle::new();
        for ct in [suite::n6(), suite::sb()] {
            for model in ConsistencyModel::ALL {
                let pads = vec![0; ct.test.threads.len()];
                let o = run_on_sim(&ct.test, model, &pads, None);
                assert!(
                    oracle
                        .allowed(&ct.test, policy_for(model))
                        .iter()
                        .any(|a| *a == o),
                    "{} under {model}: {o}",
                    ct.test.name
                );
            }
        }
    }

    #[test]
    fn pad_patterns_shape() {
        let n6 = suite::n6().test;
        let mut rng = Xoshiro256::seed_from_u64(3);
        let plain = pad_patterns(&n6, false, &mut rng);
        // Aligned + 3 skews × 2 threads + 2 random.
        assert_eq!(plain.len(), 9);
        let probe = pad_patterns(&n6, true, &mut rng);
        assert!(probe.len() > plain.len(), "probe sweep adds the window");
        assert!(plain.iter().all(|p| p.len() == 2));
    }
}
