//! The out-of-order core pipeline.
//!
//! One [`Core`] executes one trace. Each call to [`Core::tick`] simulates
//! one cycle in six phases:
//!
//! 1. **Memory notices** — load completions perform loads (reading the
//!    global value image at the perform instant), ownership grants wake
//!    draining stores, and invalidations/evictions snoop the load queue
//!    (possibly squashing speculative loads — the paper's §IV mechanism).
//! 2. **Store-buffer drain** — the SB head commits to the L1 once owned;
//!    commits publish values, free SQ/SB entries and reopen the retire
//!    gate (by key under `370-SLFSoS-key`, on SB-empty under
//!    `370-SLFSoS`). Younger retired stores prefetch ownership (RFO).
//! 3. **Completions** — executing micro-ops whose latency elapsed become
//!    retirable; mispredicted branches redirect fetch.
//! 4. **Retire** — in-order, up to `width`; loads additionally subject to
//!    the per-model store-atomicity rules.
//! 5. **Schedule/execute** — ready micro-ops issue; loads run the
//!    forwarding search / memory issue state machine; store addresses
//!    resolve and trigger memory-order violation checks.
//! 6. **Dispatch** — up to `width` trace instructions enter the window;
//!    stall cycles are attributed to the first full resource
//!    (ROB/LQ/SQ-SB — Figure 9's metric).

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use sa_coherence::{MemReqId, Notice, NoticeKind};
use sa_isa::{
    ConsistencyModel, CoreId, Cycle, FastMap, Line, Op, Reg, StoreOperand, Trace, Value,
    ValueMemory, NUM_REGS,
};
use sa_metrics::{CoreMetrics, CpiCategory};
use sa_profile::{NullProfiler, Profiler};
use sa_trace::{EventKind, GateOpenReason, TraceEvent, Tracer, UopKind};

use crate::branch::Tage;
use crate::config::{CoreConfig, InjectedBug};
use crate::gate::{Key, RetireGate};
use crate::lq::{BlockReason, LoadQueue, LoadState};
use crate::port::LoadStorePort;
use crate::rob::{Rob, RobEntry, RobId, RobKind, RobState};
use crate::sq::{extract_forwarded, SearchHit, SqId, StoreQueue};
use crate::stats::{CoreStats, SquashCause};
use crate::storeset::StoreSet;

/// The `sa-trace` mirror of a gate/store key.
fn tkey(k: Key) -> sa_trace::GateKey {
    sa_trace::GateKey {
        slot: k.slot,
        sorting: k.sorting,
    }
}

/// The `sa-trace` mirror of a squash cause.
fn tcause(c: SquashCause) -> sa_trace::SquashKind {
    match c {
        SquashCause::MemOrder => sa_trace::SquashKind::MemOrder,
        SquashCause::LoadLoad => sa_trace::SquashKind::LoadLoad,
        SquashCause::StoreAtomicity => sa_trace::SquashKind::StoreAtomicity,
    }
}

/// Micro-op class of a window entry, for trace labeling.
fn tuop(kind: &RobKind) -> UopKind {
    match kind {
        RobKind::Load => UopKind::Load,
        RobKind::Store { .. } => UopKind::Store,
        RobKind::Branch { .. } => UopKind::Branch,
        RobKind::Alu { .. } => UopKind::Alu,
        RobKind::Fence => UopKind::Fence,
        RobKind::Nop => UopKind::Nop,
    }
}

/// Which resource blocked dispatch on a zero-dispatch cycle (Figure 9's
/// attribution, remembered for idle replay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DispatchStall {
    Rob,
    Lq,
    Sq,
}

/// What one [`Core::tick`] did, reported to the simulation engine.
#[derive(Debug, Clone, Copy)]
pub struct TickResult {
    /// Whether any pipeline state changed beyond per-cycle bookkeeping.
    /// A `false` tick is a pure stall: re-running it with no new memory
    /// notices only re-accrues the same per-cycle counters, so the
    /// engine may replay it in bulk via [`Core::apply_idle_cycles`].
    pub progress: bool,
    /// Instructions retired this tick.
    pub retired: u64,
}

/// One simulated out-of-order core.
#[derive(Debug)]
pub struct Core {
    id: CoreId,
    cfg: CoreConfig,
    model: ConsistencyModel,
    trace: Trace,
    fetch_idx: usize,
    fetch_resume: Cycle,
    fetch_blocked_on: Option<RobId>,
    rob: Rob,
    lq: LoadQueue,
    sq: StoreQueue,
    gate: RetireGate,
    bp: Tage,
    ss: StoreSet,
    arch_regs: [Value; NUM_REGS],
    reg_producer: [Option<RobId>; NUM_REGS],
    pending_loads: FastMap<MemReqId, RobId>,
    pending_owns: FastMap<MemReqId, SqId>,
    completion_q: BinaryHeap<Reverse<(Cycle, RobId)>>,
    fences: BTreeSet<RobId>,
    gate_stall_cur: Option<RobId>,
    /// Loads currently in a Blocked state (gates the retry pass).
    blocked_loads: usize,
    /// Bumped whenever state a blocked load's retry reads changes (store
    /// address resolution, SB commit, fence retire, squash, StoreSet
    /// training). While unchanged, a blocked load re-blocks identically,
    /// so its retry is skipped (see [`LqEntry::attempt_epoch`]).
    lsq_epoch: u64,
    /// Positions below this in the ROB are all `Done` — the scheduler
    /// scan starts here. A lower bound: refreshed lazily each tick,
    /// shifted on retire, clamped on squash.
    sched_start: usize,
    /// `true` when the pending `fetch_resume` came from a squash replay
    /// rather than a branch redirect (CPI-stack attribution of the
    /// empty-window refill).
    resume_was_squash: bool,
    /// Set by any phase that changes pipeline state this tick; a tick
    /// that ends with it clear is a pure stall the engine may replay.
    progress: bool,
    /// The stall category a no-progress tick charged its retire slots to
    /// (replayed verbatim by [`Core::apply_idle_cycles`]).
    idle_stall: Option<CpiCategory>,
    /// This tick accrued a gate-stall cycle (head load behind a closed
    /// gate).
    idle_gate_stall: bool,
    /// This tick accrued an SLFSpec SB-wait cycle.
    idle_slfspec_stall: bool,
    /// Which resource blocked dispatch this tick, if any.
    idle_dispatch: Option<DispatchStall>,
    /// Reused each cycle by the blocked-load retry pass.
    retry_scratch: Vec<RobId>,
    stats: CoreStats,
    metrics: CoreMetrics,
}

impl Core {
    /// Creates a core executing `trace` under `model`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CoreConfig::validate`].
    pub fn new(id: CoreId, cfg: CoreConfig, model: ConsistencyModel, trace: Trace) -> Core {
        cfg.validate();
        Core {
            id,
            rob: Rob::new(cfg.rob_entries),
            lq: LoadQueue::new(cfg.lq_entries),
            sq: StoreQueue::new(cfg.sq_sb_entries),
            gate: RetireGate::with_capacity(cfg.gate_keys),
            bp: Tage::new(),
            ss: StoreSet::new(cfg.storeset),
            arch_regs: [0; NUM_REGS],
            reg_producer: [None; NUM_REGS],
            pending_loads: FastMap::default(),
            pending_owns: FastMap::default(),
            completion_q: BinaryHeap::new(),
            fences: BTreeSet::new(),
            gate_stall_cur: None,
            blocked_loads: 0,
            lsq_epoch: 0,
            sched_start: 0,
            resume_was_squash: false,
            progress: false,
            idle_stall: None,
            idle_gate_stall: false,
            idle_slfspec_stall: false,
            idle_dispatch: None,
            retry_scratch: Vec::new(),
            stats: CoreStats::default(),
            metrics: CoreMetrics::with_capacities(
                cfg.rob_entries,
                cfg.lq_entries,
                cfg.sq_sb_entries,
            ),
            fetch_idx: 0,
            fetch_resume: 0,
            fetch_blocked_on: None,
            cfg,
            model,
            trace,
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The consistency model this core enforces.
    pub fn model(&self) -> ConsistencyModel {
        self.model
    }

    /// `true` once the whole trace has retired and all stores committed.
    pub fn finished(&self) -> bool {
        self.fetch_idx >= self.trace.len() && self.rob.is_empty() && self.sq.is_empty()
    }

    /// Statistics counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Always-on aggregate metrics: the retire-slot CPI stack and the
    /// window-occupancy histograms.
    pub fn metrics(&self) -> &CoreMetrics {
        &self.metrics
    }

    /// Retired stores still draining from the store buffer.
    pub fn sb_depth(&self) -> usize {
        self.sq.iter().filter(|e| e.retired).count()
    }

    /// Architectural value of `r` (final state for litmus outcomes).
    pub fn arch_reg(&self, r: Reg) -> Value {
        self.arch_regs[r.index()]
    }

    /// Branch predictor accuracy observer.
    pub fn branch_mispredict_rate(&self) -> f64 {
        self.bp.mispredict_rate()
    }

    /// Simulates one cycle, emitting structured events into `tracer`.
    ///
    /// This is the single run API: pass
    /// [`&mut NullTracer`](sa_trace::NullTracer) for an untraced tick —
    /// `Tracer::ENABLED` is a compile-time constant, so every emission
    /// site — including the closure building the event — monomorphizes
    /// to dead code and the pipeline is exactly the untraced one.
    pub fn tick<M: LoadStorePort, T: Tracer>(
        &mut self,
        now: Cycle,
        mem: &mut M,
        valmem: &mut ValueMemory,
        notices: &[Notice],
        tracer: &mut T,
    ) -> TickResult {
        self.tick_profiled::<M, T, NullProfiler>(now, mem, valmem, notices, tracer)
    }

    /// [`Core::tick`] with host-side phase profiling: each pipeline phase
    /// runs under a `sa-profile` span, so an enabled [`Profiler`] builds
    /// the per-phase wall-time tree the ROADMAP's hot-loop rebuild needs.
    /// With the default [`NullProfiler`] every span compiles away and
    /// this *is* `tick` — same monomorphization discipline as the
    /// [`Tracer`].
    pub fn tick_profiled<M: LoadStorePort, T: Tracer, P: Profiler>(
        &mut self,
        now: Cycle,
        mem: &mut M,
        valmem: &mut ValueMemory,
        notices: &[Notice],
        tracer: &mut T,
    ) -> TickResult {
        self.progress = false;
        self.idle_stall = None;
        self.idle_gate_stall = false;
        self.idle_slfspec_stall = false;
        self.idle_dispatch = None;
        let retired_before = self.stats.retired_instrs;
        self.stats.cycles += 1;
        {
            let _p = P::span("notices");
            self.process_notices(now, valmem, notices, tracer);
        }
        {
            let _p = P::span("sb_drain");
            self.drain_stores(now, mem, valmem, tracer);
        }
        {
            let _p = P::span("complete");
            self.process_completions(now, tracer);
        }
        {
            let _p = P::span("retire");
            self.retire(now, tracer);
        }
        self.schedule::<M, T, P>(now, mem, tracer);
        {
            let _p = P::span("frontend");
            self.dispatch(now, tracer);
        }
        if self.gate.is_closed() {
            self.stats.gate_closed_cycles += 1;
        }
        self.metrics
            .occ
            .record(self.rob.len(), self.lq.len(), self.sq.len());
        tracer.emit(|| TraceEvent {
            cycle: now,
            core: self.id,
            kind: EventKind::Occupancy {
                rob: self.rob.len() as u16,
                lq: self.lq.len() as u16,
                sq: self.sq.len() as u16,
            },
        });
        TickResult {
            progress: self.progress,
            retired: self.stats.retired_instrs - retired_before,
        }
    }

    /// Replays `n` cycles of pure-stall bookkeeping, exactly as `n`
    /// further ticks of the current state would have accrued it. Only
    /// valid straight after a tick that reported no progress, and only
    /// while no new memory notice or timed wakeup intervenes (the
    /// engine's contract — see `Multicore::run`).
    pub fn apply_idle_cycles(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.stats.cycles += n;
        if self.gate.is_closed() {
            self.stats.gate_closed_cycles += n;
        }
        if self.idle_gate_stall {
            self.stats.gate_stall_cycles += n;
        }
        if self.idle_slfspec_stall {
            self.stats.slfspec_stall_cycles += n;
        }
        match self.idle_dispatch {
            Some(DispatchStall::Rob) => self.stats.rob_stall_cycles += n,
            Some(DispatchStall::Lq) => self.stats.lq_stall_cycles += n,
            Some(DispatchStall::Sq) => self.stats.sq_stall_cycles += n,
            None => {}
        }
        let cat = self.idle_stall.expect("an idle core has a stall category");
        self.metrics.cpi.add(cat, self.cfg.width as u64 * n);
        self.metrics
            .occ
            .record_n(self.rob.len(), self.lq.len(), self.sq.len(), n);
    }

    /// The earliest cycle after `now` at which this core could make
    /// progress without an external memory notice, given its post-tick
    /// state: the next internal completion, the SB head's commit
    /// deadline, the fetch-redirect resume point, or the head's `done_at`
    /// becoming retirable. `None` means only a notice can wake it.
    pub fn next_timed_wakeup(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut merge = |c: Cycle| {
            if c > now && next.is_none_or(|n| c < n) {
                next = Some(c);
            }
        };
        if let Some(&Reverse((t, _))) = self.completion_q.peek() {
            merge(t);
        }
        if let Some(h) = self.sq.head() {
            if let Some(t) = h.committing_done {
                merge(t);
            }
        }
        if self.fetch_idx < self.trace.len() && now < self.fetch_resume {
            merge(self.fetch_resume);
        }
        if let Some(f) = self.rob.front() {
            if f.state == RobState::Done {
                merge(f.done_at);
            }
        }
        next
    }

    // ------------------------------------------------------------------
    // Phase 1: memory notices
    // ------------------------------------------------------------------

    fn process_notices<T: Tracer>(
        &mut self,
        now: Cycle,
        valmem: &ValueMemory,
        notices: &[Notice],
        tracer: &mut T,
    ) {
        let cid = self.id;
        for n in notices {
            match n.kind {
                NoticeKind::LoadDone { id } => {
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::MemResp {
                            req: id.0,
                            rfo: false,
                        },
                    });
                    let Some(rob_id) = self.pending_loads.remove(&id) else {
                        continue; // stale response for a squashed load
                    };
                    self.perform_from_memory(rob_id, now, valmem, tracer);
                }
                NoticeKind::OwnershipDone { id } => {
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::MemResp {
                            req: id.0,
                            rfo: true,
                        },
                    });
                    if let Some(sq_id) = self.pending_owns.remove(&id) {
                        self.progress = true;
                        if let Some(e) = self.sq.get_mut(sq_id) {
                            e.own_req = None; // drain re-checks has_ownership
                        }
                    }
                }
                NoticeKind::Invalidated { line, by } => {
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::Invalidation { line: line.base() },
                    });
                    self.snoop_lq(line, Some(by), now, tracer);
                }
                NoticeKind::Evicted { line } => {
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::Eviction { line: line.base() },
                    });
                    // Capacity eviction: a local cause, no remote core to
                    // blame.
                    self.snoop_lq(line, None, now, tracer);
                }
                // Losing write permission needs no core-side action: the
                // store-drain path re-checks `has_ownership` every attempt.
                // The notice only wakes an idle core so the event engine
                // retries the drain at the same cycle lockstep would.
                NoticeKind::Downgraded { .. } => {}
            }
        }
    }

    fn perform_from_memory<T: Tracer>(
        &mut self,
        rob_id: RobId,
        now: Cycle,
        valmem: &ValueMemory,
        tracer: &mut T,
    ) {
        self.progress = true;
        let m_spec = self.lq.any_older_unperformed(rob_id);
        let Some(e) = self.lq.get_mut(rob_id) else {
            debug_assert!(false, "completion for a load not in the LQ");
            return;
        };
        debug_assert!(matches!(e.state, LoadState::Issued(_)));
        e.state = LoadState::Performed;
        e.performed_at = now;
        e.value = valmem.read(e.addr, e.size);
        e.m_spec = m_spec;
        let value = e.value;
        let addr = e.addr;
        let r = self.rob.get_mut(rob_id).expect("load still in ROB");
        r.state = RobState::Done;
        r.done_at = now;
        r.result = value;
        let cid = self.id;
        tracer.emit(|| TraceEvent {
            cycle: now,
            core: cid,
            kind: EventKind::Perform {
                rob: rob_id.0,
                addr,
                forwarded: false,
            },
        });
        tracer.emit(|| TraceEvent {
            cycle: now,
            core: cid,
            kind: EventKind::Complete { rob: rob_id.0 },
        });
    }

    /// Invalidation/eviction snoop of the load queue — the detection
    /// mechanism of §IV. Finds the oldest *speculative* performed load on
    /// `line` and squashes from it.
    fn snoop_lq<T: Tracer>(&mut self, line: Line, by: Option<CoreId>, now: Cycle, tracer: &mut T) {
        let mut victim: Option<(RobId, SquashCause)> = None;
        for e in self.lq.iter() {
            if e.line != line || e.state != LoadState::Performed {
                continue;
            }
            // Classic in-window speculation (present in all five
            // configurations, including x86): the load is squashable iff
            // *right now* an older load is still unperformed (M-spec) or
            // an older store address is still unresolved (D-spec). Once
            // every older access is bound, the load's early perform is
            // no longer observable and a snoop cannot catch it.
            let classic =
                self.lq.any_older_unperformed(e.rob_id) || self.sq.any_older_unresolved(e.rob_id);
            let sa = match self.model {
                ConsistencyModel::X86 | ConsistencyModel::Ibm370NoSpec => false,
                ConsistencyModel::Ibm370SlfSpec => {
                    // SC-like: the SLF load itself is speculative while
                    // older stores linger, and so is anything younger
                    // than a speculative SLF load.
                    let self_spec = e.fwd_from.is_some() && self.sq.any_older(e.rob_id);
                    self_spec
                        || self
                            .lq
                            .iter()
                            .take_while(|o| o.rob_id < e.rob_id)
                            .any(|o| o.fwd_from.is_some() && self.sq.any_older(o.rob_id))
                }
                ConsistencyModel::Ibm370SlfSos | ConsistencyModel::Ibm370SlfSosKey => {
                    // SoS: SLF loads are *sources* of speculation; a load
                    // is SA-speculative iff an older SLF load's
                    // forwarding store is still in the SQ/SB — whether
                    // that SLF load is still in the window or already
                    // retired (then the closed gate remembers it).
                    self.gate.is_closed()
                        || self
                            .lq
                            .older_slf_pending(e.rob_id, |k| self.sq.contains_key(k))
                }
            };
            if classic || sa {
                let cause = if classic {
                    SquashCause::LoadLoad
                } else {
                    SquashCause::StoreAtomicity
                };
                victim = Some((e.rob_id, cause));
                break;
            }
        }
        if let Some((rob_id, cause)) = victim {
            self.squash_from(rob_id, cause, by, Some(line), now, tracer);
        }
        // A load whose memory access is still in flight on this line
        // would complete as a stale hit: the line left the cache after
        // the hit/miss decision was made. Drop the pending response and
        // re-execute the load — the replay misses and refetches through
        // the directory, which re-serializes it against the writer
        // (whose eventual commit-time ownership grab then snoops us
        // again). Without this, an early RFO that invalidates before the
        // in-flight load performs lets the later silent commit slip past
        // the §IV detection window entirely.
        loop {
            let Some((rob_id, req)) = self.lq.iter().find_map(|e| match e.state {
                LoadState::Issued(req) if e.line == line => Some((e.rob_id, req)),
                _ => None,
            }) else {
                break;
            };
            self.pending_loads.remove(&req);
            self.progress = true;
            self.blocked_loads += 1;
            let e = self.lq.get_mut(rob_id).expect("load in LQ");
            e.state = LoadState::Blocked(BlockReason::Replay);
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: store-buffer drain
    // ------------------------------------------------------------------

    fn drain_stores<M: LoadStorePort, T: Tracer>(
        &mut self,
        now: Cycle,
        mem: &mut M,
        valmem: &mut ValueMemory,
        tracer: &mut T,
    ) {
        if self.sq.is_empty() {
            return;
        }
        let cid = self.id;
        // Finish completed commits, strictly in program order (commits
        // start in order with a uniform latency, so done-times are
        // monotonic — TSO's store order to memory).
        while let Some(h) = self.sq.head() {
            if h.committing_done.is_none_or(|t| t > now) {
                break;
            }
            let h = self.sq.pop_head().expect("head exists");
            self.lsq_epoch += 1;
            self.progress = true;
            valmem.write(h.addr, h.size, h.value.expect("committed store has data"));
            self.stats.sb_commits += 1;
            tracer.emit(|| TraceEvent {
                cycle: now,
                core: cid,
                kind: EventKind::SbCommit {
                    key: tkey(h.key),
                    addr: h.addr,
                },
            });
            match self.model {
                // Injected bug (fuzzer self-test): drop the key match —
                // *any* SB commit reopens the gate, so a forwarded load
                // whose store sits behind older SB entries escapes the
                // window of vulnerability early.
                ConsistencyModel::Ibm370SlfSosKey
                    if self.cfg.injected_bug == Some(InjectedBug::GateKeyMatch) =>
                {
                    if self.gate.is_closed() {
                        tracer.emit(|| TraceEvent {
                            cycle: now,
                            core: cid,
                            kind: EventKind::GateOpen {
                                reason: GateOpenReason::SbEmpty,
                            },
                        });
                    }
                    self.gate.force_open();
                }
                ConsistencyModel::Ibm370SlfSosKey if self.gate.try_unlock(h.key) => {
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::GateOpen {
                            reason: GateOpenReason::KeyMatch(tkey(h.key)),
                        },
                    });
                }
                ConsistencyModel::Ibm370SlfSos if !self.sq.sb_nonempty() => {
                    if self.gate.is_closed() {
                        tracer.emit(|| TraceEvent {
                            cycle: now,
                            core: cid,
                            kind: EventKind::GateOpen {
                                reason: GateOpenReason::SbEmpty,
                            },
                        });
                    }
                    self.gate.force_open();
                }
                _ => {}
            }
        }
        // Start the next commit. With `commit_pipelined` the L1 write
        // port starts one store per cycle (commits still complete in
        // order); otherwise commits serialize at the L1 write latency —
        // the conservative baseline matching the paper's drain behavior.
        let l1 = mem.l1_latency().max(self.cfg.sb_commit_cycles);
        let mut start: Option<(SqId, Line, bool)> = None;
        let mut prev_done: Cycle = 0;
        for e in self.sq.iter() {
            if !e.retired {
                break;
            }
            match e.committing_done {
                Some(t) => {
                    if !self.cfg.commit_pipelined {
                        break; // one commit in flight at a time
                    }
                    prev_done = t;
                }
                None => {
                    debug_assert!(e.executed(), "retired store missing address or data");
                    start = Some((e.id, e.line, e.own_req.is_none()));
                    break;
                }
            }
        }
        if let Some((id, line, no_req)) = start {
            if mem.has_ownership(line) {
                self.progress = true;
                mem.mark_dirty(line);
                let done = (now + l1).max(prev_done + 1);
                let e = self.sq.get_mut(id).expect("store present");
                e.committing_done = Some(done);
                e.own_req = None;
            } else if no_req {
                // Every issue attempt counts as progress: even a rejected
                // one mutates the memory system (request ids, MSHR-reject
                // counters), so the lockstep retry cadence must be kept.
                self.progress = true;
                if let Some(req) = mem.issue_ownership(line, now) {
                    self.sq.get_mut(id).expect("store present").own_req = Some(req);
                    self.pending_owns.insert(req, id);
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::MemReq {
                            req: req.0,
                            line: line.base(),
                            rfo: true,
                        },
                    });
                }
            }
        }
        // RFO prefetch: as soon as a store's address is known — even
        // before it retires — acquire ownership of its line so the
        // eventual in-order L1 commit is a hit (stores prefetch
        // ownership from the SQ in real cores; this is what hides store
        // miss latency behind the window).
        let mut rfos = 0;
        for idx in 0..self.cfg.rfo_depth {
            if rfos >= 2 {
                break; // RFO issue bandwidth per cycle
            }
            let Some(e) = self.sq.at(idx) else {
                break;
            };
            if !(e.addr_resolved && e.own_req.is_none() && e.committing_done.is_none()) {
                continue;
            }
            let (id, line) = (e.id, e.line);
            if mem.has_ownership(line) {
                continue;
            }
            self.progress = true; // issue attempt (see above)
            if let Some(req) = mem.issue_ownership(line, now) {
                if let Some(e) = self.sq.get_mut(id) {
                    e.own_req = Some(req);
                }
                self.pending_owns.insert(req, id);
                rfos += 1;
                tracer.emit(|| TraceEvent {
                    cycle: now,
                    core: cid,
                    kind: EventKind::MemReq {
                        req: req.0,
                        line: line.base(),
                        rfo: true,
                    },
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: completions
    // ------------------------------------------------------------------

    fn process_completions<T: Tracer>(&mut self, now: Cycle, tracer: &mut T) {
        let cid = self.id;
        while let Some(&Reverse((t, id))) = self.completion_q.peek() {
            if t > now {
                break;
            }
            self.completion_q.pop();
            let Some(e) = self.rob.get_mut(id) else {
                continue; // squashed while executing
            };
            if e.state != RobState::Executing {
                continue;
            }
            self.progress = true;
            e.state = RobState::Done;
            e.done_at = t;
            tracer.emit(|| TraceEvent {
                cycle: now,
                core: cid,
                kind: EventKind::Complete { rob: id.0 },
            });
            if let RobKind::Branch {
                mispredicted: true, ..
            } = e.kind
            {
                self.fetch_resume = now + self.cfg.redirect_penalty;
                self.resume_was_squash = false;
                if self.fetch_blocked_on == Some(id) {
                    self.fetch_blocked_on = None;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 4: retire
    // ------------------------------------------------------------------

    fn retire<T: Tracer>(&mut self, now: Cycle, tracer: &mut T) {
        let cid = self.id;
        let mut retired: u64 = 0;
        let mut stall: Option<CpiCategory> = None;
        for _ in 0..self.cfg.width {
            let Some(head) = self.rob.front() else {
                stall = Some(self.empty_window_category(now));
                break;
            };
            let (id, kind) = (head.id, head.kind);
            if head.state != RobState::Done || head.done_at > now {
                stall = Some(self.head_wait_category(id, kind));
                break;
            }
            match kind {
                RobKind::Load => {
                    if let Some(cat) = self.try_retire_load(id, now, tracer) {
                        stall = Some(cat);
                        break;
                    }
                    retired += 1;
                }
                RobKind::Store { sq } => {
                    let (key, addr) = {
                        let e = self.sq.get_mut(sq).expect("retiring store in SQ");
                        e.retired = true;
                        (e.key, e.addr)
                    };
                    self.stats.retired_stores += 1;
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::SbEnter {
                            rob: id.0,
                            key: tkey(key),
                            addr,
                        },
                    });
                    self.pop_retired(now, tracer);
                    retired += 1;
                }
                RobKind::Fence => {
                    if self.sq.sb_nonempty() {
                        // MFENCE waits for the SB to drain.
                        stall = Some(CpiCategory::OtherBackend);
                        break;
                    }
                    self.fences.remove(&id);
                    self.lsq_epoch += 1;
                    self.stats.retired_fences += 1;
                    self.pop_retired(now, tracer);
                    retired += 1;
                }
                RobKind::Branch { .. } => {
                    self.stats.retired_branches += 1;
                    self.pop_retired(now, tracer);
                    retired += 1;
                }
                RobKind::Alu { .. } | RobKind::Nop => {
                    self.pop_retired(now, tracer);
                    retired += 1;
                }
            }
        }
        // CPI-stack account for this cycle: `retired` slots retired an
        // instruction; the remainder are all charged to the single reason
        // the head could not retire. Exactly `width` slots per cycle.
        if retired > 0 {
            self.progress = true;
        }
        self.idle_stall = stall;
        self.metrics.cpi.add(CpiCategory::Retiring, retired);
        let leftover = self.cfg.width as u64 - retired;
        if leftover > 0 {
            let cat = stall.expect("a partial retire cycle names its stall");
            self.metrics.cpi.add(cat, leftover);
        }
    }

    /// Why the Done-but-unretirable or still-executing head is holding
    /// the retire stage.
    fn head_wait_category(&self, id: RobId, kind: RobKind) -> CpiCategory {
        match kind {
            RobKind::Load => match self.lq.get(id).map(|e| e.state) {
                Some(LoadState::Blocked(BlockReason::StoreCommit(_))) => CpiCategory::NoSpecBlock,
                Some(LoadState::Issued(_))
                | Some(LoadState::Blocked(BlockReason::MshrFull))
                | Some(LoadState::Blocked(BlockReason::Replay)) => CpiCategory::MemMiss,
                _ => CpiCategory::OtherBackend,
            },
            _ => CpiCategory::OtherBackend,
        }
    }

    /// Why the window is empty: squash-replay refill, branch redirect, or
    /// a frontend with nothing in flight (including a drained trace).
    fn empty_window_category(&self, now: Cycle) -> CpiCategory {
        if self.fetch_idx >= self.trace.len() {
            CpiCategory::Frontend
        } else if now < self.fetch_resume {
            if self.resume_was_squash {
                CpiCategory::SquashRefill
            } else {
                CpiCategory::BranchRedirect
            }
        } else if self.fetch_blocked_on.is_some() {
            CpiCategory::BranchRedirect
        } else {
            CpiCategory::Frontend
        }
    }

    /// Returns the stall category when the load must hold the head,
    /// `None` once it retires.
    fn try_retire_load<T: Tracer>(
        &mut self,
        id: RobId,
        _now: Cycle,
        tracer: &mut T,
    ) -> Option<CpiCategory> {
        let cid = self.id;
        // Retire gate (370-SLFSoS / 370-SLFSoS-key).
        if self.model.uses_retire_gate() && self.gate.is_closed() {
            // Multi-key extension: an SLF load (not speculative itself)
            // may pass a closed gate by depositing its own key, if a key
            // register is free. With the paper's capacity of 1 a closed
            // gate never has space, so this reduces to a plain stall.
            let can_pass = self.model.uses_key() && self.gate.has_space() && {
                let e = self.lq.get(id).expect("load in LQ");
                e.slf_key.is_some_and(|k| self.sq.contains_key(k))
            };
            if !can_pass {
                if self.gate_stall_cur != Some(id) {
                    self.gate_stall_cur = Some(id);
                    self.stats.gate_stall_events += 1;
                    tracer.emit(|| TraceEvent {
                        cycle: _now,
                        core: cid,
                        kind: EventKind::GateStall { rob: id.0 },
                    });
                }
                self.stats.gate_stall_cycles += 1;
                self.idle_gate_stall = true;
                return Some(CpiCategory::GateStall);
            }
        }
        // 370-SLFSpec: an SLF load is speculative and may not retire
        // until the store buffer empties.
        if self.model == ConsistencyModel::Ibm370SlfSpec {
            let fwd = self.lq.get(id).expect("load in LQ").fwd_from.is_some();
            if fwd && self.sq.sb_nonempty() {
                self.stats.slfspec_stall_cycles += 1;
                self.idle_slfspec_stall = true;
                return Some(CpiCategory::SlfSbWait);
            }
        }
        self.gate_stall_cur = None;
        let entry = self.lq.retire_head(id);
        if entry.fwd_from.is_some() {
            self.stats.forwarded_loads += 1;
        }
        // SoS configurations: a retiring SLF load whose forwarding store
        // is still in the SQ/SB closes the gate behind itself, locked
        // with the store's key (§IV-B2). If the store already left, the
        // window of vulnerability is over and the gate stays open.
        if self.model.uses_retire_gate() && self.cfg.injected_bug != Some(InjectedBug::GateNoClose)
        {
            if let Some(k) = entry.slf_key {
                if self.sq.contains_key(k) {
                    self.gate.close(k);
                    self.stats.gate_closures += 1;
                    tracer.emit(|| TraceEvent {
                        cycle: _now,
                        core: cid,
                        kind: EventKind::GateClose {
                            rob: id.0,
                            key: tkey(k),
                        },
                    });
                }
            }
        }
        self.stats.retired_loads += 1;
        self.pop_retired(_now, tracer);
        None
    }

    fn pop_retired<T: Tracer>(&mut self, _now: Cycle, tracer: &mut T) {
        let e = self.rob.pop_front().expect("retiring head");
        self.sched_start = self.sched_start.saturating_sub(1);
        if let Some(dst) = e.dst {
            self.arch_regs[dst.index()] = e.result;
            if self.reg_producer[dst.index()] == Some(e.id) {
                self.reg_producer[dst.index()] = None;
            }
        }
        self.stats.retired_instrs += 1;
        let cid = self.id;
        tracer.emit(|| TraceEvent {
            cycle: _now,
            core: cid,
            kind: EventKind::Retire {
                rob: e.id.0,
                uop: tuop(&e.kind),
            },
        });
    }

    // ------------------------------------------------------------------
    // Phase 5: schedule / execute
    // ------------------------------------------------------------------

    fn read_src(&self, e: &RobEntry, i: usize) -> Value {
        let Some(r) = e.src_regs[i] else { return 0 };
        match e.deps[i] {
            Some(pid) => match self.rob.get(pid) {
                Some(p) => p.result,
                None => self.arch_regs[r.index()], // producer retired
            },
            None => self.arch_regs[r.index()],
        }
    }

    fn deps_ready(&self, e: &RobEntry) -> [bool; 2] {
        [
            e.deps[0].is_none_or(|d| self.rob.dep_satisfied(d)),
            e.deps[1].is_none_or(|d| self.rob.dep_satisfied(d)),
        ]
    }

    fn schedule<M: LoadStorePort, T: Tracer, P: Profiler>(
        &mut self,
        now: Cycle,
        mem: &mut M,
        tracer: &mut T,
    ) {
        let sched_span = P::span("sched_scan");
        let cid = self.id;
        let mut issued = 0usize;
        let mut load_ports = self.cfg.load_ports;
        let mut store_ports = self.cfg.store_ports;
        let mut rs_seen = 0usize;

        // Pass 1: wake waiting ROB entries, oldest first. Index-based
        // iteration is safe: the only in-pass mutation is a squash from a
        // store-address resolution, which removes a *suffix strictly
        // younger* than the position being processed.
        //
        // Entries never leave `Done`, so the scan starts past the
        // all-Done prefix — `Done` positions neither issue nor count
        // toward the scheduling window, making the skip invisible.
        while self
            .rob
            .at(self.sched_start)
            .is_some_and(|e| e.state == RobState::Done)
        {
            self.sched_start += 1;
        }
        let mut pos = self.sched_start;
        while pos < self.rob.len() {
            if issued >= self.cfg.width || rs_seen >= self.cfg.sched_window {
                break;
            }
            let e = self.rob.at(pos).expect("in-bounds position");
            let id = e.id;
            pos += 1;
            if e.state == RobState::Done {
                continue;
            }
            rs_seen += 1;
            if e.state != RobState::Waiting {
                continue;
            }
            let ready = self.deps_ready(e);
            match e.kind {
                RobKind::Alu { unit, eval } => {
                    if ready[0] && ready[1] {
                        let vals = [self.read_src(e, 0), self.read_src(e, 1)];
                        let n_srcs = e.src_regs.iter().flatten().count();
                        let result = eval.eval(&vals[..n_srcs]);
                        let entry = self.rob.get_mut(id).expect("live");
                        entry.state = RobState::Executing;
                        entry.result = result;
                        self.completion_q
                            .push(Reverse((now + u64::from(unit.latency()), id)));
                        issued += 1;
                        self.progress = true;
                        tracer.emit(|| TraceEvent {
                            cycle: now,
                            core: cid,
                            kind: EventKind::Issue { rob: id.0 },
                        });
                    }
                }
                RobKind::Branch { .. } => {
                    if ready[0] {
                        let entry = self.rob.get_mut(id).expect("live");
                        entry.state = RobState::Executing;
                        self.completion_q.push(Reverse((now + 1, id)));
                        issued += 1;
                        self.progress = true;
                        tracer.emit(|| TraceEvent {
                            cycle: now,
                            core: cid,
                            kind: EventKind::Issue { rob: id.0 },
                        });
                    }
                }
                RobKind::Load => {
                    // Address operand gates execution.
                    if ready[0] && load_ports > 0 {
                        let entry = self.rob.get_mut(id).expect("live");
                        entry.state = RobState::Executing;
                        // The Waiting→Executing transition is progress
                        // even when the load immediately blocks.
                        self.progress = true;
                        if self.try_execute_load::<M, T, P>(id, now, mem, tracer) {
                            load_ports -= 1;
                            issued += 1;
                            tracer.emit(|| TraceEvent {
                                cycle: now,
                                core: cid,
                                kind: EventKind::Issue { rob: id.0 },
                            });
                        }
                    }
                }
                RobKind::Store { sq } => {
                    let s = self.sq.get(sq).expect("store in SQ");
                    let mut progressed = false;
                    // Address resolution (store AGU port).
                    if !s.addr_resolved && ready[1] && store_ports > 0 {
                        store_ports -= 1;
                        progressed = true;
                        self.resolve_store_addr(sq, now, tracer);
                    }
                    // Data capture (register read, no port).
                    let e = self.rob.get(id).expect("live");
                    let s = self.sq.get(sq).expect("store in SQ");
                    if s.value.is_none() && ready[0] {
                        let v = self.read_src(e, 0);
                        self.sq.get_mut(sq).expect("store in SQ").value = Some(v);
                        progressed = true;
                    }
                    let s = self.sq.get(sq).expect("store in SQ");
                    if s.executed() {
                        let entry = self.rob.get_mut(id).expect("live");
                        entry.state = RobState::Done;
                        entry.done_at = now + 1;
                        self.progress = true;
                        tracer.emit(|| TraceEvent {
                            cycle: now,
                            core: cid,
                            kind: EventKind::Complete { rob: id.0 },
                        });
                    }
                    if progressed {
                        issued += 1;
                        self.progress = true;
                        tracer.emit(|| TraceEvent {
                            cycle: now,
                            core: cid,
                            kind: EventKind::Issue { rob: id.0 },
                        });
                    }
                }
                RobKind::Fence | RobKind::Nop => {
                    // Completed at dispatch; unreachable in Waiting.
                }
            }
        }

        // Pass 2: retry blocked loads (their wake conditions are events
        // in the SQ/SB or the memory system). Gated on a counter so the
        // common no-blocked-loads case costs nothing. A load whose retry
        // provably re-blocks identically — LSQ epoch unchanged since it
        // blocked, no rejected memory issue to replay, no forwarding data
        // that just arrived — is skipped outright; a skipped retry has no
        // side effects, so the skip is invisible to the simulation.
        drop(sched_span);
        if self.blocked_loads > 0 {
            let _p = P::span("lsq_retry");
            let mut blocked = std::mem::take(&mut self.retry_scratch);
            blocked.clear();
            let epoch = self.lsq_epoch;
            blocked.extend(
                self.lq
                    .iter()
                    .filter(|e| match e.state {
                        // A rejected issue mutates the memory system
                        // (request id, reject counter): replay each cycle.
                        // A snoop-killed in-flight load re-executes
                        // unconditionally too — its wake event (the
                        // invalidation) already happened.
                        LoadState::Blocked(BlockReason::MshrFull)
                        | LoadState::Blocked(BlockReason::Replay) => true,
                        LoadState::Blocked(BlockReason::ForwardData(s)) => {
                            e.attempt_epoch != epoch
                                || self.sq.get(s).is_some_and(|x| x.value.is_some())
                        }
                        LoadState::Blocked(_) => e.attempt_epoch != epoch,
                        _ => false,
                    })
                    .map(|e| e.rob_id),
            );
            for &id in &blocked {
                if load_ports == 0 {
                    break;
                }
                if self.try_execute_load::<M, T, P>(id, now, mem, tracer) {
                    load_ports -= 1;
                    tracer.emit(|| TraceEvent {
                        cycle: now,
                        core: cid,
                        kind: EventKind::Issue { rob: id.0 },
                    });
                }
            }
            self.retry_scratch = blocked;
        }
    }

    fn resolve_store_addr<T: Tracer>(&mut self, sq_id: SqId, now: Cycle, tracer: &mut T) {
        self.lsq_epoch += 1;
        let (store_rob, store_pc, addr, size) = {
            let s = self.sq.get_mut(sq_id).expect("resolving store");
            s.addr_resolved = true;
            (s.rob_id, s.pc, s.addr, s.size)
        };
        self.ss.store_resolved(store_pc);
        // Memory-order violation check: a younger load that already read
        // (or is reading) this location must be squashed and replayed.
        let mut victim: Option<(RobId, u64)> = None;
        for e in self.lq.iter() {
            if e.rob_id <= store_rob {
                continue;
            }
            let performed_or_issued =
                matches!(e.state, LoadState::Performed | LoadState::Issued(_));
            if !performed_or_issued {
                continue;
            }
            if !sa_isa::addr::overlaps(addr, size, e.addr, e.size) {
                continue;
            }
            // A load correctly forwarded from this store or a younger one
            // is fine; anything else read stale data.
            let ok = e.fwd_from.is_some_and(|f| f >= sq_id);
            if !ok {
                victim = Some((e.rob_id, e.pc));
                break;
            }
        }
        if let Some((rob_id, load_pc)) = victim {
            self.ss.train_violation(store_pc, load_pc);
            self.squash_from(rob_id, SquashCause::MemOrder, None, None, now, tracer);
        }
    }

    /// Runs the load state machine; returns `true` when a port was
    /// consumed (a forward happened or a request was issued).
    fn try_execute_load<M: LoadStorePort, T: Tracer, P: Profiler>(
        &mut self,
        id: RobId,
        now: Cycle,
        mem: &mut M,
        tracer: &mut T,
    ) -> bool {
        let (pc, addr, size, line, prev_state, attempt_epoch, miss_passed_unresolved) = {
            let e = self.lq.get(id).expect("load in LQ");
            (
                e.pc,
                e.addr,
                e.size,
                e.line,
                e.state,
                e.attempt_epoch,
                e.miss_passed_unresolved,
            )
        };
        let was_blocked = matches!(prev_state, LoadState::Blocked(_));
        let set_blocked = move |core: &mut Core, reason: BlockReason| {
            if !was_blocked {
                core.blocked_loads += 1;
            }
            // Re-blocking for the same reason leaves the load (and the
            // memory system) untouched — not progress, so a core spinning
            // on such retries can be idled by the event-driven engine.
            if prev_state != LoadState::Blocked(reason) {
                core.progress = true;
            }
            let e = core.lq.get_mut(id).expect("load in LQ");
            e.state = LoadState::Blocked(reason);
            e.attempt_epoch = core.lsq_epoch;
        };

        // Fast path: an `MshrFull` retry under an unchanged LSQ epoch
        // would reproduce the same fence/StoreSet/forwarding-search miss,
        // so only the memory issue — whose rejection mutates the memory
        // system and must replay every cycle — is re-run.
        if prev_state == LoadState::Blocked(BlockReason::MshrFull)
            && attempt_epoch == self.lsq_epoch
        {
            return match mem.issue_load(line, pc, addr, now) {
                Some(req) => {
                    self.finish_load_issue(id, req, miss_passed_unresolved, true, now, tracer);
                    true
                }
                None => {
                    // Same rejection: request id and reject counter
                    // moved again.
                    self.progress = true;
                    false
                }
            };
        }

        // An older fence blocks load issue.
        if self.fences.iter().next().is_some_and(|&f| f < id) {
            set_blocked(self, BlockReason::Fence);
            return false;
        }
        // StoreSet: wait when an older same-set store's address is
        // unresolved.
        if self.cfg.storeset {
            if let Some(set) = self.ss.set_of(pc) {
                let conflict = self
                    .sq
                    .iter()
                    .take_while(|s| s.rob_id < id)
                    .any(|s| !s.addr_resolved && self.ss.set_of(s.pc) == Some(set));
                if conflict {
                    set_blocked(self, BlockReason::StoreSet);
                    return false;
                }
            }
        }

        let hit = {
            let _p = P::span("sq_search");
            self.sq.search(id, addr, size)
        };
        match hit {
            SearchHit::Forward {
                store,
                passed_unresolved,
            } => {
                if self.model == ConsistencyModel::Ibm370NoSpec {
                    // Blanket store atomicity: no forwarding from
                    // in-limbo stores; wait for the L1 write.
                    if prev_state != LoadState::Blocked(BlockReason::StoreCommit(store)) {
                        self.stats.nospec_block_events += 1;
                    }
                    set_blocked(self, BlockReason::StoreCommit(store));
                    return false;
                }
                let s = self.sq.get(store).expect("matched store");
                let Some(sval) = s.value else {
                    set_blocked(self, BlockReason::ForwardData(store));
                    return false;
                };
                let value = extract_forwarded(s.addr, s.size, sval, addr, size);
                let key = s.key;
                self.progress = true;
                if was_blocked {
                    self.blocked_loads -= 1;
                }
                let m_spec = self.lq.any_older_unperformed(id);
                let e = self.lq.get_mut(id).expect("load in LQ");
                e.state = LoadState::Performed;
                e.performed_at = now + 1;
                e.value = value;
                e.fwd_from = Some(store);
                e.slf_key = Some(key);
                e.d_spec = passed_unresolved;
                e.m_spec = m_spec;
                let r = self.rob.get_mut(id).expect("load in ROB");
                r.state = RobState::Executing;
                r.result = value;
                self.completion_q.push(Reverse((now + 1, id)));
                let cid = self.id;
                tracer.emit(|| TraceEvent {
                    cycle: now,
                    core: cid,
                    kind: EventKind::Perform {
                        rob: id.0,
                        addr,
                        forwarded: true,
                    },
                });
                true
            }
            SearchHit::Partial { store } => {
                // No partial forwarding: wait for the store's L1 write.
                set_blocked(self, BlockReason::StoreCommit(store));
                false
            }
            SearchHit::Miss { passed_unresolved } => match mem.issue_load(line, pc, addr, now) {
                Some(req) => {
                    self.finish_load_issue(id, req, passed_unresolved, was_blocked, now, tracer);
                    true
                }
                None => {
                    // The rejected issue still mutated the memory system
                    // (request id, MSHR-reject counter): the core must
                    // stay awake and retry every cycle, as in lockstep.
                    self.progress = true;
                    set_blocked(self, BlockReason::MshrFull);
                    self.lq
                        .get_mut(id)
                        .expect("load in LQ")
                        .miss_passed_unresolved = passed_unresolved;
                    false
                }
            },
        }
    }

    /// Books an accepted memory issue for load `id`: LQ/stat updates and
    /// the trace event. Shared between the forwarding-search miss path and
    /// the `MshrFull` retry fast path.
    fn finish_load_issue<T: Tracer>(
        &mut self,
        id: RobId,
        req: MemReqId,
        passed_unresolved: bool,
        was_blocked: bool,
        now: Cycle,
        tracer: &mut T,
    ) {
        self.progress = true;
        if was_blocked {
            self.blocked_loads -= 1;
        }
        self.pending_loads.insert(req, id);
        self.stats.loads_to_memory += 1;
        let e = self.lq.get_mut(id).expect("load in LQ");
        e.state = LoadState::Issued(req);
        e.d_spec = passed_unresolved;
        let line = e.line;
        let cid = self.id;
        tracer.emit(|| TraceEvent {
            cycle: now,
            core: cid,
            kind: EventKind::MemReq {
                req: req.0,
                line: line.base(),
                rfo: false,
            },
        });
    }

    // ------------------------------------------------------------------
    // Phase 6: dispatch
    // ------------------------------------------------------------------

    fn dispatch<T: Tracer>(&mut self, now: Cycle, tracer: &mut T) {
        let mut dispatched = 0usize;
        let mut stall = None;
        while dispatched < self.cfg.width {
            if self.fetch_blocked_on.is_some() || now < self.fetch_resume {
                break;
            }
            let Some(instr) = self.trace.get(self.fetch_idx) else {
                break;
            };
            if self.rob.is_full() {
                stall = Some(DispatchStall::Rob);
                break;
            }
            if instr.op.is_load() && self.lq.is_full() {
                stall = Some(DispatchStall::Lq);
                break;
            }
            if instr.op.is_store() && self.sq.is_full() {
                stall = Some(DispatchStall::Sq);
                break;
            }
            let instr = instr.clone();
            let mispredicted = self.dispatch_one(&instr, now, tracer);
            self.fetch_idx += 1;
            dispatched += 1;
            if mispredicted {
                break;
            }
        }
        if dispatched == 0 {
            self.idle_dispatch = stall;
            match stall {
                Some(DispatchStall::Rob) => self.stats.rob_stall_cycles += 1,
                Some(DispatchStall::Lq) => self.stats.lq_stall_cycles += 1,
                Some(DispatchStall::Sq) => self.stats.sq_stall_cycles += 1,
                None => {}
            }
        } else {
            self.progress = true;
        }
    }

    /// Allocates one instruction into the window; returns `true` for a
    /// mispredicted branch (fetch must stall behind it).
    fn dispatch_one<T: Tracer>(
        &mut self,
        instr: &sa_isa::Instr,
        now: Cycle,
        tracer: &mut T,
    ) -> bool {
        let pc = instr.pc;
        let mut entry = RobEntry {
            id: RobId(0), // assigned by push
            trace_idx: self.fetch_idx,
            pc,
            kind: RobKind::Nop,
            dst: instr.op.dst(),
            deps: [None, None],
            src_regs: [None, None],
            state: RobState::Waiting,
            done_at: 0,
            result: 0,
        };
        let mut mispredicted = false;
        match &instr.op {
            Op::Alu {
                unit, srcs, eval, ..
            } => {
                entry.kind = RobKind::Alu {
                    unit: *unit,
                    eval: *eval,
                };
                entry.src_regs = *srcs;
                entry.deps = [
                    srcs[0].and_then(|r| self.reg_producer[r.index()]),
                    srcs[1].and_then(|r| self.reg_producer[r.index()]),
                ];
            }
            Op::Load { addr_src, .. } => {
                // LQ allocation happens after push (needs the id).
                entry.kind = RobKind::Load;
                entry.src_regs = [*addr_src, None];
                entry.deps = [addr_src.and_then(|r| self.reg_producer[r.index()]), None];
            }
            Op::Store { src, addr_src, .. } => {
                let data_reg = match src {
                    StoreOperand::Reg(r) => Some(*r),
                    StoreOperand::Imm(_) => None,
                };
                entry.src_regs = [data_reg, *addr_src];
                entry.deps = [
                    data_reg.and_then(|r| self.reg_producer[r.index()]),
                    addr_src.and_then(|r| self.reg_producer[r.index()]),
                ];
                // SQ id assigned below once the ROB id exists.
                entry.kind = RobKind::Store { sq: SqId(u64::MAX) };
            }
            Op::Branch { taken, src } => {
                let correct = self.bp.update(pc.0, *taken);
                if !correct {
                    self.stats.branch_mispredicts += 1;
                    mispredicted = true;
                }
                entry.kind = RobKind::Branch {
                    taken: *taken,
                    mispredicted: !correct,
                };
                entry.src_regs = [*src, None];
                entry.deps = [src.and_then(|r| self.reg_producer[r.index()]), None];
            }
            Op::Fence => {
                entry.kind = RobKind::Fence;
                entry.state = RobState::Done;
                entry.done_at = now;
            }
            Op::Nop => {
                entry.state = RobState::Done;
                entry.done_at = now;
            }
        }

        let id = self.rob.push(entry);
        let cid = self.id;
        let trace_idx = self.fetch_idx;
        tracer.emit(|| {
            let uop = match &instr.op {
                Op::Load { .. } => UopKind::Load,
                Op::Store { .. } => UopKind::Store,
                Op::Branch { .. } => UopKind::Branch,
                Op::Alu { .. } => UopKind::Alu,
                Op::Fence => UopKind::Fence,
                Op::Nop => UopKind::Nop,
            };
            TraceEvent {
                cycle: now,
                core: cid,
                kind: EventKind::Dispatch {
                    rob: id.0,
                    trace_idx,
                    pc: pc.0,
                    uop,
                },
            }
        });

        match &instr.op {
            Op::Load {
                dst, addr, size, ..
            } => {
                self.lq.alloc(id, pc.0, *addr, *size);
                let _ = dst;
            }
            Op::Store {
                src,
                addr,
                size,
                addr_src,
            } => {
                let value = match src {
                    StoreOperand::Imm(v) => Some(*v),
                    StoreOperand::Reg(_) => None,
                };
                let addr_resolved = addr_src.is_none();
                let sq_id = self.sq.alloc(id, pc.0, *addr, *size, addr_resolved, value);
                let e = self.rob.get_mut(id).expect("just pushed");
                e.kind = RobKind::Store { sq: sq_id };
                if addr_resolved && value.is_some() {
                    e.state = RobState::Done;
                    e.done_at = now;
                }
            }
            Op::Fence => {
                self.fences.insert(id);
            }
            _ => {}
        }

        if let Some(dst) = instr.op.dst() {
            self.reg_producer[dst.index()] = Some(id);
        }
        if mispredicted {
            self.fetch_blocked_on = Some(id);
        }
        mispredicted
    }

    // ------------------------------------------------------------------
    // Squash & replay
    // ------------------------------------------------------------------

    fn squash_from<T: Tracer>(
        &mut self,
        from: RobId,
        cause: SquashCause,
        by: Option<CoreId>,
        line: Option<Line>,
        now: Cycle,
        tracer: &mut T,
    ) {
        let removed = self.rob.squash_from(from);
        if removed.is_empty() {
            return;
        }
        self.sched_start = self.sched_start.min(self.rob.len());
        self.lsq_epoch += 1;
        self.progress = true;
        self.stats.record_squash(cause, removed.len() as u64);
        let cid = self.id;
        let n_removed = removed.len() as u64;
        tracer.emit(|| TraceEvent {
            cycle: now,
            core: cid,
            kind: EventKind::Squash {
                from_rob: from.0,
                uops: n_removed,
                cause: tcause(cause),
                by: by.map(|c| c.0),
                line: line.map(|l| l.base()),
            },
        });
        self.fetch_idx = removed[0].trace_idx;
        self.fetch_resume = now + self.cfg.squash_penalty;
        self.resume_was_squash = true;
        if self.fetch_blocked_on.is_some_and(|b| b >= from) {
            self.fetch_blocked_on = None;
        }
        if self.gate_stall_cur.is_some_and(|g| g >= from) {
            self.gate_stall_cur = None;
        }
        for e in &removed {
            if let RobKind::Fence = e.kind {
                self.fences.remove(&e.id);
            }
        }
        for l in self.lq.squash_from(from) {
            match l.state {
                LoadState::Issued(req) => {
                    self.pending_loads.remove(&req);
                }
                LoadState::Blocked(_) => {
                    self.blocked_loads -= 1;
                }
                _ => {}
            }
        }
        for s in self.sq.squash_from(from) {
            if let Some(req) = s.own_req {
                self.pending_owns.remove(&req);
            }
        }
        // Rebuild the register rename map from the surviving window.
        self.reg_producer = [None; NUM_REGS];
        let mut producers: Vec<(Reg, RobId)> = Vec::new();
        for e in self.rob.iter() {
            if let Some(dst) = e.dst {
                producers.push((dst, e.id));
            }
        }
        for (dst, id) in producers {
            self.reg_producer[dst.index()] = Some(id);
        }
    }

    /// Test/diagnostic hook: the retire gate state.
    pub fn gate(&self) -> &RetireGate {
        &self.gate
    }

    /// Test/diagnostic hook: occupancy of the three window resources.
    pub fn occupancy(&self) -> (usize, usize, usize) {
        (self.rob.len(), self.lq.len(), self.sq.len())
    }
}
