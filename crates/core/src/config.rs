//! Full-system configuration — the paper's Table III.

use sa_coherence::{MemConfig, MemConfigError};
use sa_isa::ConsistencyModel;
use sa_ooo::{CoreConfig, CoreConfigError};

/// Error from [`SimConfigBuilder::build`] / [`SimConfig::check`]: an
/// inconsistent parameter combination, reported as a typed value instead
/// of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The core half failed [`CoreConfig::check`].
    Core(CoreConfigError),
    /// The memory half failed [`MemConfig::check`].
    Mem(MemConfigError),
    /// A nonzero sampling interval with a zero-capacity sample ring:
    /// sampling is requested but every sample would be dropped.
    ZeroSampleCapacity,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Core(e) => write!(f, "core config: {e}"),
            ConfigError::Mem(e) => write!(f, "memory config: {e}"),
            ConfigError::ZeroSampleCapacity => {
                write!(f, "sampling enabled with a zero-capacity sample ring")
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Core(e) => Some(e),
            ConfigError::Mem(e) => Some(e),
            ConfigError::ZeroSampleCapacity => None,
        }
    }
}

impl From<CoreConfigError> for ConfigError {
    fn from(e: CoreConfigError) -> ConfigError {
        ConfigError::Core(e)
    }
}

impl From<MemConfigError> for ConfigError {
    fn from(e: MemConfigError) -> ConfigError {
        ConfigError::Mem(e)
    }
}

/// Complete configuration of the simulated multicore.
///
/// Defaults reproduce Table III: 8 Skylake-like cores (5-wide, 224-entry
/// ROB, 72-entry LQ, 56-entry SQ/SB, StoreSet, TAGE-style branch
/// prediction), private 32 KB L1 + 128 KB L2, shared 8×1 MB L3 with
/// directory, fully-connected network, 160-cycle memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Per-core microarchitecture.
    pub core: CoreConfig,
    /// Memory hierarchy and interconnect.
    pub mem: MemConfig,
    /// Which of the five consistency implementations to run.
    pub model: ConsistencyModel,
    /// Interval, in cycles, between time-series samples (0 disables the
    /// sampler).
    pub sample_interval: u64,
    /// Bounded capacity of the sample ring (oldest samples drop first).
    pub sample_capacity: usize,
    /// Whether `Multicore::run` may use the event-driven engine that
    /// jumps over cycles in which no core can make progress. Cycle-exact
    /// with the lockstep path (enforced by `tests/engine_equivalence`);
    /// disable to force per-cycle lockstep stepping.
    pub cycle_skip: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            core: CoreConfig::default(),
            mem: MemConfig::default(),
            model: ConsistencyModel::X86,
            sample_interval: 10_000,
            sample_capacity: 4096,
            cycle_skip: true,
        }
    }
}

/// Builder for [`SimConfig`] whose [`build`](SimConfigBuilder::build)
/// validates the assembled configuration and returns typed
/// [`ConfigError`]s instead of panicking — the front door for drivers
/// that accept user-controlled parameters (the bench CLI, the fuzzer).
#[derive(Debug, Clone, Default)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the consistency model.
    pub fn model(mut self, model: ConsistencyModel) -> SimConfigBuilder {
        self.cfg.model = model;
        self
    }

    /// Sets the number of cores.
    pub fn cores(mut self, n: usize) -> SimConfigBuilder {
        self.cfg.mem.n_cores = n;
        self
    }

    /// Replaces the whole per-core microarchitecture.
    pub fn core(mut self, core: CoreConfig) -> SimConfigBuilder {
        self.cfg.core = core;
        self
    }

    /// Replaces the whole memory hierarchy (keeps the core count already
    /// set via [`cores`](SimConfigBuilder::cores) callers must re-apply).
    pub fn mem(mut self, mem: MemConfig) -> SimConfigBuilder {
        self.cfg.mem = mem;
        self
    }

    /// Sets the time-series sampling interval in cycles (0 disables).
    pub fn sample_interval(mut self, interval: u64) -> SimConfigBuilder {
        self.cfg.sample_interval = interval;
        self
    }

    /// Sets the bounded capacity of the sample ring.
    pub fn sample_capacity(mut self, capacity: usize) -> SimConfigBuilder {
        self.cfg.sample_capacity = capacity;
        self
    }

    /// Enables or disables the event-driven engine's cycle skipping.
    pub fn cycle_skip(mut self, on: bool) -> SimConfigBuilder {
        self.cfg.cycle_skip = on;
        self
    }

    /// Injects a deliberately broken pipeline variant (fuzzer self-test).
    pub fn injected_bug(mut self, bug: Option<sa_ooo::InjectedBug>) -> SimConfigBuilder {
        self.cfg.core.injected_bug = bug;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.cfg.check()?;
        Ok(self.cfg)
    }
}

impl SimConfig {
    /// Starts a validating builder from the Table III defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Sets the consistency model.
    pub fn with_model(mut self, model: ConsistencyModel) -> SimConfig {
        self.model = model;
        self
    }

    /// Sets the number of cores.
    pub fn with_cores(mut self, n: usize) -> SimConfig {
        self.mem.n_cores = n;
        self
    }

    /// Sets the time-series sampling interval in cycles (0 disables).
    pub fn with_sample_interval(mut self, interval: u64) -> SimConfig {
        self.sample_interval = interval;
        self
    }

    /// Enables or disables the event-driven engine's cycle skipping.
    pub fn with_cycle_skip(mut self, on: bool) -> SimConfig {
        self.cycle_skip = on;
        self
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.mem.n_cores
    }

    /// Checks the whole configuration, returning the first violation as
    /// a typed error.
    pub fn check(&self) -> Result<(), ConfigError> {
        self.core.check()?;
        self.mem.check()?;
        if self.sample_interval > 0 && self.sample_capacity == 0 {
            return Err(ConfigError::ZeroSampleCapacity);
        }
        Ok(())
    }

    /// Validates both halves.
    ///
    /// # Panics
    ///
    /// Panics if either the core or memory configuration is invalid;
    /// [`SimConfig::check`] is the non-panicking form.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Renders the configuration as the paper's Table III.
    pub fn render_table3(&self) -> String {
        let c = &self.core;
        let m = &self.mem;
        let mut s = String::new();
        s.push_str("System configuration (Table III)\n");
        s.push_str("Processor (Skylake-like)\n");
        s.push_str(&format!(
            "  Issue / Retire width        {} instructions\n",
            c.width
        ));
        s.push_str(&format!(
            "  Reorder buffer              {} entries\n",
            c.rob_entries
        ));
        s.push_str(&format!(
            "  Load queue                  {} entries\n",
            c.lq_entries
        ));
        s.push_str(&format!(
            "  Store queue + store buffer  {} entries\n",
            c.sq_sb_entries
        ));
        s.push_str("  Memory dep. predictor       StoreSet\n");
        s.push_str("  Branch predictor            TAGE (L-TAGE class)\n");
        s.push_str("Memory\n");
        s.push_str(&format!(
            "  Private L1 D cache          {}KB, {} ways, {} hit cycles, stride prefetcher: {}\n",
            m.l1_bytes / 1024,
            m.l1_assoc,
            m.l1_latency,
            if m.prefetch { "on" } else { "off" }
        ));
        s.push_str(&format!(
            "  Private L2 cache            {}KB, {} ways, {} hit cycles\n",
            m.l2_bytes / 1024,
            m.l2_assoc,
            m.l2_latency
        ));
        s.push_str(&format!(
            "  Shared L3 cache ({} banks)   {}MB per bank, {} ways, {} hit cycles\n",
            m.l3_banks,
            m.l3_bytes_per_bank / (1024 * 1024),
            m.l3_assoc,
            m.l3_latency
        ));
        s.push_str(&format!(
            "  Memory access time          {} cycles\n",
            m.mem_latency
        ));
        s.push_str("Network\n");
        s.push_str("  Topology                    Fully connected\n");
        s.push_str(&format!(
            "  Data / Control msg size     {} / {} flits\n",
            m.data_flits, m.ctrl_flits
        ));
        s.push_str(&format!(
            "  Switch-to-switch time       {} cycles\n",
            m.hop_latency
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_paper() {
        let cfg = SimConfig::default();
        cfg.validate();
        assert_eq!(cfg.n_cores(), 8);
        assert_eq!(cfg.core.rob_entries, 224);
        assert_eq!(cfg.mem.mem_latency, 160);
        assert_eq!(cfg.model, ConsistencyModel::X86);
    }

    #[test]
    fn builder_methods_chain() {
        let cfg = SimConfig::default()
            .with_model(ConsistencyModel::Ibm370SlfSosKey)
            .with_cores(2);
        assert_eq!(cfg.model, ConsistencyModel::Ibm370SlfSosKey);
        assert_eq!(cfg.n_cores(), 2);
        cfg.validate();
    }

    #[test]
    fn validating_builder_accepts_good_configs() {
        let cfg = SimConfig::builder()
            .model(ConsistencyModel::Ibm370SlfSos)
            .cores(4)
            .sample_interval(0)
            .cycle_skip(false)
            .build()
            .expect("valid config");
        assert_eq!(cfg.model, ConsistencyModel::Ibm370SlfSos);
        assert_eq!(cfg.n_cores(), 4);
        assert!(!cfg.cycle_skip);
        // The chainable wrappers and the builder agree.
        let legacy = SimConfig::default()
            .with_model(ConsistencyModel::Ibm370SlfSos)
            .with_cores(4)
            .with_sample_interval(0)
            .with_cycle_skip(false);
        assert_eq!(cfg, legacy);
    }

    #[test]
    fn validating_builder_returns_typed_errors() {
        let zero_width = SimConfig::builder()
            .core(CoreConfig {
                width: 0,
                ..CoreConfig::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(
            zero_width,
            ConfigError::Core(CoreConfigError::ZeroWidth),
            "zero-width core"
        );
        let too_many = SimConfig::builder().cores(65).build().unwrap_err();
        assert_eq!(
            too_many,
            ConfigError::Mem(MemConfigError::CoreCountUnsupported)
        );
        let bad_sampler = SimConfig::builder()
            .sample_interval(100)
            .sample_capacity(0)
            .build()
            .unwrap_err();
        assert_eq!(bad_sampler, ConfigError::ZeroSampleCapacity);
        assert!(zero_width.to_string().contains("width must be positive"));
    }

    #[test]
    fn injected_bug_flows_into_core_config() {
        let cfg = SimConfig::builder()
            .model(ConsistencyModel::Ibm370SlfSosKey)
            .injected_bug(Some(sa_ooo::InjectedBug::GateKeyMatch))
            .build()
            .expect("bugs are valid configs");
        assert_eq!(
            cfg.core.injected_bug,
            Some(sa_ooo::InjectedBug::GateKeyMatch)
        );
        assert_eq!(SimConfig::default().core.injected_bug, None);
    }

    #[test]
    fn table3_rendering_mentions_key_parameters() {
        let s = SimConfig::default().render_table3();
        for needle in [
            "5 instructions",
            "224 entries",
            "72 entries",
            "56 entries",
            "32KB, 8 ways, 4 hit cycles",
            "128KB, 8 ways, 12 hit cycles",
            "1MB per bank, 8 ways, 35 hit cycles",
            "160 cycles",
            "Fully connected",
            "5 / 1 flits",
            "6 cycles",
            "StoreSet",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }
}
