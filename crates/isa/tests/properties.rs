//! Property-based tests of the ISA layer invariants.

use proptest::prelude::*;
use sa_isa::{addr, Line, ValueMemory, LINE_BYTES};

fn access() -> impl Strategy<Value = (u64, u8)> {
    // Aligned accesses of size 1/2/4/8 within a 1 MB space.
    (0u64..(1 << 20), prop::sample::select(vec![1u8, 2, 4, 8]))
        .prop_map(|(a, s)| (a - a % u64::from(s), s))
}

proptest! {
    /// What you write is what you read back.
    #[test]
    fn valmem_roundtrip((a, s) in access(), v in any::<u64>()) {
        let mut m = ValueMemory::new();
        m.write(a, s, v);
        let mask = if s == 8 { u64::MAX } else { (1u64 << (u64::from(s) * 8)) - 1 };
        prop_assert_eq!(m.read(a, s), v & mask);
    }

    /// Writes to disjoint words never interfere.
    #[test]
    fn valmem_disjoint_words(a in 0u64..(1 << 16), v1 in any::<u64>(), v2 in any::<u64>()) {
        let a = a & !7;
        let b = a + 8;
        let mut m = ValueMemory::new();
        m.write(a, 8, v1);
        m.write(b, 8, v2);
        prop_assert_eq!(m.read(a, 8), v1);
        prop_assert_eq!(m.read(b, 8), v2);
    }

    /// A sub-word write only changes the bytes it covers.
    #[test]
    fn valmem_subword_isolation((a, s) in access(), base in any::<u64>(), v in any::<u64>()) {
        let word = a & !7;
        let mut m = ValueMemory::new();
        m.write(word, 8, base);
        m.write(a, s, v);
        let got = m.read(word, 8);
        for byte in 0..8u64 {
            let addr_b = word + byte;
            let expected = if addr_b >= a && addr_b < a + u64::from(s) {
                (v >> ((addr_b - a) * 8)) & 0xff
            } else {
                (base >> (byte * 8)) & 0xff
            };
            prop_assert_eq!((got >> (byte * 8)) & 0xff, expected, "byte {}", byte);
        }
    }

    /// `covers` implies `overlaps`, and both are consistent with the
    /// interval arithmetic.
    #[test]
    fn covers_implies_overlaps((sa, ss) in access(), (la, ls) in access()) {
        if addr::covers(sa, ss, la, ls) {
            prop_assert!(addr::overlaps(sa, ss, la, ls));
            prop_assert!(sa <= la && la + u64::from(ls) <= sa + u64::from(ss));
        }
        let o = addr::overlaps(sa, ss, la, ls);
        let manual = sa < la + u64::from(ls) && la < sa + u64::from(ss);
        prop_assert_eq!(o, manual);
    }

    /// Every byte of an access that stays within a line maps to the same
    /// line.
    #[test]
    fn within_line_consistent((a, s) in access()) {
        if addr::within_line(a, s) {
            for off in 0..u64::from(s) {
                prop_assert_eq!(Line::containing(a + off), Line::containing(a));
            }
        } else {
            prop_assert_ne!(
                Line::containing(a),
                Line::containing(a + u64::from(s) - 1)
            );
        }
    }

    /// Line base/containing are inverse-ish and bank hashing is stable.
    #[test]
    fn line_roundtrip(a in any::<u64>() , banks in 1usize..16) {
        let l = Line::containing(a);
        prop_assert!(l.base() <= a);
        prop_assert!(a - l.base() < LINE_BYTES);
        prop_assert_eq!(Line::containing(l.base()), l);
        prop_assert!(l.bank(banks) < banks);
    }
}
