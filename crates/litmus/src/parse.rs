//! Text parser for litmus thread programs — the inverse of the
//! [`crate::ast::LOp`] `Display` impl.
//!
//! The grammar is the one this repository renders everywhere (`st x,1`,
//! `ld y`, `fence`, `rmw z,2`; operations joined by `;`, one thread per
//! string), so any program printed by [`crate::ast::LitmusTest::render`]
//! parses back to the identical program. This is the wire format the
//! sa-serve job service accepts over HTTP.

use crate::ast::{LOp, Var};

/// Parses a variable name: `x`/`y`/`z` or the generic `vN` spelling.
fn parse_var(s: &str) -> Result<Var, String> {
    match s {
        "x" => Ok(Var(0)),
        "y" => Ok(Var(1)),
        "z" => Ok(Var(2)),
        _ => s
            .strip_prefix('v')
            .and_then(|n| n.parse::<u8>().ok())
            .map(Var)
            .ok_or_else(|| format!("bad variable {s:?} (expected x, y, z or vN)")),
    }
}

/// Parses a `var,value` pair (the operand of `st` and `rmw`).
fn parse_var_val(s: &str) -> Result<(Var, u64), String> {
    let (v, val) = s
        .split_once(',')
        .ok_or_else(|| format!("bad operand {s:?} (expected var,value)"))?;
    let var = parse_var(v.trim())?;
    let val = val
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("bad value {:?}", val.trim()))?;
    Ok((var, val))
}

/// Parses one operation, e.g. `st x,1`, `ld y`, `fence`, `rmw z,2`.
pub fn parse_op(s: &str) -> Result<LOp, String> {
    let s = s.trim();
    if s == "fence" {
        return Ok(LOp::Fence);
    }
    let (mnemonic, rest) = s
        .split_once(char::is_whitespace)
        .ok_or_else(|| format!("bad operation {s:?}"))?;
    let rest = rest.trim();
    match mnemonic {
        "ld" => Ok(LOp::Ld(parse_var(rest)?)),
        "st" => parse_var_val(rest).map(|(v, val)| LOp::St(v, val)),
        "rmw" => parse_var_val(rest).map(|(v, val)| LOp::Rmw(v, val)),
        _ => Err(format!("unknown mnemonic {mnemonic:?} in {s:?}")),
    }
}

/// Parses one thread: `;`-separated operations. Empty segments (e.g. a
/// trailing `;`) are ignored; a thread must contain at least one
/// operation.
pub fn parse_thread(s: &str) -> Result<Vec<LOp>, String> {
    let ops: Result<Vec<LOp>, String> = s
        .split(';')
        .map(str::trim)
        .filter(|seg| !seg.is_empty())
        .map(parse_op)
        .collect();
    let ops = ops?;
    if ops.is_empty() {
        return Err("empty thread".to_string());
    }
    Ok(ops)
}

/// Parses a whole program, one string per thread. An optional leading
/// `Tn:` label (as printed by `render`) is stripped.
pub fn parse_threads(threads: &[&str]) -> Result<Vec<Vec<LOp>>, String> {
    if threads.is_empty() {
        return Err("program has no threads".to_string());
    }
    threads
        .iter()
        .enumerate()
        .map(|(t, s)| {
            let body = match s.split_once(':') {
                Some((label, rest)) if label.trim().starts_with('T') => rest,
                _ => s,
            };
            parse_thread(body).map_err(|e| format!("thread {t}: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{LitmusTest, X, Y, Z};
    use crate::suite;

    #[test]
    fn parses_each_operation() {
        assert_eq!(parse_op("st x,1"), Ok(LOp::St(X, 1)));
        assert_eq!(parse_op("  ld  y "), Ok(LOp::Ld(Y)));
        assert_eq!(parse_op("fence"), Ok(LOp::Fence));
        assert_eq!(parse_op("rmw z, 2"), Ok(LOp::Rmw(Z, 2)));
        assert_eq!(parse_op("ld v7"), Ok(LOp::Ld(Var(7))));
        assert!(parse_op("mov x,1").is_err());
        assert!(parse_op("st x").is_err());
        assert!(parse_op("st q,1").is_err());
        assert!(parse_op("st x,lots").is_err());
    }

    #[test]
    fn round_trips_every_suite_program() {
        for ct in suite::all() {
            let rendered = ct.test.render();
            let lines: Vec<&str> = rendered.lines().collect();
            let threads = parse_threads(&lines).expect(ct.test.name);
            assert_eq!(threads, ct.test.threads, "{}", ct.test.name);
        }
    }

    #[test]
    fn round_trips_generated_programs() {
        use sa_isa::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(12);
        for _ in 0..50 {
            let t = crate::gen::generate(&mut rng, &crate::gen::GenConfig::default());
            let rendered = t.render();
            let lines: Vec<&str> = rendered.lines().collect();
            assert_eq!(parse_threads(&lines).unwrap(), t.threads);
        }
    }

    #[test]
    fn accepts_bodies_without_labels_and_trailing_semicolons() {
        let threads = parse_threads(&["st x,1; ld y;", "fence ; ld x"]).unwrap();
        let t = LitmusTest::new("t", threads);
        assert_eq!(t.render(), "T0: st x,1; ld y\nT1: fence; ld x");
    }

    #[test]
    fn rejects_malformed_programs() {
        assert!(parse_threads(&[]).is_err());
        assert!(parse_threads(&[";"]).is_err());
        let err = parse_threads(&["st x,1", "huh"]).unwrap_err();
        assert!(err.contains("thread 1"), "{err}");
    }
}
