//! Regenerates the litmus-test classifications of Figures 1, 2, 3 and 5
//! (plus standard TSO companions) by exhaustive operational exploration,
//! and runs the ConsistencyChecker-style model diff on each program.

use sa_litmus::{compare, explore, explore_pc, suite, ForwardPolicy};

fn main() {
    sa_bench::cli::parse(&sa_bench::cli::Spec::new(
        "litmus_figs",
        "Figures 1/2/3/5: litmus-test allowed/forbidden classifications",
    ));
    println!("Litmus-test classifications (exhaustive exploration)\n");
    println!(
        "{:<14} {:>14} {:>14} {:>10} {:>10}",
        "Test", "x86 outcomes", "370 outcomes", "x86", "370"
    );
    for ct in suite::all() {
        let x86 = explore(&ct.test, ForwardPolicy::X86);
        let ibm = explore(&ct.test, ForwardPolicy::StoreAtomic370);
        let ox = x86.contains_matching(&ct.condition);
        let oi = ibm.contains_matching(&ct.condition);
        assert_eq!(
            ox, ct.allowed_x86,
            "{}: x86 classification drifted",
            ct.test.name
        );
        assert_eq!(
            oi, ct.allowed_370,
            "{}: 370 classification drifted",
            ct.test.name
        );
        println!(
            "{:<14} {:>14} {:>14} {:>10} {:>10}",
            ct.test.name,
            x86.len(),
            ibm.len(),
            if ox { "ALLOWED" } else { "forbidden" },
            if oi { "ALLOWED" } else { "forbidden" },
        );
    }

    println!("\nConsistencyChecker-style diff (non-store-atomic behaviors):\n");
    for ct in suite::all() {
        print!("{}", compare(&ct.test).render());
    }

    println!(
        "Paper mapping: Fig.1 = mp (forbidden in both), Fig.2 = n6 (x86 only),\n\
         Fig.3 = iriw (forbidden in both, write-atomic coherence), Fig.5 = fig5\n\
         (the Table II disagreement outcome, x86 only).\n"
    );

    // Table I's third row, demonstrated: Processor Consistency (non-
    // write-atomic) admits the iriw disagreement that both write-atomic
    // models forbid.
    let iriw = suite::iriw();
    let pc = explore_pc(&iriw.test);
    println!(
        "Table I demo - iriw disagreement: x86 forbidden  370 forbidden  PC {}",
        if pc.contains_matching(&iriw.condition) {
            "ALLOWED"
        } else {
            "forbidden"
        }
    );
}
