//! The load queue.
//!
//! Each entry carries, beyond the classic fields, the paper's two
//! additions (§IV-D): the **SLF bit** (here folded into `slf_key`) and a
//! copy of the forwarding store's **key**. The speculation flags record
//! *why* a performed load is squashable when an invalidation or eviction
//! snoops the queue.

use std::collections::VecDeque;

use sa_coherence::MemReqId;
use sa_isa::{Addr, Cycle, Line, Value};

use crate::gate::Key;
use crate::rob::RobId;
use crate::sq::SqId;

/// Why a load is not executing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// The StoreSet predictor says an older same-set store is unresolved.
    StoreSet,
    /// Forwarding store matched but its data is not ready yet.
    ForwardData(SqId),
    /// Must wait for the matched store to write to the L1
    /// (`370-NoSpec`, or a partial overlap in any model).
    StoreCommit(SqId),
    /// An older fence is still in the window.
    Fence,
    /// The memory system had no MSHR free; retry.
    MshrFull,
    /// An invalidation or eviction hit the line while this load's memory
    /// access was in flight: the response would be a stale hit, so it is
    /// dropped and the load re-executes from scratch (as an L1 kills an
    /// in-flight hit when a probe takes the line).
    Replay,
}

/// Load execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadState {
    /// Address operand not ready yet.
    WaitDeps,
    /// Tried to execute and must retry.
    Blocked(BlockReason),
    /// In flight in the memory system.
    Issued(MemReqId),
    /// Has its value.
    Performed,
}

/// One load-queue entry.
#[derive(Debug, Clone)]
pub struct LqEntry {
    /// The ROB entry this load belongs to.
    pub rob_id: RobId,
    /// Static instruction PC.
    pub pc: u64,
    /// Byte address.
    pub addr: Addr,
    /// Access size in bytes.
    pub size: u8,
    /// Cache line (invalidation snoops match on this).
    pub line: Line,
    /// Execution state.
    pub state: LoadState,
    /// The loaded value, once performed.
    pub value: Value,
    /// Cycle the load performed.
    pub performed_at: Cycle,
    /// The store this load forwarded from, if any.
    pub fwd_from: Option<SqId>,
    /// The forwarding store's key — present iff this is an **SLF load**
    /// whose store was still in the SQ/SB at forwarding time.
    pub slf_key: Option<Key>,
    /// Performed while an older load was still unperformed
    /// (M-speculative; in-window load-load speculation).
    pub m_spec: bool,
    /// Issued past an older store with an unresolved address
    /// (D-speculative).
    pub d_spec: bool,
    /// Value of the core's LSQ epoch when this load last blocked. While
    /// the epoch is unchanged a retry is guaranteed to re-block for the
    /// same reason, so the scheduler skips it (pure memoization — no
    /// timing effect).
    pub attempt_epoch: u64,
    /// Memoized `passed_unresolved` of the forwarding-search miss that
    /// preceded an `MshrFull` block: while the epoch is unchanged the
    /// search would return the same miss, so the retry reissues to memory
    /// directly.
    pub miss_passed_unresolved: bool,
}

/// The load queue: a bounded FIFO ordered by age.
#[derive(Debug)]
pub struct LoadQueue {
    entries: VecDeque<LqEntry>,
    capacity: usize,
}

impl LoadQueue {
    /// An empty LQ of `capacity` entries.
    pub fn new(capacity: usize) -> LoadQueue {
        LoadQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// `true` when no more loads can dispatch.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// `true` when the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Allocates an entry at the tail.
    ///
    /// # Panics
    ///
    /// Panics when full — the dispatcher must check [`LoadQueue::is_full`].
    pub fn alloc(&mut self, rob_id: RobId, pc: u64, addr: Addr, size: u8) -> &mut LqEntry {
        assert!(!self.is_full(), "LQ overflow");
        self.entries.push_back(LqEntry {
            rob_id,
            pc,
            addr,
            size,
            line: Line::containing(addr),
            state: LoadState::WaitDeps,
            value: 0,
            performed_at: 0,
            fwd_from: None,
            slf_key: None,
            m_spec: false,
            d_spec: false,
            attempt_epoch: 0,
            miss_passed_unresolved: false,
        });
        self.entries.back_mut().expect("just pushed")
    }

    fn position(&self, rob_id: RobId) -> Option<usize> {
        self.entries
            .binary_search_by_key(&rob_id, |e| e.rob_id)
            .ok()
    }

    /// Entry of the load with `rob_id`.
    pub fn get(&self, rob_id: RobId) -> Option<&LqEntry> {
        self.position(rob_id).map(|i| &self.entries[i])
    }

    /// Entry of the load with `rob_id`, mutably.
    pub fn get_mut(&mut self, rob_id: RobId) -> Option<&mut LqEntry> {
        self.position(rob_id).map(move |i| &mut self.entries[i])
    }

    /// Frees the oldest entry at retirement.
    ///
    /// # Panics
    ///
    /// Panics if the head is not the load `rob_id` — retirement is
    /// in-order.
    pub fn retire_head(&mut self, rob_id: RobId) -> LqEntry {
        let head = self.entries.pop_front().expect("retiring from empty LQ");
        assert_eq!(head.rob_id, rob_id, "LQ retirement out of order");
        head
    }

    /// `true` when any load older than `rob_id` has not performed.
    pub fn any_older_unperformed(&self, rob_id: RobId) -> bool {
        self.entries
            .iter()
            .take_while(|e| e.rob_id < rob_id)
            .any(|e| e.state != LoadState::Performed)
    }

    /// `true` when any load *older than* `rob_id` is an SLF load whose
    /// forwarding store is still pending according to `store_pending` —
    /// the SA-speculation shadow test (§IV-A).
    pub fn older_slf_pending(&self, rob_id: RobId, store_pending: impl Fn(Key) -> bool) -> bool {
        self.entries
            .iter()
            .take_while(|e| e.rob_id < rob_id)
            .any(|e| e.slf_key.is_some_and(&store_pending))
    }

    /// Removes all loads with `rob_id >= from`; returns them oldest-first.
    pub fn squash_from(&mut self, from: RobId) -> Vec<LqEntry> {
        let pos = self.entries.partition_point(|e| e.rob_id < from);
        self.entries.split_off(pos).into_iter().collect()
    }

    /// Iterates oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &LqEntry> {
        self.entries.iter()
    }

    /// Iterates oldest → youngest, mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut LqEntry> {
        self.entries.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lq() -> LoadQueue {
        LoadQueue::new(4)
    }

    #[test]
    fn alloc_and_lookup() {
        let mut q = lq();
        q.alloc(RobId(3), 0x400, 0x100, 8);
        q.alloc(RobId(7), 0x404, 0x108, 8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.get(RobId(3)).unwrap().addr, 0x100);
        assert!(q.get(RobId(5)).is_none());
        assert_eq!(q.get(RobId(7)).unwrap().line, Line::containing(0x108));
    }

    #[test]
    fn older_unperformed_detection() {
        let mut q = lq();
        q.alloc(RobId(1), 0, 0x100, 8);
        q.alloc(RobId(2), 0, 0x108, 8);
        assert!(q.any_older_unperformed(RobId(2)));
        q.get_mut(RobId(1)).unwrap().state = LoadState::Performed;
        assert!(!q.any_older_unperformed(RobId(2)));
        assert!(!q.any_older_unperformed(RobId(1)));
    }

    #[test]
    fn slf_shadow_detection() {
        let mut q = lq();
        let key = Key {
            slot: 3,
            sorting: false,
        };
        q.alloc(RobId(1), 0, 0x100, 8).slf_key = Some(key);
        q.alloc(RobId(2), 0, 0x108, 8);
        // Store still pending -> shadow over the younger load.
        assert!(q.older_slf_pending(RobId(2), |k| k == key));
        // Store left the SB -> shadow lifted.
        assert!(!q.older_slf_pending(RobId(2), |_| false));
        // The SLF load itself is not shadowed by itself.
        assert!(!q.older_slf_pending(RobId(1), |k| k == key));
    }

    #[test]
    fn squash_suffix() {
        let mut q = lq();
        q.alloc(RobId(1), 0, 0x100, 8);
        q.alloc(RobId(5), 0, 0x108, 8);
        q.alloc(RobId(9), 0, 0x110, 8);
        let removed = q.squash_from(RobId(5));
        assert_eq!(removed.len(), 2);
        assert_eq!(q.len(), 1);
        assert!(q.get(RobId(1)).is_some());
    }

    #[test]
    fn retire_head_in_order() {
        let mut q = lq();
        q.alloc(RobId(1), 0, 0x100, 8);
        let e = q.retire_head(RobId(1));
        assert_eq!(e.rob_id, RobId(1));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn retire_out_of_order_panics() {
        let mut q = lq();
        q.alloc(RobId(1), 0, 0x100, 8);
        q.alloc(RobId(2), 0, 0x108, 8);
        q.retire_head(RobId(2));
    }

    #[test]
    #[should_panic(expected = "LQ overflow")]
    fn overflow_panics() {
        let mut q = LoadQueue::new(1);
        q.alloc(RobId(1), 0, 0x100, 8);
        q.alloc(RobId(2), 0, 0x108, 8);
    }
}
