//! A flat metrics registry with an offline Prometheus text exporter.
//!
//! The simulator's end state (a `Report`) flattens into this registry so
//! one representation feeds every export path: Prometheus text format
//! for scrape-style tooling, and CSV for spreadsheets. Everything is
//! hand-written — the workspace builds with zero external dependencies.
//!
//! Metrics are grouped into *families* (one name, one kind, one help
//! string) holding one sample per label set, mirroring the Prometheus
//! data model. Insertion order is preserved so exports are
//! deterministic.

/// Metric kind, controlling the `# TYPE` line and sample expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count of events (slots, squashes, accesses).
    Counter,
    /// Point-in-time value (IPC, shares).
    Gauge,
    /// Pre-binned distribution; exported as cumulative `_bucket{le=..}`
    /// samples plus `_sum` and `_count`.
    Histogram,
}

/// One labelled sample within a family.
#[derive(Debug, Clone)]
struct Sample {
    labels: Vec<(String, String)>,
    value: SampleValue,
}

#[derive(Debug, Clone)]
enum SampleValue {
    Scalar(f64),
    /// `hist[i]` counts observations of value exactly `i`.
    Hist(Vec<u64>),
    /// Log2-bucketed histogram with real upper-bound `le` labels.
    Log2(Box<crate::Log2Hist>),
}

/// One metric family: a name, a kind, a help string, and its samples.
#[derive(Debug, Clone)]
struct Family {
    name: String,
    kind: MetricKind,
    help: String,
    samples: Vec<Sample>,
}

/// The registry: an ordered collection of metric families.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: Vec<Family>,
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{}", v)
    }
}

fn fmt_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", body.join(","))
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn family(&mut self, name: &str, kind: MetricKind, help: &str) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            assert!(
                self.families[i].kind == kind,
                "metric family {name} registered twice with different kinds"
            );
            return &mut self.families[i];
        }
        self.families.push(Family {
            name: name.to_string(),
            kind,
            help: help.to_string(),
            samples: Vec::new(),
        });
        self.families.last_mut().unwrap()
    }

    fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    /// Records a counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.family(name, MetricKind::Counter, help)
            .samples
            .push(Sample {
                labels: Registry::own_labels(labels),
                value: SampleValue::Scalar(value as f64),
            });
    }

    /// Records a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.family(name, MetricKind::Gauge, help)
            .samples
            .push(Sample {
                labels: Registry::own_labels(labels),
                value: SampleValue::Scalar(value),
            });
    }

    /// Records a histogram sample; `hist[i]` counts observations of
    /// value exactly `i` (the occupancy-histogram shape).
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], hist: &[u64]) {
        self.family(name, MetricKind::Histogram, help)
            .samples
            .push(Sample {
                labels: Registry::own_labels(labels),
                value: SampleValue::Hist(hist.to_vec()),
            });
    }

    /// Records a log2-bucketed histogram sample ([`crate::Log2Hist`]).
    /// Exported with Prometheus-correct cumulative `_bucket` lines whose
    /// `le` labels carry the buckets' real upper bounds (powers of two),
    /// plus `_sum` and `_count`.
    pub fn log2_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &crate::Log2Hist,
    ) {
        self.family(name, MetricKind::Histogram, help)
            .samples
            .push(Sample {
                labels: Registry::own_labels(labels),
                value: SampleValue::Log2(Box::new(hist.clone())),
            });
    }

    /// Number of samples across all families.
    pub fn len(&self) -> usize {
        self.families.iter().map(|f| f.samples.len()).sum()
    }

    /// `true` when the registry holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (v0.0.4): `# HELP` / `# TYPE` once per family, one line per
    /// sample; histograms expand to cumulative `_bucket` lines plus
    /// `_sum` and `_count`.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            let ty = match f.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            out.push_str(&format!("# TYPE {} {}\n", f.name, ty));
            for s in &f.samples {
                match &s.value {
                    SampleValue::Scalar(v) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            f.name,
                            fmt_labels(&s.labels),
                            fmt_value(*v)
                        ));
                    }
                    SampleValue::Log2(h) => {
                        // Only emit buckets up to the highest occupied
                        // one — 64 mostly-empty lines per sample would
                        // drown the exposition.
                        let last = h
                            .buckets()
                            .iter()
                            .rposition(|&c| c != 0)
                            .map_or(0, |i| i + 1);
                        let mut cum = 0u64;
                        for (b, &c) in h.buckets().iter().enumerate().take(last) {
                            cum += c;
                            let mut labels = s.labels.clone();
                            labels.push((
                                "le".to_string(),
                                crate::hist::log2_bucket_bound(b).to_string(),
                            ));
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                f.name,
                                fmt_labels(&labels),
                                cum
                            ));
                        }
                        let mut labels = s.labels.clone();
                        labels.push(("le".to_string(), "+Inf".to_string()));
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            f.name,
                            fmt_labels(&labels),
                            h.count()
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            f.name,
                            fmt_labels(&s.labels),
                            h.sum()
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            f.name,
                            fmt_labels(&s.labels),
                            h.count()
                        ));
                    }
                    SampleValue::Hist(h) => {
                        let mut cum = 0u64;
                        let mut sum = 0u64;
                        for (i, c) in h.iter().enumerate() {
                            cum += c;
                            sum += i as u64 * c;
                            let mut labels = s.labels.clone();
                            labels.push(("le".to_string(), i.to_string()));
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                f.name,
                                fmt_labels(&labels),
                                cum
                            ));
                        }
                        let mut labels = s.labels.clone();
                        labels.push(("le".to_string(), "+Inf".to_string()));
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            f.name,
                            fmt_labels(&labels),
                            cum
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            f.name,
                            fmt_labels(&s.labels),
                            sum
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            f.name,
                            fmt_labels(&s.labels),
                            cum
                        ));
                    }
                }
            }
        }
        out
    }

    /// Renders scalar samples as `name,labels,value` CSV (histograms are
    /// skipped — they have their own wide format in the exporters that
    /// need them).
    pub fn csv(&self) -> String {
        let mut out = String::from("metric,labels,value\n");
        for f in &self.families {
            for s in &f.samples {
                if let SampleValue::Scalar(v) = &s.value {
                    let labels: Vec<String> = s
                        .labels
                        .iter()
                        .map(|(k, val)| format!("{}={}", k, val))
                        .collect();
                    out.push_str(&format!(
                        "{},{},{}\n",
                        f.name,
                        labels.join(";"),
                        fmt_value(*v)
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_emits_help_and_type_once_per_family() {
        let mut r = Registry::new();
        r.counter("sa_cycles_total", "Simulated cycles", &[], 100);
        r.counter(
            "sa_retired_total",
            "Retired instructions",
            &[("core", "0")],
            40,
        );
        r.counter(
            "sa_retired_total",
            "Retired instructions",
            &[("core", "1")],
            60,
        );
        let text = r.prometheus_text();
        assert_eq!(text.matches("# HELP sa_retired_total").count(), 1);
        assert_eq!(text.matches("# TYPE sa_retired_total counter").count(), 1);
        assert!(text.contains("sa_cycles_total 100\n"));
        assert!(text.contains("sa_retired_total{core=\"0\"} 40\n"));
        assert!(text.contains("sa_retired_total{core=\"1\"} 60\n"));
    }

    #[test]
    fn histogram_expands_to_cumulative_buckets() {
        let mut r = Registry::new();
        r.histogram("sa_rob_occ", "ROB occupancy", &[("core", "0")], &[1, 2, 3]);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE sa_rob_occ histogram"));
        assert!(text.contains("sa_rob_occ_bucket{core=\"0\",le=\"0\"} 1\n"));
        assert!(text.contains("sa_rob_occ_bucket{core=\"0\",le=\"1\"} 3\n"));
        assert!(text.contains("sa_rob_occ_bucket{core=\"0\",le=\"2\"} 6\n"));
        assert!(text.contains("sa_rob_occ_bucket{core=\"0\",le=\"+Inf\"} 6\n"));
        // sum = 0*1 + 1*2 + 2*3 = 8; count = 6
        assert!(text.contains("sa_rob_occ_sum{core=\"0\"} 8\n"));
        assert!(text.contains("sa_rob_occ_count{core=\"0\"} 6\n"));
    }

    #[test]
    fn log2_histogram_uses_real_upper_bounds() {
        let mut h = crate::Log2Hist::new();
        h.observe(1); // bucket 1, le=1
        h.observe(3); // bucket 2, le=2
        h.observe(3);
        let mut r = Registry::new();
        r.log2_histogram("sa_span_ns", "span latency", &[("path", "retire")], &h);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE sa_span_ns histogram"));
        assert!(text.contains("sa_span_ns_bucket{path=\"retire\",le=\"1\"} 1\n"));
        assert!(text.contains("sa_span_ns_bucket{path=\"retire\",le=\"3\"} 3\n"));
        assert!(text.contains("sa_span_ns_bucket{path=\"retire\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("sa_span_ns_sum{path=\"retire\"} 7\n"));
        assert!(text.contains("sa_span_ns_count{path=\"retire\"} 3\n"));
        // Buckets above the last occupied one are not expanded.
        assert!(!text.contains("le=\"7\""));
    }

    #[test]
    fn gauges_format_floats_and_integers() {
        let mut r = Registry::new();
        r.gauge("sa_ipc", "Machine IPC", &[], 2.5);
        r.gauge("sa_share", "Share", &[], 3.0);
        let text = r.prometheus_text();
        assert!(text.contains("sa_ipc 2.5\n"));
        assert!(text.contains("sa_share 3\n"));
    }

    #[test]
    fn csv_skips_histograms() {
        let mut r = Registry::new();
        r.counter("a", "a", &[("core", "0")], 7);
        r.histogram("h", "h", &[], &[1]);
        let csv = r.csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("a,core=0,7\n"));
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_conflicts_are_rejected() {
        let mut r = Registry::new();
        r.counter("m", "m", &[], 1);
        r.gauge("m", "m", &[], 1.0);
    }
}
