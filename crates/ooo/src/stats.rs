//! Per-core statistics — the raw counters behind the paper's Table IV,
//! Figure 9 and Figure 10.

/// Why a squash happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SquashCause {
    /// A store's address resolved under a younger load that had already
    /// read the location (memory-dependence misspeculation).
    MemOrder,
    /// Invalidation/eviction hit an M- or D-speculative load — the
    /// classic in-window load-load speculation all five configurations
    /// (including x86) perform.
    LoadLoad,
    /// Invalidation/eviction hit an SA-speculative load — a
    /// **store-atomicity misspeculation** (would *not* squash under x86).
    StoreAtomicity,
}

impl SquashCause {
    /// All causes.
    pub const ALL: [SquashCause; 3] = [
        SquashCause::MemOrder,
        SquashCause::LoadLoad,
        SquashCause::StoreAtomicity,
    ];

    fn index(self) -> usize {
        match self {
            SquashCause::MemOrder => 0,
            SquashCause::LoadLoad => 1,
            SquashCause::StoreAtomicity => 2,
        }
    }
}

/// Raw per-core counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions retired.
    pub retired_instrs: u64,
    /// Loads retired.
    pub retired_loads: u64,
    /// Stores retired.
    pub retired_stores: u64,
    /// Branches retired.
    pub retired_branches: u64,
    /// Fences retired.
    pub retired_fences: u64,
    /// Retired loads whose value came by store-to-load forwarding
    /// (Table IV "Forwarded").
    pub forwarded_loads: u64,
    /// Loads that went to the memory system.
    pub loads_to_memory: u64,
    /// Loads that blocked at perform waiting for a store's L1 write
    /// (`370-NoSpec` enforcement, or partial overlaps).
    pub nospec_block_events: u64,
    /// Instructions that stalled at the ROB head because the retire gate
    /// was closed (Table IV "Gate Stalls").
    pub gate_stall_events: u64,
    /// Total cycles the gate kept the ROB head stalled.
    pub gate_stall_cycles: u64,
    /// Cycles an SLF load stalled at retire waiting for the SB to drain
    /// (`370-SLFSpec` rule).
    pub slfspec_stall_cycles: u64,
    /// Cycles with zero dispatch due to a full ROB (Figure 9).
    pub rob_stall_cycles: u64,
    /// Cycles with zero dispatch due to a full LQ (Figure 9).
    pub lq_stall_cycles: u64,
    /// Cycles with zero dispatch due to a full SQ/SB (Figure 9).
    pub sq_stall_cycles: u64,
    /// Squash events by cause.
    pub squashes: [u64; 3],
    /// Instructions squashed (and hence re-executed) by cause
    /// (Table IV "Re-executed instr." is the `StoreAtomicity` slice).
    pub reexec_instrs: [u64; 3],
    /// Branch mispredicts.
    pub branch_mispredicts: u64,
    /// Stores committed from the SB to the L1.
    pub sb_commits: u64,
    /// Total cycles the paper's retire gate was closed.
    pub gate_closed_cycles: u64,
    /// Times the gate was closed by a retiring SLF load.
    pub gate_closures: u64,
}

impl CoreStats {
    /// Records a squash of `n` instructions.
    pub fn record_squash(&mut self, cause: SquashCause, n: u64) {
        self.squashes[cause.index()] += 1;
        self.reexec_instrs[cause.index()] += n;
    }

    /// Squash events for `cause`.
    pub fn squashes_for(&self, cause: SquashCause) -> u64 {
        self.squashes[cause.index()]
    }

    /// Re-executed instructions for `cause`.
    pub fn reexec_for(&self, cause: SquashCause) -> u64 {
        self.reexec_instrs[cause.index()]
    }

    /// Table IV column: % of retired instructions that are loads.
    pub fn loads_pct(&self) -> f64 {
        pct(self.retired_loads, self.retired_instrs)
    }

    /// Table IV column: % of retired instructions that are forwarded
    /// loads.
    pub fn forwarded_pct(&self) -> f64 {
        pct(self.forwarded_loads, self.retired_instrs)
    }

    /// Table IV column: % of retired instructions that stalled on a
    /// closed gate.
    pub fn gate_stall_pct(&self) -> f64 {
        pct(self.gate_stall_events, self.retired_instrs)
    }

    /// Table IV column: average stall cycles per gate stall.
    pub fn avg_gate_stall_cycles(&self) -> f64 {
        if self.gate_stall_events == 0 {
            0.0
        } else {
            self.gate_stall_cycles as f64 / self.gate_stall_events as f64
        }
    }

    /// Table IV column: % of instructions re-executed due to
    /// store-atomicity misspeculation.
    pub fn sa_reexec_pct(&self) -> f64 {
        pct(
            self.reexec_for(SquashCause::StoreAtomicity),
            self.retired_instrs,
        )
    }

    /// Merges another core's counters into this one (for workload-level
    /// aggregation).
    pub fn merge(&mut self, o: &CoreStats) {
        self.cycles = self.cycles.max(o.cycles);
        self.retired_instrs += o.retired_instrs;
        self.retired_loads += o.retired_loads;
        self.retired_stores += o.retired_stores;
        self.retired_branches += o.retired_branches;
        self.retired_fences += o.retired_fences;
        self.forwarded_loads += o.forwarded_loads;
        self.loads_to_memory += o.loads_to_memory;
        self.nospec_block_events += o.nospec_block_events;
        self.gate_stall_events += o.gate_stall_events;
        self.gate_stall_cycles += o.gate_stall_cycles;
        self.slfspec_stall_cycles += o.slfspec_stall_cycles;
        self.rob_stall_cycles += o.rob_stall_cycles;
        self.lq_stall_cycles += o.lq_stall_cycles;
        self.sq_stall_cycles += o.sq_stall_cycles;
        for i in 0..3 {
            self.squashes[i] += o.squashes[i];
            self.reexec_instrs[i] += o.reexec_instrs[i];
        }
        self.branch_mispredicts += o.branch_mispredicts;
        self.sb_commits += o.sb_commits;
        self.gate_closed_cycles += o.gate_closed_cycles;
        self.gate_closures += o.gate_closures;
    }
}

use sa_metrics::pct;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squash_bookkeeping() {
        let mut s = CoreStats::default();
        s.record_squash(SquashCause::StoreAtomicity, 12);
        s.record_squash(SquashCause::StoreAtomicity, 8);
        s.record_squash(SquashCause::LoadLoad, 5);
        assert_eq!(s.squashes_for(SquashCause::StoreAtomicity), 2);
        assert_eq!(s.reexec_for(SquashCause::StoreAtomicity), 20);
        assert_eq!(s.reexec_for(SquashCause::LoadLoad), 5);
        assert_eq!(s.reexec_for(SquashCause::MemOrder), 0);
    }

    #[test]
    fn percentage_helpers() {
        let s = CoreStats {
            retired_instrs: 1000,
            retired_loads: 240,
            forwarded_loads: 37,
            gate_stall_events: 11,
            gate_stall_cycles: 110,
            ..CoreStats::default()
        };
        assert!((s.loads_pct() - 24.0).abs() < 1e-9);
        assert!((s.forwarded_pct() - 3.7).abs() < 1e-9);
        assert!((s.gate_stall_pct() - 1.1).abs() < 1e-9);
        assert!((s.avg_gate_stall_cycles() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_are_zero() {
        let s = CoreStats::default();
        assert_eq!(s.loads_pct(), 0.0);
        assert_eq!(s.avg_gate_stall_cycles(), 0.0);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = CoreStats {
            cycles: 100,
            retired_instrs: 10,
            ..CoreStats::default()
        };
        let b = CoreStats {
            cycles: 150,
            retired_instrs: 20,
            ..CoreStats::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.retired_instrs, 30);
    }
}
