//! Run reports: the numbers behind Table IV, Figure 9 and Figure 10.

use sa_coherence::MemStats;
use sa_isa::ConsistencyModel;
use sa_metrics::{ratio, CoreMetrics, CpiCategory, CpiStack, OccupancyHists, Registry, Sample};
use sa_ooo::CoreStats;

/// Figure 9's stacked bars: the share of execution cycles in which the
/// processor could not dispatch because a window resource was full.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StallBreakdown {
    /// % of cycles stalled on a full ROB.
    pub rob_pct: f64,
    /// % of cycles stalled on a full LQ.
    pub lq_pct: f64,
    /// % of cycles stalled on a full SQ/SB.
    pub sq_pct: f64,
}

impl StallBreakdown {
    /// Total stalled share.
    pub fn total_pct(&self) -> f64 {
        self.rob_pct + self.lq_pct + self.sq_pct
    }
}

/// Statistics snapshot of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Consistency model that ran.
    pub model: ConsistencyModel,
    /// Wall-clock of the run in cycles (time until the last core
    /// finished — Figure 10's metric).
    pub cycles: u64,
    /// Retire width of each core (the CPI stack sums to
    /// `width × cycles` per core).
    pub width: usize,
    /// Per-core counters.
    pub per_core: Vec<CoreStats>,
    /// Per-core aggregate metrics: retire-slot CPI stacks and
    /// window-occupancy histograms.
    pub metrics: Vec<CoreMetrics>,
    /// Interval time-series (empty when sampling was disabled or the run
    /// was shorter than one interval).
    pub samples: Vec<Sample>,
    /// The sampling interval the run used (0 = disabled).
    pub sample_interval: u64,
    /// Memory-system counters.
    pub mem: MemStats,
    /// Causal gate-episode analysis, when the run was driven with a
    /// [`sa_forensics::Forensics`] tracer (attach via
    /// [`Report::with_forensics`]). `None` on untraced runs.
    pub forensics: Option<sa_forensics::Summary>,
}

impl Report {
    /// Attaches a forensics summary (from
    /// `Multicore::into_tracer().finish(..)`) so exporters see it.
    pub fn with_forensics(mut self, forensics: sa_forensics::Summary) -> Report {
        self.forensics = Some(forensics);
        self
    }

    /// All cores' counters merged (sums; `cycles` is the max).
    pub fn total(&self) -> CoreStats {
        let mut t = CoreStats::default();
        for c in &self.per_core {
            t.merge(c);
        }
        t
    }

    /// Figure 9's breakdown, aggregated over cores (stall cycles over
    /// total per-core execution cycles).
    pub fn stalls(&self) -> StallBreakdown {
        let cycles: u64 = self.per_core.iter().map(|c| c.cycles).sum();
        if cycles == 0 {
            return StallBreakdown::default();
        }
        let rob: u64 = self.per_core.iter().map(|c| c.rob_stall_cycles).sum();
        let lq: u64 = self.per_core.iter().map(|c| c.lq_stall_cycles).sum();
        let sq: u64 = self.per_core.iter().map(|c| c.sq_stall_cycles).sum();
        let f = 100.0 / cycles as f64;
        StallBreakdown {
            rob_pct: rob as f64 * f,
            lq_pct: lq as f64 * f,
            sq_pct: sq as f64 * f,
        }
    }

    /// Execution time normalized to `baseline` (Figure 10's metric).
    pub fn normalized_time(&self, baseline: &Report) -> f64 {
        ratio(self.cycles as f64, baseline.cycles as f64)
    }

    /// Instructions per cycle across the machine.
    pub fn ipc(&self) -> f64 {
        ratio(self.total().retired_instrs as f64, self.cycles as f64)
    }

    /// All cores' CPI stacks merged.
    pub fn cpi_total(&self) -> CpiStack {
        let mut t = CpiStack::default();
        for m in &self.metrics {
            t.merge(&m.cpi);
        }
        t
    }

    /// All cores' occupancy histograms merged.
    pub fn occupancy_total(&self) -> OccupancyHists {
        let mut t = OccupancyHists::default();
        for m in &self.metrics {
            t.merge(&m.occ);
        }
        t
    }

    /// The CPI-stack accounting invariant: every core's categories sum
    /// to exactly `width × cycles` for that core.
    pub fn cpi_invariant_holds(&self) -> bool {
        self.metrics
            .iter()
            .zip(&self.per_core)
            .all(|(m, s)| m.cpi.invariant_holds(self.width as u64, s.cycles))
    }

    /// Flattens the whole report into a metrics [`Registry`], the common
    /// representation behind the Prometheus/CSV exporters.
    pub fn registry(&self) -> Registry {
        let model = self.model.label();
        let ml = [("model", model)];
        let mut r = Registry::new();
        r.counter(
            "sa_cycles_total",
            "Wall-clock of the run in cycles",
            &ml,
            self.cycles,
        );
        r.gauge("sa_ipc", "Machine instructions per cycle", &ml, self.ipc());
        for (i, (s, m)) in self.per_core.iter().zip(&self.metrics).enumerate() {
            let core = i.to_string();
            let cl = [("model", model), ("core", core.as_str())];
            r.counter(
                "sa_core_cycles_total",
                "Core execution cycles",
                &cl,
                s.cycles,
            );
            r.counter(
                "sa_retired_instructions_total",
                "Retired instructions",
                &cl,
                s.retired_instrs,
            );
            r.counter(
                "sa_gate_closed_cycles_total",
                "Cycles the retire gate was closed",
                &cl,
                s.gate_closed_cycles,
            );
            r.counter(
                "sa_squashes_total",
                "Squash events (all causes)",
                &cl,
                s.squashes.iter().sum(),
            );
            r.counter(
                "sa_sb_commits_total",
                "Store-buffer commits to the L1",
                &cl,
                s.sb_commits,
            );
            for cat in CpiCategory::ALL {
                let labels = [
                    ("model", model),
                    ("core", core.as_str()),
                    ("category", cat.label()),
                ];
                r.counter(
                    "sa_retire_slots_total",
                    "Retire slots attributed by CPI-stack category",
                    &labels,
                    m.cpi.get(cat),
                );
            }
            r.histogram(
                "sa_rob_occupancy",
                "ROB occupancy per cycle",
                &cl,
                &m.occ.rob,
            );
            r.histogram("sa_lq_occupancy", "LQ occupancy per cycle", &cl, &m.occ.lq);
            r.histogram(
                "sa_sq_occupancy",
                "SQ/SB occupancy per cycle",
                &cl,
                &m.occ.sq,
            );
        }
        r.counter(
            "sa_mem_invalidations_total",
            "Coherence invalidations",
            &ml,
            self.mem.invalidations(),
        );
        r.counter(
            "sa_mem_flits_total",
            "Network flits sent",
            &ml,
            self.mem.flits_sent,
        );
        if let Some(f) = &self.forensics {
            f.register(&mut r);
        }
        r
    }

    /// A dynamic-energy proxy (arbitrary units): weighted counts of the
    /// events that dominate dynamic energy in the structures the paper's
    /// mechanism touches — cache accesses, network flits, DRAM accesses,
    /// and squash-replayed instructions.
    ///
    /// §VI-B argues the proposal does not significantly alter dynamic
    /// energy because it adds no extra snoops; this proxy makes that
    /// claim checkable: for the same workload, per-model values should
    /// differ by little beyond the squash-replay term.
    pub fn energy_proxy(&self) -> f64 {
        let t = self.total();
        let mem = &self.mem;
        let l1 = mem.demand_loads() as f64 + t.sb_commits as f64;
        let l2: f64 = mem
            .per_core
            .iter()
            .map(|c| (c.l2_hits + c.misses) as f64)
            .sum();
        let l3: f64 = mem.per_bank.iter().map(|b| (b.gets + b.getm) as f64).sum();
        let dram: f64 = mem.per_bank.iter().map(|b| b.l3_misses as f64).sum();
        let flits = mem.flits_sent as f64;
        let replays: f64 = t.reexec_instrs.iter().sum::<u64>() as f64;
        l1 * ENERGY_WEIGHT_L1
            + l2 * ENERGY_WEIGHT_L2
            + l3 * ENERGY_WEIGHT_L3
            + dram * ENERGY_WEIGHT_DRAM
            + flits * ENERGY_WEIGHT_FLIT
            + replays * ENERGY_WEIGHT_REPLAY
    }
}

/// Relative dynamic-energy weight of an L1 access, the
/// [`Report::energy_proxy`] unit (CACTI-class cache models put an L1
/// read around a few pJ; everything below is scaled to it).
pub const ENERGY_WEIGHT_L1: f64 = 1.0;
/// An L2 access: a few times the L1 (larger array, higher associativity).
pub const ENERGY_WEIGHT_L2: f64 = 4.0;
/// An L3 bank access: an order of magnitude over the L1 (1 MB bank plus
/// the directory lookup).
pub const ENERGY_WEIGHT_L3: f64 = 12.0;
/// A DRAM access: roughly two orders of magnitude over the L1
/// (row activation + I/O).
pub const ENERGY_WEIGHT_DRAM: f64 = 80.0;
/// One network flit traversing the interconnect.
pub const ENERGY_WEIGHT_FLIT: f64 = 2.0;
/// One squash-replayed instruction re-flowing through the pipeline
/// (fetch/rename/execute energy, no memory side).
pub const ENERGY_WEIGHT_REPLAY: f64 = 1.5;

/// Geometric mean of a slice of ratios (the paper reports geomeans in
/// Figure 10). Returns 0 for an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, per_core: Vec<CoreStats>) -> Report {
        let n = per_core.len();
        Report {
            model: ConsistencyModel::X86,
            cycles,
            width: 5,
            per_core,
            metrics: vec![CoreMetrics::default(); n],
            samples: Vec::new(),
            sample_interval: 0,
            mem: MemStats::default(),
            forensics: None,
        }
    }

    #[test]
    fn stall_breakdown_percentages() {
        let c = CoreStats {
            cycles: 1000,
            rob_stall_cycles: 100,
            lq_stall_cycles: 50,
            sq_stall_cycles: 25,
            ..CoreStats::default()
        };
        let r = report(1000, vec![c, c]);
        let s = r.stalls();
        assert!((s.rob_pct - 10.0).abs() < 1e-9);
        assert!((s.lq_pct - 5.0).abs() < 1e-9);
        assert!((s.sq_pct - 2.5).abs() < 1e-9);
        assert!((s.total_pct() - 17.5).abs() < 1e-9);
    }

    #[test]
    fn normalized_time_ratio() {
        let a = report(1025, vec![]);
        let b = report(1000, vec![]);
        assert!((a.normalized_time(&b) - 1.025).abs() < 1e-12);
    }

    #[test]
    fn ipc_computation() {
        let c = CoreStats {
            cycles: 100,
            retired_instrs: 250,
            ..CoreStats::default()
        };
        let r = report(100, vec![c]);
        assert!((r.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_proxy_counts_events() {
        let mut r = report(
            100,
            vec![CoreStats {
                sb_commits: 10,
                ..CoreStats::default()
            }],
        );
        assert!((r.energy_proxy() - 10.0).abs() < 1e-9, "10 L1 writes");
        r.mem.flits_sent = 5;
        assert!(
            (r.energy_proxy() - 20.0).abs() < 1e-9,
            "plus 5 flits at weight 2"
        );
    }

    #[test]
    fn empty_report_is_zeroes() {
        let r = report(0, vec![]);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.stalls(), StallBreakdown::default());
    }
}
