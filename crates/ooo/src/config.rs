//! Core configuration (the processor half of the paper's Table III).

/// A deliberately broken pipeline variant, injected via
/// [`CoreConfig::injected_bug`] for fuzzer self-tests: the differential
/// oracle must *detect* these, proving it would also catch an accidental
/// bug of the same shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedBug {
    /// The retire gate reopens on *any* SB commit instead of only on the
    /// commit matching the closing key — the §III key match dropped. A
    /// forwarded load whose store sits behind older SB entries then
    /// retires as soon as the oldest unrelated store commits, exposing
    /// non-store-atomic outcomes on the `370-SLFSoS-key` config.
    GateKeyMatch,
    /// SLF loads never close the retire gate at all: `370-SLFSoS` /
    /// `370-SLFSoS-key` silently degrade to x86 forwarding behavior.
    GateNoClose,
}

impl InjectedBug {
    /// Parses the `--mutate` spelling (`gate-key`, `gate-no-close`).
    pub fn parse(s: &str) -> Option<InjectedBug> {
        match s {
            "gate-key" => Some(InjectedBug::GateKeyMatch),
            "gate-no-close" => Some(InjectedBug::GateNoClose),
            _ => None,
        }
    }

    /// The `--mutate` spelling.
    pub fn label(&self) -> &'static str {
        match self {
            InjectedBug::GateKeyMatch => "gate-key",
            InjectedBug::GateNoClose => "gate-no-close",
        }
    }

    /// All injectable bugs.
    pub const ALL: [InjectedBug; 2] = [InjectedBug::GateKeyMatch, InjectedBug::GateNoClose];
}

/// Error from [`CoreConfig::check`]: a parameter combination the
/// pipeline's invariants reject. The `Display` text matches the panic
/// messages [`CoreConfig::validate`] historically produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreConfigError {
    /// `width == 0`.
    ZeroWidth,
    /// `rob_entries == 0`.
    EmptyRob,
    /// `lq_entries == 0`.
    EmptyLq,
    /// `sq_sb_entries < 2`.
    SqSbTooSmall,
    /// `sched_window == 0`.
    ZeroSchedWindow,
    /// `load_ports == 0 || store_ports == 0`.
    NoAguPorts,
    /// `sq_sb_entries` does not fit the 16-bit key position field.
    KeyPositionOverflow,
    /// `gate_keys == 0`.
    NoGateKeys,
}

impl std::fmt::Display for CoreConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreConfigError::ZeroWidth => write!(f, "width must be positive"),
            CoreConfigError::EmptyRob => write!(f, "ROB must be non-empty"),
            CoreConfigError::EmptyLq => write!(f, "LQ must be non-empty"),
            CoreConfigError::SqSbTooSmall => write!(f, "SQ/SB needs at least two entries"),
            CoreConfigError::ZeroSchedWindow => write!(f, "scheduler window must be positive"),
            CoreConfigError::NoAguPorts => write!(f, "need AGU ports"),
            CoreConfigError::KeyPositionOverflow => write!(f, "key position bits limited to 16"),
            CoreConfigError::NoGateKeys => write!(f, "gate needs at least one key register"),
        }
    }
}

impl std::error::Error for CoreConfigError {}

/// Out-of-order core parameters. Defaults are the paper's Skylake-like
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Dispatch/issue/retire width (5).
    pub width: usize,
    /// Reorder-buffer entries (224).
    pub rob_entries: usize,
    /// Load-queue entries (72).
    pub lq_entries: usize,
    /// Combined store-queue + store-buffer entries (56).
    pub sq_sb_entries: usize,
    /// Oldest non-completed instructions eligible for issue each cycle
    /// (reservation-station window).
    pub sched_window: usize,
    /// Loads that can begin execution per cycle (load AGU ports).
    pub load_ports: usize,
    /// Store addresses that can resolve per cycle (store AGU port).
    pub store_ports: usize,
    /// Fetch-redirect penalty after a branch mispredict, in cycles.
    pub redirect_penalty: u64,
    /// Pipeline-refill penalty after a memory-order/store-atomicity
    /// squash, in cycles.
    pub squash_penalty: u64,
    /// How many retired stores beyond the SB head prefetch ownership
    /// (RFO) concurrently (counted from the SQ/SB head; addresses known
    /// pre-retirement prefetch too).
    pub rfo_depth: usize,
    /// Enable the StoreSet memory-dependence predictor (Table III).
    pub storeset: bool,
    /// Pipeline SB commits at one store per cycle instead of
    /// serializing them at the L1 write latency (an ablation; the
    /// baseline drain is serialized).
    pub commit_pipelined: bool,
    /// Cycles one SB-head store occupies the L1 write path when it
    /// commits (the GEMS-style L1 store access cost; the paper's drain
    /// behavior implies a serialized, non-trivial commit cost).
    pub sb_commit_cycles: u64,
    /// Key registers in the retire gate. 1 is the paper's design; more
    /// lets further SLF loads retire through a closed gate (the
    /// multi-key extension, see the `ablation` harness).
    pub gate_keys: usize,
    /// Deliberately broken pipeline variant for fuzzer self-tests
    /// (`None` in every real configuration).
    pub injected_bug: Option<InjectedBug>,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            width: 5,
            rob_entries: 224,
            lq_entries: 72,
            sq_sb_entries: 56,
            sched_window: 97,
            load_ports: 2,
            store_ports: 1,
            redirect_penalty: 12,
            squash_penalty: 12,
            rfo_depth: 32,
            storeset: true,
            commit_pipelined: false,
            sb_commit_cycles: 8,
            gate_keys: 1,
            injected_bug: None,
        }
    }
}

impl CoreConfig {
    /// Checks invariants the pipeline relies on, returning the first
    /// violation as a typed error.
    pub fn check(&self) -> Result<(), CoreConfigError> {
        if self.width == 0 {
            return Err(CoreConfigError::ZeroWidth);
        }
        if self.rob_entries == 0 {
            return Err(CoreConfigError::EmptyRob);
        }
        if self.lq_entries == 0 {
            return Err(CoreConfigError::EmptyLq);
        }
        if self.sq_sb_entries < 2 {
            return Err(CoreConfigError::SqSbTooSmall);
        }
        if self.sched_window == 0 {
            return Err(CoreConfigError::ZeroSchedWindow);
        }
        if self.load_ports == 0 || self.store_ports == 0 {
            return Err(CoreConfigError::NoAguPorts);
        }
        if self.sq_sb_entries > u16::MAX as usize {
            return Err(CoreConfigError::KeyPositionOverflow);
        }
        if self.gate_keys == 0 {
            return Err(CoreConfigError::NoGateKeys);
        }
        Ok(())
    }

    /// Validates invariants the pipeline relies on.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized structures or widths; [`CoreConfig::check`]
    /// is the non-panicking form.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Extra storage (bits) the paper's mechanism adds for this geometry
    /// (§IV-D): per-LQ-entry SLF bit + key, the gate register, and one
    /// sorting bit per SQ/SB entry.
    pub fn sa_storage_bits(&self) -> usize {
        let pos_bits = usize::BITS as usize - (self.sq_sb_entries - 1).leading_zeros() as usize;
        let key_bits = pos_bits + 1; // position + sorting bit
        let per_lq = 1 + key_bits; // SLF bit + key copy
        let gate = 1 + key_bits; // open/closed bit + key register
        self.lq_entries * per_lq + gate + self.sq_sb_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iii() {
        let c = CoreConfig::default();
        assert_eq!(c.width, 5);
        assert_eq!(c.rob_entries, 224);
        assert_eq!(c.lq_entries, 72);
        assert_eq!(c.sq_sb_entries, 56);
        assert_eq!(c.injected_bug, None);
        c.validate();
        assert!(c.check().is_ok());
    }

    #[test]
    fn storage_overhead_matches_section_iv_d() {
        // 72-entry LQ, 56-entry SQ/SB: 8 bits/LQ entry + 8-bit gate
        // (1 + 7) + 56 sorting bits = 576 + 8 + 56 = 640 bits (80 bytes).
        let c = CoreConfig::default();
        assert_eq!(c.sa_storage_bits(), 640);
        assert_eq!(c.sa_storage_bits() / 8, 80);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        CoreConfig {
            width: 0,
            ..CoreConfig::default()
        }
        .validate();
    }

    #[test]
    fn check_returns_typed_errors() {
        let bad = |f: fn(&mut CoreConfig)| {
            let mut c = CoreConfig::default();
            f(&mut c);
            c.check().unwrap_err()
        };
        assert_eq!(bad(|c| c.width = 0), CoreConfigError::ZeroWidth);
        assert_eq!(bad(|c| c.rob_entries = 0), CoreConfigError::EmptyRob);
        assert_eq!(bad(|c| c.sq_sb_entries = 1), CoreConfigError::SqSbTooSmall);
        assert_eq!(
            bad(|c| c.sq_sb_entries = 70_000),
            CoreConfigError::KeyPositionOverflow
        );
        assert_eq!(bad(|c| c.gate_keys = 0), CoreConfigError::NoGateKeys);
        assert_eq!(
            bad(|c| c.load_ports = 0).to_string(),
            "need AGU ports",
            "Display matches the historical panic text"
        );
    }

    #[test]
    fn injected_bug_parse_roundtrip() {
        for bug in InjectedBug::ALL {
            assert_eq!(InjectedBug::parse(bug.label()), Some(bug));
        }
        assert_eq!(InjectedBug::parse("no-such-bug"), None);
    }
}
