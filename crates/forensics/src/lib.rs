//! # sa-forensics — streaming causal analysis of gate episodes
//!
//! The paper's qualitative claims — gate closures are rare and short
//! (§VI-A), and the outliers have specific microarchitectural causes
//! (Table IV: x264's contended condvar line, 505.mcf's eviction-induced
//! squashes) — are invisible in aggregate counters. This crate answers
//! *which store closed this gate, which remote core's invalidation
//! squashed these loads, and what did the episode cost* by consuming the
//! sa-trace event stream online and linking it into causal records.
//!
//! ## Episode state machine
//!
//! Per core, a [`GateEpisode`] is one closed period of the retire gate:
//!
//! ```text
//! GateClose{key}  --------------------------------  GateOpen{reason}
//!   | store addr joined from the SbEnter table        | KeyMatch / SbEmpty
//!   v                                                 v
//! open episode --- Squash{cause,by,line} events ---> completed episode
//!                    (blame + refill-cost windows)
//! ```
//!
//! A squash's *cost* is its refill window: the cycles from the squash
//! until the core next retires (or squashes again, or the run ends).
//! Each window is charged to the blaming core in the cross-core blame
//! matrix — row *i*, column *j* is "cycles core *i* lost to squashes
//! caused by core *j*"; the extra `local` column collects capacity
//! evictions and mem-order misspeculations, which have no remote author.
//!
//! ## Bounded memory
//!
//! The analyzer never retains the trace. Its state is: one open-episode
//! slot and one open refill window per core, a per-core SB key→address
//! table (bounded by SB capacity — entries die at `SbCommit`), the
//! `n×(n+1)` blame matrix, capped hotspot/folded-stack tables that count
//! drops instead of growing, two fixed 64-bucket log₂ histograms, and a
//! ring of the most recent completed episodes. In-progress episodes live
//! in a reusable arena ([`arena`]): slots are keyed by gate key and
//! cleared for reuse rather than freed, so squash-heavy runs recycle a
//! handful of records instead of churning one per closed period.

mod arena;
mod summary;

pub use summary::{BlameMatrix, CoreSummary, FoldedChain, Hotspot, Summary};

use sa_isa::{Addr, Cycle, FastMap};
use sa_trace::{EventKind, GateKey, GateOpenReason, SquashKind, TraceEvent, Tracer};

/// Log₂ histogram buckets (bucket `i` counts values in `[2^(i-1), 2^i)`,
/// bucket 0 counts zeros and ones).
pub const HIST_BUCKETS: usize = 64;

/// Hotspot table capacity: distinct lines tracked before counting drops.
pub const HOTSPOT_CAP: usize = 256;

/// Folded-stack table capacity (distinct victim/cause/blame/line chains).
pub const FOLDED_CAP: usize = 1024;

/// Completed-episode ring capacity.
pub const RING_CAP: usize = 128;

/// Why a gate episode ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpisodeEnd {
    /// The forwarding store's SB commit matched the locking key
    /// (`370-SLFSoS-key`).
    KeyMatch,
    /// The store buffer drained empty (`370-SLFSoS`).
    SbDrain,
    /// A squash cleared the locking context.
    Squash,
    /// The run ended with the gate still closed.
    EndOfRun,
}

impl EpisodeEnd {
    /// Stable label for exporters.
    pub fn label(self) -> &'static str {
        match self {
            EpisodeEnd::KeyMatch => "key-match",
            EpisodeEnd::SbDrain => "sb-drain",
            EpisodeEnd::Squash => "squash",
            EpisodeEnd::EndOfRun => "end-of-run",
        }
    }
}

/// One completed closed period of a core's retire gate, with everything
/// the paper's §III walkthrough talks about attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateEpisode {
    /// The core whose gate closed.
    pub core: u16,
    /// Key of the forwarding store, locked into the gate.
    pub key: GateKey,
    /// The forwarding store's byte address (joined from its `SbEnter`).
    pub store_addr: Option<Addr>,
    /// ROB id of the SLF load that closed the gate.
    pub rob: u64,
    /// Cycle the gate closed.
    pub closed_at: Cycle,
    /// Cycle the gate reopened (or the run ended).
    pub opened_at: Cycle,
    /// Why it reopened.
    pub end: EpisodeEnd,
    /// Additional `GateClose` events absorbed while already closed
    /// (multi-key gate configurations only; 0 for the paper's gate).
    pub extra_closes: u32,
    /// Squashes that landed during this episode.
    pub squashes: u64,
    /// µops removed by those squashes.
    pub squashed_uops: u64,
    /// Refill cycles charged to those squashes (windows closing after
    /// the episode still accrue here — the cause lies inside it).
    pub squash_cycles: u64,
    /// Blaming core of the first squash (`None` = local cause).
    pub first_blame: Option<u16>,
    /// Triggering line of the first squash.
    pub first_blame_line: Option<Addr>,
}

impl GateEpisode {
    /// Closed duration in cycles. The gate closes during the retire
    /// phase (that cycle counts as gate-closed) and opens during the
    /// store-drain phase (that cycle does not), so this equals the
    /// core's counted `gate_closed_cycles` contribution exactly.
    pub fn duration(&self) -> u64 {
        self.opened_at - self.closed_at
    }
}

/// Per-line squash aggregation (the Table IV mechanism surface).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct LineStats {
    squashes: u64,
    uops: u64,
    cycles: u64,
    /// Squashes authored by a remote core's invalidation.
    invalidations: u64,
    /// Squashes caused by a local capacity eviction.
    evictions: u64,
}

/// An open refill window: a squash happened at `since`, the core has not
/// retired since.
#[derive(Debug, Clone, Copy)]
struct RefillWindow {
    since: Cycle,
    by: Option<u16>,
    line: Option<Addr>,
    cause: SquashKind,
    /// `closed_at` of the episode the squash landed in, if one was open.
    episode: Option<Cycle>,
}

/// Per-core analyzer state. Episode records themselves live in the
/// shared [`arena::EpisodePool`]; this holds only slot indices.
#[derive(Debug, Default)]
struct CoreState {
    open: Option<u32>,
    /// Episodes that already ended but still own the open refill window
    /// (`closed_at`, pool slot).
    drained: Vec<(Cycle, u32)>,
    /// SB-resident stores: key → byte address (bounded by SB capacity).
    sb_addr: FastMap<GateKey, Addr>,
    refill: Option<RefillWindow>,
    episodes: u64,
    gate_cycles: u64,
    squashes: u64,
    squashed_uops: u64,
    squash_cycles: u64,
}

/// The streaming analyzer. Implements [`Tracer`], so
/// `Multicore::with_tracer(cfg, traces, Forensics::new(n))` attaches it
/// directly to a simulation (forcing the cycle-exact lockstep engine);
/// the `NullTracer` fast path is untouched.
#[derive(Debug)]
pub struct Forensics {
    cores: Vec<CoreState>,
    /// Reusable episode records shared by all cores (cleared, not
    /// freed; footprint = high-water mark of concurrently open
    /// episodes).
    pool: arena::EpisodePool,
    /// Blame cells, row-major `n × (n+1)`: cycles (col < n: remote core,
    /// col n: local causes).
    blame_cycles: Vec<u64>,
    /// Squash counts in the same layout.
    blame_counts: Vec<u64>,
    hotspots: FastMap<Addr, LineStats>,
    hotspot_dropped: u64,
    /// Folded cause chains `(victim, cause, blame, line)` → cycles.
    folded: FastMap<(u16, SquashKind, Option<u16>, Option<Addr>), u64>,
    folded_dropped: u64,
    episode_len_hist: [u64; HIST_BUCKETS],
    squash_cost_hist: [u64; HIST_BUCKETS],
    recent: std::collections::VecDeque<GateEpisode>,
    end_of_run: u64,
    last_cycle: Cycle,
}

fn log2_bucket(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize - 1).min(HIST_BUCKETS - 1)
}

impl Forensics {
    /// An analyzer for an `n_cores` simulation.
    pub fn new(n_cores: usize) -> Forensics {
        let cols = n_cores + 1;
        Forensics {
            cores: (0..n_cores).map(|_| CoreState::default()).collect(),
            pool: arena::EpisodePool::default(),
            blame_cycles: vec![0; n_cores * cols],
            blame_counts: vec![0; n_cores * cols],
            hotspots: FastMap::default(),
            hotspot_dropped: 0,
            folded: FastMap::default(),
            folded_dropped: 0,
            episode_len_hist: [0; HIST_BUCKETS],
            squash_cost_hist: [0; HIST_BUCKETS],
            recent: std::collections::VecDeque::with_capacity(RING_CAP),
            end_of_run: 0,
            last_cycle: 0,
        }
    }

    fn n(&self) -> usize {
        self.cores.len()
    }

    /// Closes the refill window open on `core`, charging its cycles.
    fn close_refill(&mut self, core: usize, now: Cycle) {
        let Some(w) = self.cores[core].refill.take() else {
            return;
        };
        let cost = now.saturating_sub(w.since);
        let cols = self.n() + 1;
        let col = w.by.map_or(self.n(), |c| c as usize);
        self.blame_cycles[core * cols + col] += cost;
        self.squash_cost_hist[log2_bucket(cost)] += 1;
        self.cores[core].squash_cycles += cost;
        if let Some(line) = w.line {
            if let Some(s) = self.hotspots.get_mut(&line) {
                s.cycles += cost;
            }
        }
        // Charge the episode the squash landed in: still open, or parked
        // on the drained list waiting for exactly this window.
        match (self.cores[core].open, w.episode) {
            (Some(idx), Some(closed_at)) if self.pool.get(idx).closed_at == closed_at => {
                self.pool.get_mut(idx).squash_cycles += cost;
            }
            (_, Some(closed_at)) => {
                let parked = self.cores[core]
                    .drained
                    .iter()
                    .position(|(c, _)| *c == closed_at);
                if let Some(i) = parked {
                    let (_, idx) = self.cores[core].drained.remove(i);
                    self.pool.get_mut(idx).squash_cycles += cost;
                    self.finish_slot(core, idx);
                }
            }
            _ => {}
        }
        let chain = (core as u16, w.cause, w.by, w.line);
        if self.folded.len() < FOLDED_CAP || self.folded.contains_key(&chain) {
            *self.folded.entry(chain).or_insert(0) += cost;
        } else {
            self.folded_dropped += 1;
        }
    }

    /// Books a completed episode into the aggregates and the ring.
    fn finish_episode(&mut self, ep: GateEpisode) {
        let st = &mut self.cores[ep.core as usize];
        st.episodes += 1;
        st.gate_cycles += ep.duration();
        self.episode_len_hist[log2_bucket(ep.duration())] += 1;
        if self.recent.len() == RING_CAP {
            self.recent.pop_front();
        }
        self.recent.push_back(ep);
    }

    /// Books the finished episode held in pool slot `idx` and recycles
    /// the slot.
    fn finish_slot(&mut self, core: usize, idx: u32) {
        let s = *self.pool.get(idx);
        self.pool.release(idx);
        self.finish_episode(GateEpisode {
            core: core as u16,
            key: s.key,
            store_addr: s.store_addr,
            rob: s.rob,
            closed_at: s.closed_at,
            opened_at: s.opened_at,
            end: s.end.expect("finished slot carries its end reason"),
            extra_closes: s.extra_closes,
            squashes: s.squashes,
            squashed_uops: s.squashed_uops,
            squash_cycles: s.squash_cycles,
            first_blame: s.first_blame,
            first_blame_line: s.first_blame_line,
        });
    }

    fn end_episode(&mut self, core: usize, now: Cycle, end: EpisodeEnd) {
        let Some(idx) = self.cores[core].open.take() else {
            return;
        };
        let closed_at = {
            let s = self.pool.get_mut(idx);
            s.opened_at = now;
            s.end = Some(end);
            s.closed_at
        };
        // If this episode's last squash is still refilling, park the
        // slot until the window closes so the cost lands on it.
        let still_refilling = self.cores[core]
            .refill
            .is_some_and(|w| w.episode == Some(closed_at));
        if still_refilling {
            self.cores[core].drained.push((closed_at, idx));
        } else {
            self.finish_slot(core, idx);
        }
    }

    /// Declares the run over at `end_cycle`: closes open refill windows
    /// and force-ends still-open episodes, then returns the aggregates.
    pub fn finish(mut self, end_cycle: Cycle) -> Summary {
        self.last_cycle = self.last_cycle.max(end_cycle);
        for core in 0..self.n() {
            self.close_refill(core, end_cycle);
            if self.cores[core].open.is_some() {
                self.end_of_run += 1;
                self.end_episode(core, end_cycle, EpisodeEnd::EndOfRun);
            }
            // Orphaned drained episodes (their window closed with the
            // run): already costed, book them now.
            for (_, idx) in std::mem::take(&mut self.cores[core].drained) {
                self.finish_slot(core, idx);
            }
        }
        summary::build(self)
    }
}

impl Tracer for Forensics {
    const ENABLED: bool = true;

    fn record(&mut self, ev: TraceEvent) {
        let core = ev.core.index();
        debug_assert!(core < self.n(), "event from unknown core {core}");
        self.last_cycle = self.last_cycle.max(ev.cycle);
        match ev.kind {
            EventKind::SbEnter { key, addr, .. } => {
                self.cores[core].sb_addr.insert(key, addr);
            }
            EventKind::SbCommit { key, .. } => {
                self.cores[core].sb_addr.remove(&key);
            }
            EventKind::GateClose { rob, key } => {
                let store_addr = self.cores[core].sb_addr.get(&key).copied();
                match self.cores[core].open {
                    // Multi-key gate: a second key locked while closed
                    // extends the same closed period.
                    Some(idx) => self.pool.get_mut(idx).extra_closes += 1,
                    None => {
                        let idx = self.pool.alloc(key, store_addr, rob, ev.cycle);
                        self.cores[core].open = Some(idx);
                    }
                }
            }
            EventKind::GateOpen { reason } => {
                let end = match reason {
                    GateOpenReason::KeyMatch(_) => EpisodeEnd::KeyMatch,
                    GateOpenReason::SbEmpty => EpisodeEnd::SbDrain,
                    GateOpenReason::Squash => EpisodeEnd::Squash,
                };
                self.end_episode(core, ev.cycle, end);
            }
            EventKind::Squash {
                uops,
                cause,
                by,
                line,
                ..
            } => {
                // A new squash while a window is open closes the old one
                // at this cycle — each blame gets its own slice.
                self.close_refill(core, ev.cycle);
                let cols = self.n() + 1;
                let col = by.map_or(self.n(), |c| c as usize);
                self.blame_counts[core * cols + col] += 1;
                self.cores[core].squashes += 1;
                self.cores[core].squashed_uops += uops;
                if let Some(l) = line {
                    if self.hotspots.len() < HOTSPOT_CAP || self.hotspots.contains_key(&l) {
                        let s = self.hotspots.entry(l).or_default();
                        s.squashes += 1;
                        s.uops += uops;
                        if by.is_some() {
                            s.invalidations += 1;
                        } else {
                            s.evictions += 1;
                        }
                    } else {
                        self.hotspot_dropped += 1;
                    }
                }
                let episode = self.cores[core].open.map(|idx| {
                    let ep = self.pool.get_mut(idx);
                    ep.squashes += 1;
                    ep.squashed_uops += uops;
                    if ep.first_blame_line.is_none() {
                        ep.first_blame = by;
                        ep.first_blame_line = line;
                    }
                    ep.closed_at
                });
                self.cores[core].refill = Some(RefillWindow {
                    since: ev.cycle,
                    by,
                    line,
                    cause,
                    episode,
                });
            }
            EventKind::Retire { .. } if self.cores[core].refill.is_some() => {
                self.close_refill(core, ev.cycle);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_isa::CoreId;
    use sa_trace::UopKind;

    fn ev(core: u16, cycle: Cycle, kind: EventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            core: CoreId(core),
            kind,
        }
    }

    fn key(slot: u16) -> GateKey {
        GateKey {
            slot,
            sorting: false,
        }
    }

    /// The §III n6 shape: store enters SB, SLF load closes the gate,
    /// remote invalidation squashes, commit reopens at key match.
    #[test]
    fn links_the_section_iii_chain() {
        let mut f = Forensics::new(2);
        f.record(ev(
            0,
            10,
            EventKind::SbEnter {
                rob: 1,
                key: key(0),
                addr: 0x40,
            },
        ));
        f.record(ev(
            0,
            12,
            EventKind::GateClose {
                rob: 2,
                key: key(0),
            },
        ));
        f.record(ev(
            0,
            15,
            EventKind::Squash {
                from_rob: 3,
                uops: 4,
                cause: SquashKind::StoreAtomicity,
                by: Some(1),
                line: Some(0x80),
            },
        ));
        f.record(ev(
            0,
            20,
            EventKind::Retire {
                rob: 3,
                uop: UopKind::Load,
            },
        ));
        f.record(ev(
            0,
            25,
            EventKind::SbCommit {
                key: key(0),
                addr: 0x40,
            },
        ));
        f.record(ev(
            0,
            25,
            EventKind::GateOpen {
                reason: GateOpenReason::KeyMatch(key(0)),
            },
        ));
        let s = f.finish(30);
        assert_eq!(s.recent.len(), 1);
        let ep = &s.recent[0];
        assert_eq!(ep.core, 0);
        assert_eq!(ep.key, key(0));
        assert_eq!(ep.store_addr, Some(0x40));
        assert_eq!(ep.closed_at, 12);
        assert_eq!(ep.opened_at, 25);
        assert_eq!(ep.duration(), 13);
        assert_eq!(ep.end, EpisodeEnd::KeyMatch);
        assert_eq!(ep.squashes, 1);
        assert_eq!(ep.squashed_uops, 4);
        assert_eq!(ep.squash_cycles, 5); // squash@15 .. retire@20
        assert_eq!(ep.first_blame, Some(1));
        assert_eq!(ep.first_blame_line, Some(0x80));
        // Blame matrix: core 0 lost 5 cycles to core 1.
        assert_eq!(s.blame.cycles(0, Some(1)), 5);
        assert_eq!(s.blame.cycles(0, None), 0);
        assert_eq!(s.blame.row_cycles(0), s.per_core[0].squash_cycles);
        assert_eq!(s.per_core[0].gate_cycles, 13);
        assert_eq!(s.hotspots[0].line, 0x80);
        assert_eq!(s.hotspots[0].invalidations, 1);
    }

    /// A local eviction squash lands in the `local` blame column.
    #[test]
    fn eviction_blames_local_column() {
        let mut f = Forensics::new(2);
        f.record(ev(
            1,
            100,
            EventKind::Squash {
                from_rob: 9,
                uops: 2,
                cause: SquashKind::StoreAtomicity,
                by: None,
                line: Some(0x1000),
            },
        ));
        f.record(ev(
            1,
            107,
            EventKind::Retire {
                rob: 9,
                uop: UopKind::Load,
            },
        ));
        let s = f.finish(200);
        assert_eq!(s.blame.cycles(1, None), 7);
        assert_eq!(s.blame.counts(1, None), 1);
        assert_eq!(s.hotspots[0].evictions, 1);
        assert_eq!(s.hotspots[0].invalidations, 0);
    }

    /// An episode still open at the end of the run is drained with the
    /// end-of-run duration, so gate-cycle totals stay exact.
    #[test]
    fn drains_open_episode_at_end_of_run() {
        let mut f = Forensics::new(1);
        f.record(ev(
            0,
            50,
            EventKind::GateClose {
                rob: 1,
                key: key(3),
            },
        ));
        let s = f.finish(80);
        assert_eq!(s.open_at_end, 1);
        assert_eq!(s.recent.len(), 1);
        assert_eq!(s.recent[0].end, EpisodeEnd::EndOfRun);
        assert_eq!(s.recent[0].duration(), 30);
        assert_eq!(s.per_core[0].gate_cycles, 30);
    }

    /// Back-to-back squashes each get their own refill slice; the blame
    /// row sum equals the per-core squash-cycle total.
    #[test]
    fn split_refill_windows_per_blame() {
        let mut f = Forensics::new(3);
        f.record(ev(
            0,
            10,
            EventKind::Squash {
                from_rob: 1,
                uops: 1,
                cause: SquashKind::LoadLoad,
                by: Some(1),
                line: Some(0x40),
            },
        ));
        f.record(ev(
            0,
            14,
            EventKind::Squash {
                from_rob: 1,
                uops: 2,
                cause: SquashKind::StoreAtomicity,
                by: Some(2),
                line: Some(0x80),
            },
        ));
        f.record(ev(
            0,
            20,
            EventKind::Retire {
                rob: 1,
                uop: UopKind::Alu,
            },
        ));
        let s = f.finish(30);
        assert_eq!(s.blame.cycles(0, Some(1)), 4); // 10..14
        assert_eq!(s.blame.cycles(0, Some(2)), 6); // 14..20
        assert_eq!(s.blame.row_cycles(0), 10);
        assert_eq!(s.per_core[0].squash_cycles, 10);
        assert_eq!(s.per_core[0].squashes, 2);
        assert_eq!(s.per_core[0].squashed_uops, 3);
    }

    /// The hotspot table is capped: new lines beyond the capacity are
    /// counted as dropped, never stored — bounded memory.
    #[test]
    fn hotspot_table_is_bounded() {
        let mut f = Forensics::new(1);
        for i in 0..(HOTSPOT_CAP as u64 + 50) {
            f.record(ev(
                0,
                i * 10,
                EventKind::Squash {
                    from_rob: 1,
                    uops: 1,
                    cause: SquashKind::LoadLoad,
                    by: None,
                    line: Some(i * 64),
                },
            ));
        }
        assert_eq!(f.hotspots.len(), HOTSPOT_CAP);
        assert_eq!(f.hotspot_dropped, 50);
        let s = f.finish(1_000_000);
        assert_eq!(s.hotspot_dropped, 50);
        assert_eq!(s.hotspots.len(), HOTSPOT_CAP);
    }

    /// The episode ring keeps only the most recent completions.
    #[test]
    fn episode_ring_is_bounded() {
        let mut f = Forensics::new(1);
        for i in 0..(RING_CAP as u64 + 10) {
            let t = i * 100;
            f.record(ev(
                0,
                t,
                EventKind::GateClose {
                    rob: i,
                    key: key(0),
                },
            ));
            f.record(ev(
                0,
                t + 5,
                EventKind::GateOpen {
                    reason: GateOpenReason::SbEmpty,
                },
            ));
        }
        let s = f.finish(1_000_000);
        assert_eq!(s.recent.len(), RING_CAP);
        assert_eq!(s.per_core[0].episodes, RING_CAP as u64 + 10);
        // Oldest episodes were dropped from the ring, not the totals.
        assert_eq!(s.recent[0].closed_at, 1000);
    }

    /// Serial episodes recycle one arena slot: the pool's footprint is
    /// the high-water mark of concurrently open episodes, not the
    /// episode count.
    #[test]
    fn episode_arena_recycles_slots() {
        let mut f = Forensics::new(2);
        for i in 0..500u64 {
            let core = (i % 2) as u16;
            let t = i * 100;
            f.record(ev(
                core,
                t,
                EventKind::GateClose {
                    rob: i,
                    key: key(0),
                },
            ));
            f.record(ev(
                core,
                t + 5,
                EventKind::GateOpen {
                    reason: GateOpenReason::SbEmpty,
                },
            ));
        }
        // Both cores were briefly open at once is impossible here (the
        // loop alternates), so one episode is open at any time.
        let (slots, reused) = f.pool.stats();
        assert_eq!(slots, 1, "500 episodes share one pooled record");
        assert_eq!(reused, 499);
        let s = f.finish(100_000);
        assert_eq!(s.episodes(), 500);
    }

    /// The disabled-sink pattern from sa-trace: a `Forensics` behind an
    /// `ENABLED = false` wrapper never sees events, so the simulator's
    /// default `NullTracer` path owes nothing to this crate.
    #[test]
    fn disabled_wrapper_records_nothing() {
        struct Disabled(Forensics);
        impl Tracer for Disabled {
            const ENABLED: bool = false;
            fn record(&mut self, ev: TraceEvent) {
                self.0.record(ev);
            }
        }
        let mut d = Disabled(Forensics::new(1));
        let mut evaluated = false;
        d.emit(|| {
            evaluated = true;
            ev(
                0,
                1,
                EventKind::GateClose {
                    rob: 0,
                    key: key(0),
                },
            )
        });
        assert!(!evaluated, "disabled hooks must not construct events");
        let s = d.0.finish(10);
        assert_eq!(s.episodes(), 0);
    }
}
