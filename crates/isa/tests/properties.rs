//! Property-style tests of the ISA layer invariants, driven by the
//! in-tree seeded RNG (deterministic, offline-friendly).

use sa_isa::rng::Xoshiro256;
use sa_isa::{addr, Line, ValueMemory, LINE_BYTES};

const CASES: u64 = 512;

/// Aligned access of size 1/2/4/8 within a 1 MB space.
fn access(rng: &mut Xoshiro256) -> (u64, u8) {
    let s = [1u8, 2, 4, 8][rng.gen_range_usize(0, 4)];
    let a = rng.gen_range_u64(0, 1 << 20);
    (a - a % u64::from(s), s)
}

/// What you write is what you read back.
#[test]
fn valmem_roundtrip() {
    let mut rng = Xoshiro256::seed_from_u64(0x1517_0001);
    for _ in 0..CASES {
        let (a, s) = access(&mut rng);
        let v = rng.next_u64();
        let mut m = ValueMemory::new();
        m.write(a, s, v);
        let mask = if s == 8 {
            u64::MAX
        } else {
            (1u64 << (u64::from(s) * 8)) - 1
        };
        assert_eq!(m.read(a, s), v & mask, "a={a:#x} s={s}");
    }
}

/// Writes to disjoint words never interfere.
#[test]
fn valmem_disjoint_words() {
    let mut rng = Xoshiro256::seed_from_u64(0x1517_0002);
    for _ in 0..CASES {
        let a = rng.gen_range_u64(0, 1 << 16) & !7;
        let b = a + 8;
        let (v1, v2) = (rng.next_u64(), rng.next_u64());
        let mut m = ValueMemory::new();
        m.write(a, 8, v1);
        m.write(b, 8, v2);
        assert_eq!(m.read(a, 8), v1);
        assert_eq!(m.read(b, 8), v2);
    }
}

/// A sub-word write only changes the bytes it covers.
#[test]
fn valmem_subword_isolation() {
    let mut rng = Xoshiro256::seed_from_u64(0x1517_0003);
    for _ in 0..CASES {
        let (a, s) = access(&mut rng);
        let (base, v) = (rng.next_u64(), rng.next_u64());
        let word = a & !7;
        let mut m = ValueMemory::new();
        m.write(word, 8, base);
        m.write(a, s, v);
        let got = m.read(word, 8);
        for byte in 0..8u64 {
            let addr_b = word + byte;
            let expected = if addr_b >= a && addr_b < a + u64::from(s) {
                (v >> ((addr_b - a) * 8)) & 0xff
            } else {
                (base >> (byte * 8)) & 0xff
            };
            assert_eq!(
                (got >> (byte * 8)) & 0xff,
                expected,
                "byte {byte} a={a:#x} s={s}"
            );
        }
    }
}

/// `covers` implies `overlaps`, and both are consistent with the
/// interval arithmetic.
#[test]
fn covers_implies_overlaps() {
    let mut rng = Xoshiro256::seed_from_u64(0x1517_0004);
    for _ in 0..CASES {
        let (sa, ss) = access(&mut rng);
        let (la, ls) = access(&mut rng);
        if addr::covers(sa, ss, la, ls) {
            assert!(addr::overlaps(sa, ss, la, ls));
            assert!(sa <= la && la + u64::from(ls) <= sa + u64::from(ss));
        }
        let o = addr::overlaps(sa, ss, la, ls);
        let manual = sa < la + u64::from(ls) && la < sa + u64::from(ss);
        assert_eq!(o, manual, "sa={sa:#x} ss={ss} la={la:#x} ls={ls}");
    }
}

/// Every byte of an access that stays within a line maps to the same
/// line.
#[test]
fn within_line_consistent() {
    let mut rng = Xoshiro256::seed_from_u64(0x1517_0005);
    for _ in 0..CASES {
        let (a, s) = access(&mut rng);
        if addr::within_line(a, s) {
            for off in 0..u64::from(s) {
                assert_eq!(Line::containing(a + off), Line::containing(a));
            }
        } else {
            assert_ne!(Line::containing(a), Line::containing(a + u64::from(s) - 1));
        }
    }
}

/// Line base/containing are inverse-ish and bank hashing is stable.
#[test]
fn line_roundtrip() {
    let mut rng = Xoshiro256::seed_from_u64(0x1517_0006);
    for _ in 0..CASES {
        let a = rng.next_u64();
        let banks = rng.gen_range_usize(1, 16);
        let l = Line::containing(a);
        assert!(l.base() <= a);
        assert!(a - l.base() < LINE_BYTES);
        assert_eq!(Line::containing(l.base()), l);
        assert!(l.bank(banks) < banks);
    }
}
