//! Baseline comparator for `--bin perf` outputs: reads two
//! `BENCH_*.json` files (schema `sa-bench-perf-v1`), validates both, and
//! prints a per-cell regression table plus the host-throughput geomean
//! delta. Replaces the ad-hoc python/jq pipeline CI previously used.
//!
//! Two comparisons, applied as they make sense:
//!
//! * **Sim-cycle equivalence** — when the two files were produced at the
//!   same `scale` and `seed`, the simulator is deterministic, so every
//!   `cycles`/`instructions` cell must match exactly unless the change
//!   intentionally altered timing; drift fails the run unless
//!   `--allow-cycle-drift` is given. At differing scales the check is
//!   skipped (the cells aren't comparable).
//! * **Host throughput** — geomean over all cells of the
//!   `sim_cycles_per_host_sec` ratio (new / baseline). A ratio below
//!   `1 - --max-regress/100` (default 20%) fails the run. Host timing is
//!   noisy; the default tolerance reflects shared-runner variance.
//!
//! Exit status: 0 clean, 1 regression detected, 2 usage/parse error.
//!
//! Usage: `bench-diff --baseline OLD.json --new NEW.json
//! [--max-regress PCT] [--allow-cycle-drift]`

use sa_bench::cli::{self, Arity, Flag, Spec};
use sa_metrics::JsonValue;

const EXTRAS: &[Flag] = &[
    Flag {
        name: "--baseline",
        arity: Arity::One,
        help: "baseline BENCH_*.json (the committed reference)",
    },
    Flag {
        name: "--new",
        arity: Arity::One,
        help: "candidate BENCH_*.json to compare against the baseline",
    },
    Flag {
        name: "--max-regress",
        arity: Arity::One,
        help: "max tolerated throughput-geomean regression in percent (default 20)",
    },
    Flag {
        name: "--allow-cycle-drift",
        arity: Arity::Switch,
        help: "report, but do not fail on, sim-cycle differences at equal scale/seed",
    },
];

fn die(msg: &str) -> ! {
    eprintln!("bench-diff: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> JsonValue {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
    let v = JsonValue::parse(&text).unwrap_or_else(|e| die(&format!("parsing {path}: {e}")));
    validate(path, &v);
    v
}

/// Schema gate: the structural checks CI used to run in python.
fn validate(path: &str, v: &JsonValue) {
    let schema = v.get("schema").and_then(JsonValue::as_str);
    if schema != Some("sa-bench-perf-v1") {
        die(&format!(
            "{path}: schema is {schema:?}, want sa-bench-perf-v1"
        ));
    }
    let workloads = v
        .get("workloads")
        .and_then(JsonValue::as_arr)
        .unwrap_or_else(|| die(&format!("{path}: no workloads array")));
    if workloads.is_empty() {
        die(&format!("{path}: empty workloads array"));
    }
    for w in workloads {
        let name = w.get("name").and_then(JsonValue::as_str).unwrap_or("?");
        let configs = w
            .get("configs")
            .and_then(JsonValue::as_arr)
            .unwrap_or_else(|| die(&format!("{path}: {name}: no configs array")));
        for c in configs {
            let label = c.get("config").and_then(JsonValue::as_str).unwrap_or("?");
            for key in ["cycles", "instructions"] {
                if c.get(key).and_then(JsonValue::as_u64).is_none() {
                    die(&format!("{path}: {name}/{label}: missing {key}"));
                }
            }
            if let Some(JsonValue::Obj(stack)) = c.get("cpi_stack") {
                let sum: f64 = stack.values().filter_map(JsonValue::as_f64).sum();
                if (sum - 100.0).abs() > 0.5 {
                    die(&format!(
                        "{path}: {name}/{label}: CPI stack sums to {sum:.2}, want 100"
                    ));
                }
            }
        }
    }
}

struct CellRef<'a> {
    workload: &'a str,
    config: &'a str,
    cell: &'a JsonValue,
}

fn cells(v: &JsonValue) -> Vec<CellRef<'_>> {
    let mut out = Vec::new();
    for w in v.get("workloads").and_then(JsonValue::as_arr).unwrap() {
        let name = w.get("name").and_then(JsonValue::as_str).unwrap_or("?");
        for c in w.get("configs").and_then(JsonValue::as_arr).unwrap() {
            out.push(CellRef {
                workload: name,
                config: c.get("config").and_then(JsonValue::as_str).unwrap_or("?"),
                cell: c,
            });
        }
    }
    out
}

fn u(c: &JsonValue, key: &str) -> u64 {
    c.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn f(c: &JsonValue, key: &str) -> f64 {
    c.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn pct_delta(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        100.0 * (new - old) / old
    }
}

fn main() {
    let args = cli::parse(&Spec {
        extras: EXTRAS,
        ..Spec::new("bench-diff", "compare two perf-baseline JSON files")
    });
    let base_path = args
        .value("--baseline")
        .unwrap_or_else(|| die("--baseline is required"))
        .to_string();
    let new_path = args
        .value("--new")
        .unwrap_or_else(|| die("--new is required"))
        .to_string();
    let max_regress: f64 = args.parsed("--max-regress").unwrap_or(20.0);
    let allow_drift = args.switch("--allow-cycle-drift");

    let base = load(&base_path);
    let new = load(&new_path);

    let same_determinism_domain =
        base.get("scale") == new.get("scale") && base.get("seed") == new.get("seed");
    let base_cells = cells(&base);
    let new_cells = cells(&new);

    println!(
        "bench-diff: {base_path} (baseline) vs {new_path}{}",
        if same_determinism_domain {
            " [same scale/seed: sim-cycle equivalence enforced]"
        } else {
            " [scale/seed differ: sim-cycle check skipped]"
        }
    );
    println!(
        "{:<12} {:<16} {:>14} {:>14} {:>8}  {:>12} {:>8}",
        "workload", "config", "cycles(old)", "cycles(new)", "Δcyc%", "thr(new)", "Δthr%"
    );

    let mut cycle_drift = 0usize;
    let mut missing = 0usize;
    let mut ratios: Vec<f64> = Vec::new();
    for nc in &new_cells {
        let Some(bc) = base_cells
            .iter()
            .find(|b| b.workload == nc.workload && b.config == nc.config)
        else {
            println!("{:<12} {:<16} (no baseline cell)", nc.workload, nc.config);
            missing += 1;
            continue;
        };
        let (oc, ncy) = (u(bc.cell, "cycles"), u(nc.cell, "cycles"));
        let (oi, ni) = (u(bc.cell, "instructions"), u(nc.cell, "instructions"));
        let (ot, nt) = (
            f(bc.cell, "sim_cycles_per_host_sec"),
            f(nc.cell, "sim_cycles_per_host_sec"),
        );
        if ot > 0.0 && nt > 0.0 {
            ratios.push(nt / ot);
        }
        let drifted = same_determinism_domain && (oc != ncy || oi != ni);
        if drifted {
            cycle_drift += 1;
        }
        println!(
            "{:<12} {:<16} {:>14} {:>14} {:>7.2}{} {:>12.3e} {:>7.1}%",
            nc.workload,
            nc.config,
            oc,
            ncy,
            pct_delta(oc as f64, ncy as f64),
            if drifted { "!" } else { " " },
            nt,
            pct_delta(ot, nt),
        );
    }

    let geomean_ratio = if ratios.is_empty() {
        1.0
    } else {
        (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
    };
    println!(
        "\nthroughput geomean ratio (new/old): {geomean_ratio:.4} over {} cells \
         (tolerance: >= {:.4})",
        ratios.len(),
        1.0 - max_regress / 100.0
    );

    let mut failed = false;
    if geomean_ratio < 1.0 - max_regress / 100.0 {
        eprintln!(
            "FAIL: throughput geomean regressed {:.1}% (> {max_regress}% tolerated)",
            100.0 * (1.0 - geomean_ratio)
        );
        failed = true;
    }
    if cycle_drift > 0 {
        let verdict = if allow_drift { "note" } else { "FAIL" };
        eprintln!(
            "{verdict}: {cycle_drift} cell(s) changed sim cycles/instructions at equal \
             scale/seed (marked '!'): timing behavior changed"
        );
        failed |= !allow_drift;
    }
    if missing > 0 {
        eprintln!("note: {missing} cell(s) had no baseline counterpart (new workloads?)");
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK");
}
