//! Performance-regression harness: runs a pinned suite (two litmus
//! tests, three parallel workloads, two SPEC workloads — every one under
//! all five consistency configurations), recording both sim-side metrics
//! (cycles, IPC, CPI-stack shares, gate/squash counters) and host-side
//! throughput (simulated cycles per wall-second), and writes the result
//! as JSON.
//!
//! The committed `BENCH_pr3.json` at the repository root is the baseline;
//! regenerate it with `cargo run --release --bin perf` after intentional
//! performance changes. CI runs this binary at reduced scale to validate
//! the schema and the CPI-stack accounting offline, and compares the
//! throughput geomean against the previous baseline.
//!
//! Every (workload × config) cell is an independent deterministic
//! simulation, so the sweep fans out across `--jobs` worker threads;
//! results are reassembled in suite order, keeping the sim-side JSON
//! fields byte-identical to a sequential run (host timing aside).
//!
//! Usage: `perf [--scale N] [--seed N] [--jobs N] [--out PATH]` (default
//! scale 2000, default output `BENCH_pr3.json`).

use std::process::exit;
use std::sync::Arc;

use sa_bench::cli::{self, Arity, Flag, Spec};
use sa_bench::serve::MetricsServer;
use sa_bench::{harness, parallel_map, run_workload};
use sa_isa::ConsistencyModel;
use sa_metrics::{CpiCategory, JsonWriter};
use sa_sim::report::geomean;
use sa_sim::{Multicore, Report, SimConfig};

/// The pinned suite. Names must stay stable across PRs so baselines
/// remain comparable.
const LITMUS: [&str; 2] = ["n6", "mp"];
const PARALLEL: [&str; 3] = ["barnes", "radix", "x264"];
const SPEC: [&str; 2] = ["505.mcf", "557.xz_2"];

fn run_litmus(name: &str, model: ConsistencyModel) -> Report {
    let ct = match name {
        "n6" => sa_litmus::suite::n6(),
        "mp" => sa_litmus::suite::mp(),
        other => panic!("unpinned litmus test {other}"),
    };
    let traces = ct.test.to_traces();
    let cfg = SimConfig::default()
        .with_model(model)
        .with_cores(traces.len());
    let mut sim = Multicore::new(cfg, traces);
    sim.run(5_000_000)
        .unwrap_or_else(|e| panic!("{name} under {model}: {e}"));
    sim.report()
}

struct ConfigResult {
    report: Report,
    host_seconds: f64,
}

fn emit_config(j: &mut JsonWriter, r: &ConfigResult, baseline_cycles: u64) {
    let rep = &r.report;
    // The harness's own gate: a report whose CPI stack does not balance
    // is a simulator bug, not a data point.
    assert!(
        rep.cpi_invariant_holds(),
        "{}: CPI stack out of balance",
        rep.model
    );
    let total = rep.total();
    j.begin_object()
        .field_str("config", rep.model.label())
        .field_uint("cycles", rep.cycles)
        .field_uint("instructions", total.retired_instrs)
        .field_float("ipc", rep.ipc())
        .field_float(
            "normalized_time",
            rep.cycles as f64 / baseline_cycles.max(1) as f64,
        )
        .field_float("host_seconds", r.host_seconds)
        .field_float(
            "sim_cycles_per_host_sec",
            if r.host_seconds > 0.0 {
                rep.cycles as f64 / r.host_seconds
            } else {
                0.0
            },
        )
        .field_uint("gate_closed_cycles", total.gate_closed_cycles)
        .field_uint("gate_stall_events", total.gate_stall_events)
        .field_uint("squashes", total.squashes.iter().sum())
        .field_uint("sb_commits", total.sb_commits)
        .field_float("energy_proxy", rep.energy_proxy())
        .field_uint("samples", rep.samples.len() as u64);
    j.key("cpi_stack").begin_object();
    let stack = rep.cpi_total();
    for cat in CpiCategory::ALL {
        j.field_float(cat.label(), stack.share_pct(cat));
    }
    j.end_object().end_object();
}

fn main() {
    // The regression suite is pinned and small; default well below the
    // exploration binaries' 30k so a full 5-config sweep stays quick.
    const EXTRAS: &[Flag] = &[Flag {
        name: "--serve-metrics",
        arity: Arity::One,
        help: "serve the latest completed cell's /metrics on this localhost port",
    }];
    let args = cli::parse(&Spec {
        default_scale: Some(2_000),
        default_out: Some("BENCH_pr3.json"),
        extras: EXTRAS,
        ..Spec::new(
            "perf",
            "performance-regression harness over the pinned suite",
        )
    });
    let opts = args.opts.clone();
    let out_path = opts.out.clone().expect("spec supplies a default --out");
    let server = args.value("--serve-metrics").map(|p| {
        let port: u16 = p.parse().unwrap_or_else(|_| {
            eprintln!("perf: --serve-metrics takes a port number, got {p:?}");
            exit(2);
        });
        let srv = MetricsServer::start(port).unwrap_or_else(|e| {
            eprintln!("perf: binding port {port}: {e}");
            exit(2);
        });
        eprintln!("serving live metrics on http://127.0.0.1:{}/", srv.port());
        Arc::new(srv)
    });

    struct Entry {
        name: &'static str,
        kind: &'static str,
    }
    let mut entries: Vec<Entry> = Vec::new();
    for n in LITMUS {
        entries.push(Entry {
            name: n,
            kind: "litmus",
        });
    }
    for n in PARALLEL {
        entries.push(Entry {
            name: n,
            kind: "parallel",
        });
    }
    for n in SPEC {
        entries.push(Entry {
            name: n,
            kind: "spec",
        });
    }

    let mut j = JsonWriter::new();
    cli::schema_header(&mut j, "sa-bench-perf-v1", &opts)
        .key("workloads")
        .begin_array();

    // Normalized-time rows (4 store-atomic configs vs x86) for the
    // closing geomean.
    let mut norm_rows: Vec<Vec<f64>> = Vec::new();

    // Every (entry × config) cell is independent: flatten, fan out, and
    // reassemble in order so the emitted JSON is deterministic.
    let n_models = ConsistencyModel::ALL.len();
    let cells: Vec<(&Entry, ConsistencyModel)> = entries
        .iter()
        .flat_map(|e| ConsistencyModel::ALL.iter().map(move |&m| (e, m)))
        .collect();
    let all_results: Vec<ConfigResult> = parallel_map(&cells, opts.jobs, |&(e, model)| {
        let (report, host_seconds) = if e.kind == "litmus" {
            harness::time(|| run_litmus(e.name, model))
        } else {
            let w = sa_workloads::by_name(e.name)
                .unwrap_or_else(|| panic!("unpinned workload {}", e.name));
            harness::time(|| run_workload(&w, model, opts.scale, opts.seed))
        };
        let r = ConfigResult {
            report,
            host_seconds,
        };
        if let Some(srv) = &server {
            srv.set_prometheus(r.report.registry().prometheus_text());
        }
        r
    });

    for (ei, e) in entries.iter().enumerate() {
        let results = &all_results[ei * n_models..(ei + 1) * n_models];
        let baseline = results[0].report.cycles;
        norm_rows.push(
            results[1..]
                .iter()
                .map(|r| r.report.cycles as f64 / baseline.max(1) as f64)
                .collect(),
        );
        j.begin_object()
            .field_str("name", e.name)
            .field_str("kind", e.kind)
            .field_uint("cores", results[0].report.per_core.len() as u64)
            .key("configs")
            .begin_array();
        for r in results {
            emit_config(&mut j, r, baseline);
        }
        j.end_array().end_object();
        eprintln!(
            "{:<10} done ({} configs, x86 cycles {})",
            e.name,
            results.len(),
            baseline
        );
    }
    j.end_array();

    let labels = ["nospec", "slfspec", "slfsos", "slfsos_key"];
    j.key("geomean_normalized_time").begin_object();
    for (i, label) in labels.iter().enumerate() {
        let col: Vec<f64> = norm_rows.iter().map(|r| r[i]).collect();
        j.field_float(label, geomean(&col));
    }
    j.end_object().end_object();

    let body = j.finish();
    std::fs::write(&out_path, format!("{body}\n"))
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
