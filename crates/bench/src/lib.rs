//! Experiment runner shared by the table/figure binaries and the
//! micro-benches.
//!
//! Every binary regenerates one artifact of the paper:
//!
//! | binary        | artifact |
//! |---------------|----------|
//! | `table1`      | Table I (atomicity taxonomy) |
//! | `table2`      | Table II (fig5 outcomes under x86 vs 370) |
//! | `table3`      | Table III (system configuration) |
//! | `table4`      | Table IV (per-benchmark characterization under 370-SLFSoS-key) |
//! | `fig9`        | Figure 9 (stall breakdown, 5 configs) |
//! | `fig10`       | Figure 10 (execution time normalized to x86) |
//! | `litmus_figs` | Figures 1/2/3/5 (allowed/forbidden classifications) |
//! | `ablation`    | design-choice ablations beyond the paper |
//!
//! Run with `--scale N` to control instructions per core (default 30000;
//! the paper simulates ~1 B instructions per benchmark — scale up as your
//! patience allows; shapes stabilize well before 100k).

pub mod cli;
pub mod client;
pub mod fuzz;
pub mod harness;
pub mod serve;

pub use cli::{Opts, SuiteSel};

use sa_isa::ConsistencyModel;
use sa_sim::report::geomean;
use sa_sim::{EngineMode, Multicore, Report, SimConfig};
use sa_workloads::{Suite, WorkloadSpec};

/// Runs one workload under one consistency model to completion.
///
/// # Panics
///
/// Panics if the simulation wedges or exceeds its (very generous) cycle
/// budget — both indicate a simulator bug.
pub fn run_workload(w: &WorkloadSpec, model: ConsistencyModel, scale: usize, seed: u64) -> Report {
    let n_cores = match w.suite {
        Suite::Parallel => 8,
        Suite::Spec => 1,
    };
    let cfg = SimConfig::default().with_model(model).with_cores(n_cores);
    let traces = w.generate_cached(n_cores, scale, seed);
    let mut sim = Multicore::new(cfg, traces);
    let budget = (scale as u64).saturating_mul(2_000).max(10_000_000);
    sim.run(budget)
        .unwrap_or_else(|e| panic!("{} under {model}: {e}", w.name))
}

/// Like [`run_workload`], but honoring the shared CLI overrides: the
/// `--cores` core count (suite default when absent) and the
/// `--topology` / `--engine` axes via [`Opts::apply_to`]. The sweep
/// binaries route through this so a 256-core mesh cell on the parallel
/// engine is one flag set away from any figure.
pub fn run_workload_opts(w: &WorkloadSpec, model: ConsistencyModel, opts: &Opts) -> Report {
    let n_cores = opts.cores.unwrap_or(match w.suite {
        Suite::Parallel => 8,
        Suite::Spec => 1,
    });
    let cfg = opts.apply_to(SimConfig::default().with_model(model).with_cores(n_cores));
    let traces = w.generate_cached(n_cores, opts.scale, opts.seed);
    let mut sim = Multicore::new(cfg, traces);
    let budget = (opts.scale as u64).saturating_mul(2_000).max(10_000_000);
    sim.run(budget)
        .unwrap_or_else(|e| panic!("{} under {model}: {e}", w.name))
}

/// Like [`run_workload`], but on the cycle-exact lockstep reference
/// engine (`cycle_skip` off). Same deterministic cycles by the engine
/// equivalence invariant; CI diffs a lockstep sweep against the default
/// event-driven one on every push to pin that invariant on the litmus
/// cells.
pub fn run_workload_lockstep(
    w: &WorkloadSpec,
    model: ConsistencyModel,
    scale: usize,
    seed: u64,
) -> Report {
    let n_cores = match w.suite {
        Suite::Parallel => 8,
        Suite::Spec => 1,
    };
    let cfg = SimConfig::default()
        .with_model(model)
        .with_cores(n_cores)
        .with_engine(EngineMode::Lockstep);
    let traces = w.generate_cached(n_cores, scale, seed);
    let mut sim = Multicore::new(cfg, traces);
    let budget = (scale as u64).saturating_mul(2_000).max(10_000_000);
    sim.run(budget)
        .unwrap_or_else(|e| panic!("{} under {model}: {e}", w.name))
}

/// Like [`run_workload`], but with an attached [`sa_trace::Tracer`];
/// returns the tracer alongside the report so stream analyzers (e.g.
/// `sa_forensics::Forensics`) can be finalized by the caller. The tracer
/// is built by `tracer(n_cores)` once the core count is known. An
/// enabled tracer forces the cycle-exact lockstep engine.
pub fn run_workload_traced<T: sa_trace::Tracer>(
    w: &WorkloadSpec,
    model: ConsistencyModel,
    scale: usize,
    seed: u64,
    tracer: impl FnOnce(usize) -> T,
) -> (Report, T) {
    let n_cores = match w.suite {
        Suite::Parallel => 8,
        Suite::Spec => 1,
    };
    let cfg = SimConfig::default().with_model(model).with_cores(n_cores);
    let traces = w.generate_cached(n_cores, scale, seed);
    let mut sim = Multicore::with_tracer(cfg, traces, tracer(n_cores));
    let budget = (scale as u64).saturating_mul(2_000).max(10_000_000);
    let report = sim
        .run(budget)
        .unwrap_or_else(|e| panic!("{} under {model}: {e}", w.name));
    (report, sim.into_tracer())
}

/// Like [`run_workload`], but with host-side span profiling enabled:
/// the engine runs under [`sa_profile::WallProfiler`], so the calling
/// thread's local span tree fills with the generation phase plus the
/// engine phases (`lockstep`/`event` → `memsys`/`tick`/`jump` → …).
/// Collect the tree with [`sa_profile::capture`] around this call.
pub fn run_workload_profiled(
    w: &WorkloadSpec,
    model: ConsistencyModel,
    scale: usize,
    seed: u64,
) -> Report {
    use sa_profile::{Profiler, WallProfiler};
    let n_cores = match w.suite {
        Suite::Parallel => 8,
        Suite::Spec => 1,
    };
    let cfg = SimConfig::default().with_model(model).with_cores(n_cores);
    let traces = {
        let _p = WallProfiler::span("generate");
        w.generate_cached(n_cores, scale, seed)
    };
    let mut sim = {
        let _p = WallProfiler::span("setup");
        Multicore::<sa_trace::NullTracer, WallProfiler>::with_tracer_profiler(
            cfg,
            traces,
            sa_trace::NullTracer,
        )
    };
    let budget = (scale as u64).saturating_mul(2_000).max(10_000_000);
    let report = sim
        .run(budget)
        .unwrap_or_else(|e| panic!("{} under {model}: {e}", w.name));
    let _p = WallProfiler::span("teardown");
    drop(sim);
    report
}

/// Runs one workload under every model, returning reports in
/// [`ConsistencyModel::ALL`] order. Honors the shared `--cores` /
/// `--topology` / `--engine` overrides in `opts`.
pub fn run_all_models(w: &WorkloadSpec, opts: &Opts) -> Vec<Report> {
    ConsistencyModel::ALL
        .iter()
        .map(|m| run_workload_opts(w, *m, opts))
        .collect()
}

/// One Figure-10 row: execution time of the four store-atomic configs
/// normalized to x86.
pub fn normalized_times(reports: &[Report]) -> Vec<f64> {
    let x86 = &reports[0];
    reports[1..]
        .iter()
        .map(|r| r.normalized_time(x86))
        .collect()
}

/// Geomean over rows of per-model normalized times.
pub fn geomean_rows(rows: &[Vec<f64>]) -> Vec<f64> {
    if rows.is_empty() {
        return Vec::new();
    }
    (0..rows[0].len())
        .map(|i| geomean(&rows.iter().map(|r| r[i]).collect::<Vec<f64>>()))
        .collect()
}

/// Maps `f` over `items` on up to `jobs` worker threads, preserving
/// order. Simulations are independent and deterministic, so this is a
/// pure throughput win for the sweep binaries.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    let jobs = jobs.max(1).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        out.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                **slots[i].lock().expect("slot lock") = Some(r);
            });
        }
    });
    drop(slots);
    out.into_iter()
        .map(|r| r.expect("worker filled slot"))
        .collect()
}

/// Convenience: a tiny deterministic smoke workload for the benches.
pub fn smoke_sim(model: ConsistencyModel, instrs: usize) -> Report {
    let w = sa_workloads::by_name("barnes").expect("barnes exists");
    let cfg = SimConfig::default().with_model(model).with_cores(2);
    let traces = w.generate(2, instrs, 7);
    let mut sim = Multicore::new(cfg, traces);
    sim.run(100_000_000).expect("smoke run completes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_workload_completes_quickly_at_tiny_scale() {
        let w = sa_workloads::by_name("blackscholes").unwrap();
        let r = run_workload(&w, ConsistencyModel::X86, 300, 1);
        assert!(r.total().retired_instrs as usize >= 8 * 300);
        assert!(r.cycles > 0);
    }

    #[test]
    fn sequential_workload_uses_one_core() {
        let w = sa_workloads::by_name("557.xz_2").unwrap();
        let r = run_workload(&w, ConsistencyModel::Ibm370SlfSosKey, 300, 1);
        assert_eq!(r.per_core.len(), 1);
    }

    #[test]
    fn profiled_run_matches_unprofiled_and_fills_the_tree() {
        let w = sa_workloads::by_name("radix").unwrap();
        let base = run_workload(&w, ConsistencyModel::X86, 300, 1);
        let (r, tree) =
            sa_profile::capture(|| run_workload_profiled(&w, ConsistencyModel::X86, 300, 1));
        assert_eq!(r.cycles, base.cycles, "profiling must not perturb the sim");
        assert!(tree.find(&["generate"]).is_some(), "{}", tree.to_json());
        let engine = tree
            .find(&["event"])
            .or_else(|| tree.find(&["lockstep"]))
            .expect("engine root span");
        assert!(engine.total_ns > 0);
    }

    #[test]
    fn normalized_times_shape() {
        let w = sa_workloads::by_name("557.xz_2").unwrap();
        let opts = Opts {
            scale: 300,
            seed: 1,
            ..Opts::default()
        };
        let reports = run_all_models(&w, &opts);
        assert_eq!(reports.len(), 5);
        let norm = normalized_times(&reports);
        assert_eq!(norm.len(), 4);
        for n in &norm {
            assert!(*n > 0.2 && *n < 10.0, "normalized time sane: {n}");
        }
    }

    #[test]
    fn geomean_rows_aggregates_per_column() {
        let rows = vec![vec![1.0, 2.0], vec![4.0, 8.0]];
        let g = geomean_rows(&rows);
        assert!((g[0] - 2.0).abs() < 1e-12);
        assert!((g[1] - 4.0).abs() < 1e-12);
        assert!(geomean_rows(&[]).is_empty());
    }
}
