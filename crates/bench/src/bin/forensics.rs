//! Speculation-forensics sweep: runs the pinned suite (same entries as
//! `--bin perf`) under every consistency configuration with the
//! `sa_forensics::Forensics` stream analyzer attached, and writes per
//! workload:
//!
//! * `results/forensics_<name>.json` — full machine-readable summary
//!   (blame matrix, hotspot table, episode ring, distributions) per
//!   config, schema `sa-bench-forensics-v1`;
//! * `results/forensics_<name>.folded` — folded-stack squash flamegraph
//!   for the 370-SLFSoS-key config (`flamegraph.pl`-compatible);
//! * a human-readable blame report, concatenated across the sweep into
//!   `results/forensics_report.txt` and echoed to stdout for the
//!   headline config.
//!
//! An attached tracer forces the cycle-exact lockstep engine, so this
//! binary is slower than `perf` at equal scale — that is the price of
//! per-event causality, and exactly why forensics is a separate opt-in
//! binary rather than part of every run.
//!
//! Usage: `forensics [--scale N] [--seed N] [--jobs N] [--out DIR]
//! [--litmus NAME]... [--only NAME] [--model LABEL]
//! [--serve-metrics PORT]`. `--litmus n6` runs the paper's §III
//! walkthrough and prints its single-episode blame report.

use std::process::exit;
use std::sync::Arc;

use sa_bench::cli::{self, Arity, Flag, Spec};
use sa_bench::serve::MetricsServer;
use sa_bench::{parallel_map, run_workload_traced};
use sa_forensics::{Forensics, Summary};
use sa_isa::ConsistencyModel;
use sa_metrics::JsonWriter;
use sa_sim::{Multicore, Report, SimConfig};

/// Pinned suite, mirrored from `--bin perf` so the two stay comparable.
const LITMUS: [&str; 2] = ["n6", "mp"];
const PARALLEL: [&str; 3] = ["barnes", "radix", "x264"];
const SPEC: [&str; 2] = ["505.mcf", "557.xz_2"];

const EXTRAS: &[Flag] = &[
    Flag {
        name: "--litmus",
        arity: Arity::Many,
        help: "run only these pinned litmus tests (n6, mp); repeatable",
    },
    Flag {
        name: "--model",
        arity: Arity::One,
        help: "restrict to one config by label (e.g. 370-SLFSoS-key)",
    },
    Flag {
        name: "--serve-metrics",
        arity: Arity::One,
        help: "serve live /metrics and /forensics on this localhost port",
    },
];

const SPEC_CLI: Spec = Spec {
    default_scale: Some(2_000),
    default_out: Some("results"),
    extras: EXTRAS,
    ..Spec::new(
        "forensics",
        "causal gate-episode analysis with cross-core blame attribution",
    )
};

fn die(msg: &str) -> ! {
    eprintln!("forensics: {msg}\n");
    eprint!("{}", cli::usage(&SPEC_CLI));
    exit(2);
}

fn run_litmus_traced(name: &str, model: ConsistencyModel) -> (Report, Forensics) {
    let ct = match name {
        "n6" => sa_litmus::suite::n6(),
        "mp" => sa_litmus::suite::mp(),
        other => panic!("unpinned litmus test {other}"),
    };
    let traces = ct.test.to_traces();
    let cfg = SimConfig::default()
        .with_model(model)
        .with_cores(traces.len());
    let n = traces.len();
    let mut sim = Multicore::with_tracer(cfg, traces, Forensics::new(n));
    let report = sim
        .run(5_000_000)
        .unwrap_or_else(|e| panic!("{name} under {model}: {e}"));
    (report, sim.into_tracer())
}

struct Cell {
    report: Report,
    summary: Summary,
}

/// Cross-checks that stream-derived forensics totals reconcile with the
/// simulator's own aggregate counters (warn, don't abort: a sweep that
/// produced data is worth keeping even when it exposes a skew bug).
fn reconcile(name: &str, cell: &Cell) {
    let total = cell.report.total();
    let squashes: u64 = total.squashes.iter().sum();
    if cell.summary.squashes() != squashes {
        eprintln!(
            "warning: {name}/{}: forensics saw {} squashes, counters say {squashes}",
            cell.report.model.label(),
            cell.summary.squashes(),
        );
    }
    if cell.summary.gate_cycles() != total.gate_closed_cycles {
        eprintln!(
            "warning: {name}/{}: forensics episode cycles {} != gate_closed_cycles {}",
            cell.report.model.label(),
            cell.summary.gate_cycles(),
            total.gate_closed_cycles,
        );
    }
}

fn emit_cell(j: &mut JsonWriter, cell: &Cell) {
    let rep = &cell.report;
    let total = rep.total();
    j.begin_object()
        .field_str("config", rep.model.label())
        .field_uint("cycles", rep.cycles)
        .field_uint("instructions", total.retired_instrs)
        .field_uint("gate_closed_cycles", total.gate_closed_cycles)
        .field_uint("squashes", total.squashes.iter().sum())
        .field_uint("sb_commits", total.sb_commits)
        .key("forensics");
    cell.summary.write_json(j);
    j.end_object();
}

fn main() {
    let args = cli::parse(&SPEC_CLI);
    let opts = &args.opts;
    let out_dir = opts.out.clone().expect("spec supplies a default --out");
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| panic!("creating {out_dir}: {e}"));

    let server = args.value("--serve-metrics").map(|p| {
        let port: u16 = p
            .parse()
            .unwrap_or_else(|_| die(&format!("--serve-metrics takes a port number, got {p:?}")));
        let srv = MetricsServer::start(port)
            .unwrap_or_else(|e| die(&format!("binding port {port}: {e}")));
        eprintln!("serving live metrics on http://127.0.0.1:{}/", srv.port());
        Arc::new(srv)
    });

    let models: Vec<ConsistencyModel> = match args.value("--model") {
        Some(label) => {
            let m = ConsistencyModel::ALL
                .iter()
                .copied()
                .find(|m| m.label() == label)
                .unwrap_or_else(|| {
                    let known = ConsistencyModel::ALL
                        .iter()
                        .map(|m| m.label())
                        .collect::<Vec<_>>()
                        .join(", ");
                    die(&format!("unknown config label {label:?}; have: {known}"))
                });
            vec![m]
        }
        None => ConsistencyModel::ALL.to_vec(),
    };

    // Entry selection: an explicit `--litmus`/`--only` narrows the sweep
    // to exactly the named entries; default is the full pinned suite.
    struct Entry {
        name: String,
        kind: &'static str,
    }
    let litmus_sel = args.values("--litmus");
    let mut entries: Vec<Entry> = Vec::new();
    if litmus_sel.is_empty() && opts.only.is_none() {
        for n in LITMUS {
            entries.push(Entry {
                name: n.to_string(),
                kind: "litmus",
            });
        }
        for n in PARALLEL.iter().chain(SPEC.iter()) {
            entries.push(Entry {
                name: n.to_string(),
                kind: if SPEC.contains(n) { "spec" } else { "parallel" },
            });
        }
    } else {
        for n in &litmus_sel {
            if !LITMUS.contains(n) {
                die(&format!(
                    "unpinned litmus test {n:?}; have: {}",
                    LITMUS.join(", ")
                ));
            }
            entries.push(Entry {
                name: n.to_string(),
                kind: "litmus",
            });
        }
        if let Some(only) = &opts.only {
            let kind = if SPEC.contains(&only.as_str()) {
                "spec"
            } else if PARALLEL.contains(&only.as_str()) {
                "parallel"
            } else {
                die(&format!(
                    "unpinned workload {only:?}; have: {}, {}",
                    PARALLEL.join(", "),
                    SPEC.join(", ")
                ))
            };
            entries.push(Entry {
                name: only.clone(),
                kind,
            });
        }
    }

    let cells: Vec<(&Entry, ConsistencyModel)> = entries
        .iter()
        .flat_map(|e| models.iter().map(move |&m| (e, m)))
        .collect();
    let results: Vec<Cell> = parallel_map(&cells, opts.jobs, |&(e, model)| {
        let (report, forensics) = if e.kind == "litmus" {
            run_litmus_traced(&e.name, model)
        } else {
            let w = sa_workloads::by_name(&e.name)
                .unwrap_or_else(|| panic!("unpinned workload {}", e.name));
            run_workload_traced(&w, model, opts.scale, opts.seed, Forensics::new)
        };
        let summary = forensics.finish(report.cycles);
        let cell = Cell { report, summary };
        reconcile(&e.name, &cell);
        if let Some(srv) = &server {
            srv.set_forensics(cell.summary.json());
            let report = cell.report.clone().with_forensics(cell.summary.clone());
            srv.set_prometheus(report.registry().prometheus_text());
        }
        cell
    });

    // The headline config whose blame report is echoed to stdout and
    // whose folded stacks become the flamegraph file.
    let headline = models
        .iter()
        .position(|m| *m == ConsistencyModel::Ibm370SlfSosKey)
        .unwrap_or(models.len() - 1);

    let mut full_report = String::new();
    for (ei, e) in entries.iter().enumerate() {
        let row = &results[ei * models.len()..(ei + 1) * models.len()];

        let mut j = JsonWriter::new();
        cli::schema_header(&mut j, "sa-bench-forensics-v1", opts)
            .field_str("name", &e.name)
            .field_str("kind", e.kind)
            .field_uint("cores", row[0].summary.per_core.len() as u64)
            .key("configs")
            .begin_array();
        for cell in row {
            emit_cell(&mut j, cell);
        }
        j.end_array().end_object();
        let json_path = format!("{out_dir}/forensics_{}.json", e.name);
        std::fs::write(&json_path, format!("{}\n", j.finish()))
            .unwrap_or_else(|er| panic!("writing {json_path}: {er}"));

        let folded = row[headline].summary.flamegraph();
        let folded_path = format!("{out_dir}/forensics_{}.folded", e.name);
        std::fs::write(&folded_path, folded)
            .unwrap_or_else(|er| panic!("writing {folded_path}: {er}"));

        for cell in row {
            let title = format!("{} / {}", e.name, cell.report.model.label());
            full_report.push_str(&cell.summary.blame_report(&title));
            full_report.push('\n');
        }
        println!(
            "{}",
            row[headline].summary.blame_report(&format!(
                "{} / {}",
                e.name,
                row[headline].report.model.label()
            ))
        );
        eprintln!(
            "{:<10} done ({} configs, {} episodes under {})",
            e.name,
            row.len(),
            row[headline].summary.episodes(),
            row[headline].report.model.label(),
        );
    }

    let report_path = format!("{out_dir}/forensics_report.txt");
    std::fs::write(&report_path, &full_report)
        .unwrap_or_else(|e| panic!("writing {report_path}: {e}"));
    eprintln!("wrote {report_path}");
}
