//! Performance-regression harness: runs a pinned suite (two litmus
//! tests, three parallel workloads, two SPEC workloads — every one under
//! all five consistency configurations), recording both sim-side metrics
//! (cycles, IPC, CPI-stack shares, gate/squash counters) and host-side
//! throughput (simulated cycles per wall-second), and writes the result
//! as JSON.
//!
//! The committed `BENCH_pr8.json` at the repository root is the baseline;
//! regenerate it with `cargo run --release --bin perf` after intentional
//! performance changes. CI runs this binary at reduced scale to validate
//! the schema and the CPI-stack accounting offline, and compares the
//! throughput geomean against the previous baseline.
//!
//! Every (workload × config) cell is an independent deterministic
//! simulation, so the sweep fans out across `--jobs` worker threads;
//! results are reassembled in suite order, keeping the sim-side JSON
//! fields byte-identical to a sequential run (host timing aside).
//!
//! With `--profile`, every cell runs under the sa-profile span profiler:
//! the per-cell phase breakdown (engine, memory system, scheduler
//! passes, …) is printed to stderr, the aggregated tree is written next
//! to `--out` as `<out>.profile.json` + `<out>.profile.folded`, and the
//! run fails if any cell's span tree reconciles less than 90% of that
//! cell's measured wall time — a tree that cannot account for the time
//! it claims to measure is not a profile.
//!
//! Host throughput on a shared machine is one-sided noise — preemption
//! and CPU steal only ever *add* wall time — so `--repeat N` runs each
//! cell N times and records the fastest (the simulation itself is
//! deterministic; only the timing varies). Use `--repeat 5` when
//! regenerating a committed baseline.
//!
//! With `--lockstep`, every cell runs on the cycle-exact lockstep
//! reference engine instead of the default event-driven one — CI diffs
//! the two sweeps with `bench-diff` to pin engine equivalence.
//!
//! Usage: `perf [--scale N] [--seed N] [--jobs N] [--out PATH]
//! [--only NAME,NAME] [--repeat N] [--profile] [--lockstep]
//! [--serve-metrics PORT]`
//! (default scale 2000, default output `BENCH_pr8.json`). The one line
//! on stdout is the host-throughput geomean over all cells, for shell
//! pipelines and CI logs; everything else goes to stderr or the JSON.

use std::process::exit;
use std::sync::{Arc, Mutex};

use sa_bench::cli::{self, Arity, Flag, Spec};
use sa_bench::serve::MetricsServer;
use sa_bench::{
    harness, parallel_map, run_workload_lockstep, run_workload_opts, run_workload_profiled,
};
use sa_isa::ConsistencyModel;
use sa_metrics::{CpiCategory, JsonWriter};
use sa_profile::{ProfileTree, Profiler, WallProfiler};
use sa_sim::report::geomean;
use sa_sim::{EngineMode, Multicore, Report, SimConfig};
use sa_trace::NullTracer;

/// The pinned suite. Names must stay stable across PRs so baselines
/// remain comparable.
const LITMUS: [&str; 2] = ["n6", "mp"];
const PARALLEL: [&str; 3] = ["barnes", "radix", "x264"];
const SPEC: [&str; 2] = ["505.mcf", "557.xz_2"];

fn run_litmus(name: &str, model: ConsistencyModel, profile: bool, lockstep: bool) -> Report {
    // Litmus cells finish in microseconds, so the 90% reconciliation
    // gate only holds if *everything* is inside a span: program fetch,
    // trace conversion, engine construction, the run, the report, and
    // the teardown (deallocation).
    let (traces, cfg) = {
        let _p = if profile {
            WallProfiler::span("generate")
        } else {
            None
        };
        let ct = match name {
            "n6" => sa_litmus::suite::n6(),
            "mp" => sa_litmus::suite::mp(),
            other => panic!("unpinned litmus test {other}"),
        };
        let traces = ct.test.to_traces();
        let cfg = SimConfig::default()
            .with_model(model)
            .with_cores(traces.len())
            .with_engine(if lockstep {
                EngineMode::Lockstep
            } else {
                EngineMode::EventDriven
            });
        (traces, cfg)
    };
    if profile {
        let mut sim = {
            let _p = WallProfiler::span("setup");
            Multicore::<NullTracer, WallProfiler>::with_tracer_profiler(cfg, traces, NullTracer)
        };
        sim.run(5_000_000)
            .unwrap_or_else(|e| panic!("{name} under {model}: {e}"));
        let report = {
            let _p = WallProfiler::span("report");
            sim.report()
        };
        let _p = WallProfiler::span("teardown");
        drop(sim);
        report
    } else {
        let mut sim = Multicore::new(cfg, traces);
        sim.run(5_000_000)
            .unwrap_or_else(|e| panic!("{name} under {model}: {e}"));
        sim.report()
    }
}

struct ConfigResult {
    report: Report,
    host_seconds: f64,
    /// Captured span tree (with `--profile`) for this cell.
    profile: Option<ProfileTree>,
}

fn emit_config(j: &mut JsonWriter, r: &ConfigResult, baseline_cycles: u64) {
    let rep = &r.report;
    // The harness's own gate: a report whose CPI stack does not balance
    // is a simulator bug, not a data point.
    assert!(
        rep.cpi_invariant_holds(),
        "{}: CPI stack out of balance",
        rep.model
    );
    let total = rep.total();
    j.begin_object()
        .field_str("config", rep.model.label())
        .field_uint("cycles", rep.cycles)
        .field_uint("instructions", total.retired_instrs)
        .field_float("ipc", rep.ipc())
        .field_float(
            "normalized_time",
            rep.cycles as f64 / baseline_cycles.max(1) as f64,
        )
        .field_float("host_seconds", r.host_seconds)
        .field_float(
            "sim_cycles_per_host_sec",
            if r.host_seconds > 0.0 {
                rep.cycles as f64 / r.host_seconds
            } else {
                0.0
            },
        )
        .field_uint("gate_closed_cycles", total.gate_closed_cycles)
        .field_uint("gate_stall_events", total.gate_stall_events)
        .field_uint("squashes", total.squashes.iter().sum())
        .field_uint("sb_commits", total.sb_commits)
        .field_float("energy_proxy", rep.energy_proxy())
        .field_uint("samples", rep.samples.len() as u64);
    j.key("cpi_stack").begin_object();
    let stack = rep.cpi_total();
    for cat in CpiCategory::ALL {
        j.field_float(cat.label(), stack.share_pct(cat));
    }
    j.end_object().end_object();
}

fn main() {
    // The regression suite is pinned and small; default well below the
    // exploration binaries' 30k so a full 5-config sweep stays quick.
    const EXTRAS: &[Flag] = &[
        Flag {
            name: "--serve-metrics",
            arity: Arity::One,
            help:
                "serve the latest completed cell's /metrics (and /profile) on this localhost port",
        },
        Flag {
            name: "--profile",
            arity: Arity::Switch,
            help: "capture host span profiles per cell; writes <out>.profile.{json,folded}",
        },
        Flag {
            name: "--repeat",
            arity: Arity::One,
            help: "time each cell N times, keep the fastest (default 1)",
        },
        Flag {
            name: "--lockstep",
            arity: Arity::Switch,
            help: "run on the cycle-exact lockstep reference engine (for engine-equivalence diffs)",
        },
    ];
    let args = cli::parse(&Spec {
        default_scale: Some(2_000),
        default_out: Some("BENCH_pr8.json"),
        extras: EXTRAS,
        ..Spec::new(
            "perf",
            "performance-regression harness over the pinned suite",
        )
    });
    let opts = args.opts.clone();
    let out_path = opts.out.clone().expect("spec supplies a default --out");
    let profile_on = args.switch("--profile");
    let lockstep = args.switch("--lockstep");
    if profile_on && lockstep {
        eprintln!("perf: --profile and --lockstep are mutually exclusive");
        exit(2);
    }
    let repeat: usize = args
        .value("--repeat")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("perf: --repeat takes a number, got {v:?}");
                exit(2);
            })
        })
        .unwrap_or(1)
        .max(1);
    // The common `--only` takes one value; perf accepts a
    // comma-separated list so a smoke run can pick one litmus + one
    // workload cell (e.g. `--only n6,radix`).
    let only: Vec<String> = opts
        .only
        .as_deref()
        .map(|s| s.split(',').map(|x| x.trim().to_string()).collect())
        .unwrap_or_default();
    let server = args.value("--serve-metrics").map(|p| {
        let port: u16 = p.parse().unwrap_or_else(|_| {
            eprintln!("perf: --serve-metrics takes a port number, got {p:?}");
            exit(2);
        });
        let srv = MetricsServer::start(port).unwrap_or_else(|e| {
            eprintln!("perf: binding port {port}: {e}");
            exit(2);
        });
        eprintln!("serving live metrics on http://127.0.0.1:{}/", srv.port());
        Arc::new(srv)
    });

    struct Entry {
        name: &'static str,
        kind: &'static str,
    }
    let mut entries: Vec<Entry> = Vec::new();
    for n in LITMUS {
        entries.push(Entry {
            name: n,
            kind: "litmus",
        });
    }
    for n in PARALLEL {
        entries.push(Entry {
            name: n,
            kind: "parallel",
        });
    }
    for n in SPEC {
        entries.push(Entry {
            name: n,
            kind: "spec",
        });
    }
    if !only.is_empty() {
        for o in &only {
            if !entries.iter().any(|e| e.name == o) {
                eprintln!("perf: --only {o:?} is not in the pinned suite");
                exit(2);
            }
        }
        entries.retain(|e| only.iter().any(|o| o == e.name));
    }

    let mut j = JsonWriter::new();
    cli::schema_header(&mut j, "sa-bench-perf-v1", &opts)
        .key("workloads")
        .begin_array();

    // Normalized-time rows (4 store-atomic configs vs x86) for the
    // closing geomean.
    let mut norm_rows: Vec<Vec<f64>> = Vec::new();

    // Every (entry × config) cell is independent: flatten, fan out, and
    // reassemble in order so the emitted JSON is deterministic.
    let n_models = ConsistencyModel::ALL.len();
    let cells: Vec<(&Entry, ConsistencyModel)> = entries
        .iter()
        .flat_map(|e| ConsistencyModel::ALL.iter().map(move |&m| (e, m)))
        .collect();
    // Live /profile snapshot, rebuilt as cells complete (completion
    // order — the committed artifacts below are rebuilt in suite order).
    let live_profile: Mutex<ProfileTree> = Mutex::new(ProfileTree::new());
    let all_results: Vec<ConfigResult> = parallel_map(&cells, opts.jobs, |&(e, model)| {
        let run_cell = || {
            if e.kind == "litmus" {
                harness::time(|| run_litmus(e.name, model, profile_on, lockstep))
            } else {
                let w = sa_workloads::by_name(e.name)
                    .unwrap_or_else(|| panic!("unpinned workload {}", e.name));
                if profile_on {
                    harness::time(|| run_workload_profiled(&w, model, opts.scale, opts.seed))
                } else if lockstep {
                    harness::time(|| run_workload_lockstep(&w, model, opts.scale, opts.seed))
                } else {
                    harness::time(|| run_workload_opts(&w, model, &opts))
                }
            }
        };
        // Best-of-N: keep the run with the lowest wall time (and, when
        // profiling, the span tree captured around that same run, so the
        // reconciliation gate compares a tree against its own timing).
        let mut best: Option<((Report, f64), Option<ProfileTree>)> = None;
        for _ in 0..repeat {
            let sample = if profile_on {
                let (timed, tree) = sa_profile::capture(run_cell);
                (timed, Some(tree))
            } else {
                (run_cell(), None)
            };
            if best.as_ref().is_none_or(|b| sample.0 .1 < b.0 .1) {
                best = Some(sample);
            }
        }
        let ((report, host_seconds), profile) = best.expect("repeat >= 1");
        let r = ConfigResult {
            report,
            host_seconds,
            profile,
        };
        if let Some(tree) = &r.profile {
            let mut live = live_profile.lock().expect("live profile");
            live.merge_under(&format!("{}/{}", e.name, model.label()), tree);
            if let Some(srv) = &server {
                srv.set_profile(live.to_json());
            }
        }
        if let Some(srv) = &server {
            srv.set_prometheus(r.report.registry().prometheus_text());
        }
        r
    });

    if profile_on {
        // Deterministic master tree (suite order, unlike the live
        // completion-order snapshot) plus the per-cell reconciliation
        // gate: each cell's span tree must account for ≥90% of the wall
        // time `harness::time` measured around the same cell.
        let mut master = ProfileTree::new();
        let mut worst = (f64::INFINITY, String::new());
        for (i, &(e, model)) in cells.iter().enumerate() {
            let r = &all_results[i];
            let tree = r.profile.as_ref().expect("profiled run has a tree");
            let label = format!("{}/{}", e.name, model.label());
            let wall_ns = (r.host_seconds * 1e9).max(1.0);
            let pct = 100.0 * tree.total_ns() as f64 / wall_ns;
            if pct < worst.0 {
                worst = (pct, label.clone());
            }
            let phases: Vec<String> = tree
                .roots()
                .iter()
                .map(|&idx| {
                    let n = tree.node(idx);
                    format!("{} {:.1}%", n.name, 100.0 * n.total_ns as f64 / wall_ns)
                })
                .collect();
            eprintln!(
                "profile {label:<28} {pct:5.1}% of {:.4}s wall ({})",
                r.host_seconds,
                phases.join(", ")
            );
            master.merge_under(&label, tree);
        }
        let profile_json = format!("{out_path}.profile.json");
        let profile_folded = format!("{out_path}.profile.folded");
        std::fs::write(&profile_json, format!("{}\n", master.to_json()))
            .unwrap_or_else(|e| panic!("writing {profile_json}: {e}"));
        std::fs::write(&profile_folded, master.folded())
            .unwrap_or_else(|e| panic!("writing {profile_folded}: {e}"));
        eprintln!("wrote {profile_json} and {profile_folded}");
        if worst.0 < 90.0 {
            eprintln!(
                "perf: profile for {} reconciles only {:.1}% of its wall time (>= 90% required)",
                worst.1, worst.0
            );
            exit(1);
        }
        eprintln!(
            "profile reconciliation: worst cell {} at {:.1}% (>= 90% required)",
            worst.1, worst.0
        );
    }

    for (ei, e) in entries.iter().enumerate() {
        let results = &all_results[ei * n_models..(ei + 1) * n_models];
        let baseline = results[0].report.cycles;
        norm_rows.push(
            results[1..]
                .iter()
                .map(|r| r.report.cycles as f64 / baseline.max(1) as f64)
                .collect(),
        );
        j.begin_object()
            .field_str("name", e.name)
            .field_str("kind", e.kind)
            .field_uint("cores", results[0].report.per_core.len() as u64)
            .key("configs")
            .begin_array();
        for r in results {
            emit_config(&mut j, r, baseline);
        }
        j.end_array().end_object();
        eprintln!(
            "{:<10} done ({} configs, x86 cycles {})",
            e.name,
            results.len(),
            baseline
        );
    }
    j.end_array();

    let labels = ["nospec", "slfspec", "slfsos", "slfsos_key"];
    j.key("geomean_normalized_time").begin_object();
    for (i, label) in labels.iter().enumerate() {
        let col: Vec<f64> = norm_rows.iter().map(|r| r[i]).collect();
        j.field_float(label, geomean(&col));
    }
    j.end_object().end_object();

    let body = j.finish();
    std::fs::write(&out_path, format!("{body}\n"))
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    // The single stdout line: host-throughput geomean over every cell,
    // the headline number regression comparisons are made against.
    let rates: Vec<f64> = all_results
        .iter()
        .filter(|r| r.host_seconds > 0.0)
        .map(|r| r.report.cycles as f64 / r.host_seconds)
        .collect();
    println!(
        "geomean sim-cycles/s over {} cells: {:.0}",
        rates.len(),
        geomean(&rates)
    );
}
