//! A single-threaded architectural reference interpreter.
//!
//! Executes a [`Trace`] instantly (no timing) with exact value semantics.
//! Every consistency configuration of the cycle-level core must produce
//! the same single-threaded architectural result as this interpreter —
//! the property tests in `sa-ooo` check exactly that.

use crate::instr::{Op, StoreOperand};
use crate::mem::ValueMemory;
use crate::trace::Trace;
use crate::{Reg, Value, NUM_REGS};

/// Architectural end state of a trace.
#[derive(Debug, Clone)]
pub struct ArchState {
    regs: [Value; NUM_REGS],
    /// Final memory image.
    pub memory: ValueMemory,
    /// Instructions executed.
    pub executed: u64,
}

impl ArchState {
    /// Value of register `r`.
    pub fn reg(&self, r: Reg) -> Value {
        self.regs[r.index()]
    }
}

/// Executes `trace` against `memory` (pre-initialized values allowed) and
/// returns the final architectural state.
pub fn interpret(trace: &Trace, mut memory: ValueMemory) -> ArchState {
    let mut regs = [0u64; NUM_REGS];
    let mut executed = 0u64;
    for instr in trace {
        executed += 1;
        match &instr.op {
            Op::Alu {
                dst, srcs, eval, ..
            } => {
                let vals: Vec<Value> = srcs.iter().flatten().map(|r| regs[r.index()]).collect();
                if let Some(d) = dst {
                    regs[d.index()] = eval.eval(&vals);
                }
            }
            Op::Load {
                dst, addr, size, ..
            } => {
                regs[dst.index()] = memory.read(*addr, *size);
            }
            Op::Store {
                src, addr, size, ..
            } => {
                let v = match src {
                    StoreOperand::Imm(v) => *v,
                    StoreOperand::Reg(r) => regs[r.index()],
                };
                memory.write(*addr, *size, v);
            }
            Op::Branch { .. } | Op::Fence | Op::Nop => {}
        }
    }
    ArchState {
        regs,
        memory,
        executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    #[test]
    fn dataflow_roundtrip() {
        let mut b = TraceBuilder::new();
        b.mov_imm(Reg::new(1), 20);
        b.mov_imm(Reg::new(2), 22);
        b.add(Reg::new(3), Reg::new(1), Reg::new(2));
        b.store_reg(0x100, Reg::new(3));
        b.load(Reg::new(4), 0x100);
        let s = interpret(&b.build(), ValueMemory::new());
        assert_eq!(s.reg(Reg::new(3)), 42);
        assert_eq!(s.reg(Reg::new(4)), 42);
        assert_eq!(s.memory.read(0x100, 8), 42);
        assert_eq!(s.executed, 5);
    }

    #[test]
    fn preinitialized_memory_observed() {
        let mut m = ValueMemory::new();
        m.write(0x200, 8, 7);
        let mut b = TraceBuilder::new();
        b.load(Reg::new(0), 0x200);
        let s = interpret(&b.build(), m);
        assert_eq!(s.reg(Reg::new(0)), 7);
    }

    #[test]
    fn control_ops_are_neutral() {
        let mut b = TraceBuilder::new();
        b.branch(true, None).fence().nop();
        let s = interpret(&b.build(), ValueMemory::new());
        assert_eq!(s.executed, 3);
        assert_eq!(s.memory.words_written(), 0);
    }

    #[test]
    fn program_order_of_same_address_stores() {
        let mut b = TraceBuilder::new();
        b.store_imm(0x100, 1);
        b.store_imm(0x100, 2);
        b.load(Reg::new(0), 0x100);
        let s = interpret(&b.build(), ValueMemory::new());
        assert_eq!(s.reg(Reg::new(0)), 2);
    }
}
