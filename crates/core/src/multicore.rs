//! The assembled multicore: N out-of-order cores over one coherent memory
//! system and one global value image.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use sa_coherence::msg::NodeId;
use sa_coherence::{
    bank_shard, core_shard, shard_lookahead, MemReqId, MemStats, MemorySystem, NocStats, Notice,
    RemoteEvent,
};
use sa_isa::{Addr, CoreId, Cycle, Line, StripedValueMemory, Trace, Value, ValueMemory};
use sa_metrics::{SampleInput, Sampler};
use sa_ooo::{Core, LoadStorePort};
use sa_profile::{NullProfiler, Profiler};
use sa_trace::{NullTracer, TraceEvent, Tracer};

use crate::config::{EngineMode, SimConfig};
use crate::report::Report;
use crate::scalescope::{EpochSlice, ParallelScope, ShardScope};

/// Cycles without a single retired instruction machine-wide before a run
/// is declared wedged.
const WATCHDOG: Cycle = 1_000_000;

/// One core's view of the shared memory system.
struct PortView<'a> {
    mem: &'a mut MemorySystem,
    core: CoreId,
}

impl LoadStorePort for PortView<'_> {
    fn issue_load(&mut self, line: Line, pc: u64, addr: Addr, now: Cycle) -> Option<MemReqId> {
        self.mem.issue_load(self.core, line, pc, addr, now)
    }

    fn issue_ownership(&mut self, line: Line, now: Cycle) -> Option<MemReqId> {
        self.mem.issue_ownership(self.core, line, now)
    }

    fn has_ownership(&self, line: Line) -> bool {
        self.mem.has_ownership(self.core, line)
    }

    fn mark_dirty(&mut self, line: Line) {
        self.mem.mark_dirty(self.core, line);
    }

    fn l1_latency(&self) -> u64 {
        self.mem.l1_latency()
    }

    fn reject_epoch(&self) -> Option<u64> {
        Some(self.mem.reject_epoch(self.core))
    }

    fn note_rejected_issues(&mut self, n: u64) {
        self.mem.note_rejected_issues(self.core, n);
    }
}

/// Why a run did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The cycle budget elapsed before every core finished.
    CycleLimit {
        /// The budget that was exhausted.
        limit: Cycle,
    },
    /// No core retired an instruction for a long time — a deadlock in
    /// the model (this is a simulator bug, surfaced loudly).
    NoProgress {
        /// Cycle at which progress stopped being observed.
        since: Cycle,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::CycleLimit { limit } => {
                write!(f, "cycle budget of {limit} exhausted before completion")
            }
            RunError::NoProgress { since } => {
                write!(
                    f,
                    "no instruction retired since cycle {since} (model deadlock)"
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// The simulated machine, generic over the attached [`Tracer`] and
/// host-side [`Profiler`].
///
/// The default instantiation carries a [`NullTracer`] and a
/// [`NullProfiler`], which monomorphize every emission and span site to
/// nothing — `Multicore::new` builds that bare machine. Attach a real
/// sink (ring buffer, counters, `Vec`) with [`Multicore::with_tracer`]
/// and take it back with [`Multicore::into_tracer`] after the run;
/// attach a profiler (e.g. `sa_profile::WallProfiler`) with
/// [`Multicore::with_tracer_profiler`] to record the per-phase host
/// wall-time tree into the running thread's `sa-profile` collector.
#[derive(Debug)]
pub struct Multicore<T: Tracer = NullTracer, P: Profiler = NullProfiler> {
    cfg: SimConfig,
    cores: Vec<Core>,
    mem: MemorySystem,
    valmem: ValueMemory,
    cycle: Cycle,
    sampler: Sampler,
    tracer: T,
    /// Reusable buffer the per-cycle loop drains notices into, so the
    /// hot path never allocates.
    notice_scratch: Vec<Notice>,
    /// Global memory-system statistics assembled from shard partials by
    /// a parallel run; `None` until one completes. `self.mem` is not
    /// advanced by the parallel engine, so [`Multicore::report`] prefers
    /// this snapshot when present.
    parallel_mem_stats: Option<MemStats>,
    /// Epoch/barrier telemetry of the last parallel run (sa-scalescope).
    /// Stored outside [`Report`] — the engine-equivalence assertions
    /// compare reports, and host-time telemetry must never enter them.
    /// `None` after serial runs: the telemetry is not allocated at all
    /// when the parallel engine is off.
    parallel_scope: Option<ParallelScope>,
    /// NoC snapshot merged from shard partials by a parallel run, for
    /// the same reason [`Multicore::noc_stats`] prefers it when present.
    parallel_noc: Option<NocStats>,
    /// The profiler is stateless (spans land in thread-local storage);
    /// only its type travels with the machine.
    _profiler: PhantomData<P>,
}

impl Multicore {
    /// Builds an untraced machine running `traces[i]` on core `i`.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len()` differs from the configured core count or
    /// the configuration is invalid.
    pub fn new(cfg: SimConfig, traces: Vec<Trace>) -> Multicore {
        Multicore::with_tracer(cfg, traces, NullTracer)
    }
}

impl<T: Tracer> Multicore<T> {
    /// Builds a machine running `traces[i]` on core `i`, recording every
    /// pipeline/gate/SB/coherence event into `tracer`.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len()` differs from the configured core count or
    /// the configuration is invalid.
    pub fn with_tracer(cfg: SimConfig, traces: Vec<Trace>, tracer: T) -> Multicore<T> {
        Multicore::with_tracer_profiler(cfg, traces, tracer)
    }
}

impl<T: Tracer, P: Profiler> Multicore<T, P> {
    /// Builds a machine with both a tracer and a host-side profiler
    /// type. Name `P` explicitly at the call site
    /// (`Multicore::<NullTracer, WallProfiler>::with_tracer_profiler(…)`);
    /// the profiler has no state to pass.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len()` differs from the configured core count or
    /// the configuration is invalid.
    pub fn with_tracer_profiler(cfg: SimConfig, traces: Vec<Trace>, tracer: T) -> Multicore<T, P> {
        cfg.validate();
        assert_eq!(
            traces.len(),
            cfg.n_cores(),
            "need exactly one trace per core"
        );
        let cores = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| Core::new(CoreId::from_index(i), cfg.core.clone(), cfg.model, t))
            .collect();
        Multicore {
            mem: MemorySystem::new(cfg.mem.clone()),
            valmem: ValueMemory::new(),
            cores,
            cycle: 0,
            sampler: Sampler::new(cfg.sample_interval, cfg.sample_capacity),
            cfg,
            tracer,
            notice_scratch: Vec::new(),
            parallel_mem_stats: None,
            parallel_scope: None,
            parallel_noc: None,
            _profiler: PhantomData,
        }
    }

    /// The attached tracer.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Mutable access to the attached tracer (e.g. to drain mid-run).
    pub fn tracer_mut(&mut self) -> &mut T {
        &mut self.tracer
    }

    /// Consumes the machine and returns the tracer with everything it
    /// recorded.
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Immutable view of one core (registers, stats, gate).
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.index()]
    }

    /// The global value image (final memory state for litmus outcomes).
    pub fn memory(&self) -> &ValueMemory {
        &self.valmem
    }

    /// Pre-initializes a memory word before the run starts.
    pub fn poke(&mut self, addr: Addr, size: u8, value: Value) {
        self.valmem.write(addr, size, value);
    }

    /// `true` once every core finished its trace.
    pub fn finished(&self) -> bool {
        self.cores.iter().all(Core::finished)
    }

    /// Simulates one global cycle, returning how many instructions
    /// retired machine-wide during it.
    pub fn step(&mut self) -> u64 {
        {
            let _p = P::span("memsys");
            self.mem
                .advance_profiled::<T, P>(self.cycle, &mut self.tracer);
        }
        let mut retired = 0;
        for i in 0..self.cores.len() {
            let id = CoreId::from_index(i);
            self.notice_scratch.clear();
            if self.mem.has_notices(id) {
                self.mem.take_notices_into(id, &mut self.notice_scratch);
            }
            if self.cores[i].finished() && self.notice_scratch.is_empty() {
                continue;
            }
            let mut port = PortView {
                mem: &mut self.mem,
                core: id,
            };
            let _p = P::span("tick");
            let r = self.cores[i].tick_profiled::<_, _, T, P>(
                self.cycle,
                &mut port,
                &mut self.valmem,
                &self.notice_scratch,
                &mut self.tracer,
            );
            retired += r.retired;
        }
        self.cycle += 1;
        if self.cfg.sample_interval != 0 && self.sampler.due(self.cycle) {
            self.sample();
        }
        retired
    }

    /// Gathers one instantaneous machine snapshot into the sampler.
    fn sample(&mut self) {
        let mut input = SampleInput {
            n_cores: self.cores.len() as u64,
            outstanding_misses: self.mem.outstanding_misses() as u64,
            ..SampleInput::default()
        };
        for c in &self.cores {
            let (rob, lq, sq) = c.occupancy();
            input.rob += rob as u64;
            input.lq += lq as u64;
            input.sq += sq as u64;
            input.sb += c.sb_depth() as u64;
            let s = c.stats();
            input.retired += s.retired_instrs;
            input.gate_closed_cycles += s.gate_closed_cycles;
            input.squashes += s.squashes.iter().sum::<u64>();
        }
        self.sampler.record(self.cycle, input);
    }

    /// Runs until every core finishes or `max_cycles` elapse.
    ///
    /// Dispatches on [`SimConfig::engine`]. A real tracer forces the
    /// lockstep engine on the serial paths (tracers want the per-cycle
    /// event stream); the parallel engine collects per-shard keyed
    /// streams and merges them back into exactly the lockstep emission
    /// order. All engines are cycle-exact with one another: identical
    /// final cycle counts, statistics and memory images (enforced by
    /// `tests/engine_equivalence` and `tests/parallel_equivalence`).
    ///
    /// # Errors
    ///
    /// [`RunError::CycleLimit`] when the budget runs out;
    /// [`RunError::NoProgress`] when the machine wedges (a model bug).
    pub fn run(&mut self, max_cycles: Cycle) -> Result<Report, RunError> {
        match self.cfg.engine {
            EngineMode::Parallel { threads } => self.run_parallel(threads, max_cycles),
            _ if T::ENABLED => self.run_lockstep(max_cycles),
            EngineMode::Lockstep => self.run_lockstep(max_cycles),
            EngineMode::EventDriven => self.run_event(max_cycles),
        }
    }

    /// The reference engine: one [`Multicore::step`] per cycle.
    fn run_lockstep(&mut self, max_cycles: Cycle) -> Result<Report, RunError> {
        let _engine = P::span("lockstep");
        let mut last_progress = self.cycle;
        while !self.finished() {
            if self.cycle >= max_cycles {
                return Err(RunError::CycleLimit { limit: max_cycles });
            }
            if self.step() > 0 {
                last_progress = self.cycle;
            } else if self.cycle - last_progress > WATCHDOG {
                return Err(RunError::NoProgress {
                    since: last_progress,
                });
            }
        }
        Ok(self.report())
    }

    /// The event-driven engine.
    ///
    /// A core that ticks without making progress is put to sleep: its
    /// remaining stall is a pure replay (the same CPI category, the same
    /// occupancies) until either a notice arrives from the memory system
    /// or its own next timed wakeup ([`Core::next_timed_wakeup`]) comes
    /// due, so those cycles are applied in bulk via
    /// [`Core::apply_idle_cycles`] instead of being simulated. When every
    /// core is asleep the engine jumps straight to the earliest cycle
    /// anything can happen: the memory system's next queued event, the
    /// earliest core wakeup, the next sampler boundary (samples must land
    /// exactly where lockstep puts them), the watchdog deadline, or the
    /// cycle budget — whichever comes first.
    fn run_event(&mut self, max_cycles: Cycle) -> Result<Report, RunError> {
        let _engine = P::span("event");
        let n = self.cores.len();
        // `active[i]`: last tick made progress, so tick again next cycle.
        // `wake[i]`: earliest self-scheduled wakeup of a sleeping core
        // (`None` = only a notice can wake it).
        let mut active = vec![true; n];
        let mut wake: Vec<Option<Cycle>> = vec![None; n];
        let mut last_progress = self.cycle;
        while !self.finished() {
            if self.cycle >= max_cycles {
                return Err(RunError::CycleLimit { limit: max_cycles });
            }
            {
                let _p = P::span("memsys");
                self.mem
                    .advance_profiled::<T, P>(self.cycle, &mut self.tracer);
            }
            let mut retired = 0u64;
            let mut any_active = false;
            for i in 0..n {
                let id = CoreId::from_index(i);
                self.notice_scratch.clear();
                if self.mem.has_notices(id) {
                    self.mem.take_notices_into(id, &mut self.notice_scratch);
                }
                let due = active[i]
                    || !self.notice_scratch.is_empty()
                    || wake[i].is_some_and(|w| w <= self.cycle);
                if !due {
                    if !self.cores[i].finished() {
                        self.cores[i].apply_idle_cycles(1);
                    }
                    continue;
                }
                if self.cores[i].finished() && self.notice_scratch.is_empty() {
                    active[i] = false;
                    wake[i] = None;
                    continue;
                }
                let mut port = PortView {
                    mem: &mut self.mem,
                    core: id,
                };
                let _p = P::span("tick");
                let r = self.cores[i].tick_profiled::<_, _, T, P>(
                    self.cycle,
                    &mut port,
                    &mut self.valmem,
                    &self.notice_scratch,
                    &mut self.tracer,
                );
                drop(_p);
                retired += r.retired;
                if r.progress {
                    active[i] = true;
                    any_active = true;
                } else {
                    active[i] = false;
                    wake[i] = self.cores[i].next_timed_wakeup(self.cycle);
                }
            }
            self.cycle += 1;
            if self.cfg.sample_interval != 0 && self.sampler.due(self.cycle) {
                self.sample();
            }
            if retired > 0 {
                last_progress = self.cycle;
            } else if self.cycle - last_progress > WATCHDOG {
                return Err(RunError::NoProgress {
                    since: last_progress,
                });
            }
            if any_active || self.finished() {
                continue;
            }
            // Everything is asleep: jump to the next interesting cycle.
            let _p = P::span("jump");
            let mut next = Cycle::MAX;
            if let Some(c) = self.mem.next_event_cycle() {
                next = next.min(c);
            }
            for w in wake.iter().flatten() {
                next = next.min(*w);
            }
            next = next.min(last_progress + WATCHDOG + 1).min(max_cycles);
            if self.cfg.sample_interval != 0 {
                let interval = self.cfg.sample_interval;
                next = next.min((self.cycle / interval + 1) * interval);
            }
            if next <= self.cycle {
                continue;
            }
            let skipped = next - self.cycle;
            for c in &mut self.cores {
                if !c.finished() {
                    c.apply_idle_cycles(skipped);
                }
            }
            self.cycle = next;
            if self.cfg.sample_interval != 0 && self.sampler.due(self.cycle) {
                self.sample();
            }
            if self.cycle - last_progress > WATCHDOG {
                return Err(RunError::NoProgress {
                    since: last_progress,
                });
            }
        }
        Ok(self.report())
    }

    /// The parallel engine: conservative-lookahead PDES.
    ///
    /// Cores and their private cache controllers — plus the directory
    /// banks they co-own — are partitioned across `threads` worker
    /// shards ([`sa_coherence::core_shard`] / [`sa_coherence::bank_shard`]).
    /// Each shard advances its slice of the machine independently inside
    /// *epochs* of `L` cycles, where `L` is the exact minimum cross-shard
    /// delivery delay ([`sa_coherence::shard_lookahead`]): every
    /// cross-shard message takes at least `L` cycles of virtual time, so
    /// an event sent during epoch `k` can only be due in epoch `k + 1`
    /// or later, and exchanging cross-shard deliveries at the epoch
    /// barrier is always in time. On the fully-connected fabric `L` is
    /// the one-hop floor `hop_latency + min(ctrl_flits, data_flits)`; on
    /// a mesh the core-affine bank ownership of
    /// [`sa_coherence::bank_shard`] pushes the shortest cross-shard
    /// channel several hops out, so the epochs — and the stretch of
    /// cache-hot, barrier-free simulation per shard — grow with it. Within an epoch each shard runs the
    /// serial event engine verbatim over its local cores (or lockstep when
    /// a tracer is attached), so the interleaving every core observes is
    /// *identical* to the serial engines' — the parallel run is bit-exact,
    /// not approximately equal.
    ///
    /// Termination: each shard publishes its local finish cycle at the
    /// barrier; once every shard has finished, the global finish cycle is
    /// the maximum vote, and one final catch-up pass (bounded by that
    /// cycle) drains the remaining notice ticks — any message sent during
    /// it would be due strictly after the finish cycle and is dropped, so
    /// no further epoch is needed.
    ///
    /// Degenerate configurations (`threads < 2`, a resumed run, or a
    /// zero lookahead) fall back to the serial engines, which are
    /// bit-exact by the same invariant.
    fn run_parallel(&mut self, threads: usize, max_cycles: Cycle) -> Result<Report, RunError> {
        let threads = threads.clamp(1, self.cores.len().max(1));
        let lookahead = shard_lookahead(&self.cfg.mem, threads);
        if self.finished() {
            return Ok(self.report());
        }
        if max_cycles == 0 {
            return Err(RunError::CycleLimit { limit: 0 });
        }
        if threads < 2 || lookahead < 1 || self.cycle != 0 {
            return if T::ENABLED {
                self.run_lockstep(max_cycles)
            } else {
                self.run_event(max_cycles)
            };
        }
        if T::ENABLED {
            self.run_parallel_impl::<KeyedCollector>(threads, max_cycles, lookahead)
        } else {
            self.run_parallel_impl::<NullTracer>(threads, max_cycles, lookahead)
        }
    }

    /// Body of the parallel engine, monomorphized over the shard-local
    /// collector `C`: [`NullTracer`] for untraced runs (shards use the
    /// event-driven loop), [`KeyedCollector`] when a real tracer is
    /// attached (shards run lockstep within epochs and record keyed
    /// events for the deterministic merge).
    fn run_parallel_impl<C: ShardCollector>(
        &mut self,
        threads: usize,
        max_cycles: Cycle,
        lookahead: Cycle,
    ) -> Result<Report, RunError> {
        let _engine = P::span("parallel");
        let n_cores = self.cores.len();
        let n_banks = self.cfg.mem.l3_banks;
        let interval = self.cfg.sample_interval;

        // The bank ownership map, computed once and shared read-only:
        // shard workers route outbox events with it, and it is the same
        // map `MemorySystem::new_shard` builds each shard from.
        let bank_owner: Vec<usize> = (0..n_banks)
            .map(|b| bank_shard(b, &self.cfg.mem, threads))
            .collect();

        // Partition the cores (with their global indices) across shards.
        let mut pool: Vec<Option<Core>> = std::mem::take(&mut self.cores)
            .into_iter()
            .map(Some)
            .collect();
        let shards: Vec<EngineShard<C>> = (0..threads)
            .map(|s| {
                let cores: Vec<(usize, Core)> = (0..n_cores)
                    .filter(|&i| core_shard(i, n_cores, threads) == s)
                    .map(|i| (i, pool[i].take().expect("each core owned by one shard")))
                    .collect();
                let k = cores.len();
                EngineShard {
                    id: s,
                    cores,
                    mem: MemorySystem::new_shard(self.cfg.mem.clone(), s, threads),
                    collector: C::default(),
                    cur: 0,
                    active: vec![true; k],
                    wake: vec![None; k],
                    scratch: Vec::new(),
                    finished_at: None,
                    samples: Vec::new(),
                    last_retire: 0,
                    limit_hit: false,
                    error: None,
                    scope: ShardScope {
                        shard: s,
                        ..ShardScope::default()
                    },
                }
            })
            .collect();

        // The shared value image: striped mutexes make it Sync, and the
        // lookahead bound makes the ordering exact — two conflicting
        // accesses from different shards are separated by at least one
        // protocol round-trip (>= 2L virtual cycles), hence by at least
        // one epoch barrier in real time.
        let striped = StripedValueMemory::from_value_memory(std::mem::replace(
            &mut self.valmem,
            ValueMemory::new(),
        ));
        let sync = ShardSync {
            barrier: Barrier::new(threads),
            finished: (0..threads).map(|_| AtomicU64::new(u64::MAX)).collect(),
            retire: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            limit: AtomicBool::new(false),
            inboxes: (0..threads).map(|_| Mutex::new(Vec::new())).collect(),
            arrivals_a: AtomicUsize::new(0),
            arrivals_b: AtomicUsize::new(0),
        };

        let region_start = Instant::now();
        let results: Vec<EngineShard<C>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|st| {
                    let sync = &sync;
                    let striped = &striped;
                    let bank_owner = &bank_owner;
                    scope.spawn(move || {
                        shard_worker::<C, P>(
                            st,
                            sync,
                            striped,
                            interval,
                            max_cycles,
                            lookahead,
                            (n_cores, threads),
                            bank_owner,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        let wall_ns = region_start.elapsed().as_nanos() as u64;

        // Reassemble the machine: cores back in index order, the value
        // image back to its plain form, the clock to the global finish.
        let mut back: Vec<Option<Core>> = (0..n_cores).map(|_| None).collect();
        let mut partials: Vec<MemStats> = Vec::with_capacity(threads);
        let mut entries: Vec<TraceEntry> = Vec::new();
        let mut sample_acc: BTreeMap<Cycle, SampleInput> = BTreeMap::new();
        let mut error = None;
        let mut final_cycle = 0;
        let mut scope = ParallelScope {
            threads,
            lookahead,
            topology: self.cfg.mem.topology.to_string(),
            wall_ns,
            epochs: 0,
            per_shard: Vec::with_capacity(threads),
        };
        let mut noc = NocStats::default();
        for st in results {
            for (gi, core) in st.cores {
                back[gi] = Some(core);
            }
            final_cycle = final_cycle.max(st.cur);
            if st.error.is_some() {
                error = st.error;
            }
            partials.push(st.mem.stats());
            noc.merge(&st.mem.noc_stats());
            for (c, input) in st.samples {
                add_sample(sample_acc.entry(c).or_default(), &input);
            }
            entries.extend(st.collector.into_entries());
            scope.epochs = scope.epochs.max(st.scope.epochs);
            scope.per_shard.push(st.scope);
        }
        // Publish the phase totals as sa-profile span-tree children of
        // the open "parallel" span (no-ops under the null profiler).
        P::sample_ns("shard-work", scope.work_ns());
        P::sample_ns("barrier-wait", scope.wait_ns());
        P::sample_ns("exchange", scope.exchange_ns());
        self.parallel_scope = Some(scope);
        self.parallel_noc = Some(noc);
        self.cores = back
            .into_iter()
            .map(|c| c.expect("every core returned by its shard"))
            .collect();
        self.valmem = striped.into_value_memory();
        self.cycle = final_cycle;
        if let Some(e) = error {
            return Err(e);
        }

        self.parallel_mem_stats = Some(MemorySystem::merge_stats(&self.cfg.mem, &partials));
        for (c, input) in sample_acc {
            self.sampler.record(c, input);
        }
        // Replay the merged event stream in canonical order — exactly the
        // sequence the serial lockstep engine would have emitted.
        entries.sort_by_key(|e| (e.cycle, e.phase, e.origin, e.seq));
        for e in entries {
            self.tracer.record(e.ev);
        }
        Ok(self.report())
    }

    /// Epoch/barrier telemetry of the last parallel run, or `None` when
    /// no parallel run completed (the zero-cost-when-off guarantee:
    /// serial engines never construct it).
    pub fn scalescope(&self) -> Option<&ParallelScope> {
        self.parallel_scope.as_ref()
    }

    /// The NoC snapshot: link-utilization matrix, message-latency
    /// histogram, per-bank occupancy and invalidation storms. After a
    /// parallel run this is the shard-merged snapshot; otherwise it is
    /// read straight off the serial memory system. The two agree —
    /// every field is a pure function of the bit-exact simulation.
    pub fn noc_stats(&self) -> NocStats {
        self.parallel_noc
            .clone()
            .unwrap_or_else(|| self.mem.noc_stats())
    }

    /// Snapshot of all statistics.
    pub fn report(&self) -> Report {
        Report {
            model: self.cfg.model,
            cycles: self.cycle,
            width: self.cfg.core.width,
            per_core: self.cores.iter().map(|c| *c.stats()).collect(),
            metrics: self.cores.iter().map(|c| c.metrics().clone()).collect(),
            samples: self.sampler.to_vec(),
            sample_interval: self.sampler.interval(),
            mem: self
                .parallel_mem_stats
                .clone()
                .unwrap_or_else(|| self.mem.stats()),
            forensics: None,
        }
    }
}

// ---------------------------------------------------------------------
// Parallel-engine machinery
// ---------------------------------------------------------------------

/// One trace event captured by a shard together with its canonical merge
/// key. `phase` orders same-cycle protocol deliveries (0) before core
/// ticks (1), matching the serial engines' within-cycle order: the memory
/// system is always pumped before any core ticks.
struct TraceEntry {
    cycle: Cycle,
    phase: u8,
    origin: u32,
    seq: u64,
    ev: TraceEvent,
}

/// A tracer a shard worker can own: collects the shard's events with
/// their canonical keys so the main thread can merge the per-shard
/// streams back into exactly the serial emission order.
trait ShardCollector: Tracer + Send + Default {
    fn into_entries(self) -> Vec<TraceEntry>;
}

impl ShardCollector for NullTracer {
    fn into_entries(self) -> Vec<TraceEntry> {
        Vec::new()
    }
}

/// The collector used when a real tracer is attached: protocol events
/// keep the memory system's `(origin, seq)` pop key ([`Tracer::emit_keyed`]);
/// tick-side events are keyed by the emitting core and a per-shard
/// sequence number — cores belong to exactly one shard, so within-core
/// emission order is total, and distinct cores never tie (distinct
/// origins).
#[derive(Default)]
struct KeyedCollector {
    entries: Vec<TraceEntry>,
    tick_seq: u64,
}

impl Tracer for KeyedCollector {
    const ENABLED: bool = true;

    fn record(&mut self, ev: TraceEvent) {
        let key = (ev.cycle, ev.core.index() as u32, self.tick_seq);
        self.tick_seq += 1;
        self.entries.push(TraceEntry {
            cycle: key.0,
            phase: 1,
            origin: key.1,
            seq: key.2,
            ev,
        });
    }

    fn emit_keyed(&mut self, key: (u32, u64), f: impl FnOnce() -> TraceEvent) {
        let ev = f();
        self.entries.push(TraceEntry {
            cycle: ev.cycle,
            phase: 0,
            origin: key.0,
            seq: key.1,
            ev,
        });
    }
}

impl ShardCollector for KeyedCollector {
    fn into_entries(self) -> Vec<TraceEntry> {
        self.entries
    }
}

/// One worker's slice of the machine: the cores it owns (tagged with
/// their global index), the memory-system shard hosting their private
/// controllers and this shard's directory banks, plus the run state the
/// serial event engine keeps globally.
struct EngineShard<C> {
    id: usize,
    cores: Vec<(usize, Core)>,
    mem: MemorySystem,
    collector: C,
    /// This shard's virtual clock (next cycle to simulate).
    cur: Cycle,
    active: Vec<bool>,
    wake: Vec<Option<Cycle>>,
    scratch: Vec<Notice>,
    /// `Some(f)` once every local core has finished; `f` is one past the
    /// cycle of the finishing tick — this shard's vote for the global
    /// finish cycle.
    finished_at: Option<Cycle>,
    /// Local-core partial sampler inputs at each interval boundary.
    samples: Vec<(Cycle, SampleInput)>,
    /// Cycle just after the last local retirement (watchdog input).
    last_retire: Cycle,
    limit_hit: bool,
    error: Option<RunError>,
    /// sa-scalescope telemetry accumulated by the worker loop.
    scope: ShardScope,
}

/// Shared epoch-barrier state. Shards publish their flags *before* the
/// barrier and read everyone's *after* it, so all shards compute the
/// same global decision (finish / cycle-limit / watchdog) from the same
/// data every epoch.
struct ShardSync {
    barrier: Barrier,
    /// Per-shard local finish vote (`u64::MAX` = still running).
    finished: Vec<AtomicU64>,
    /// Per-shard last-retirement cycle (global watchdog input).
    retire: Vec<AtomicU64>,
    limit: AtomicBool,
    /// Per-destination-shard cross-shard event deliveries.
    inboxes: Vec<Mutex<Vec<RemoteEvent>>>,
    /// Monotonic arrival counters for last-arriver attribution, one per
    /// barrier (A = publish/decide, B = delivery).
    arrivals_a: AtomicUsize,
    arrivals_b: AtomicUsize,
}

/// Ticks an arrival counter just before a barrier wait and reports
/// whether this thread completed the crossing (arrived last). Safe
/// because a thread cannot increment for crossing `k + 1` until every
/// thread has passed crossing `k`, so per crossing the counter runs
/// from `k * threads` to `(k + 1) * threads - 1` — the thread that
/// draws the final value is the one everyone else was waiting for.
fn arrive_last(counter: &AtomicUsize, threads: usize) -> bool {
    counter.fetch_add(1, Ordering::SeqCst) % threads == threads - 1
}

/// Sums a shard's instantaneous local snapshot into a partial
/// [`SampleInput`]. Every field is additive across shards, so summing
/// the partials at one boundary reproduces the serial global sample.
fn partial_input(cores: &[(usize, Core)], mem: &MemorySystem) -> SampleInput {
    let mut input = SampleInput {
        n_cores: cores.len() as u64,
        outstanding_misses: mem.outstanding_misses() as u64,
        ..SampleInput::default()
    };
    for (_, c) in cores {
        let (rob, lq, sq) = c.occupancy();
        input.rob += rob as u64;
        input.lq += lq as u64;
        input.sq += sq as u64;
        input.sb += c.sb_depth() as u64;
        let s = c.stats();
        input.retired += s.retired_instrs;
        input.gate_closed_cycles += s.gate_closed_cycles;
        input.squashes += s.squashes.iter().sum::<u64>();
    }
    input
}

fn add_sample(acc: &mut SampleInput, p: &SampleInput) {
    acc.n_cores += p.n_cores;
    acc.outstanding_misses += p.outstanding_misses;
    acc.rob += p.rob;
    acc.lq += p.lq;
    acc.sq += p.sq;
    acc.sb += p.sb;
    acc.retired += p.retired;
    acc.gate_closed_cycles += p.gate_closed_cycles;
    acc.squashes += p.squashes;
}

/// Advances one shard from `st.cur` through `bound` (inclusive), running
/// the serial event engine's per-cycle body over the local cores — or
/// the lockstep body when `lockstep` is set (every unfinished core ticks
/// every cycle, as the traced serial engine does). With `early_stop`,
/// returns as soon as the last local core finishes, recording the
/// shard's finish vote.
fn run_span<C: Tracer, P: Profiler>(
    st: &mut EngineShard<C>,
    bound: Cycle,
    early_stop: bool,
    lockstep: bool,
    interval: u64,
    valmem: &StripedValueMemory,
) {
    let EngineShard {
        cores,
        mem,
        collector,
        cur,
        active,
        wake,
        scratch,
        finished_at,
        samples,
        last_retire,
        ..
    } = st;
    while *cur <= bound {
        mem.advance_profiled::<C, P>(*cur, collector);
        let mut retired = 0u64;
        let mut any_active = false;
        for k in 0..cores.len() {
            let (gi, core) = &mut cores[k];
            let id = CoreId::from_index(*gi);
            scratch.clear();
            if mem.has_notices(id) {
                mem.take_notices_into(id, scratch);
            }
            let due =
                lockstep || active[k] || !scratch.is_empty() || wake[k].is_some_and(|w| w <= *cur);
            if !due {
                if !core.finished() {
                    core.apply_idle_cycles(1);
                }
                continue;
            }
            if core.finished() && scratch.is_empty() {
                active[k] = false;
                wake[k] = None;
                continue;
            }
            let mut port = PortView {
                mem: &mut *mem,
                core: id,
            };
            let mut vm = valmem;
            let r = core.tick_profiled::<_, _, C, P>(*cur, &mut port, &mut vm, scratch, collector);
            retired += r.retired;
            if !lockstep {
                if r.progress {
                    active[k] = true;
                    any_active = true;
                } else {
                    active[k] = false;
                    wake[k] = core.next_timed_wakeup(*cur);
                }
            }
        }
        *cur += 1;
        if interval != 0 && cur.is_multiple_of(interval) {
            samples.push((*cur, partial_input(cores, mem)));
        }
        if retired > 0 {
            *last_retire = *cur;
        }
        if early_stop && cores.iter().all(|(_, c)| c.finished()) {
            *finished_at = Some(*cur);
            return;
        }
        if lockstep || any_active {
            continue;
        }
        // Local slice asleep: jump to the next interesting local cycle.
        // The span bound subsumes the serial engine's budget clamp; the
        // watchdog fires at barrier granularity instead.
        let mut next = Cycle::MAX;
        if let Some(c) = mem.next_event_cycle() {
            next = next.min(c);
        }
        for w in wake.iter().flatten() {
            next = next.min(*w);
        }
        next = next.min(bound + 1);
        if let Some(intervals_done) = cur.checked_div(interval) {
            next = next.min((intervals_done + 1) * interval);
        }
        if next <= *cur {
            continue;
        }
        let skipped = next - *cur;
        for (_, c) in cores.iter_mut() {
            if !c.finished() {
                c.apply_idle_cycles(skipped);
            }
        }
        *cur = next;
        if interval != 0 && cur.is_multiple_of(interval) {
            samples.push((*cur, partial_input(cores, mem)));
        }
    }
}

/// One worker's epoch loop. Every epoch: advance the local slice to the
/// epoch boundary (phase 1, stopping early on local finish), synchronize
/// and decide globally (barrier A), catch up locally-finished shards
/// (phase 2), then trade cross-shard deliveries (barrier B). All control
/// decisions are computed by every shard from identically-published
/// flags, so the shards always take the same branch — no coordinator.
#[allow(clippy::too_many_arguments)]
fn shard_worker<C: ShardCollector, P: Profiler>(
    mut st: EngineShard<C>,
    sync: &ShardSync,
    valmem: &StripedValueMemory,
    interval: u64,
    max_cycles: Cycle,
    lookahead: Cycle,
    geometry: (usize, usize),
    bank_owner: &[usize],
) -> EngineShard<C> {
    let _span = P::span("shard");
    let (n_cores, n_shards) = geometry;
    let lockstep = C::ENABLED;
    let mut epoch_start: Cycle = 0;
    loop {
        let epoch_end = epoch_start + lookahead - 1;
        let epoch_cur0 = st.cur;
        let mut slice = EpochSlice::default();
        // Phase 1: simulate this epoch locally (cross-shard sends pile up
        // in the outbox; nothing sent this epoch is due before the next).
        let t_work = Instant::now();
        if st.finished_at.is_none() {
            run_span::<C, P>(
                &mut st,
                epoch_end.min(max_cycles - 1),
                true,
                lockstep,
                interval,
                valmem,
            );
            if st.finished_at.is_none() && st.cur >= max_cycles {
                st.limit_hit = true;
            }
        }
        slice.work_ns = t_work.elapsed().as_nanos() as u64;
        // Barrier A: publish flags, then read everyone's and decide.
        sync.finished[st.id].store(st.finished_at.unwrap_or(u64::MAX), Ordering::SeqCst);
        sync.retire[st.id].store(st.last_retire, Ordering::SeqCst);
        if st.limit_hit {
            sync.limit.store(true, Ordering::SeqCst);
        }
        let t_wait = Instant::now();
        if arrive_last(&sync.arrivals_a, n_shards) {
            st.scope.last_arriver_a += 1;
        }
        sync.barrier.wait();
        slice.wait_a_ns = t_wait.elapsed().as_nanos() as u64;
        st.scope.epochs += 1;
        if sync.limit.load(Ordering::SeqCst) {
            st.error = Some(RunError::CycleLimit { limit: max_cycles });
            finish_epoch(&mut st, slice, epoch_cur0);
            return st;
        }
        let mut all_finished = true;
        let mut finish = 0u64;
        for f in &sync.finished {
            let v = f.load(Ordering::SeqCst);
            all_finished &= v != u64::MAX;
            if v != u64::MAX {
                finish = finish.max(v);
            }
        }
        if all_finished {
            // Drain remaining notice ticks up to the global finish; any
            // message sent here would be due strictly after it.
            let t_drain = Instant::now();
            if finish > 0 {
                run_span::<C, P>(&mut st, finish - 1, false, lockstep, interval, valmem);
            }
            st.cur = finish;
            slice.work_ns += t_drain.elapsed().as_nanos() as u64;
            finish_epoch(&mut st, slice, epoch_cur0);
            return st;
        }
        let global_retire = sync
            .retire
            .iter()
            .map(|r| r.load(Ordering::SeqCst))
            .max()
            .unwrap_or(0);
        if (epoch_end + 1).saturating_sub(global_retire) > WATCHDOG {
            st.error = Some(RunError::NoProgress {
                since: global_retire,
            });
            finish_epoch(&mut st, slice, epoch_cur0);
            return st;
        }
        // Phase 2: a shard that finished mid-epoch still owes the rest of
        // the epoch to its queue (notice ticks on finished cores).
        let t_phase2 = Instant::now();
        run_span::<C, P>(&mut st, epoch_end, false, lockstep, interval, valmem);
        slice.work_ns += t_phase2.elapsed().as_nanos() as u64;
        // Barrier B: trade cross-shard deliveries for the next epoch.
        let t_route = Instant::now();
        let outbox = st.mem.take_outbox();
        st.scope.events_out += outbox.len() as u64;
        st.scope.exchange_events.observe(outbox.len() as u64);
        for ev in outbox {
            let dest = match ev.to {
                NodeId::Core(c) => core_shard(c.index(), n_cores, n_shards),
                NodeId::Bank(b) => bank_owner[b as usize],
            };
            sync.inboxes[dest].lock().expect("inbox lock").push(ev);
        }
        slice.exchange_ns = t_route.elapsed().as_nanos() as u64;
        let t_wait_b = Instant::now();
        if arrive_last(&sync.arrivals_b, n_shards) {
            st.scope.last_arriver_b += 1;
        }
        sync.barrier.wait();
        slice.wait_b_ns = t_wait_b.elapsed().as_nanos() as u64;
        st.scope.epochs_exchanged += 1;
        let t_inject = Instant::now();
        let incoming: Vec<RemoteEvent> =
            std::mem::take(&mut *sync.inboxes[st.id].lock().expect("inbox lock"));
        st.scope.events_in += incoming.len() as u64;
        for ev in incoming {
            st.mem.inject_remote(ev);
        }
        slice.exchange_ns += t_inject.elapsed().as_nanos() as u64;
        finish_epoch(&mut st, slice, epoch_cur0);
        epoch_start += lookahead;
    }
}

/// Books one epoch into the shard's telemetry: the virtual cycles this
/// epoch advanced plus its host-ns phase slice. Also called on the
/// early-return paths (limit, watchdog, global finish) so the partial
/// epoch's time is still accounted.
fn finish_epoch<C>(st: &mut EngineShard<C>, slice: EpochSlice, epoch_cur0: Cycle) {
    let cycles = st.cur - epoch_cur0;
    st.scope.sim_cycles += cycles;
    st.scope.record_epoch(slice, cycles);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_isa::{ConsistencyModel, Reg, TraceBuilder};

    fn two_core_cfg(model: ConsistencyModel) -> SimConfig {
        SimConfig::default().with_model(model).with_cores(2)
    }

    #[test]
    fn single_core_store_load_roundtrip() {
        let mut b = TraceBuilder::new();
        b.store_imm(0x1000, 42);
        b.load(Reg::new(0), 0x1000);
        let cfg = SimConfig::default().with_cores(1);
        let mut sim = Multicore::new(cfg, vec![b.build()]);
        let report = sim.run(1_000_000).unwrap();
        assert_eq!(sim.core(CoreId(0)).arch_reg(Reg::new(0)), 42);
        assert_eq!(sim.memory().read(0x1000, 8), 42);
        assert_eq!(report.total().retired_instrs, 2);
    }

    #[test]
    fn producer_consumer_communicates_through_coherence() {
        // Core 0 stores a flag+data; core 1 spins... traces are static,
        // so instead core 1 simply loads late (after enough padding).
        let mut p = TraceBuilder::new();
        p.store_imm(0x4000, 123);
        let mut c = TraceBuilder::new();
        for _ in 0..400 {
            c.nop();
        }
        c.load(Reg::new(1), 0x4000);
        let cfg = two_core_cfg(ConsistencyModel::X86);
        let mut sim = Multicore::new(cfg, vec![p.build(), c.build()]);
        sim.run(1_000_000).unwrap();
        assert_eq!(sim.core(CoreId(1)).arch_reg(Reg::new(1)), 123);
    }

    #[test]
    fn poke_preinitializes_memory() {
        let mut b = TraceBuilder::new();
        b.load(Reg::new(0), 0x8000);
        let cfg = SimConfig::default().with_cores(1);
        let mut sim = Multicore::new(cfg, vec![b.build()]);
        sim.poke(0x8000, 8, 77);
        sim.run(1_000_000).unwrap();
        assert_eq!(sim.core(CoreId(0)).arch_reg(Reg::new(0)), 77);
    }

    #[test]
    fn cycle_limit_reported() {
        let mut b = TraceBuilder::new();
        for i in 0..50 {
            b.load(Reg::new(0), 0x1000 + i * 0x40);
        }
        let cfg = SimConfig::default().with_cores(1);
        let mut sim = Multicore::new(cfg, vec![b.build()]);
        assert_eq!(sim.run(3), Err(RunError::CycleLimit { limit: 3 }));
    }

    #[test]
    #[should_panic(expected = "one trace per core")]
    fn trace_count_mismatch_panics() {
        let cfg = SimConfig::default().with_cores(2);
        let _ = Multicore::new(cfg, vec![Trace::empty()]);
    }

    #[test]
    fn contended_line_ping_pong_invalidates() {
        // Both cores repeatedly store to the same line: heavy
        // invalidation traffic, and both finish.
        let build = |val: u64| {
            let mut b = TraceBuilder::new();
            for i in 0..50 {
                b.store_imm(0x9000, val + i);
                b.load(Reg::new(0), 0x9040); // a second shared line
            }
            b.build()
        };
        let cfg = two_core_cfg(ConsistencyModel::Ibm370SlfSosKey);
        let mut sim = Multicore::new(cfg, vec![build(100), build(200)]);
        let report = sim.run(5_000_000).unwrap();
        assert!(report.mem.invalidations() > 10, "line must ping-pong");
        let final_val = sim.memory().read(0x9000, 8);
        assert!(
            final_val == 149 || final_val == 249,
            "last store wins: {final_val}"
        );
    }

    /// Cycle-level single-core execution matches the architectural
    /// reference interpreter exactly, for every configuration.
    #[test]
    fn single_core_matches_reference_interpreter() {
        let mut b = TraceBuilder::new();
        b.mov_imm(Reg::new(1), 11);
        b.store_reg(0x1000, Reg::new(1));
        b.load(Reg::new(2), 0x1000);
        b.add(Reg::new(3), Reg::new(2), Reg::new(2));
        b.store_reg(0x1040, Reg::new(3));
        b.load(Reg::new(4), 0x1040);
        let trace = b.build();
        let reference = sa_isa::interpret(&trace, sa_isa::ValueMemory::new());
        for model in ConsistencyModel::ALL {
            let cfg = SimConfig::default().with_model(model).with_cores(1);
            let mut sim = Multicore::new(cfg, vec![trace.clone()]);
            sim.run(1_000_000).unwrap();
            for r in 0..8u8 {
                assert_eq!(
                    sim.core(CoreId(0)).arch_reg(Reg::new(r)),
                    reference.reg(Reg::new(r)),
                    "{model} r{r}"
                );
            }
            assert_eq!(
                sim.memory().read(0x1040, 8),
                reference.memory.read(0x1040, 8)
            );
        }
    }

    #[test]
    fn all_models_complete_same_parallel_workload() {
        for model in ConsistencyModel::ALL {
            let build = |seed: u64| {
                let mut b = TraceBuilder::new();
                for i in 0..120u64 {
                    let a = 0xA000 + ((seed + i * 7) % 16) * 64;
                    if i % 3 == 0 {
                        b.store_imm(a, i);
                    } else {
                        b.load(Reg::new((i % 8) as u8), a);
                    }
                }
                b.build()
            };
            let cfg = two_core_cfg(model);
            let mut sim = Multicore::new(cfg, vec![build(1), build(5)]);
            let report = sim.run(10_000_000).unwrap_or_else(|e| {
                panic!("{model} wedged: {e:?}");
            });
            assert_eq!(report.total().retired_instrs, 240, "{model}");
        }
    }
}
