//! TAGE-style conditional branch predictor (stand-in for the paper's
//! L-TAGE, Seznec 2007).
//!
//! A bimodal base predictor plus four tagged tables indexed with
//! geometrically increasing global-history lengths. The longest-history
//! hit provides the prediction; allocation on mispredicts follows the
//! classic TAGE policy (one new entry in a longer-history table with a
//! weakly-correct counter).

const BASE_BITS: usize = 12; // 4096-entry bimodal
const TABLE_BITS: usize = 10; // 1024 entries per tagged table
const TAG_BITS: u32 = 8;
const HIST_LENGTHS: [u32; 4] = [8, 16, 32, 64];

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    tag: u16,
    ctr: i8, // -4..=3, taken when >= 0
    useful: u8,
}

/// The predictor.
#[derive(Debug)]
pub struct Tage {
    base: Vec<i8>, // 2-bit counters, -2..=1, taken when >= 0
    tables: [Vec<TaggedEntry>; 4],
    ghist: u64,
    predictions: u64,
    mispredicts: u64,
    alloc_tick: u64,
}

impl Default for Tage {
    fn default() -> Self {
        Tage::new()
    }
}

impl Tage {
    /// Creates an empty predictor.
    pub fn new() -> Tage {
        Tage {
            base: vec![0; 1 << BASE_BITS],
            tables: std::array::from_fn(|_| vec![TaggedEntry::default(); 1 << TABLE_BITS]),
            ghist: 0,
            predictions: 0,
            mispredicts: 0,
            alloc_tick: 0,
        }
    }

    fn fold(history: u64, bits: u32, out_bits: u32) -> u64 {
        let h = if bits >= 64 {
            history
        } else {
            history & ((1u64 << bits) - 1)
        };
        let mut folded = 0u64;
        let mut rest = h;
        let mask = (1u64 << out_bits) - 1;
        while rest != 0 {
            folded ^= rest & mask;
            rest >>= out_bits;
        }
        folded
    }

    fn index(&self, pc: u64, t: usize) -> usize {
        let h = Self::fold(self.ghist, HIST_LENGTHS[t], TABLE_BITS as u32);
        (((pc >> 2) ^ (pc >> (5 + t as u64)) ^ h) as usize) & ((1 << TABLE_BITS) - 1)
    }

    fn tag(&self, pc: u64, t: usize) -> u16 {
        let h = Self::fold(self.ghist, HIST_LENGTHS[t], TAG_BITS);
        ((((pc >> 2) ^ (pc >> 11) ^ (h << 1)) & ((1 << TAG_BITS) - 1)) as u16) | 1
    }

    fn base_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & ((1 << BASE_BITS) - 1)
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        for t in (0..HIST_LENGTHS.len()).rev() {
            let e = &self.tables[t][self.index(pc, t)];
            if e.tag == self.tag(pc, t) {
                return e.ctr >= 0;
            }
        }
        self.base[self.base_index(pc)] >= 0
    }

    /// Updates with the architectural outcome; returns `true` when the
    /// prediction made *before* this update was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let predicted = self.predict(pc);
        let correct = predicted == taken;
        self.predictions += 1;
        if !correct {
            self.mispredicts += 1;
        }

        // Find the provider (longest hitting table).
        let mut provider: Option<usize> = None;
        for t in (0..HIST_LENGTHS.len()).rev() {
            let idx = self.index(pc, t);
            if self.tables[t][idx].tag == self.tag(pc, t) {
                provider = Some(t);
                break;
            }
        }

        match provider {
            Some(t) => {
                let idx = self.index(pc, t);
                let e = &mut self.tables[t][idx];
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                if correct {
                    e.useful = e.useful.saturating_add(1).min(3);
                } else if e.useful > 0 {
                    e.useful -= 1;
                }
            }
            None => {
                let idx = self.base_index(pc);
                let c = &mut self.base[idx];
                *c = (*c + if taken { 1 } else { -1 }).clamp(-2, 1);
            }
        }

        // Allocate a longer-history entry on mispredicts.
        if !correct {
            let start = provider.map_or(0, |t| t + 1);
            self.alloc_tick += 1;
            let mut allocated = false;
            for t in start..HIST_LENGTHS.len() {
                let idx = self.index(pc, t);
                let tag = self.tag(pc, t);
                let e = &mut self.tables[t][idx];
                if e.useful == 0 {
                    *e = TaggedEntry {
                        tag,
                        ctr: if taken { 0 } else { -1 },
                        useful: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated && self.alloc_tick.is_multiple_of(8) {
                // Gracefully age useful bits so allocation can't starve.
                for t in start..HIST_LENGTHS.len() {
                    let idx = self.index(pc, t);
                    let e = &mut self.tables[t][idx];
                    if e.useful > 0 {
                        e.useful -= 1;
                    }
                }
            }
        }

        self.ghist = (self.ghist << 1) | u64::from(taken);
        correct
    }

    /// Fraction of mispredicted branches so far (0 when none predicted).
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.predictions as f64
        }
    }

    /// Branches predicted so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut p = Tage::new();
        for _ in 0..64 {
            p.update(0x400, true);
        }
        let before = p.mispredicts();
        for _ in 0..100 {
            p.update(0x400, true);
        }
        assert_eq!(
            p.mispredicts(),
            before,
            "steady-state always-taken is perfect"
        );
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = Tage::new();
        let mut flip = false;
        // Warm up.
        for _ in 0..600 {
            p.update(0x400, flip);
            flip = !flip;
        }
        let before = p.mispredicts();
        for _ in 0..200 {
            p.update(0x400, flip);
            flip = !flip;
        }
        let wrong = p.mispredicts() - before;
        assert!(
            wrong < 20,
            "alternating should be nearly perfect, got {wrong}/200"
        );
    }

    #[test]
    fn random_pattern_near_half() {
        let mut p = Tage::new();
        // A fixed pseudo-random sequence.
        let mut x = 0x12345678u64;
        let mut wrong = 0u64;
        for _ in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 62) & 1 == 1;
            if !p.update(0x400, taken) {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / 4000.0;
        assert!(rate > 0.3, "cannot predict random, rate={rate}");
    }

    #[test]
    fn distinct_pcs_do_not_alias_in_base() {
        let mut p = Tage::new();
        for _ in 0..64 {
            p.update(0x400, true);
            p.update(0x800, false);
        }
        assert!(p.predict(0x400));
        assert!(!p.predict(0x800));
    }

    #[test]
    fn mispredict_rate_bounds() {
        let p = Tage::new();
        assert_eq!(p.mispredict_rate(), 0.0);
        let mut p = Tage::new();
        for i in 0..100u64 {
            p.update(0x40 + i * 4, i % 3 == 0);
        }
        let r = p.mispredict_rate();
        assert!((0.0..=1.0).contains(&r));
        assert_eq!(p.predictions(), 100);
    }
}
