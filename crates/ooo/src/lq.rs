//! The load queue, stored struct-of-arrays.
//!
//! Each entry carries, beyond the classic fields, the paper's two
//! additions (§IV-D): the **SLF bit** (here folded into `slf_key`) and a
//! copy of the forwarding store's **key**. The speculation flags record
//! *why* a performed load is squashable when an invalidation or eviction
//! snoops the queue.
//!
//! Entries live in parallel columns over a circular slot array, named by
//! generation-tagged [`LqIdx`] handles (same scheme as the ROB). The
//! snoop probe walks the dense `line`/`state` columns, and the
//! any-older-unperformed prefix query reads a word-scanned *performed
//! bitset* instead of striding over entry structs.

use sa_coherence::MemReqId;
use sa_isa::{Addr, Cycle, Line, Value};

use crate::gate::Key;
use crate::rob::RobIdx;
use crate::sq::SqIdx;

/// Generation-tagged handle to a load-queue entry. `seq` is unique and
/// monotonic (age order, never reused); `slot` locates the physical
/// column index in O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LqIdx {
    /// Unique dynamic-load id (age order).
    pub seq: u64,
    /// Physical slot in the SoA columns.
    pub slot: u32,
}

/// Why a load is not executing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// The StoreSet predictor says an older same-set store is unresolved.
    StoreSet,
    /// Forwarding store matched but its data is not ready yet.
    ForwardData(SqIdx),
    /// Must wait for the matched store to write to the L1
    /// (`370-NoSpec`, or a partial overlap in any model).
    StoreCommit(SqIdx),
    /// An older fence is still in the window.
    Fence,
    /// The memory system had no MSHR free; retry.
    MshrFull,
    /// An invalidation or eviction hit the line while this load's memory
    /// access was in flight: the response would be a stale hit, so it is
    /// dropped and the load re-executes from scratch (as an L1 kills an
    /// in-flight hit when a probe takes the line).
    Replay,
}

/// Load execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadState {
    /// Address operand not ready yet.
    WaitDeps,
    /// Tried to execute and must retry.
    Blocked(BlockReason),
    /// In flight in the memory system.
    Issued(MemReqId),
    /// Has its value.
    Performed,
}

/// The load queue: a bounded, age-ordered circular buffer over
/// struct-of-arrays columns.
#[derive(Debug)]
pub struct LoadQueue {
    /// Physical-ring mask (power-of-two ring size − 1).
    mask: usize,
    /// Physical slot of the oldest entry.
    head: usize,
    /// Occupied entries.
    len: usize,
    /// Architectural capacity.
    capacity: usize,
    next_seq: u64,
    /// Live entries whose `slf_key` is set — lets the SA shadow test
    /// skip its prefix scan entirely when no SLF load is in flight.
    slf_live: usize,
    // --- parallel columns, indexed by physical slot ---
    pub(crate) seq: Vec<u64>,
    pub(crate) rob: Vec<RobIdx>,
    pub(crate) pc: Vec<u64>,
    pub(crate) addr: Vec<Addr>,
    pub(crate) size: Vec<u8>,
    pub(crate) line: Vec<Line>,
    state: Vec<LoadState>,
    pub(crate) value: Vec<Value>,
    pub(crate) performed_at: Vec<Cycle>,
    pub(crate) fwd_from: Vec<Option<SqIdx>>,
    slf_key: Vec<Option<Key>>,
    pub(crate) m_spec: Vec<bool>,
    pub(crate) d_spec: Vec<bool>,
    pub(crate) attempt_epoch: Vec<u64>,
    pub(crate) miss_passed_unresolved: Vec<bool>,
    /// Memory-side version stamp captured when this load's issue was
    /// MSHR-rejected; while the port's stamp is unchanged, a retry is
    /// guaranteed to reject identically and is booked without re-probing.
    pub(crate) reject_stamp: Vec<u64>,
    /// One bit per physical slot: set iff the slot holds a live entry in
    /// [`LoadState::Performed`]. The any-older-unperformed query reduces
    /// to "any zero bit over the prefix's slot range", scanned a word at
    /// a time.
    performed: Vec<u64>,
    /// One bit per physical slot: set iff the slot holds a live entry in
    /// [`LoadState::Blocked`]. The per-cycle retry pass word-scans this
    /// instead of reading every live entry's state.
    blocked: Vec<u64>,
}

impl LoadQueue {
    /// An empty LQ of `capacity` entries.
    pub fn new(capacity: usize) -> LoadQueue {
        let phys = capacity.next_power_of_two().max(64);
        LoadQueue {
            mask: phys - 1,
            head: 0,
            len: 0,
            capacity,
            next_seq: 0,
            slf_live: 0,
            seq: vec![0; phys],
            rob: vec![RobIdx { seq: 0, slot: 0 }; phys],
            pc: vec![0; phys],
            addr: vec![0; phys],
            size: vec![0; phys],
            line: vec![Line::containing(0); phys],
            state: vec![LoadState::WaitDeps; phys],
            value: vec![0; phys],
            performed_at: vec![0; phys],
            fwd_from: vec![None; phys],
            slf_key: vec![None; phys],
            m_spec: vec![false; phys],
            d_spec: vec![false; phys],
            attempt_epoch: vec![0; phys],
            miss_passed_unresolved: vec![false; phys],
            reject_stamp: vec![0; phys],
            performed: vec![0; phys / 64],
            blocked: vec![0; phys / 64],
        }
    }

    /// `true` when no more loads can dispatch.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// `true` when the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Physical slot of queue position `pos` (0 = oldest); `pos < len`.
    #[inline]
    pub(crate) fn phys(&self, pos: usize) -> usize {
        (self.head + pos) & self.mask
    }

    /// Queue position of a live handle, `None` when stale.
    #[inline]
    pub fn pos_of(&self, idx: LqIdx) -> Option<usize> {
        let slot = idx.slot as usize;
        let pos = slot.wrapping_sub(self.head) & self.mask;
        (pos < self.len && self.seq[slot] == idx.seq).then_some(pos)
    }

    /// Physical slot of a live handle, `None` when stale.
    #[inline]
    pub(crate) fn live_slot(&self, idx: LqIdx) -> Option<usize> {
        self.pos_of(idx).map(|_| idx.slot as usize)
    }

    /// `true` while the handle names a live entry.
    pub fn contains(&self, idx: LqIdx) -> bool {
        self.pos_of(idx).is_some()
    }

    /// Handle at queue position `pos`.
    pub(crate) fn idx_at(&self, pos: usize) -> LqIdx {
        let slot = self.phys(pos);
        LqIdx {
            seq: self.seq[slot],
            slot: slot as u32,
        }
    }

    /// Allocates an entry at the tail.
    ///
    /// # Panics
    ///
    /// Panics when full — the dispatcher must check [`LoadQueue::is_full`].
    pub fn alloc(&mut self, rob: RobIdx, pc: u64, addr: Addr, size: u8) -> LqIdx {
        assert!(!self.is_full(), "LQ overflow");
        let slot = (self.head + self.len) & self.mask;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.seq[slot] = seq;
        self.rob[slot] = rob;
        self.pc[slot] = pc;
        self.addr[slot] = addr;
        self.size[slot] = size;
        self.line[slot] = Line::containing(addr);
        self.state[slot] = LoadState::WaitDeps;
        self.value[slot] = 0;
        self.performed_at[slot] = 0;
        self.fwd_from[slot] = None;
        self.slf_key[slot] = None;
        self.m_spec[slot] = false;
        self.d_spec[slot] = false;
        self.attempt_epoch[slot] = 0;
        self.miss_passed_unresolved[slot] = false;
        self.reject_stamp[slot] = 0;
        self.performed[slot / 64] &= !(1u64 << (slot % 64));
        self.blocked[slot / 64] &= !(1u64 << (slot % 64));
        LqIdx {
            seq,
            slot: slot as u32,
        }
    }

    /// Execution state of the entry in physical `slot`.
    #[inline]
    pub(crate) fn state_at(&self, slot: usize) -> LoadState {
        self.state[slot]
    }

    /// Execution state by handle (stale handles return `None`).
    pub fn state_of(&self, idx: LqIdx) -> Option<LoadState> {
        self.live_slot(idx).map(|s| self.state[s])
    }

    /// Sets the execution state of `slot`, maintaining the performed
    /// bitset.
    #[inline]
    pub(crate) fn set_state_at(&mut self, slot: usize, s: LoadState) {
        self.state[slot] = s;
        let bit = 1u64 << (slot % 64);
        if s == LoadState::Performed {
            self.performed[slot / 64] |= bit;
        } else {
            self.performed[slot / 64] &= !bit;
        }
        if matches!(s, LoadState::Blocked(_)) {
            self.blocked[slot / 64] |= bit;
        } else {
            self.blocked[slot / 64] &= !bit;
        }
    }

    /// Collects (into `out`) the physical slots of all `Blocked` live
    /// entries, oldest → youngest, by word-scanning the blocked bitset
    /// over the ring window — the retry pass's candidate set.
    pub(crate) fn blocked_slots(&self, out: &mut Vec<u32>) {
        out.clear();
        if self.len == 0 {
            return;
        }
        let phys = self.mask + 1;
        let lo = self.head;
        let seg1 = (lo, (lo + self.len).min(phys));
        let seg2 = (0, (lo + self.len).saturating_sub(phys));
        for (lo, hi) in [seg1, seg2] {
            let mut w = lo / 64;
            while w * 64 < hi {
                let base = w * 64;
                let mut m = !0u64;
                if lo > base {
                    m &= !0u64 << (lo - base);
                }
                if hi < base + 64 {
                    m &= !0u64 >> (base + 64 - hi);
                }
                let mut bw = self.blocked[w] & m;
                while bw != 0 {
                    out.push((base as u32) + bw.trailing_zeros());
                    bw &= bw - 1;
                }
                w += 1;
            }
        }
    }

    /// Sets the execution state by handle; `false` when the handle is
    /// stale.
    pub fn set_state(&mut self, idx: LqIdx, s: LoadState) -> bool {
        match self.live_slot(idx) {
            Some(slot) => {
                self.set_state_at(slot, s);
                true
            }
            None => false,
        }
    }

    /// The forwarding store's key of the entry in `slot`.
    #[inline]
    pub(crate) fn slf_key_at(&self, slot: usize) -> Option<Key> {
        self.slf_key[slot]
    }

    /// Marks `slot` as an SLF load of `key`, maintaining the live-SLF
    /// count.
    pub(crate) fn set_slf_key_at(&mut self, slot: usize, key: Key) {
        if self.slf_key[slot].is_none() {
            self.slf_live += 1;
        }
        self.slf_key[slot] = Some(key);
    }

    /// Marks an SLF load by handle; `false` when the handle is stale.
    pub fn set_slf_key(&mut self, idx: LqIdx, key: Key) -> bool {
        match self.live_slot(idx) {
            Some(slot) => {
                self.set_slf_key_at(slot, key);
                true
            }
            None => false,
        }
    }

    /// Frees the oldest entry at retirement.
    ///
    /// # Panics
    ///
    /// Panics if the head is not the load of `rob` — retirement is
    /// in-order.
    pub fn retire_head(&mut self, rob: RobIdx) {
        assert!(self.len > 0, "retiring from empty LQ");
        assert_eq!(self.rob[self.head], rob, "LQ retirement out of order");
        self.free_slot(self.head);
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
    }

    /// Clears the bitset/counter state of a slot leaving the queue.
    fn free_slot(&mut self, slot: usize) {
        self.performed[slot / 64] &= !(1u64 << (slot % 64));
        self.blocked[slot / 64] &= !(1u64 << (slot % 64));
        if self.slf_key[slot].take().is_some() {
            self.slf_live -= 1;
        }
    }

    /// `true` when any zero bit exists in `bits` over physical slots
    /// `[start, end)` (one contiguous, non-wrapping range).
    fn range_has_zero(bits: &[u64], start: usize, end: usize) -> bool {
        if start >= end {
            return false;
        }
        let (ws, we) = (start / 64, (end - 1) / 64);
        let lo = !0u64 << (start % 64);
        let hi = !0u64 >> (63 - (end - 1) % 64);
        if ws == we {
            let m = lo & hi;
            return bits[ws] & m != m;
        }
        if bits[ws] & lo != lo {
            return true;
        }
        if bits[ws + 1..we].iter().any(|&w| w != !0u64) {
            return true;
        }
        bits[we] & hi != hi
    }

    /// `true` when any load in queue positions `[0, pos)` has not
    /// performed — a word-scanned prefix query on the performed bitset.
    pub(crate) fn any_unperformed_before(&self, pos: usize) -> bool {
        let end = self.head + pos;
        if end <= self.mask + 1 {
            Self::range_has_zero(&self.performed, self.head, end)
        } else {
            Self::range_has_zero(&self.performed, self.head, self.mask + 1)
                || Self::range_has_zero(&self.performed, 0, end & self.mask)
        }
    }

    /// `true` when any load older than the live entry `idx` has not
    /// performed.
    pub fn any_older_unperformed(&self, idx: LqIdx) -> bool {
        let pos = self.pos_of(idx).expect("stale LQ handle");
        self.any_unperformed_before(pos)
    }

    /// `true` when any load in queue positions `[0, pos)` is an SLF load
    /// whose forwarding store is still pending according to
    /// `store_pending` — the SA-speculation shadow test (§IV-A).
    pub(crate) fn older_slf_pending_before(
        &self,
        pos: usize,
        store_pending: impl Fn(Key) -> bool,
    ) -> bool {
        if self.slf_live == 0 {
            return false;
        }
        (0..pos).any(|p| self.slf_key[self.phys(p)].is_some_and(&store_pending))
    }

    /// `true` when any load older than the live entry `idx` is an SLF
    /// load whose forwarding store is still pending.
    pub fn older_slf_pending(&self, idx: LqIdx, store_pending: impl Fn(Key) -> bool) -> bool {
        let pos = self.pos_of(idx).expect("stale LQ handle");
        self.older_slf_pending_before(pos, store_pending)
    }

    /// First queue position whose load is `from` or younger (the squash
    /// cut point); `len` when every load is older.
    pub fn cut_pos(&self, from: RobIdx) -> usize {
        // Positions are age-ordered by ROB seq: binary-search the first
        // entry at or past `from`.
        let (mut lo, mut hi) = (0, self.len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.rob[self.phys(mid)] < from {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Drops every entry at queue position `new_len` and beyond (the
    /// squash suffix). The caller walks the suffix first to release any
    /// in-flight bookkeeping.
    pub fn truncate(&mut self, new_len: usize) {
        debug_assert!(new_len <= self.len);
        for pos in new_len..self.len {
            let slot = self.phys(pos);
            self.free_slot(slot);
        }
        self.len = new_len;
    }

    /// Iterates live handles oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = LqIdx> + '_ {
        (0..self.len).map(|pos| self.idx_at(pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(seq: u64) -> RobIdx {
        RobIdx { seq, slot: 0 }
    }

    fn lq() -> LoadQueue {
        LoadQueue::new(4)
    }

    #[test]
    fn alloc_and_lookup() {
        let mut q = lq();
        let a = q.alloc(rid(3), 0x400, 0x100, 8);
        let b = q.alloc(rid(7), 0x404, 0x108, 8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.addr[a.slot as usize], 0x100);
        assert_eq!(q.line[b.slot as usize], Line::containing(0x108));
        assert!(q.contains(a));
        assert_eq!(q.pos_of(b), Some(1));
    }

    #[test]
    fn older_unperformed_detection() {
        let mut q = lq();
        let a = q.alloc(rid(1), 0, 0x100, 8);
        let b = q.alloc(rid(2), 0, 0x108, 8);
        assert!(q.any_older_unperformed(b));
        q.set_state(a, LoadState::Performed);
        assert!(!q.any_older_unperformed(b));
        assert!(!q.any_older_unperformed(a));
    }

    #[test]
    fn slf_shadow_detection() {
        let mut q = lq();
        let key = Key {
            slot: 3,
            sorting: false,
        };
        let a = q.alloc(rid(1), 0, 0x100, 8);
        q.set_slf_key(a, key);
        let b = q.alloc(rid(2), 0, 0x108, 8);
        // Store still pending -> shadow over the younger load.
        assert!(q.older_slf_pending(b, |k| k == key));
        // Store left the SB -> shadow lifted.
        assert!(!q.older_slf_pending(b, |_| false));
        // The SLF load itself is not shadowed by itself.
        assert!(!q.older_slf_pending(a, |k| k == key));
    }

    #[test]
    fn squash_suffix() {
        let mut q = lq();
        let a = q.alloc(rid(1), 0, 0x100, 8);
        let b = q.alloc(rid(5), 0, 0x108, 8);
        let c = q.alloc(rid(9), 0, 0x110, 8);
        let cut = q.cut_pos(rid(5));
        assert_eq!(cut, 1);
        q.truncate(cut);
        assert_eq!(q.len(), 1);
        assert!(q.contains(a));
        assert!(!q.contains(b), "squashed handle is stale");
        assert!(!q.contains(c));
    }

    #[test]
    fn retire_head_in_order() {
        let mut q = lq();
        let a = q.alloc(rid(1), 0, 0x100, 8);
        q.retire_head(rid(1));
        assert!(q.is_empty());
        assert!(!q.contains(a), "retired handle is stale");
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn retire_out_of_order_panics() {
        let mut q = lq();
        q.alloc(rid(1), 0, 0x100, 8);
        q.alloc(rid(2), 0, 0x108, 8);
        q.retire_head(rid(2));
    }

    #[test]
    #[should_panic(expected = "LQ overflow")]
    fn overflow_panics() {
        let mut q = LoadQueue::new(1);
        q.alloc(rid(1), 0, 0x100, 8);
        q.alloc(rid(2), 0, 0x108, 8);
    }

    #[test]
    fn performed_bitset_tracks_ring_wraparound() {
        // Capacity 4, ring 64: exercise head movement so prefix queries
        // span slot ranges that are not `[0, len)`.
        let mut q = LoadQueue::new(4);
        for i in 0..100u64 {
            let h = q.alloc(rid(i), 0, 0x100 + i * 8, 8);
            if i % 3 == 0 {
                q.set_state(h, LoadState::Performed);
            }
            if q.len() == 4 {
                // Reference check against a naive scan.
                for pos in 0..q.len() {
                    let idx = q.idx_at(pos);
                    let naive = (0..pos).any(|p| q.state_at(q.phys(p)) != LoadState::Performed);
                    assert_eq!(q.any_older_unperformed(idx), naive, "i={i} pos={pos}");
                }
                q.set_state_at(q.head, LoadState::Performed);
                q.retire_head(q.rob[q.head]);
            }
        }
    }
}
