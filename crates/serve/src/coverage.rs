//! The cumulative coverage matrix: configuration × program-shape
//! taxonomy × outcome.
//!
//! Every completed litmus job folds into one cell per (model label,
//! [`sa_litmus::shape_label`]) pair: job and simulation counts, the
//! number of *distinct* outcomes observed (tracked as a capped set of
//! outcome-string hashes, so memory stays bounded on an unbounded farm),
//! and containment violations. Axiomatic allowed sets are folded too
//! (under `axiomatic-x86` / `axiomatic-370` pseudo-configurations), so
//! the matrix shows oracle coverage even for `check:false` jobs.
//!
//! Exposed live at `GET /coverage` and flushed periodically (and on
//! shutdown) as a JSON checkpoint under `results/`.

use std::collections::{BTreeMap, HashSet};
use std::hash::{DefaultHasher, Hash, Hasher};

use sa_metrics::JsonWriter;

/// Distinct-outcome hashes kept per cell before saturating.
const MAX_DISTINCT: usize = 4096;

/// One (model, shape) cell.
#[derive(Debug, Default)]
pub struct Cell {
    /// Jobs that contributed to this cell.
    pub jobs: u64,
    /// Individual simulations (0 for axiomatic rows).
    pub sims: u64,
    /// Containment violations observed.
    pub violations: u64,
    /// Hashes of distinct outcome strings, capped at [`MAX_DISTINCT`].
    outcomes: HashSet<u64>,
    /// `true` once the outcome set hit the cap (count is then a floor).
    saturated: bool,
}

impl Cell {
    /// Distinct outcomes observed (a floor once saturated).
    pub fn distinct_outcomes(&self) -> u64 {
        self.outcomes.len() as u64
    }
}

/// The matrix. Wrap in a `Mutex`.
#[derive(Debug, Default)]
pub struct Coverage {
    cells: BTreeMap<(String, String), Cell>,
}

fn hash_outcome(outcome: &str) -> u64 {
    let mut h = DefaultHasher::new();
    outcome.hash(&mut h);
    h.finish()
}

impl Coverage {
    /// An empty matrix.
    pub fn new() -> Coverage {
        Coverage::default()
    }

    /// Folds one job's contribution to `(model, shape)` in: `sims` runs,
    /// the outcomes they observed, and how many violated containment.
    pub fn record(
        &mut self,
        model: &str,
        shape: &str,
        sims: u64,
        outcomes: impl IntoIterator<Item = impl AsRef<str>>,
        violations: u64,
    ) {
        let cell = self
            .cells
            .entry((model.to_string(), shape.to_string()))
            .or_default();
        cell.jobs += 1;
        cell.sims += sims;
        cell.violations += violations;
        for o in outcomes {
            if cell.outcomes.len() >= MAX_DISTINCT {
                cell.saturated = true;
                break;
            }
            cell.outcomes.insert(hash_outcome(o.as_ref()));
        }
    }

    /// Number of populated cells.
    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// Total violations across the matrix.
    pub fn total_violations(&self) -> u64 {
        self.cells.values().map(|c| c.violations).sum()
    }

    /// Renders the matrix as the `/coverage` JSON document.
    pub fn write_json(&self, j: &mut JsonWriter) {
        j.key("cells").begin_array();
        for ((model, shape), cell) in &self.cells {
            j.begin_object()
                .field_str("model", model)
                .field_str("shape", shape)
                .field_uint("jobs", cell.jobs)
                .field_uint("sims", cell.sims)
                .field_uint("distinct_outcomes", cell.distinct_outcomes())
                .key("outcomes_saturated")
                .boolean(cell.saturated);
            j.field_uint("violations", cell.violations).end_object();
        }
        j.end_array();
    }

    /// The standalone `/coverage` document.
    pub fn json(&self) -> String {
        let mut j = JsonWriter::new();
        j.begin_object().field_str("schema", "sa-serve-coverage-v1");
        self.write_json(&mut j);
        j.end_object();
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_metrics::JsonValue;

    #[test]
    fn accumulates_and_dedupes_outcomes() {
        let mut cov = Coverage::new();
        cov.record("x86", "t2+fwd", 9, ["a", "b", "a"], 0);
        cov.record("x86", "t2+fwd", 9, ["b", "c"], 1);
        cov.record("370-SLFSoS-key", "t2+fwd", 9, ["a"], 0);
        assert_eq!(cov.cells(), 2);
        assert_eq!(cov.total_violations(), 1);
        let v = JsonValue::parse(&cov.json()).unwrap();
        let cells = v.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 2);
        // BTreeMap order: "370-..." sorts before "x86".
        let x86 = &cells[1];
        assert_eq!(x86.get("model").unwrap().as_str(), Some("x86"));
        assert_eq!(x86.get("jobs").unwrap().as_u64(), Some(2));
        assert_eq!(x86.get("sims").unwrap().as_u64(), Some(18));
        assert_eq!(x86.get("distinct_outcomes").unwrap().as_u64(), Some(3));
        assert_eq!(x86.get("violations").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn distinct_outcomes_saturate_at_the_cap() {
        let mut cov = Coverage::new();
        let many: Vec<String> = (0..MAX_DISTINCT + 100).map(|i| format!("o{i}")).collect();
        cov.record("x86", "t2", 1, &many, 0);
        let cell = cov.cells.values().next().unwrap();
        assert_eq!(cell.distinct_outcomes(), MAX_DISTINCT as u64);
        assert!(cell.saturated);
    }
}
